//! The replay service: long-lived, multi-tenant replay behind a real
//! scheduler.
//!
//! The paper's replayer is single-shot: init, load, replay, cleanup. A
//! client serving inference traffic wants the opposite shape — machines
//! that stay warm (page tables built, dumps uploaded, registers
//! configured) while requests stream in, behind a scheduler that holds
//! up under overload. This crate provides that shape:
//!
//! * one **shard** per GPU SKU, each with a **bounded
//!   earliest-deadline-first queue** ([`EdfQueue`]): a full queue rejects
//!   the submission with [`ServiceError::QueueFull`] instead of growing
//!   without bound;
//! * **per-request deadlines** against the service's virtual clock
//!   ([`ReplayService::clock`]): already-expired requests are refused at
//!   admission, and requests that expire while queued are rejected at
//!   dequeue without ever touching a warm machine;
//! * N **worker threads** per shard, each owning a warm [`Machine`] +
//!   [`Replayer`] with every recording pre-loaded and verified;
//! * **dynamic batching**: when a shard's queue backs up, a worker
//!   drains up to [`ShardSpec::max_batch`] EDF-consecutive compatible
//!   single-input submissions for the same recording and runs them
//!   through one [`Replayer::replay_batch_isolated`] call, paying the
//!   reset/upload/remap prologue once and demuxing outputs — and faults
//!   — back to the individual tickets;
//! * **fault isolation**: a malformed or poisoned element fails only its
//!   own ticket (§5.4 recovery re-warms the machine mid-batch); the
//!   worker, its warm state, and its batchmates all survive;
//! * **cross-batch warm residency**: a worker serving consecutive batches
//!   of the same recording elides the reset/upload/remap prologue when
//!   the DRAM dirty log proves the machine's memory unchanged since the
//!   previous batch (`DESIGN.md` §13); residency drops on recording
//!   switch, GPU reset/fault re-warm, and hash-fallback mismatch, and
//!   the elisions surface as `ShardStats::prologue_skipped`;
//! * **replay-progress clock**: after each formed batch a worker advances
//!   the service clock to its machine's virtual timeline, so queued
//!   deadlines expire from replay progress without an external driver
//!   (disable with [`ReplayServiceBuilder::manual_clock`]; the explicit
//!   `clock().advance(..)` API still works either way);
//! * **observability**: [`ReplayService::stats`] snapshots per-shard
//!   queue depth, admission/rejection counters, deadline misses, the
//!   formed-batch size histogram, residency elisions, and per-recording
//!   queue-depth/dequeue lanes ([`RecordingStats`]).
//!
//! ```no_run
//! use gr_service::{ReplayRequest, ReplayService, ShardSpec};
//! use gr_replayer::{EnvKind, ReplayIo};
//! use gr_gpu::sku;
//! use gr_sim::SimDuration;
//!
//! # fn demo(blob: Vec<u8>, io: ReplayIo) -> Result<(), gr_service::ServiceError> {
//! let service = ReplayService::builder()
//!     .shard(
//!         ShardSpec::new(&sku::MALI_G71, EnvKind::UserLevel, vec![blob])
//!             .workers(2)
//!             .queue_cap(128)
//!             .max_batch(16),
//!     )
//!     .spawn()?;
//! let deadline = service.clock().now() + SimDuration::from_millis(50);
//! let ticket = service.submit_request(
//!     "G71",
//!     ReplayRequest::single(0, io).deadline(deadline),
//! )?;
//! let outcome = ticket.wait()?;
//! println!("rode a batch of {}", outcome.report.elements);
//! println!("{:?}", service.stats());
//! service.shutdown();
//! # Ok(()) }
//! ```

mod queue;
mod stats;

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use gr_gpu::{GpuSku, Machine};
use gr_replayer::{
    BatchReport, EnvKind, Environment, IsolatedBatchReport, ReplayError, ReplayIo, Replayer,
};
use gr_sim::{SimClock, SimTime};

pub use queue::EdfQueue;
pub use stats::{RecordingStats, ServiceStats, ShardStats};

use stats::ShardMetrics;

/// Why a service call failed.
#[derive(Debug)]
pub enum ServiceError {
    /// No shard serves this SKU name.
    UnknownSku(String),
    /// Two shards were configured for the same SKU name.
    DuplicateShard(String),
    /// The shard's bounded queue is at capacity; the request was rejected
    /// at admission (backpressure — retry later or shed the request).
    QueueFull {
        /// SKU of the full shard.
        sku: String,
        /// The queue's admission capacity.
        cap: usize,
    },
    /// The request's deadline passed: at admission (already expired) or
    /// while queued (rejected at dequeue without touching a worker).
    DeadlineExceeded,
    /// The service is shutting down; the ticket was rejected, not run.
    Shutdown,
    /// The shard's workers are gone (shutdown raced or a thread died).
    WorkerLost,
    /// A worker failed to warm up at spawn time.
    Startup(ReplayError),
    /// The replay itself failed; the worker survived and keeps serving.
    Replay(ReplayError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSku(name) => write!(f, "no shard for SKU '{name}'"),
            ServiceError::DuplicateShard(name) => {
                write!(f, "more than one shard configured for SKU '{name}'")
            }
            ServiceError::QueueFull { sku, cap } => {
                write!(f, "shard '{sku}' queue full (cap {cap})")
            }
            ServiceError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServiceError::Shutdown => write!(f, "service shut down before the request ran"),
            ServiceError::WorkerLost => write!(f, "shard workers are gone"),
            ServiceError::Startup(e) => write!(f, "worker warm-up failed: {e}"),
            ServiceError::Replay(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One shard to build: a SKU, a deployment environment, the recordings
/// every worker pre-loads, and the scheduler knobs.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// GPU SKU the shard's machines model.
    pub sku: &'static GpuSku,
    /// Deployment environment of each worker's replayer (§6.3).
    pub env: EnvKind,
    /// Serialized recordings, loaded (and verified) by every worker in
    /// order; job `recording` indices refer to this order.
    pub recordings: Vec<Vec<u8>>,
    /// Worker threads (warm machines) in the shard.
    pub workers: usize,
    /// Base machine seed; worker `i` gets `seed + i` so shards exercise
    /// different hardware timing jitter while outputs stay bit-exact.
    pub seed: u64,
    /// Bounded queue capacity; admission past this depth returns
    /// [`ServiceError::QueueFull`].
    pub queue_cap: usize,
    /// Most tickets a worker may coalesce into one warm batch (1
    /// disables dynamic batching).
    pub max_batch: usize,
    /// Cross-batch warm residency on the shard's workers (on by default):
    /// consecutive batches of the same recording elide the prologue when
    /// the dirty log proves the machine's memory unchanged. Benchmarks
    /// turn it off to measure the per-batch-prologue baseline.
    pub residency: bool,
}

impl ShardSpec {
    /// A one-worker shard with default seed, a 64-deep queue, and up to
    /// 8-way dynamic batching.
    pub fn new(sku: &'static GpuSku, env: EnvKind, recordings: Vec<Vec<u8>>) -> ShardSpec {
        ShardSpec {
            sku,
            env,
            recordings,
            workers: 1,
            seed: 1,
            queue_cap: 64,
            max_batch: 8,
            residency: true,
        }
    }

    /// Sets the worker count (minimum 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> ShardSpec {
        self.workers = n.max(1);
        self
    }

    /// Sets the base machine seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> ShardSpec {
        self.seed = seed;
        self
    }

    /// Sets the bounded queue capacity (minimum 1).
    #[must_use]
    pub fn queue_cap(mut self, cap: usize) -> ShardSpec {
        self.queue_cap = cap.max(1);
        self
    }

    /// Sets the dynamic-batching cap (minimum 1 = no coalescing).
    #[must_use]
    pub fn max_batch(mut self, n: usize) -> ShardSpec {
        self.max_batch = n.max(1);
        self
    }

    /// Enables or disables cross-batch warm residency on the shard's
    /// workers (see [`ShardSpec::residency`]).
    #[must_use]
    pub fn residency(mut self, on: bool) -> ShardSpec {
        self.residency = on;
        self
    }
}

/// One submission: which recording to replay, its IO blocks, and an
/// optional deadline on the service clock.
#[derive(Debug)]
pub struct ReplayRequest {
    /// Index into the shard's recording list.
    pub recording: usize,
    /// One element per entry; a single-element request is eligible for
    /// dynamic batching with its shard neighbours.
    pub ios: Vec<ReplayIo>,
    /// Latest service-clock instant at which starting the replay is still
    /// useful; `None` never expires.
    pub deadline: Option<SimTime>,
}

impl ReplayRequest {
    /// A request carrying `ios` with no deadline.
    pub fn new(recording: usize, ios: Vec<ReplayIo>) -> ReplayRequest {
        ReplayRequest {
            recording,
            ios,
            deadline: None,
        }
    }

    /// A single-input request (the shape dynamic batching coalesces).
    pub fn single(recording: usize, io: ReplayIo) -> ReplayRequest {
        ReplayRequest::new(recording, vec![io])
    }

    /// Sets the deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: SimTime) -> ReplayRequest {
        self.deadline = Some(deadline);
        self
    }
}

/// Everything a finished job hands back.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The request's IO blocks, outputs filled.
    pub ios: Vec<ReplayIo>,
    /// The report of the warm batch this request rode (`report.elements`
    /// counts every coalesced element, not just this request's).
    pub report: BatchReport,
    /// Index of the worker (within its shard) that served the job.
    pub worker: usize,
}

/// A pending job: redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<BatchOutcome, ServiceError>>,
}

impl Ticket {
    /// Blocks until the job finishes or is rejected.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Replay`] when the replay failed,
    /// [`ServiceError::DeadlineExceeded`] when the deadline passed in the
    /// queue, [`ServiceError::Shutdown`] when the service stopped before
    /// the request ran, [`ServiceError::WorkerLost`] when the serving
    /// worker vanished.
    pub fn wait(self) -> Result<BatchOutcome, ServiceError> {
        self.rx.recv().map_err(|_| ServiceError::WorkerLost)?
    }
}

/// Per-worker lifetime counters, returned by [`ReplayService::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// SKU name of the worker's shard.
    pub sku: &'static str,
    /// Worker index within the shard.
    pub worker: usize,
    /// Batches served (a lone request counts as a batch of 1).
    pub jobs: u64,
    /// Batch elements replayed across all jobs.
    pub elements: u64,
    /// Tickets answered with an error (worker survived them).
    pub errors: u64,
}

/// A queued submission: payload plus the channel its outcome goes to.
struct Pending {
    recording: usize,
    ios: Vec<ReplayIo>,
    reply: Sender<Result<BatchOutcome, ServiceError>>,
}

/// Shard state guarded by one mutex; two condvars signal on it
/// (`work_cv` wakes workers, `idle_cv` wakes `quiesce` callers).
struct ShardState {
    queue: EdfQueue<Pending>,
    closed: bool,
    paused: bool,
    /// Tickets currently being replayed by workers.
    in_flight: usize,
    /// Worker threads still serving; when this hits zero unexpectedly
    /// (panic), the shard closes and queued tickets are rejected.
    live_workers: usize,
    /// Set when the shard closed because its workers died rather than by
    /// an orderly shutdown.
    lost: bool,
    metrics: ShardMetrics,
}

struct ShardInner {
    sku: &'static str,
    max_batch: usize,
    clock: SimClock,
    /// When set (the default), workers advance the service clock to their
    /// machine's virtual timeline after every formed batch, so queued
    /// deadlines expire from replay progress without an external driver.
    auto_clock: bool,
    state: Mutex<ShardState>,
    work_cv: Condvar,
    idle_cv: Condvar,
}

impl ShardInner {
    /// Locks the state, recovering from a poisoned lock (a panicked
    /// worker must not wedge the whole service).
    fn lock(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct Shard {
    inner: Arc<ShardInner>,
    workers: Vec<JoinHandle<WorkerStats>>,
    machines: Vec<Machine>,
}

/// Builds a [`ReplayService`] shard by shard.
#[derive(Default)]
pub struct ReplayServiceBuilder {
    shards: Vec<ShardSpec>,
    manual_clock: bool,
}

impl ReplayServiceBuilder {
    /// Adds a shard.
    #[must_use]
    pub fn shard(mut self, spec: ShardSpec) -> ReplayServiceBuilder {
        self.shards.push(spec);
        self
    }

    /// Disables the replay-progress clock tick: the service clock then
    /// only moves when the caller advances it explicitly (see
    /// [`ReplayService::clock`]). By default workers advance the clock to
    /// their machine's virtual timeline after each formed batch.
    #[must_use]
    pub fn manual_clock(mut self) -> ReplayServiceBuilder {
        self.manual_clock = true;
        self
    }

    /// Spawns every shard's workers and blocks until each has acquired
    /// its GPU and loaded (verified) all recordings.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Startup`] when any worker fails to warm
    /// up; already-spawned workers are shut down first.
    pub fn spawn(self) -> Result<ReplayService, ServiceError> {
        let clock = SimClock::new();
        let mut shards: HashMap<&'static str, Shard> = HashMap::new();
        for spec in self.shards {
            if shards.contains_key(spec.sku.name) {
                // Silently replacing a shard would orphan its warmed
                // workers; make the misconfiguration loud instead.
                let err = ServiceError::DuplicateShard(spec.sku.name.to_string());
                ReplayService { clock, shards }.shutdown();
                return Err(err);
            }
            let inner = Arc::new(ShardInner {
                sku: spec.sku.name,
                max_batch: spec.max_batch,
                clock: clock.clone(),
                auto_clock: !self.manual_clock,
                state: Mutex::new(ShardState {
                    queue: EdfQueue::new(spec.queue_cap),
                    closed: false,
                    paused: false,
                    in_flight: 0,
                    live_workers: spec.workers,
                    lost: false,
                    metrics: ShardMetrics::default(),
                }),
                work_cv: Condvar::new(),
                idle_cv: Condvar::new(),
            });
            let blobs = Arc::new(spec.recordings.clone());
            let (ready_tx, ready_rx) = channel::<(usize, Result<Machine, ReplayError>)>();
            let mut workers = Vec::with_capacity(spec.workers);
            for w in 0..spec.workers {
                let inner = Arc::clone(&inner);
                let blobs = Arc::clone(&blobs);
                let ready = ready_tx.clone();
                let (sku, env, seed) = (spec.sku, spec.env, spec.seed + w as u64);
                let residency = spec.residency;
                workers.push(std::thread::spawn(move || {
                    worker_main(sku, env, seed, w, residency, &blobs, &inner, &ready)
                }));
            }
            drop(ready_tx);
            let mut machines: Vec<Option<Machine>> = vec![None; spec.workers];
            let mut startup_err = None;
            for _ in 0..spec.workers {
                match ready_rx.recv() {
                    Ok((w, Ok(machine))) => machines[w] = Some(machine),
                    Ok((_, Err(e))) => startup_err = Some(ServiceError::Startup(e)),
                    Err(_) => startup_err = Some(ServiceError::WorkerLost),
                }
            }
            let shard = Shard {
                inner,
                workers,
                machines: machines.into_iter().flatten().collect(),
            };
            if let Some(err) = startup_err {
                {
                    let mut st = shard.inner.lock();
                    st.closed = true;
                }
                shard.inner.work_cv.notify_all();
                for h in shard.workers {
                    let _ = h.join();
                }
                let service = ReplayService { clock, shards };
                service.shutdown();
                return Err(err);
            }
            shards.insert(spec.sku.name, shard);
        }
        Ok(ReplayService { clock, shards })
    }
}

/// Rejects every expired entry at the EDF head (deadline misses never
/// touch a warm machine), then pops the first live head and coalesces up
/// to `max_batch` consecutive compatible single-input submissions for
/// the same recording. The first incompatible head stops formation —
/// strict EDF order is never violated by skipping over an entry.
/// Returns `None` when the sweep drained the queue. Every deadline
/// comparison uses the single `now` the caller read under this lock
/// hold, and EDF pop order is nondecreasing in deadline, so once the
/// head survives the sweep no later entry of the same formation can be
/// expired.
fn form_batch(st: &mut ShardState, max_batch: usize, now: SimTime) -> Option<Vec<Pending>> {
    let head = loop {
        match st.queue.peek() {
            None => return None,
            Some((Some(d), _)) if d < now => {
                let (_, p) = st.queue.pop().expect("peeked entry");
                st.metrics.note_dequeue(p.recording);
                st.metrics.deadline_missed += 1;
                let _ = p.reply.send(Err(ServiceError::DeadlineExceeded));
            }
            Some(_) => {
                let (_, p) = st.queue.pop().expect("peeked entry");
                st.metrics.note_dequeue(p.recording);
                break p;
            }
        }
    };
    let mut batch = vec![head];
    if batch[0].ios.len() != 1 {
        return Some(batch); // an explicit multi-input job runs alone
    }
    while batch.len() < max_batch {
        let compatible = match st.queue.peek() {
            Some((_, next)) => next.recording == batch[0].recording && next.ios.len() == 1,
            None => false,
        };
        if !compatible {
            break;
        }
        let (deadline, p) = st.queue.pop().expect("peeked entry");
        debug_assert!(
            !deadline.is_some_and(|d| d < now),
            "EDF order: a follower cannot be expired when the head survived the sweep"
        );
        st.metrics.note_dequeue(p.recording);
        batch.push(p);
    }
    Some(batch)
}

/// Armed for the whole serving life of a worker thread; its `Drop` runs
/// on normal exit *and* on a panic anywhere in the serving loop, so a
/// dead worker can never strand the shard: any in-flight charge is
/// released, and when the last worker goes, the shard closes and every
/// queued ticket is answered with [`ServiceError::WorkerLost`] instead
/// of hanging its `wait()` forever.
struct WorkerGuard<'a> {
    inner: &'a ShardInner,
    /// Tickets currently charged to `in_flight` by this worker.
    charged: std::cell::Cell<usize>,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.inner.lock();
        // A non-zero charge here means a panic mid-batch: those tickets'
        // replies died with the worker (their wait() resolves WorkerLost
        // via the dropped channel), so account them as lost to keep the
        // submitted == resolved + depth + in_flight invariant true.
        st.in_flight -= self.charged.get();
        st.metrics.worker_lost += self.charged.get() as u64;
        st.live_workers -= 1;
        if st.live_workers == 0 && !st.closed {
            // Panic path: an orderly shutdown would have closed the shard
            // (and drained or rejected the queue) before workers exited.
            st.closed = true;
            st.lost = true;
            for (_, p) in st.queue.drain() {
                st.metrics.note_dequeue(p.recording);
                st.metrics.worker_lost += 1;
                let _ = p.reply.send(Err(ServiceError::WorkerLost));
            }
        }
        if st.queue.is_empty() && st.in_flight == 0 {
            self.inner.idle_cv.notify_all();
        }
    }
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn worker_main(
    sku: &'static GpuSku,
    env_kind: EnvKind,
    seed: u64,
    worker: usize,
    residency: bool,
    blobs: &[Vec<u8>],
    inner: &Arc<ShardInner>,
    ready: &Sender<(usize, Result<Machine, ReplayError>)>,
) -> WorkerStats {
    let mut stats = WorkerStats {
        sku: sku.name,
        worker,
        jobs: 0,
        elements: 0,
        errors: 0,
    };
    let machine = Machine::new(sku, seed);
    let env = match Environment::new(env_kind, machine.clone()) {
        Ok(env) => env,
        Err(e) => {
            let _ = ready.send((worker, Err(e)));
            return stats;
        }
    };
    let mut replayer = Replayer::new(env);
    replayer.set_residency(residency);
    for blob in blobs {
        if let Err(e) = replayer.load_bytes(blob) {
            let _ = ready.send((worker, Err(e)));
            return stats;
        }
    }
    let _ = ready.send((worker, Ok(machine.clone())));
    let guard = WorkerGuard {
        inner,
        charged: std::cell::Cell::new(0),
    };

    loop {
        // Dequeue under the shard lock; replay runs unlocked so shard
        // workers serve in parallel on their own machines.
        let batch = {
            let mut st = inner.lock();
            loop {
                // One clock read per wake-up: the expiry sweep inside
                // form_batch and the formation itself must agree on "now"
                // (deadline-aware dequeue — expired work is rejected here,
                // before any warm machine is involved).
                let now = inner.clock.now();
                if !st.paused {
                    if let Some(batch) = form_batch(&mut st, inner.max_batch, now) {
                        st.in_flight += batch.len();
                        guard.charged.set(batch.len());
                        break batch;
                    }
                }
                if st.queue.is_empty() && st.in_flight == 0 {
                    inner.idle_cv.notify_all();
                }
                if st.closed && !st.paused && st.queue.is_empty() {
                    drop(st);
                    replayer.cleanup();
                    return stats;
                }
                st = inner.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };

        stats.jobs += 1;
        let recording = batch[0].recording;
        let (tickets, retries, completed, faulted, prologue_skipped) =
            run_formed_batch(&mut replayer, recording, batch, worker, &mut stats);

        // Replay-progress clock tick: deadlines expire from the worker
        // machines' virtual timelines, no external driver needed. The
        // service clock is monotonic (`advance_to`), so manual advances
        // and multiple workers compose as "max of all timelines".
        if inner.auto_clock {
            inner.clock.advance_to(machine.now());
        }

        let mut st = inner.lock();
        st.in_flight -= tickets;
        guard.charged.set(0);
        st.metrics.record_batch(tickets);
        st.metrics.retries += u64::from(retries);
        st.metrics.completed += completed;
        st.metrics.faults += faulted;
        st.metrics.prologue_skipped += prologue_skipped;
        if st.queue.is_empty() && st.in_flight == 0 {
            inner.idle_cv.notify_all();
        }
    }
}

/// Runs one formed batch through the fault-isolating batch replay and
/// demuxes outputs and errors back to the individual tickets. Returns
/// `(tickets, retries, completed, faulted, prologue_skipped)`.
fn run_formed_batch(
    replayer: &mut Replayer,
    recording: usize,
    mut batch: Vec<Pending>,
    worker: usize,
    stats: &mut WorkerStats,
) -> (usize, u32, u64, u64, u64) {
    let tickets = batch.len();
    let mut spans = Vec::with_capacity(batch.len());
    let mut all_ios: Vec<ReplayIo> = Vec::new();
    for p in &mut batch {
        spans.push(p.ios.len());
        all_ios.append(&mut p.ios);
    }

    match replayer.replay_batch_isolated(recording, &mut all_ios) {
        Ok(IsolatedBatchReport { report, errors }) => {
            stats.elements += report.elements as u64;
            let mut completed = 0u64;
            let mut faulted = 0u64;
            let mut errs = errors.into_iter().peekable();
            let mut drained = all_ios.into_iter();
            let mut base = 0usize;
            for (p, n) in batch.into_iter().zip(spans) {
                let ios: Vec<ReplayIo> = drained.by_ref().take(n).collect();
                // First error attributed to this ticket's element span, if
                // any (later ones in the same span are subsumed).
                let mut first_err = None;
                while let Some((k, _)) = errs.peek() {
                    if *k >= base + n {
                        break;
                    }
                    let (_, e) = errs.next().expect("peeked error");
                    first_err.get_or_insert(e);
                }
                base += n;
                if let Some(e) = first_err {
                    faulted += 1;
                    stats.errors += 1;
                    let _ = p.reply.send(Err(ServiceError::Replay(e)));
                } else {
                    completed += 1;
                    let _ = p.reply.send(Ok(BatchOutcome {
                        ios,
                        report: report.clone(),
                        worker,
                    }));
                }
            }
            (
                tickets,
                report.retries,
                completed,
                faulted,
                report.prologue_skipped as u64,
            )
        }
        Err(e) => {
            // Batch-scoped failure: every ticket is answered with the
            // error; the warm machine re-runs its recorded reset prologue
            // on the next batch, so the worker keeps serving.
            stats.errors += tickets as u64;
            for p in batch {
                let _ = p.reply.send(Err(ServiceError::Replay(e.clone())));
            }
            (tickets, 0, 0, tickets as u64, 0)
        }
    }
}

/// The running service: sharded warm machines behind bounded EDF queues.
pub struct ReplayService {
    clock: SimClock,
    shards: HashMap<&'static str, Shard>,
}

impl std::fmt::Debug for ReplayService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.shards.keys().copied().collect();
        names.sort_unstable();
        f.debug_struct("ReplayService")
            .field("shards", &names)
            .finish()
    }
}

impl ReplayService {
    /// Starts building a service.
    pub fn builder() -> ReplayServiceBuilder {
        ReplayServiceBuilder::default()
    }

    /// SKU names with a live shard.
    pub fn skus(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.shards.keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// The service's virtual clock: deadlines are instants on this
    /// timeline. The clock only moves when something advances it — a
    /// deployment would tick it from wall time; deterministic tests
    /// advance it explicitly. It is deliberately distinct from the worker
    /// machines' timelines (which measure modeled replay cost).
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Handles to every warm worker machine of shard `sku` (worker
    /// order). Ops/test hook: lets callers inject faults or read the
    /// machines' virtual clocks without reaching into worker threads.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSku`] when no shard serves `sku`.
    pub fn machines(&self, sku: &str) -> Result<Vec<Machine>, ServiceError> {
        self.shards
            .get(sku)
            .map(|s| s.machines.clone())
            .ok_or_else(|| ServiceError::UnknownSku(sku.to_string()))
    }

    /// Point-in-time scheduler metrics for every shard, sorted by SKU.
    pub fn stats(&self) -> ServiceStats {
        let mut shards: Vec<ShardStats> = self
            .shards
            .values()
            .map(|shard| {
                let st = shard.inner.lock();
                st.metrics.snapshot(
                    shard.inner.sku,
                    st.queue.len(),
                    st.queue.cap(),
                    st.in_flight,
                )
            })
            .collect();
        shards.sort_by_key(|s| s.sku);
        ServiceStats { shards }
    }

    /// Enqueues a job with no deadline: replay `recording` for every
    /// element of `ios` on shard `sku`.
    ///
    /// # Errors
    ///
    /// As [`ReplayService::submit_request`].
    pub fn submit(
        &self,
        sku: &str,
        recording: usize,
        ios: Vec<ReplayIo>,
    ) -> Result<Ticket, ServiceError> {
        self.submit_request(sku, ReplayRequest::new(recording, ios))
    }

    /// Admits `req` to shard `sku`'s bounded EDF queue.
    ///
    /// # Errors
    ///
    /// Synchronous rejections: [`ServiceError::UnknownSku`],
    /// [`ServiceError::QueueFull`] (bounded admission),
    /// [`ServiceError::DeadlineExceeded`] (deadline already passed),
    /// [`ServiceError::Shutdown`]. Replay and validation failures surface
    /// on the ticket instead, leaving the worker alive.
    pub fn submit_request(&self, sku: &str, req: ReplayRequest) -> Result<Ticket, ServiceError> {
        let shard = self
            .shards
            .get(sku)
            .ok_or_else(|| ServiceError::UnknownSku(sku.to_string()))?;
        let mut st = shard.inner.lock();
        if st.closed {
            // Closed by shutdown, or because every worker died.
            return Err(if st.lost {
                ServiceError::WorkerLost
            } else {
                ServiceError::Shutdown
            });
        }
        st.metrics.submitted += 1;
        if let Some(d) = req.deadline {
            if d < shard.inner.clock.now() {
                st.metrics.rejected_expired += 1;
                return Err(ServiceError::DeadlineExceeded);
            }
        }
        let (reply, rx) = channel();
        let recording = req.recording;
        let pending = Pending {
            recording,
            ios: req.ios,
            reply,
        };
        if st.queue.try_push(req.deadline, pending).is_err() {
            st.metrics.rejected_full += 1;
            return Err(ServiceError::QueueFull {
                sku: sku.to_string(),
                cap: st.queue.cap(),
            });
        }
        st.metrics.note_admit(recording);
        drop(st);
        shard.inner.work_cv.notify_one();
        Ok(Ticket { rx })
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// As [`ReplayService::submit`] and [`Ticket::wait`].
    pub fn run(
        &self,
        sku: &str,
        recording: usize,
        ios: Vec<ReplayIo>,
    ) -> Result<BatchOutcome, ServiceError> {
        self.submit(sku, recording, ios)?.wait()
    }

    /// Stops every shard's workers from dequeuing (already-running
    /// batches finish). Submissions are still admitted while paused —
    /// this is how deterministic tests build up a known queue state, and
    /// how an operator drains traffic before maintenance.
    pub fn pause(&self) {
        for shard in self.shards.values() {
            shard.inner.lock().paused = true;
        }
    }

    /// Resumes dequeuing after [`ReplayService::pause`].
    pub fn resume(&self) {
        for shard in self.shards.values() {
            shard.inner.lock().paused = false;
            shard.inner.work_cv.notify_all();
        }
    }

    /// Blocks until every shard's queue is empty and no batch is in
    /// flight. Call [`ReplayService::resume`] first if the service is
    /// paused with work queued, or this waits forever.
    pub fn quiesce(&self) {
        for shard in self.shards.values() {
            let mut st = shard.inner.lock();
            while !(st.queue.is_empty() && st.in_flight == 0) {
                st = shard
                    .inner
                    .idle_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Graceful shutdown: stops admitting, **drains** every queued ticket
    /// (deadline checks still apply to queued work), joins every worker,
    /// and returns their lifetime stats (sorted by SKU then worker index).
    pub fn shutdown(self) -> Vec<WorkerStats> {
        self.shutdown_impl(true)
    }

    /// Immediate shutdown: stops admitting, **rejects** every queued
    /// ticket with [`ServiceError::Shutdown`] (their `wait()` returns the
    /// error — never hangs), lets in-flight batches finish, joins every
    /// worker, and returns their lifetime stats.
    pub fn shutdown_now(self) -> Vec<WorkerStats> {
        self.shutdown_impl(false)
    }

    fn shutdown_impl(mut self, drain: bool) -> Vec<WorkerStats> {
        let mut stats = Vec::new();
        for (_, shard) in std::mem::take(&mut self.shards) {
            {
                let mut st = shard.inner.lock();
                st.closed = true;
                st.paused = false; // a paused shard must still terminate
                if !drain {
                    for (_, p) in st.queue.drain() {
                        st.metrics.note_dequeue(p.recording);
                        st.metrics.shutdown_rejected += 1;
                        let _ = p.reply.send(Err(ServiceError::Shutdown));
                    }
                }
            }
            shard.inner.work_cv.notify_all();
            for handle in shard.workers {
                if let Ok(s) = handle.join() {
                    stats.push(s);
                }
            }
        }
        stats.sort_by(|a, b| (a.sku, a.worker).cmp(&(b.sku, b.worker)));
        stats
    }
}

impl Drop for ReplayService {
    /// Dropping the service without [`ReplayService::shutdown`] (early
    /// return, caller panic) must not strand the shards: close every
    /// queue, reject what is still queued so no `Ticket::wait` hangs, and
    /// wake the workers so they exit and release their warm machines.
    /// Unlike `shutdown`, this never blocks — the worker threads detach
    /// and finish on their own.
    fn drop(&mut self) {
        for shard in self.shards.values() {
            {
                let mut st = shard.inner.lock();
                st.closed = true;
                st.paused = false;
                for (_, p) in st.queue.drain() {
                    st.metrics.note_dequeue(p.recording);
                    st.metrics.shutdown_rejected += 1;
                    let _ = p.reply.send(Err(ServiceError::Shutdown));
                }
            }
            shard.inner.work_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_mlfw::cpu_ref;
    use gr_mlfw::fusion::Granularity;
    use gr_mlfw::models;
    use gr_recorder::RecordHarness;
    use gr_recording::Recording;
    use gr_sim::{SimDuration, SimRng};

    fn random_input(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| rng.unit_f64() as f32).collect()
    }

    fn record_mnist(sku: &'static GpuSku, seed: u64) -> (Vec<u8>, gr_mlfw::exec::GpuNetwork) {
        let dev = Machine::new(sku, seed);
        let mut harness = RecordHarness::new(dev).unwrap();
        let recs = harness
            .record_inference(&models::mnist(), Granularity::WholeNn, seed)
            .unwrap();
        let bytes = recs.recordings[0].to_bytes();
        harness.finish();
        (bytes, recs.net)
    }

    fn io_for(blob: &[u8], input: &[f32]) -> ReplayIo {
        let rec = Recording::from_bytes(blob).unwrap();
        let mut io = ReplayIo::for_recording(&rec);
        io.set_input_f32(0, input).unwrap();
        io
    }

    #[test]
    fn sharded_service_replays_batches_on_both_skus() {
        let (mali_blob, mali_net) = record_mnist(&gr_gpu::sku::MALI_G71, 41);
        let (v3d_blob, v3d_net) = record_mnist(&gr_gpu::sku::V3D_RPI4, 43);
        let service = ReplayService::builder()
            .shard(
                ShardSpec::new(
                    &gr_gpu::sku::MALI_G71,
                    EnvKind::UserLevel,
                    vec![mali_blob.clone()],
                )
                .workers(2),
            )
            .shard(ShardSpec::new(
                &gr_gpu::sku::V3D_RPI4,
                EnvKind::KernelLevel,
                vec![v3d_blob.clone()],
            ))
            .spawn()
            .unwrap();
        assert_eq!(service.skus(), vec!["G71", "v3d"]);
        assert_eq!(service.machines("G71").unwrap().len(), 2);
        assert_eq!(service.machines("v3d").unwrap().len(), 1);

        // Queue jobs on both shards before collecting any result.
        let mut tickets = Vec::new();
        let mut expected = Vec::new();
        for seed in 0..6u64 {
            let (sku, blob, net) = if seed % 2 == 0 {
                ("G71", &mali_blob, &mali_net)
            } else {
                ("v3d", &v3d_blob, &v3d_net)
            };
            let inputs: Vec<Vec<f32>> = (0..3)
                .map(|k| random_input(net.input_len(), 100 + seed * 10 + k))
                .collect();
            let ios: Vec<ReplayIo> = inputs.iter().map(|i| io_for(blob, i)).collect();
            tickets.push(service.submit(sku, 0, ios).unwrap());
            expected.push(
                inputs
                    .iter()
                    .map(|i| cpu_ref::cpu_infer(net, i))
                    .collect::<Vec<_>>(),
            );
        }
        for (ticket, want) in tickets.into_iter().zip(expected) {
            let outcome = ticket.wait().unwrap();
            assert!(outcome.report.amortized, "MNIST recording must batch");
            assert_eq!(outcome.ios.len(), want.len());
            for (io, w) in outcome.ios.iter().zip(&want) {
                assert_eq!(io.output_f32(0).unwrap(), *w, "bit-exact batch output");
            }
        }
        let snapshot = service.stats();
        assert_eq!(snapshot.shards.len(), 2);
        for shard in &snapshot.shards {
            assert!(shard.is_consistent(), "{shard:?}");
            // Consecutive batches of the same recording on a warm worker
            // elide prologue work; the stats must surface it.
            assert!(
                shard.prologue_skipped > 0,
                "warm residency must elide prologue actions: {shard:?}"
            );
            // Per-recording lanes balance: everything admitted for
            // recording 0 was dequeued by the drain.
            assert_eq!(shard.per_recording.len(), 1);
            assert_eq!(shard.per_recording[0].recording, 0);
            assert_eq!(shard.per_recording[0].queued, 0);
            assert_eq!(shard.per_recording[0].dequeued, 3);
        }
        let stats = service.shutdown();
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 6);
        assert_eq!(stats.iter().map(|s| s.elements).sum::<u64>(), 18);
        assert_eq!(stats.iter().map(|s| s.errors).sum::<u64>(), 0);
    }

    #[test]
    fn malformed_requests_do_not_kill_workers() {
        let (blob, net) = record_mnist(&gr_gpu::sku::MALI_G71, 47);
        let service = ReplayService::builder()
            .shard(ShardSpec::new(
                &gr_gpu::sku::MALI_G71,
                EnvKind::UserLevel,
                vec![blob.clone()],
            ))
            .spawn()
            .unwrap();

        // Wrong input byte size.
        let rec = Recording::from_bytes(&blob).unwrap();
        let mut bad = ReplayIo::for_recording(&rec);
        bad.inputs[0] = vec![0u8; 3];
        let err = service.run("G71", 0, vec![bad]).unwrap_err();
        assert!(
            matches!(err, ServiceError::Replay(ReplayError::Io(_))),
            "{err}"
        );

        // Unknown recording id.
        let io = io_for(&blob, &random_input(net.input_len(), 1));
        let err = service.run("G71", 7, vec![io]).unwrap_err();
        assert!(
            matches!(err, ServiceError::Replay(ReplayError::BadRecording(7))),
            "{err}"
        );

        // Empty batch.
        let err = service.run("G71", 0, vec![]).unwrap_err();
        assert!(
            matches!(err, ServiceError::Replay(ReplayError::Io(_))),
            "{err}"
        );

        // Unknown SKU is a submit-side error.
        assert!(matches!(
            service.submit("adreno", 0, vec![]),
            Err(ServiceError::UnknownSku(_))
        ));

        // The same worker still serves a well-formed request afterwards.
        let input = random_input(net.input_len(), 9);
        let outcome = service.run("G71", 0, vec![io_for(&blob, &input)]).unwrap();
        assert_eq!(
            outcome.ios[0].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&net, &input)
        );
        let snapshot = service.stats();
        let shard = snapshot.shard("G71").unwrap();
        assert_eq!(shard.faults, 3);
        assert_eq!(shard.completed, 1);
        assert!(shard.is_consistent(), "{shard:?}");
        let stats = service.shutdown();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].errors, 3);
        assert_eq!(stats[0].jobs, 4);
    }

    #[test]
    fn duplicate_shards_are_rejected_at_spawn() {
        let (blob, _) = record_mnist(&gr_gpu::sku::MALI_G71, 53);
        let err = ReplayService::builder()
            .shard(ShardSpec::new(
                &gr_gpu::sku::MALI_G71,
                EnvKind::UserLevel,
                vec![blob.clone()],
            ))
            .shard(ShardSpec::new(
                &gr_gpu::sku::MALI_G71,
                EnvKind::UserLevel,
                vec![blob],
            ))
            .spawn()
            .unwrap_err();
        assert!(matches!(err, ServiceError::DuplicateShard(_)), "{err}");
    }

    #[test]
    fn startup_failure_surfaces_at_spawn() {
        // A recording for the wrong family fails each worker's load.
        let (blob, _) = record_mnist(&gr_gpu::sku::MALI_G71, 51);
        let err = ReplayService::builder()
            .shard(ShardSpec::new(
                &gr_gpu::sku::V3D_RPI4,
                EnvKind::KernelLevel,
                vec![blob],
            ))
            .spawn()
            .unwrap_err();
        assert!(matches!(err, ServiceError::Startup(_)), "{err}");
    }

    #[test]
    fn paused_queue_rejects_past_capacity_and_drains_on_resume() {
        let (blob, net) = record_mnist(&gr_gpu::sku::MALI_G71, 57);
        let service = ReplayService::builder()
            .shard(
                ShardSpec::new(
                    &gr_gpu::sku::MALI_G71,
                    EnvKind::UserLevel,
                    vec![blob.clone()],
                )
                .queue_cap(3)
                .max_batch(4),
            )
            .spawn()
            .unwrap();
        service.pause();
        let input = random_input(net.input_len(), 11);
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(service.run_ticket(&blob, &input));
        }
        // Queue is at capacity: the 4th submission is rejected loudly.
        let err = service
            .submit_request("G71", ReplayRequest::single(0, io_for(&blob, &input)))
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::QueueFull { cap: 3, .. }),
            "{err}"
        );
        assert_eq!(service.stats().shard("G71").unwrap().depth, 3);

        service.resume();
        service.quiesce();
        let want = cpu_ref::cpu_infer(&net, &input);
        for t in tickets {
            let outcome = t.wait().unwrap();
            assert_eq!(outcome.ios[0].output_f32(0).unwrap(), want);
            // All three coalesced into one warm batch.
            assert_eq!(outcome.report.elements, 3);
        }
        let snapshot = service.stats();
        let shard = snapshot.shard("G71").unwrap();
        assert_eq!(shard.rejected_full, 1);
        assert_eq!(shard.batch_sizes, vec![0, 0, 1]);
        assert!(shard.is_consistent(), "{shard:?}");
        service.shutdown();
    }

    #[test]
    fn deadlines_reject_at_admission_and_dequeue() {
        let (blob, net) = record_mnist(&gr_gpu::sku::MALI_G71, 59);
        let service = ReplayService::builder()
            .shard(ShardSpec::new(
                &gr_gpu::sku::MALI_G71,
                EnvKind::UserLevel,
                vec![blob.clone()],
            ))
            .spawn()
            .unwrap();
        let clock = service.clock();
        clock.advance(SimDuration::from_millis(10));
        let input = random_input(net.input_len(), 13);

        // Already expired: rejected synchronously, never queued.
        let err = service
            .submit_request(
                "G71",
                ReplayRequest::single(0, io_for(&blob, &input))
                    .deadline(gr_sim::SimTime::from_nanos(1)),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::DeadlineExceeded), "{err}");

        // Expires while queued (service paused): rejected at dequeue.
        service.pause();
        let doomed = service
            .submit_request(
                "G71",
                ReplayRequest::single(0, io_for(&blob, &input))
                    .deadline(clock.now() + SimDuration::from_millis(1)),
            )
            .unwrap();
        let alive = service
            .submit_request(
                "G71",
                ReplayRequest::single(0, io_for(&blob, &input))
                    .deadline(clock.now() + SimDuration::from_secs(5)),
            )
            .unwrap();
        clock.advance(SimDuration::from_millis(2));
        service.resume();
        service.quiesce();
        assert!(matches!(
            doomed.wait().unwrap_err(),
            ServiceError::DeadlineExceeded
        ));
        let outcome = alive.wait().unwrap();
        assert_eq!(
            outcome.ios[0].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&net, &input)
        );
        let snapshot = service.stats();
        let shard = snapshot.shard("G71").unwrap();
        assert_eq!(shard.rejected_expired, 1);
        assert_eq!(shard.deadline_missed, 1);
        assert_eq!(shard.completed, 1);
        assert!(shard.is_consistent(), "{shard:?}");
        service.shutdown();
    }

    impl ReplayService {
        /// Test helper: submit one single-input MNIST request.
        fn run_ticket(&self, blob: &[u8], input: &[f32]) -> Ticket {
            self.submit_request("G71", ReplayRequest::single(0, io_for(blob, input)))
                .unwrap()
        }
    }
}
