//! The replay service: long-lived, multi-tenant replay behind a
//! submission queue.
//!
//! The paper's replayer is single-shot: init, load, replay, cleanup. A
//! client serving inference traffic wants the opposite shape — machines
//! that stay warm (page tables built, dumps uploaded, registers
//! configured) while requests stream in. This crate provides that shape:
//!
//! * one **shard** per GPU SKU, each with its own submission queue;
//! * N **worker threads** per shard, each owning a warm [`Machine`] +
//!   [`Replayer`] with every recording pre-loaded and verified;
//! * **batched execution**: a job carries one or more [`ReplayIo`]s and
//!   runs through [`Replayer::replay_batch`], so the reset/upload/remap
//!   prologue is paid once per job instead of once per input;
//! * **fault isolation**: a malformed request (wrong slot count, wrong
//!   byte sizes, bad recording id) is answered with an error on the
//!   ticket — the worker and its warm state survive, and §5.4 recovery
//!   inside a batch re-warms the machine without poisoning later
//!   elements.
//!
//! ```no_run
//! use gr_service::{ReplayService, ShardSpec};
//! use gr_replayer::{EnvKind, ReplayIo};
//! use gr_gpu::sku;
//!
//! # fn demo(blob: Vec<u8>, ios: Vec<ReplayIo>) -> Result<(), gr_service::ServiceError> {
//! let service = ReplayService::builder()
//!     .shard(ShardSpec::new(&sku::MALI_G71, EnvKind::UserLevel, vec![blob]).workers(2))
//!     .spawn()?;
//! let ticket = service.submit("G71", 0, ios)?;
//! let outcome = ticket.wait()?;
//! println!("batch of {} on worker {}", outcome.report.elements, outcome.worker);
//! service.shutdown();
//! # Ok(()) }
//! ```

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use gr_gpu::{GpuSku, Machine};
use gr_replayer::{BatchReport, EnvKind, Environment, ReplayError, ReplayIo, Replayer};

/// Why a service call failed.
#[derive(Debug)]
pub enum ServiceError {
    /// No shard serves this SKU name.
    UnknownSku(String),
    /// Two shards were configured for the same SKU name.
    DuplicateShard(String),
    /// The shard's workers are gone (shutdown raced or a thread died).
    WorkerLost,
    /// A worker failed to warm up at spawn time.
    Startup(ReplayError),
    /// The replay itself failed; the worker survived and keeps serving.
    Replay(ReplayError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSku(name) => write!(f, "no shard for SKU '{name}'"),
            ServiceError::DuplicateShard(name) => {
                write!(f, "more than one shard configured for SKU '{name}'")
            }
            ServiceError::WorkerLost => write!(f, "shard workers are gone"),
            ServiceError::Startup(e) => write!(f, "worker warm-up failed: {e}"),
            ServiceError::Replay(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One shard to build: a SKU, a deployment environment, the recordings
/// every worker pre-loads, and the worker count.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// GPU SKU the shard's machines model.
    pub sku: &'static GpuSku,
    /// Deployment environment of each worker's replayer (§6.3).
    pub env: EnvKind,
    /// Serialized recordings, loaded (and verified) by every worker in
    /// order; job `recording` indices refer to this order.
    pub recordings: Vec<Vec<u8>>,
    /// Worker threads (warm machines) in the shard.
    pub workers: usize,
    /// Base machine seed; worker `i` gets `seed + i` so shards exercise
    /// different hardware timing jitter while outputs stay bit-exact.
    pub seed: u64,
}

impl ShardSpec {
    /// A one-worker shard with default seed.
    pub fn new(sku: &'static GpuSku, env: EnvKind, recordings: Vec<Vec<u8>>) -> ShardSpec {
        ShardSpec {
            sku,
            env,
            recordings,
            workers: 1,
            seed: 1,
        }
    }

    /// Sets the worker count (minimum 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> ShardSpec {
        self.workers = n.max(1);
        self
    }

    /// Sets the base machine seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> ShardSpec {
        self.seed = seed;
        self
    }
}

/// Everything a finished job hands back.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The request's IO blocks, outputs filled.
    pub ios: Vec<ReplayIo>,
    /// The batch report from [`Replayer::replay_batch`].
    pub report: BatchReport,
    /// Index of the worker (within its shard) that served the job.
    pub worker: usize,
}

/// A pending job: redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<BatchOutcome, ReplayError>>,
}

impl Ticket {
    /// Blocks until the job finishes.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Replay`] when the replay failed,
    /// [`ServiceError::WorkerLost`] when the serving worker vanished.
    pub fn wait(self) -> Result<BatchOutcome, ServiceError> {
        self.rx
            .recv()
            .map_err(|_| ServiceError::WorkerLost)?
            .map_err(ServiceError::Replay)
    }
}

/// Per-worker lifetime counters, returned by [`ReplayService::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// SKU name of the worker's shard.
    pub sku: &'static str,
    /// Worker index within the shard.
    pub worker: usize,
    /// Jobs served (each job is one submit, possibly a batch).
    pub jobs: u64,
    /// Batch elements replayed across all jobs.
    pub elements: u64,
    /// Jobs answered with an error (worker survived them).
    pub errors: u64,
}

struct Job {
    recording: usize,
    ios: Vec<ReplayIo>,
    reply: Sender<Result<BatchOutcome, ReplayError>>,
}

struct Shard {
    tx: Sender<Job>,
    workers: Vec<JoinHandle<WorkerStats>>,
}

/// Builds a [`ReplayService`] shard by shard.
#[derive(Default)]
pub struct ReplayServiceBuilder {
    shards: Vec<ShardSpec>,
}

impl ReplayServiceBuilder {
    /// Adds a shard.
    #[must_use]
    pub fn shard(mut self, spec: ShardSpec) -> ReplayServiceBuilder {
        self.shards.push(spec);
        self
    }

    /// Spawns every shard's workers and blocks until each has acquired
    /// its GPU and loaded (verified) all recordings.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Startup`] when any worker fails to warm
    /// up; already-spawned workers are shut down first.
    pub fn spawn(self) -> Result<ReplayService, ServiceError> {
        let mut shards: HashMap<&'static str, Shard> = HashMap::new();
        for spec in self.shards {
            if shards.contains_key(spec.sku.name) {
                // Silently replacing a shard would orphan its warmed
                // workers; make the misconfiguration loud instead.
                let err = ServiceError::DuplicateShard(spec.sku.name.to_string());
                ReplayService { shards }.shutdown();
                return Err(err);
            }
            let (tx, rx) = channel::<Job>();
            let rx = Arc::new(Mutex::new(rx));
            let blobs = Arc::new(spec.recordings.clone());
            let (ready_tx, ready_rx) = channel::<Result<(), ReplayError>>();
            let mut workers = Vec::with_capacity(spec.workers);
            for w in 0..spec.workers {
                let rx = Arc::clone(&rx);
                let blobs = Arc::clone(&blobs);
                let ready = ready_tx.clone();
                let (sku, env, seed) = (spec.sku, spec.env, spec.seed + w as u64);
                workers.push(std::thread::spawn(move || {
                    worker_main(sku, env, seed, w, &blobs, &rx, &ready)
                }));
            }
            drop(ready_tx);
            let mut startup_err = None;
            for _ in 0..spec.workers {
                match ready_rx.recv() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => startup_err = Some(ServiceError::Startup(e)),
                    Err(_) => startup_err = Some(ServiceError::WorkerLost),
                }
            }
            let shard = Shard { tx, workers };
            if let Some(err) = startup_err {
                drop(shard.tx);
                for h in shard.workers {
                    let _ = h.join();
                }
                let service = ReplayService { shards };
                service.shutdown();
                return Err(err);
            }
            shards.insert(spec.sku.name, shard);
        }
        Ok(ReplayService { shards })
    }
}

fn worker_main(
    sku: &'static GpuSku,
    env_kind: EnvKind,
    seed: u64,
    worker: usize,
    blobs: &[Vec<u8>],
    jobs: &Mutex<Receiver<Job>>,
    ready: &Sender<Result<(), ReplayError>>,
) -> WorkerStats {
    let mut stats = WorkerStats {
        sku: sku.name,
        worker,
        jobs: 0,
        elements: 0,
        errors: 0,
    };
    let machine = Machine::new(sku, seed);
    let env = match Environment::new(env_kind, machine) {
        Ok(env) => env,
        Err(e) => {
            let _ = ready.send(Err(e));
            return stats;
        }
    };
    let mut replayer = Replayer::new(env);
    for blob in blobs {
        if let Err(e) = replayer.load_bytes(blob) {
            let _ = ready.send(Err(e));
            return stats;
        }
    }
    let _ = ready.send(Ok(()));

    loop {
        // Take the queue lock only to dequeue; processing runs unlocked so
        // shard workers replay in parallel.
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => break,
        };
        let Ok(mut job) = job else {
            break; // all senders gone: shutdown
        };
        stats.jobs += 1;
        match replayer.replay_batch(job.recording, &mut job.ios) {
            Ok(report) => {
                stats.elements += report.elements as u64;
                let _ = job.reply.send(Ok(BatchOutcome {
                    ios: job.ios,
                    report,
                    worker,
                }));
            }
            Err(e) => {
                // The request was bad or the replay failed terminally;
                // the warm machine re-runs its recorded reset prologue on
                // the next job, so the worker keeps serving.
                stats.errors += 1;
                let _ = job.reply.send(Err(e));
            }
        }
    }
    replayer.cleanup();
    stats
}

/// The running service: sharded warm machines behind submission queues.
pub struct ReplayService {
    shards: HashMap<&'static str, Shard>,
}

impl std::fmt::Debug for ReplayService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.shards.keys().copied().collect();
        names.sort_unstable();
        f.debug_struct("ReplayService")
            .field("shards", &names)
            .finish()
    }
}

impl ReplayService {
    /// Starts building a service.
    pub fn builder() -> ReplayServiceBuilder {
        ReplayServiceBuilder::default()
    }

    /// SKU names with a live shard.
    pub fn skus(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.shards.keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// Enqueues a job: replay `recording` for every element of `ios` on
    /// shard `sku` (one element is a plain replay; more form a batch that
    /// amortizes the warm-machine prologue).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSku`] / [`ServiceError::WorkerLost`]; replay
    /// and validation failures surface on the ticket instead, leaving the
    /// worker alive.
    pub fn submit(
        &self,
        sku: &str,
        recording: usize,
        ios: Vec<ReplayIo>,
    ) -> Result<Ticket, ServiceError> {
        let shard = self
            .shards
            .get(sku)
            .ok_or_else(|| ServiceError::UnknownSku(sku.to_string()))?;
        let (reply, rx) = channel();
        shard
            .tx
            .send(Job {
                recording,
                ios,
                reply,
            })
            .map_err(|_| ServiceError::WorkerLost)?;
        Ok(Ticket { rx })
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// As [`ReplayService::submit`] and [`Ticket::wait`].
    pub fn run(
        &self,
        sku: &str,
        recording: usize,
        ios: Vec<ReplayIo>,
    ) -> Result<BatchOutcome, ServiceError> {
        self.submit(sku, recording, ios)?.wait()
    }

    /// Stops accepting jobs, drains the queues, joins every worker, and
    /// returns their lifetime stats (sorted by SKU then worker index).
    pub fn shutdown(self) -> Vec<WorkerStats> {
        let mut stats = Vec::new();
        for (_, shard) in self.shards {
            drop(shard.tx);
            for handle in shard.workers {
                if let Ok(s) = handle.join() {
                    stats.push(s);
                }
            }
        }
        stats.sort_by(|a, b| (a.sku, a.worker).cmp(&(b.sku, b.worker)));
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_mlfw::cpu_ref;
    use gr_mlfw::fusion::Granularity;
    use gr_mlfw::models;
    use gr_recorder::RecordHarness;
    use gr_recording::Recording;
    use gr_sim::SimRng;

    fn random_input(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| rng.unit_f64() as f32).collect()
    }

    fn record_mnist(sku: &'static GpuSku, seed: u64) -> (Vec<u8>, gr_mlfw::exec::GpuNetwork) {
        let dev = Machine::new(sku, seed);
        let mut harness = RecordHarness::new(dev).unwrap();
        let recs = harness
            .record_inference(&models::mnist(), Granularity::WholeNn, seed)
            .unwrap();
        let bytes = recs.recordings[0].to_bytes();
        harness.finish();
        (bytes, recs.net)
    }

    fn io_for(blob: &[u8], input: &[f32]) -> ReplayIo {
        let rec = Recording::from_bytes(blob).unwrap();
        let mut io = ReplayIo::for_recording(&rec);
        io.set_input_f32(0, input).unwrap();
        io
    }

    #[test]
    fn sharded_service_replays_batches_on_both_skus() {
        let (mali_blob, mali_net) = record_mnist(&gr_gpu::sku::MALI_G71, 41);
        let (v3d_blob, v3d_net) = record_mnist(&gr_gpu::sku::V3D_RPI4, 43);
        let service = ReplayService::builder()
            .shard(
                ShardSpec::new(
                    &gr_gpu::sku::MALI_G71,
                    EnvKind::UserLevel,
                    vec![mali_blob.clone()],
                )
                .workers(2),
            )
            .shard(ShardSpec::new(
                &gr_gpu::sku::V3D_RPI4,
                EnvKind::KernelLevel,
                vec![v3d_blob.clone()],
            ))
            .spawn()
            .unwrap();
        assert_eq!(service.skus(), vec!["G71", "v3d"]);

        // Queue jobs on both shards before collecting any result.
        let mut tickets = Vec::new();
        let mut expected = Vec::new();
        for seed in 0..6u64 {
            let (sku, blob, net) = if seed % 2 == 0 {
                ("G71", &mali_blob, &mali_net)
            } else {
                ("v3d", &v3d_blob, &v3d_net)
            };
            let inputs: Vec<Vec<f32>> = (0..3)
                .map(|k| random_input(net.input_len(), 100 + seed * 10 + k))
                .collect();
            let ios: Vec<ReplayIo> = inputs.iter().map(|i| io_for(blob, i)).collect();
            tickets.push(service.submit(sku, 0, ios).unwrap());
            expected.push(
                inputs
                    .iter()
                    .map(|i| cpu_ref::cpu_infer(net, i))
                    .collect::<Vec<_>>(),
            );
        }
        for (ticket, want) in tickets.into_iter().zip(expected) {
            let outcome = ticket.wait().unwrap();
            assert!(outcome.report.amortized, "MNIST recording must batch");
            assert_eq!(outcome.ios.len(), want.len());
            for (io, w) in outcome.ios.iter().zip(&want) {
                assert_eq!(io.output_f32(0).unwrap(), *w, "bit-exact batch output");
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 6);
        assert_eq!(stats.iter().map(|s| s.elements).sum::<u64>(), 18);
        assert_eq!(stats.iter().map(|s| s.errors).sum::<u64>(), 0);
    }

    #[test]
    fn malformed_requests_do_not_kill_workers() {
        let (blob, net) = record_mnist(&gr_gpu::sku::MALI_G71, 47);
        let service = ReplayService::builder()
            .shard(ShardSpec::new(
                &gr_gpu::sku::MALI_G71,
                EnvKind::UserLevel,
                vec![blob.clone()],
            ))
            .spawn()
            .unwrap();

        // Wrong input byte size.
        let rec = Recording::from_bytes(&blob).unwrap();
        let mut bad = ReplayIo::for_recording(&rec);
        bad.inputs[0] = vec![0u8; 3];
        let err = service.run("G71", 0, vec![bad]).unwrap_err();
        assert!(
            matches!(err, ServiceError::Replay(ReplayError::Io(_))),
            "{err}"
        );

        // Unknown recording id.
        let io = io_for(&blob, &random_input(net.input_len(), 1));
        let err = service.run("G71", 7, vec![io]).unwrap_err();
        assert!(
            matches!(err, ServiceError::Replay(ReplayError::BadRecording(7))),
            "{err}"
        );

        // Empty batch.
        let err = service.run("G71", 0, vec![]).unwrap_err();
        assert!(
            matches!(err, ServiceError::Replay(ReplayError::Io(_))),
            "{err}"
        );

        // Unknown SKU is a submit-side error.
        assert!(matches!(
            service.submit("adreno", 0, vec![]),
            Err(ServiceError::UnknownSku(_))
        ));

        // The same worker still serves a well-formed request afterwards.
        let input = random_input(net.input_len(), 9);
        let outcome = service.run("G71", 0, vec![io_for(&blob, &input)]).unwrap();
        assert_eq!(
            outcome.ios[0].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&net, &input)
        );
        let stats = service.shutdown();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].errors, 3);
        assert_eq!(stats[0].jobs, 4);
    }

    #[test]
    fn duplicate_shards_are_rejected_at_spawn() {
        let (blob, _) = record_mnist(&gr_gpu::sku::MALI_G71, 53);
        let err = ReplayService::builder()
            .shard(ShardSpec::new(
                &gr_gpu::sku::MALI_G71,
                EnvKind::UserLevel,
                vec![blob.clone()],
            ))
            .shard(ShardSpec::new(
                &gr_gpu::sku::MALI_G71,
                EnvKind::UserLevel,
                vec![blob],
            ))
            .spawn()
            .unwrap_err();
        assert!(matches!(err, ServiceError::DuplicateShard(_)), "{err}");
    }

    #[test]
    fn startup_failure_surfaces_at_spawn() {
        // A recording for the wrong family fails each worker's load.
        let (blob, _) = record_mnist(&gr_gpu::sku::MALI_G71, 51);
        let err = ReplayService::builder()
            .shard(ShardSpec::new(
                &gr_gpu::sku::V3D_RPI4,
                EnvKind::KernelLevel,
                vec![blob],
            ))
            .spawn()
            .unwrap_err();
        assert!(matches!(err, ServiceError::Startup(_)), "{err}");
    }
}
