//! Per-shard scheduler metrics, exported as point-in-time snapshots.
//!
//! Every admission decision, deadline miss, formed batch, and isolated
//! element fault is counted under the shard lock, so a
//! [`ServiceStats`](crate::ReplayService::stats) snapshot is always
//! internally consistent: `submitted` equals the sum of every terminal
//! outcome plus what is still queued or in flight, and the per-recording
//! lanes balance against the aggregate queue depth.

use std::collections::BTreeMap;

/// Per-recording queue occupancy and dequeue counters (the measurement
/// half of cross-recording fairness: a starved recording shows a deep
/// lane with a stalled dequeue count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordingStats {
    /// Index into the shard's recording list (unknown ids submitted by
    /// clients get their own lane too — they still occupy the queue).
    pub recording: usize,
    /// Requests of this recording currently waiting in the queue.
    pub queued: usize,
    /// Requests of this recording ever removed from the queue — for batch
    /// formation, deadline expiry at dequeue, or a shutdown/worker-lost
    /// drain.
    pub dequeued: u64,
}

/// Snapshot of one shard's scheduler state and lifetime counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// SKU name of the shard.
    pub sku: &'static str,
    /// Requests currently admitted and waiting in the queue.
    pub depth: usize,
    /// Admission capacity of the queue.
    pub queue_cap: usize,
    /// Tickets currently being replayed by workers.
    pub in_flight: usize,
    /// Requests ever submitted to this shard (including rejected ones).
    pub submitted: u64,
    /// Tickets answered with a successful [`BatchOutcome`](crate::BatchOutcome).
    pub completed: u64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_full: u64,
    /// Requests rejected at admission because their deadline had already
    /// passed.
    pub rejected_expired: u64,
    /// Admitted requests whose deadline expired in the queue; rejected at
    /// dequeue without touching a warm machine.
    pub deadline_missed: u64,
    /// Tickets answered with a replay/validation error (the worker and
    /// its batchmates survived).
    pub faults: u64,
    /// Queued tickets rejected by a non-draining shutdown.
    pub shutdown_rejected: u64,
    /// Queued tickets rejected because the shard's last worker died.
    pub worker_lost: u64,
    /// §5.4 re-executions observed across all batches.
    pub retries: u64,
    /// Batches formed and run (a lone request counts as a batch of 1).
    pub batches: u64,
    /// Prologue actions elided by cross-batch warm residency, summed over
    /// every formed batch (see `BatchReport::prologue_skipped`).
    pub prologue_skipped: u64,
    /// Histogram of formed batch sizes: `batch_sizes[i]` counts batches
    /// that coalesced `i + 1` tickets.
    pub batch_sizes: Vec<u64>,
    /// Per-recording queue depth and dequeue counters, sorted by
    /// recording index.
    pub per_recording: Vec<RecordingStats>,
}

impl ShardStats {
    /// Tickets that reached a terminal outcome.
    pub fn resolved(&self) -> u64 {
        self.completed
            + self.rejected_full
            + self.rejected_expired
            + self.deadline_missed
            + self.faults
            + self.shutdown_rejected
            + self.worker_lost
    }

    /// Total tickets that rode formed batches (sum over the histogram).
    pub fn coalesced_tickets(&self) -> u64 {
        self.batch_sizes
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u64 + 1) * n)
            .sum()
    }

    /// Requests that passed admission (everything submitted minus the
    /// synchronous rejections).
    pub fn admitted(&self) -> u64 {
        self.submitted - self.rejected_full - self.rejected_expired
    }

    /// Bookkeeping invariant: every submitted request is either resolved,
    /// still queued, or in flight — and the per-recording lanes balance:
    /// lane depths sum to the aggregate depth, and every admitted request
    /// is either still in a lane or was dequeued from one.
    pub fn is_consistent(&self) -> bool {
        let lanes_queued: usize = self.per_recording.iter().map(|l| l.queued).sum();
        let lanes_dequeued: u64 = self.per_recording.iter().map(|l| l.dequeued).sum();
        self.submitted == self.resolved() + self.depth as u64 + self.in_flight as u64
            && lanes_queued == self.depth
            && lanes_dequeued + self.depth as u64 == self.admitted()
    }
}

/// Snapshot of every shard, sorted by SKU name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// One entry per shard.
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// The snapshot for `sku`, if that shard exists.
    pub fn shard(&self, sku: &str) -> Option<&ShardStats> {
        self.shards.iter().find(|s| s.sku == sku)
    }
}

/// One recording's mutable lane counters.
#[derive(Debug, Default, Clone, Copy)]
struct Lane {
    queued: u64,
    dequeued: u64,
}

/// Mutable counters living under the shard lock.
#[derive(Debug, Default)]
pub(crate) struct ShardMetrics {
    pub submitted: u64,
    pub completed: u64,
    pub rejected_full: u64,
    pub rejected_expired: u64,
    pub deadline_missed: u64,
    pub faults: u64,
    pub shutdown_rejected: u64,
    pub worker_lost: u64,
    pub retries: u64,
    pub batches: u64,
    pub prologue_skipped: u64,
    pub batch_sizes: Vec<u64>,
    /// Keyed by recording index; `BTreeMap` keeps snapshots sorted and
    /// deterministic.
    lanes: BTreeMap<usize, Lane>,
}

impl ShardMetrics {
    pub fn record_batch(&mut self, tickets: usize) {
        self.batches += 1;
        if self.batch_sizes.len() < tickets {
            self.batch_sizes.resize(tickets, 0);
        }
        self.batch_sizes[tickets - 1] += 1;
    }

    /// A request for `recording` was admitted to the queue.
    pub fn note_admit(&mut self, recording: usize) {
        self.lanes.entry(recording).or_default().queued += 1;
    }

    /// A request for `recording` left the queue (formation, expiry at
    /// dequeue, or a drain).
    pub fn note_dequeue(&mut self, recording: usize) {
        let lane = self.lanes.entry(recording).or_default();
        debug_assert!(lane.queued > 0, "dequeue without a matching admit");
        lane.queued = lane.queued.saturating_sub(1);
        lane.dequeued += 1;
    }

    pub fn snapshot(
        &self,
        sku: &'static str,
        depth: usize,
        queue_cap: usize,
        in_flight: usize,
    ) -> ShardStats {
        ShardStats {
            sku,
            depth,
            queue_cap,
            in_flight,
            submitted: self.submitted,
            completed: self.completed,
            rejected_full: self.rejected_full,
            rejected_expired: self.rejected_expired,
            deadline_missed: self.deadline_missed,
            faults: self.faults,
            shutdown_rejected: self.shutdown_rejected,
            worker_lost: self.worker_lost,
            retries: self.retries,
            batches: self.batches,
            prologue_skipped: self.prologue_skipped,
            batch_sizes: self.batch_sizes.clone(),
            per_recording: self
                .lanes
                .iter()
                .map(|(&recording, lane)| RecordingStats {
                    recording,
                    queued: lane.queued as usize,
                    dequeued: lane.dequeued,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_grows_and_counts() {
        let mut m = ShardMetrics::default();
        m.record_batch(1);
        m.record_batch(4);
        m.record_batch(4);
        let s = m.snapshot("G71", 0, 8, 0);
        assert_eq!(s.batch_sizes, vec![1, 0, 0, 2]);
        assert_eq!(s.batches, 3);
        assert_eq!(s.coalesced_tickets(), 9);
    }

    #[test]
    fn consistency_accounts_for_queue_and_flight() {
        let mut m = ShardMetrics {
            submitted: 5,
            completed: 2,
            faults: 1,
            ..ShardMetrics::default()
        };
        // 5 submitted, all admitted: 3 dequeued (2 completed + 1 fault),
        // 1 queued, 1 in flight... in-flight tickets were dequeued too.
        for _ in 0..5 {
            m.note_admit(0);
        }
        for _ in 0..4 {
            m.note_dequeue(0);
        }
        let s = m.snapshot("v3d", 1, 8, 1);
        assert!(s.is_consistent(), "{s:?}");
        assert_eq!(s.resolved(), 3);
        assert_eq!(s.admitted(), 5);
    }

    #[test]
    fn per_recording_lanes_are_sorted_and_balanced() {
        let mut m = ShardMetrics {
            submitted: 4,
            ..ShardMetrics::default()
        };
        m.note_admit(1);
        m.note_admit(0);
        m.note_admit(1);
        m.note_admit(7);
        m.note_dequeue(1);
        let s = m.snapshot("G71", 3, 8, 1);
        let lanes: Vec<(usize, usize, u64)> = s
            .per_recording
            .iter()
            .map(|l| (l.recording, l.queued, l.dequeued))
            .collect();
        assert_eq!(lanes, vec![(0, 1, 0), (1, 1, 1), (7, 1, 0)]);
        // 4 admitted: 3 queued + 1 dequeued (in flight).
        assert!(s.is_consistent(), "{s:?}");
    }

    #[test]
    fn lane_imbalance_breaks_consistency() {
        let mut m = ShardMetrics {
            submitted: 1,
            ..ShardMetrics::default()
        };
        m.note_admit(0);
        // Snapshot claims depth 0 while the lane still holds the entry.
        let s = m.snapshot("G71", 0, 8, 1);
        assert!(!s.is_consistent(), "{s:?}");
    }
}
