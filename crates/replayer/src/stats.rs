//! Per-shard scheduler metrics, exported as point-in-time snapshots.
//!
//! Every admission decision, deadline miss, formed batch, and isolated
//! element fault is counted under the shard lock, so a
//! [`ServiceStats`](crate::ReplayService::stats) snapshot is always
//! internally consistent: `submitted` equals the sum of every terminal
//! outcome plus what is still queued or in flight.

/// Snapshot of one shard's scheduler state and lifetime counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// SKU name of the shard.
    pub sku: &'static str,
    /// Requests currently admitted and waiting in the queue.
    pub depth: usize,
    /// Admission capacity of the queue.
    pub queue_cap: usize,
    /// Tickets currently being replayed by workers.
    pub in_flight: usize,
    /// Requests ever submitted to this shard (including rejected ones).
    pub submitted: u64,
    /// Tickets answered with a successful [`BatchOutcome`](crate::BatchOutcome).
    pub completed: u64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_full: u64,
    /// Requests rejected at admission because their deadline had already
    /// passed.
    pub rejected_expired: u64,
    /// Admitted requests whose deadline expired in the queue; rejected at
    /// dequeue without touching a warm machine.
    pub deadline_missed: u64,
    /// Tickets answered with a replay/validation error (the worker and
    /// its batchmates survived).
    pub faults: u64,
    /// Queued tickets rejected by a non-draining shutdown.
    pub shutdown_rejected: u64,
    /// Queued tickets rejected because the shard's last worker died.
    pub worker_lost: u64,
    /// §5.4 re-executions observed across all batches.
    pub retries: u64,
    /// Batches formed and run (a lone request counts as a batch of 1).
    pub batches: u64,
    /// Histogram of formed batch sizes: `batch_sizes[i]` counts batches
    /// that coalesced `i + 1` tickets.
    pub batch_sizes: Vec<u64>,
}

impl ShardStats {
    /// Tickets that reached a terminal outcome.
    pub fn resolved(&self) -> u64 {
        self.completed
            + self.rejected_full
            + self.rejected_expired
            + self.deadline_missed
            + self.faults
            + self.shutdown_rejected
            + self.worker_lost
    }

    /// Total tickets that rode formed batches (sum over the histogram).
    pub fn coalesced_tickets(&self) -> u64 {
        self.batch_sizes
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u64 + 1) * n)
            .sum()
    }

    /// Bookkeeping invariant: every submitted request is either resolved,
    /// still queued, or in flight.
    pub fn is_consistent(&self) -> bool {
        self.submitted == self.resolved() + self.depth as u64 + self.in_flight as u64
    }
}

/// Snapshot of every shard, sorted by SKU name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// One entry per shard.
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// The snapshot for `sku`, if that shard exists.
    pub fn shard(&self, sku: &str) -> Option<&ShardStats> {
        self.shards.iter().find(|s| s.sku == sku)
    }
}

/// Mutable counters living under the shard lock.
#[derive(Debug, Default)]
pub(crate) struct ShardMetrics {
    pub submitted: u64,
    pub completed: u64,
    pub rejected_full: u64,
    pub rejected_expired: u64,
    pub deadline_missed: u64,
    pub faults: u64,
    pub shutdown_rejected: u64,
    pub worker_lost: u64,
    pub retries: u64,
    pub batches: u64,
    pub batch_sizes: Vec<u64>,
}

impl ShardMetrics {
    pub fn record_batch(&mut self, tickets: usize) {
        self.batches += 1;
        if self.batch_sizes.len() < tickets {
            self.batch_sizes.resize(tickets, 0);
        }
        self.batch_sizes[tickets - 1] += 1;
    }

    pub fn snapshot(
        &self,
        sku: &'static str,
        depth: usize,
        queue_cap: usize,
        in_flight: usize,
    ) -> ShardStats {
        ShardStats {
            sku,
            depth,
            queue_cap,
            in_flight,
            submitted: self.submitted,
            completed: self.completed,
            rejected_full: self.rejected_full,
            rejected_expired: self.rejected_expired,
            deadline_missed: self.deadline_missed,
            faults: self.faults,
            shutdown_rejected: self.shutdown_rejected,
            worker_lost: self.worker_lost,
            retries: self.retries,
            batches: self.batches,
            batch_sizes: self.batch_sizes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_grows_and_counts() {
        let mut m = ShardMetrics::default();
        m.record_batch(1);
        m.record_batch(4);
        m.record_batch(4);
        let s = m.snapshot("G71", 0, 8, 0);
        assert_eq!(s.batch_sizes, vec![1, 0, 0, 2]);
        assert_eq!(s.batches, 3);
        assert_eq!(s.coalesced_tickets(), 9);
    }

    #[test]
    fn consistency_accounts_for_queue_and_flight() {
        let m = ShardMetrics {
            submitted: 5,
            completed: 2,
            faults: 1,
            ..ShardMetrics::default()
        };
        let s = m.snapshot("v3d", 1, 8, 1);
        assert!(s.is_consistent());
        assert_eq!(s.resolved(), 3);
    }
}
