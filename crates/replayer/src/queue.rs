//! Bounded earliest-deadline-first admission queue.
//!
//! One [`EdfQueue`] sits in front of every shard: admission is bounded
//! (a full queue rejects the *new* request, never evicts an admitted
//! one), and dequeue is strict EDF — the entry with the earliest
//! deadline leaves first, ties broken by admission order, deadline-free
//! entries last (FIFO among themselves). Strict EDF is what the
//! scheduler's batch-formation invariant builds on: a worker only
//! coalesces the *consecutive* EDF prefix, so no admitted request is
//! ever dequeued after a later-deadline request from the same shard.

use std::collections::BinaryHeap;

use gr_sim::SimTime;

/// Deadline-free entries sort after every real deadline.
fn key_ns(deadline: Option<SimTime>) -> u64 {
    deadline.map_or(u64::MAX, SimTime::as_nanos)
}

struct Entry<T> {
    /// (deadline nanos — `u64::MAX` when none, admission sequence).
    key: (u64, u64),
    deadline: Option<SimTime>,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min key on top.
        other.key.cmp(&self.key)
    }
}

/// A bounded earliest-deadline-first queue.
///
/// # Example
///
/// ```
/// use gr_service::EdfQueue;
/// use gr_sim::SimTime;
///
/// let mut q: EdfQueue<&str> = EdfQueue::new(2);
/// q.try_push(Some(SimTime::from_nanos(200)), "late").unwrap();
/// q.try_push(None, "whenever").unwrap();
/// assert!(q.try_push(Some(SimTime::from_nanos(50)), "full").is_err());
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert_eq!(q.pop().unwrap().1, "whenever");
/// ```
pub struct EdfQueue<T> {
    cap: usize,
    seq: u64,
    heap: BinaryHeap<Entry<T>>,
}

impl<T> std::fmt::Debug for EdfQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdfQueue")
            .field("cap", &self.cap)
            .field("len", &self.heap.len())
            .finish()
    }
}

impl<T> EdfQueue<T> {
    /// A queue admitting at most `cap` entries (minimum 1).
    pub fn new(cap: usize) -> EdfQueue<T> {
        EdfQueue {
            cap: cap.max(1),
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Admission capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Admits `item`, or returns it when the queue is full (bounded
    /// admission never evicts an already-admitted entry).
    ///
    /// # Errors
    ///
    /// The rejected `item` itself, so the caller can answer its ticket.
    pub fn try_push(&mut self, deadline: Option<SimTime>, item: T) -> Result<(), T> {
        if self.heap.len() >= self.cap {
            return Err(item);
        }
        let key = (key_ns(deadline), self.seq);
        self.seq += 1;
        self.heap.push(Entry {
            key,
            deadline,
            item,
        });
        Ok(())
    }

    /// Deadline and payload of the entry `pop` would return next.
    pub fn peek(&self) -> Option<(Option<SimTime>, &T)> {
        self.heap.peek().map(|e| (e.deadline, &e.item))
    }

    /// Removes and returns the earliest-deadline entry (ties: admission
    /// order; deadline-free entries last).
    pub fn pop(&mut self) -> Option<(Option<SimTime>, T)> {
        self.heap.pop().map(|e| (e.deadline, e.item))
    }

    /// Drains every queued entry in EDF order (used by shutdown to
    /// reject, and by tests).
    pub fn drain(&mut self) -> Vec<(Option<SimTime>, T)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn edf_order_with_ties_and_no_deadline() {
        let mut q = EdfQueue::new(8);
        q.try_push(None, "d").unwrap();
        q.try_push(Some(SimTime::from_nanos(30)), "b").unwrap();
        q.try_push(Some(SimTime::from_nanos(10)), "a").unwrap();
        q.try_push(Some(SimTime::from_nanos(30)), "c").unwrap();
        q.try_push(None, "e").unwrap();
        let order: Vec<&str> = q.drain().into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn bounded_admission_rejects_new_entry_only() {
        let mut q = EdfQueue::new(2);
        q.try_push(Some(SimTime::from_nanos(100)), 1).unwrap();
        q.try_push(Some(SimTime::from_nanos(200)), 2).unwrap();
        // An earlier deadline does NOT evict an admitted entry.
        assert_eq!(q.try_push(Some(SimTime::from_nanos(1)), 3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.try_push(None, 4).is_ok());
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let mut q = EdfQueue::new(0);
        assert_eq!(q.cap(), 1);
        q.try_push(None, ()).unwrap();
        assert_eq!(q.try_push(None, ()), Err(()));
    }

    // Scheduler invariant: at every dequeue, the popped entry has the
    // minimum (deadline, admission-seq) key among everything queued —
    // i.e. no admitted request is ever dequeued after a later-deadline
    // request, across arbitrary push/pop interleavings.
    proptest! {
        #[test]
        fn pop_is_always_the_current_minimum(ops in proptest::collection::vec((0u64..8, 0u64..1000), 1..200)) {
            let mut q: EdfQueue<u64> = EdfQueue::new(64);
            let mut shadow: Vec<(u64, u64)> = Vec::new(); // (deadline_ns key, seq)
            let mut seq = 0u64;
            for (op, dl) in ops {
                if op == 0 || shadow.len() == 64 {
                    // pop
                    let got = q.pop();
                    if shadow.is_empty() {
                        assert!(got.is_none());
                    } else {
                        let min = *shadow.iter().min().unwrap();
                        shadow.retain(|&e| e != min);
                        let (deadline, _) = got.unwrap();
                        assert_eq!(
                            key_ns(deadline), min.0,
                            "popped a later deadline than the queue minimum"
                        );
                    }
                } else {
                    let deadline = (dl < 900).then(|| SimTime::from_nanos(dl));
                    if q.try_push(deadline, dl).is_ok() {
                        shadow.push((key_ns(deadline), seq));
                        seq += 1;
                    }
                }
            }
        }
    }
}
