//! Turning raw event streams into replayable recordings.
//!
//! Applies the paper's §4 transformations: poll loops become tolerant
//! `RegReadWait` actions; memory dumps become `Upload`s; the GPU-idle
//! heuristic zeroes skippable inter-action intervals (§4.5); discovered
//! I/O becomes `CopyToGpu`/`CopyFromGpu` placed so input injection happens
//! after the first dump load but before the first job kick.

use gr_gpu::GpuSku;
use gr_recording::{Action, Dump, IoSlot, Recording, RecordingMeta, TimedAction};
use gr_sim::SimTime;
use gr_soc::PAGE_SIZE;
use gr_stack::hooks::RegionSnapshot;

use crate::sink::{RawEvent, TimedRaw};

/// Configuration for one recording build.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// SKU the workload was recorded on.
    pub sku: &'static GpuSku,
    /// Recording label.
    pub label: String,
    /// Apply the §4.5 idle-interval skip (Fig. 10 ablates this).
    pub skip_idle_intervals: bool,
    /// Modeled full-size GPU memory (Table 6 reporting).
    pub modeled_gpu_mem_bytes: u64,
}

/// Busy spans extracted from `GpuPhase` events.
fn busy_spans(events: &[&TimedRaw]) -> Vec<(SimTime, SimTime)> {
    let mut spans = Vec::new();
    let mut open: Option<SimTime> = None;
    for e in events {
        if let RawEvent::GpuPhase { busy } = e.event {
            if busy {
                open.get_or_insert(e.at);
            } else if let Some(start) = open.take() {
                spans.push((start, e.at));
            }
        }
    }
    if let Some(start) = open {
        spans.push((start, SimTime::MAX));
    }
    spans
}

fn overlaps_busy(spans: &[(SimTime, SimTime)], a: SimTime, b: SimTime) -> bool {
    spans.iter().any(|&(s, e)| s < b && a < e)
}

/// Merges per-page dumps into contiguous [`Dump`] runs.
fn merge_pages(pages: &[(u64, Vec<u8>)]) -> Vec<Dump> {
    let mut out: Vec<Dump> = Vec::new();
    for (va, bytes) in pages {
        match out.last_mut() {
            Some(last) if last.va + last.bytes.len() as u64 == *va => {
                last.bytes.extend_from_slice(bytes);
            }
            _ => out.push(Dump {
                va: *va,
                bytes: bytes.clone(),
            }),
        }
    }
    out
}

/// Builds one recording from a prologue (bring-up register interactions),
/// the set of regions live at the group start, and the group's raw events.
///
/// `inputs`/`outputs` are the taint-discovered (or annotated) I/O slots.
pub fn build_recording(
    cfg: &BuildConfig,
    prologue: &[TimedRaw],
    live_regions: &[RegionSnapshot],
    group: &[TimedRaw],
    inputs: Vec<IoSlot>,
    outputs: Vec<IoSlot>,
) -> Recording {
    let mut meta = RecordingMeta::new(
        &cfg.sku.family.to_string(),
        cfg.sku.name,
        cfg.sku.gpu_id,
        &cfg.label,
    );
    meta.modeled_gpu_mem_bytes = cfg.modeled_gpu_mem_bytes;
    let mut rec = Recording::new(meta);
    rec.inputs = inputs;
    rec.outputs = outputs;

    let all: Vec<&TimedRaw> = prologue.iter().chain(group.iter()).collect();
    let spans = busy_spans(&all);

    let mut regio = 0u32;
    let mut jobs = 0u32;
    let mut peak_pages = live_regions.iter().map(|r| r.pages as u64).sum::<u64>();
    let mut prev_at: Option<SimTime> = None;
    let mut inputs_pending = !rec.inputs.is_empty();
    let mut first_dump_seen = false;
    // Interactions inside interrupt context are event-synchronized: the
    // IRQ itself (not the GPU) paces them, and the gaps only measure the
    // record-time handler's CPU cost — which the replayer charges for
    // itself. Like the gap-after-WaitIrq rule below, they are never
    // converted into pacing (unconditionally, independent of the §4.5
    // idle-skip ablation).
    let irq_depth = std::cell::Cell::new(0i32);

    let push = |rec: &mut Recording, prev_at: &mut Option<SimTime>, at: SimTime, action: Action| {
        let interval = match *prev_at {
            Some(p) if at > p => {
                let gap = at - p;
                if irq_depth.get() > 0 || (cfg.skip_idle_intervals && !overlaps_busy(&spans, p, at))
                {
                    0
                } else {
                    gap.as_nanos()
                }
            }
            _ => 0,
        };
        *prev_at = Some(at);
        rec.actions.push(TimedAction {
            action,
            min_interval_ns: interval,
        });
    };

    // Prologue: register interactions only (maps are synthesized below
    // from the live-region set, which already reflects them).
    for e in prologue {
        match &e.event {
            RawEvent::RegWrite { reg, val } => {
                regio += 1;
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::RegWrite {
                        reg: *reg,
                        mask: u32::MAX,
                        val: *val,
                    },
                );
            }
            RawEvent::RegRead { reg, val } => {
                regio += 1;
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::RegReadOnce {
                        reg: *reg,
                        expect: *val,
                        ignore: false,
                    },
                );
            }
            RawEvent::Poll {
                reg,
                mask,
                val,
                polls,
                timeout,
            } => {
                regio += polls;
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::RegReadWait {
                        reg: *reg,
                        mask: *mask,
                        val: *val,
                        timeout_ns: timeout.as_nanos(),
                    },
                );
            }
            RawEvent::PgtableSet => {
                push(&mut rec, &mut prev_at, e.at, Action::SetGpuPgtable);
            }
            RawEvent::WaitIrq { line, timeout } => {
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::WaitIrq {
                        line: *line,
                        timeout_ns: timeout.as_nanos(),
                    },
                );
            }
            RawEvent::IrqCtx { enter } => {
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::IrqContext { enter: *enter },
                );
                irq_depth.set(irq_depth.get() + if *enter { 1 } else { -1 });
            }
            _ => {}
        }
    }

    // Synthesized mappings: everything live at group start.
    for r in live_regions {
        let at = prev_at.unwrap_or(SimTime::ZERO);
        push(
            &mut rec,
            &mut prev_at,
            at,
            Action::MapGpuMem {
                va: r.va,
                pte_flags: r.pte_flags.clone(),
            },
        );
    }

    // The group's events.
    for e in group {
        match &e.event {
            RawEvent::RegWrite { reg, val } => {
                regio += 1;
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::RegWrite {
                        reg: *reg,
                        mask: u32::MAX,
                        val: *val,
                    },
                );
            }
            RawEvent::RegRead { reg, val } => {
                regio += 1;
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::RegReadOnce {
                        reg: *reg,
                        expect: *val,
                        ignore: false,
                    },
                );
            }
            RawEvent::Poll {
                reg,
                mask,
                val,
                polls,
                timeout,
            } => {
                regio += polls;
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::RegReadWait {
                        reg: *reg,
                        mask: *mask,
                        val: *val,
                        timeout_ns: timeout.as_nanos(),
                    },
                );
            }
            RawEvent::WaitIrq { line, timeout } => {
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::WaitIrq {
                        line: *line,
                        timeout_ns: timeout.as_nanos(),
                    },
                );
            }
            RawEvent::IrqCtx { enter } => {
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::IrqContext { enter: *enter },
                );
                irq_depth.set(irq_depth.get() + if *enter { 1 } else { -1 });
            }
            RawEvent::PgtableSet => {
                push(&mut rec, &mut prev_at, e.at, Action::SetGpuPgtable);
            }
            RawEvent::Map { va, pte_flags, .. } => {
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::MapGpuMem {
                        va: *va,
                        pte_flags: pte_flags.clone(),
                    },
                );
            }
            RawEvent::Unmap { va } => {
                push(
                    &mut rec,
                    &mut prev_at,
                    e.at,
                    Action::UnmapGpuMem { va: *va },
                );
            }
            RawEvent::JobDump {
                pages,
                mapped_pages,
            } => {
                jobs += 1;
                peak_pages = peak_pages.max(*mapped_pages);
                for dump in merge_pages(pages) {
                    let idx = rec.dumps.len() as u32;
                    rec.dumps.push(dump);
                    push(
                        &mut rec,
                        &mut prev_at,
                        e.at,
                        Action::Upload { dump_idx: idx },
                    );
                }
                if inputs_pending && !first_dump_seen {
                    // Inject app input after the first dump load (so the
                    // dump cannot clobber it) and before the job kick.
                    for slot in 0..rec.inputs.len() as u32 {
                        push(&mut rec, &mut prev_at, e.at, Action::CopyToGpu { slot });
                    }
                    inputs_pending = false;
                }
                first_dump_seen = true;
            }
            RawEvent::GpuPhase { .. } => {}
        }
    }

    // Output extraction at the very end.
    let end_at = prev_at.unwrap_or(SimTime::ZERO);
    for slot in 0..rec.outputs.len() as u32 {
        push(&mut rec, &mut prev_at, end_at, Action::CopyFromGpu { slot });
    }

    // Gaps spanning a WaitIrq are event-synchronized (the IRQ itself
    // paces the replay); converting them into time pacing would replay
    // the *record-time* job duration, defeating faster replay hardware.
    for i in 1..rec.actions.len() {
        if matches!(rec.actions[i - 1].action, Action::WaitIrq { .. }) {
            rec.actions[i].min_interval_ns = 0;
        }
    }
    rec.meta.job_count = jobs;
    rec.meta.regio_count = regio;
    rec.meta.peak_mapped_pages = peak_pages;
    rec
}

/// Total dumped pages of a recording (diagnostics).
pub fn dumped_pages(rec: &Recording) -> usize {
    rec.dumps.iter().map(|d| d.bytes.len() / PAGE_SIZE).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::sku::MALI_G71;
    use gr_sim::SimDuration;

    fn ev(at_ns: u64, event: RawEvent) -> TimedRaw {
        TimedRaw {
            at: SimTime::from_nanos(at_ns),
            event,
        }
    }

    fn cfg(skip: bool) -> BuildConfig {
        BuildConfig {
            sku: &MALI_G71,
            label: "test".into(),
            skip_idle_intervals: skip,
            modeled_gpu_mem_bytes: 1,
        }
    }

    #[test]
    fn idle_intervals_are_skipped_busy_preserved() {
        let group = vec![
            ev(0, RawEvent::RegWrite { reg: 0x18, val: 1 }),
            // 1 ms idle gap (e.g. JIT) — skippable.
            ev(1_000_000, RawEvent::GpuPhase { busy: true }),
            ev(
                1_000_000,
                RawEvent::RegWrite {
                    reg: 0x2020,
                    val: 1,
                },
            ),
            // 500 µs gap overlapping the busy span — preserved.
            ev(
                1_500_000,
                RawEvent::RegRead {
                    reg: 0x2024,
                    val: 2,
                },
            ),
            ev(1_500_000, RawEvent::GpuPhase { busy: false }),
        ];
        let rec = build_recording(&cfg(true), &[], &[], &group, vec![], vec![]);
        assert_eq!(rec.actions.len(), 3);
        assert_eq!(rec.actions[1].min_interval_ns, 0, "idle gap skipped");
        assert_eq!(
            rec.actions[2].min_interval_ns, 500_000,
            "busy gap preserved"
        );

        let rec2 = build_recording(&cfg(false), &[], &[], &group, vec![], vec![]);
        assert_eq!(
            rec2.actions[1].min_interval_ns, 1_000_000,
            "ablation keeps it"
        );
    }

    #[test]
    fn dumps_become_uploads_and_inputs_follow_first_dump() {
        let page = vec![7u8; PAGE_SIZE];
        let group = vec![
            ev(
                0,
                RawEvent::JobDump {
                    pages: vec![
                        (0x1000, page.clone()),
                        (0x2000, page.clone()),
                        (0x9000, page),
                    ],
                    mapped_pages: 3,
                },
            ),
            ev(
                10,
                RawEvent::RegWrite {
                    reg: 0x2020,
                    val: 1,
                },
            ),
        ];
        let inputs = vec![IoSlot {
            name: "in".into(),
            va: 0x9000,
            len: 64,
        }];
        let rec = build_recording(&cfg(true), &[], &[], &group, inputs, vec![]);
        // Contiguous pages 0x1000+0x2000 merge; 0x9000 separate.
        assert_eq!(rec.dumps.len(), 2);
        assert_eq!(rec.dumps[0].bytes.len(), 2 * PAGE_SIZE);
        let tags: Vec<u8> = rec.actions.iter().map(|a| a.action.tag()).collect();
        // Upload, Upload, CopyToGpu, RegWrite.
        assert_eq!(tags, vec![7, 7, 8, 3]);
        assert_eq!(rec.meta.job_count, 1);
        assert_eq!(dumped_pages(&rec), 3);
    }

    #[test]
    fn gaps_inside_irq_context_are_event_synchronized() {
        // WaitIrq → IrqCtx(enter) → [7 µs handler gap] → RegRead →
        // RegWrite → IrqCtx(exit) → [gap] → RegWrite, all during a busy
        // span: the interior gaps are handler CPU time, never pacing.
        let group = vec![
            ev(0, RawEvent::GpuPhase { busy: true }),
            ev(
                0,
                RawEvent::WaitIrq {
                    line: 0,
                    timeout: SimDuration::from_secs(1),
                },
            ),
            ev(100, RawEvent::IrqCtx { enter: true }),
            ev(
                7_100,
                RawEvent::RegRead {
                    reg: 0x2024,
                    val: 1,
                },
            ),
            ev(
                9_100,
                RawEvent::RegWrite {
                    reg: 0x2028,
                    val: 1,
                },
            ),
            ev(9_200, RawEvent::IrqCtx { enter: false }),
            ev(9_300, RawEvent::GpuPhase { busy: false }),
            // Busy-span gap *outside* irq context stays preserved.
            ev(
                9_800,
                RawEvent::RegWrite {
                    reg: 0x2030,
                    val: 2,
                },
            ),
            ev(9_900, RawEvent::GpuPhase { busy: true }),
            ev(9_900, RawEvent::GpuPhase { busy: false }),
        ];
        let rec = build_recording(&cfg(true), &[], &[], &group, vec![], vec![]);
        let intervals: Vec<u64> = rec.actions.iter().map(|a| a.min_interval_ns).collect();
        // WaitIrq, IrqCtx(enter), RegRead, RegWrite, IrqCtx(exit), RegWrite.
        assert_eq!(rec.actions.len(), 6);
        assert_eq!(
            &intervals[1..5],
            &[0, 0, 0, 0],
            "everything inside (or entering) irq context is event-paced"
        );
        assert_eq!(
            intervals[5], 600,
            "busy gap outside irq context remains pacing"
        );
    }

    #[test]
    fn prologue_polls_summarize_and_count_regio() {
        let prologue = vec![
            ev(0, RawEvent::RegWrite { reg: 0x18, val: 1 }),
            ev(
                100,
                RawEvent::Poll {
                    reg: 8,
                    mask: 0x100,
                    val: 0x100,
                    polls: 37,
                    timeout: SimDuration::from_millis(50),
                },
            ),
        ];
        let rec = build_recording(&cfg(true), &prologue, &[], &[], vec![], vec![]);
        assert_eq!(rec.meta.regio_count, 38);
        assert!(matches!(
            rec.actions[1].action,
            Action::RegReadWait {
                reg: 8,
                mask: 0x100,
                val: 0x100,
                timeout_ns: 50_000_000
            }
        ));
    }

    #[test]
    fn live_regions_synthesize_maps() {
        let regions = vec![RegionSnapshot {
            va: 0x40_0000,
            pages: 2,
            kind: gr_stack::driver::RegionKind::Data,
            pte_flags: vec![0xB, 0xB],
            pas: vec![0, 4096],
        }];
        let rec = build_recording(&cfg(true), &[], &regions, &[], vec![], vec![]);
        assert!(matches!(
            &rec.actions[0].action,
            Action::MapGpuMem { va: 0x40_0000, pte_flags } if pte_flags.len() == 2
        ));
        assert_eq!(rec.meta.peak_mapped_pages, 2);
    }
}
