//! The raw event collector behind the driver hooks.

use std::sync::Arc;

use gr_sim::{SimClock, SimDuration, SimTime};
use gr_stack::driver::RegionKind;
use gr_stack::hooks::{DumpCtx, RecorderSink, RegionSnapshot};
use parking_lot::Mutex;

use crate::dump;

/// One observed driver↔GPU interaction, timestamped.
#[derive(Debug, Clone)]
pub enum RawEvent {
    /// Register write.
    RegWrite {
        /// Register offset.
        reg: u32,
        /// Value.
        val: u32,
    },
    /// Single register read (value observed).
    RegRead {
        /// Register offset.
        reg: u32,
        /// Observed value.
        val: u32,
    },
    /// Summarized polling loop.
    Poll {
        /// Register offset.
        reg: u32,
        /// Compared bits.
        mask: u32,
        /// Awaited value.
        val: u32,
        /// Observed poll count (nondeterministic).
        polls: u32,
        /// Driver timeout budget.
        timeout: SimDuration,
    },
    /// Blocking interrupt wait.
    WaitIrq {
        /// IRQ line.
        line: u32,
        /// Timeout budget.
        timeout: SimDuration,
    },
    /// Interrupt context entry/exit.
    IrqCtx {
        /// Enter vs leave.
        enter: bool,
    },
    /// The driver pointed the GPU at page tables.
    PgtableSet,
    /// New VA region mapped.
    Map {
        /// Base VA.
        va: u64,
        /// Allocation kind.
        kind: RegionKind,
        /// Per-page PTE flag bits (recording SKU's format).
        pte_flags: Vec<u16>,
    },
    /// Region unmapped.
    Unmap {
        /// Base VA.
        va: u64,
    },
    /// Dump captured right before a job kick: changed pages only.
    JobDump {
        /// (page VA, 4 KiB content) pairs that changed since last dump.
        pages: Vec<(u64, Vec<u8>)>,
        /// Peak pages mapped at this point.
        mapped_pages: u64,
    },
    /// GPU went busy/idle (interval-skipping evidence).
    GpuPhase {
        /// Busy vs idle.
        busy: bool,
    },
}

/// A timestamped raw event.
#[derive(Debug, Clone)]
pub struct TimedRaw {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub event: RawEvent,
}

#[derive(Debug, Default)]
pub(crate) struct RecorderState {
    pub events: Vec<TimedRaw>,
    /// Per-page content hash at last dump (deduplicates job dumps).
    pub page_hashes: std::collections::HashMap<u64, u64>,
    /// Regions snapshot taken at the most recent dump point.
    pub last_regions: Vec<RegionSnapshot>,
    pub enabled: bool,
}

/// The recorder: an implementation of the driver instrumentation seams
/// that accumulates raw events for [`crate::builder`].
pub struct Recorder {
    clock: SimClock,
    pub(crate) state: Mutex<RecorderState>,
    sku: &'static gr_gpu::GpuSku,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("events", &self.state.lock().events.len())
            .finish()
    }
}

impl Recorder {
    /// Creates an enabled recorder for `sku`, timestamping with `clock`.
    pub fn new(clock: SimClock, sku: &'static gr_gpu::GpuSku) -> Arc<Recorder> {
        Arc::new(Recorder {
            clock,
            state: Mutex::new(RecorderState {
                enabled: true,
                ..Default::default()
            }),
            sku,
        })
    }

    /// The GPU family being recorded.
    pub fn family(&self) -> gr_gpu::GpuFamilyKind {
        self.sku.family
    }

    /// Number of raw events collected so far (bookmark for segmenting).
    pub fn mark(&self) -> usize {
        self.state.lock().events.len()
    }

    /// Clears the page-hash cache so the next job dump captures every
    /// policy page (used at recording-group boundaries).
    pub fn reset_dump_cache(&self) {
        self.state.lock().page_hashes.clear();
    }

    /// Copies out the raw events in `[from, to)`.
    pub fn events(&self, from: usize, to: usize) -> Vec<TimedRaw> {
        self.state.lock().events[from..to].to_vec()
    }

    /// The region snapshots captured at the most recent dump point.
    pub fn last_regions(&self) -> Vec<RegionSnapshot> {
        self.state.lock().last_regions.clone()
    }

    fn push(&self, event: RawEvent) {
        let mut st = self.state.lock();
        if st.enabled {
            let at = self.clock.now();
            st.events.push(TimedRaw { at, event });
        }
    }
}

impl RecorderSink for Recorder {
    fn reg_write(&self, reg: u32, val: u32) {
        self.push(RawEvent::RegWrite { reg, val });
    }

    fn reg_read(&self, reg: u32, val: u32) {
        self.push(RawEvent::RegRead { reg, val });
    }

    fn poll(&self, reg: u32, mask: u32, val: u32, polls: u32, timeout: SimDuration) {
        self.push(RawEvent::Poll {
            reg,
            mask,
            val,
            polls,
            timeout,
        });
    }

    fn wait_irq(&self, line: u32, timeout: SimDuration) {
        self.push(RawEvent::WaitIrq { line, timeout });
    }

    fn irq_context(&self, enter: bool) {
        self.push(RawEvent::IrqCtx { enter });
    }

    fn pgtable_set(&self) {
        self.push(RawEvent::PgtableSet);
    }

    fn map(&self, va: u64, kind: RegionKind, pte_flags: &[u16]) {
        self.push(RawEvent::Map {
            va,
            kind,
            pte_flags: pte_flags.to_vec(),
        });
    }

    fn unmap(&self, va: u64) {
        self.push(RawEvent::Unmap { va });
    }

    fn copy_to_gpu(&self, _va: u64, _len: usize) {
        // Input injection is discovered by taint, not hooks (§4.4): the
        // runtime may bypass the driver entirely, so the recorder must not
        // rely on seeing copies.
    }

    fn copy_from_gpu(&self, _va: u64, _len: usize) {}

    fn pre_job_submit(&self, ctx: &DumpCtx<'_>) {
        let policy_pages = dump::policy_pages(self.sku, ctx);
        let mut st = self.state.lock();
        if !st.enabled {
            return;
        }
        let mut changed = Vec::new();
        let mut mapped_pages = 0u64;
        for r in ctx.regions {
            mapped_pages += r.pages as u64;
        }
        for (page_va, bytes) in policy_pages {
            let h = gr_sim::trace::fnv1a(&bytes);
            if st.page_hashes.get(&page_va) != Some(&h) {
                st.page_hashes.insert(page_va, h);
                changed.push((page_va, bytes));
            }
        }
        st.last_regions = ctx.regions.to_vec();
        let at = self.clock.now();
        st.events.push(TimedRaw {
            at,
            event: RawEvent::JobDump {
                pages: changed,
                mapped_pages,
            },
        });
    }

    fn post_job_complete(&self, ctx: &DumpCtx<'_>) {
        // Refresh the page view: anything the GPU just wrote is inter-job
        // state and must never be re-dumped (it would overwrite live
        // buffers at replay, §4.3).
        let policy_pages = dump::policy_pages(self.sku, ctx);
        let mut st = self.state.lock();
        if !st.enabled {
            return;
        }
        for (page_va, bytes) in policy_pages {
            let h = gr_sim::trace::fnv1a(&bytes);
            st.page_hashes.insert(page_va, h);
        }
        st.last_regions = ctx.regions.to_vec();
    }

    fn gpu_phase(&self, busy: bool) {
        self.push(RawEvent::GpuPhase { busy });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use gr_gpu::sku;
    use gr_gpu::GpuFamilyKind;

    #[test]
    fn records_in_order_with_marks() {
        let clock = SimClock::new();
        let rec = Recorder::new(clock.clone(), &gr_gpu::sku::MALI_G71);
        rec.reg_write(0x18, 1);
        let m = rec.mark();
        assert_eq!(m, 1);
        clock.advance(SimDuration::from_micros(5));
        rec.reg_read(0x08, 0x100);
        let evs = rec.events(0, rec.mark());
        assert_eq!(evs.len(), 2);
        assert!(matches!(
            evs[0].event,
            RawEvent::RegWrite { reg: 0x18, val: 1 }
        ));
        assert!(evs[1].at > evs[0].at);
        let seg = rec.events(m, rec.mark());
        assert_eq!(seg.len(), 1);
    }

    #[test]
    fn copy_hooks_are_intentionally_ignored() {
        let rec = Recorder::new(SimClock::new(), &gr_gpu::sku::V3D_RPI4);
        rec.copy_to_gpu(0x1000, 64);
        rec.copy_from_gpu(0x1000, 64);
        assert_eq!(rec.mark(), 0);
        assert_eq!(rec.family(), GpuFamilyKind::V3d);
    }
}
