//! Family-specific GPU memory dump policies (§4.3, §6.1, §6.2).

use gr_gpu::mali::pgtable::decode_flags;
use gr_gpu::sku::{GpuFamilyKind, GpuSku, PteFormat};
use gr_gpu::v3d::cl::{parse_list, ClPacket};
use gr_soc::PAGE_SIZE;
use gr_stack::driver::RegionKind;
use gr_stack::hooks::{DumpCtx, JobRoot};

/// Returns the (page VA, page content) pairs the policy selects for the
/// job about to be submitted.
pub fn policy_pages(sku: &GpuSku, ctx: &DumpCtx<'_>) -> Vec<(u64, Vec<u8>)> {
    match sku.family {
        GpuFamilyKind::Mali => mali_pages(sku.pte_format, ctx),
        GpuFamilyKind::V3d => v3d_pages(ctx),
    }
}

/// Mali §6.1 heuristic, driven by page *permissions*:
/// executable-to-GPU pages are job chains → dump; pages that are
/// non-executable **and** unmapped from CPU are GPU-internal buffers →
/// exclude; remaining (CPU-mapped data) pages → dump.
fn mali_pages(fmt: PteFormat, ctx: &DumpCtx<'_>) -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    for r in ctx.regions {
        // The recorder is built per SKU (§3.1) and knows the exact PTE
        // layout from the driver's interface knowledge.
        for (i, &bits) in r.pte_flags.iter().enumerate() {
            let flags = decode_flags(fmt, u64::from(bits));
            if !flags.exec && !flags.cpu_mapped {
                continue; // GPU-internal: never touched by CPU.
            }
            let va = r.va + (i * PAGE_SIZE) as u64;
            if let Some(bytes) = ctx.read_va(va, PAGE_SIZE) {
                out.push((va, bytes));
            }
        }
    }
    out
}

/// v3d §6.2 policy: no exec bit, so (1) follow the control-list registers
/// and chase BRANCH/RUN_SHADER pointers to find binary pages, and (2) use
/// the allocation-flag hints to exclude scratch while conservatively
/// including everything else.
fn v3d_pages(ctx: &DumpCtx<'_>) -> Vec<(u64, Vec<u8>)> {
    let mut page_set = std::collections::BTreeSet::new();

    // (1) Pointer chase from the submitted control list.
    if let JobRoot::V3dList { cl_va, cl_len } = ctx.root {
        chase_list(ctx, cl_va, cl_len, 0, &mut page_set);
    }

    // (2) Alloc-flag hints: everything except Scratch, conservatively.
    for r in ctx.regions {
        if r.kind == RegionKind::Scratch {
            continue;
        }
        for i in 0..r.pages {
            page_set.insert(r.va + (i * PAGE_SIZE) as u64);
        }
    }

    page_set
        .into_iter()
        .filter_map(|va| ctx.read_va(va, PAGE_SIZE).map(|b| (va, b)))
        .collect()
}

fn chase_list(
    ctx: &DumpCtx<'_>,
    va: u64,
    len: u32,
    depth: usize,
    pages: &mut std::collections::BTreeSet<u64>,
) {
    if depth > 8 {
        return;
    }
    mark_range(va, u64::from(len), pages);
    let Some(bytes) = ctx.read_va(va, len as usize) else {
        return;
    };
    let Ok(packets) = parse_list(&bytes) else {
        return;
    };
    for p in packets {
        match p {
            ClPacket::RunShader { va, len, .. } => mark_range(va, u64::from(len), pages),
            ClPacket::Branch { va, len } => chase_list(ctx, va, len, depth + 1, pages),
            _ => {}
        }
    }
}

fn mark_range(va: u64, len: u64, pages: &mut std::collections::BTreeSet<u64>) {
    let first = va & !(PAGE_SIZE as u64 - 1);
    let last = (va + len.max(1) - 1) & !(PAGE_SIZE as u64 - 1);
    let mut p = first;
    while p <= last {
        pages.insert(p);
        p += PAGE_SIZE as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::mali::pgtable::{encode_flags, PteFlags};
    use gr_gpu::timing::JobCost;
    use gr_gpu::v3d::cl::ClWriter;
    use gr_soc::{PhysMem, SharedMem};
    use gr_stack::hooks::RegionSnapshot;

    fn region(
        va: u64,
        pages: usize,
        kind: RegionKind,
        flags: u16,
        first_pa: u64,
    ) -> RegionSnapshot {
        RegionSnapshot {
            va,
            pages,
            kind,
            pte_flags: vec![flags; pages],
            pas: (0..pages)
                .map(|i| first_pa + (i * PAGE_SIZE) as u64)
                .collect(),
        }
    }

    #[test]
    fn mali_policy_follows_permissions() {
        let mem = SharedMem::new(PhysMem::new(0, 16 * PAGE_SIZE));
        let exec_bits = encode_flags(PteFormat::MaliStandard, PteFlags::exec_cpu()) as u16;
        let data_bits = encode_flags(PteFormat::MaliStandard, PteFlags::rw_cpu()) as u16;
        let internal_bits = encode_flags(PteFormat::MaliStandard, PteFlags::internal()) as u16;
        let regions = vec![
            region(0x10000, 1, RegionKind::JobBinary, exec_bits, 0),
            region(0x20000, 1, RegionKind::Data, data_bits, PAGE_SIZE as u64),
            region(
                0x30000,
                2,
                RegionKind::Internal,
                internal_bits,
                2 * PAGE_SIZE as u64,
            ),
        ];
        let ctx = DumpCtx {
            mem: &mem,
            regions: &regions,
            root: JobRoot::MaliChain { head_va: 0x10000 },
        };
        let pages = mali_pages(PteFormat::MaliStandard, &ctx);
        let vas: Vec<u64> = pages.iter().map(|(va, _)| *va).collect();
        assert_eq!(vas, vec![0x10000, 0x20000], "internal pages excluded");
    }

    #[test]
    fn mali_policy_handles_lpae_bits_too() {
        let mem = SharedMem::new(PhysMem::new(0, 8 * PAGE_SIZE));
        let internal_lpae = encode_flags(PteFormat::MaliLpae, PteFlags::internal()) as u16;
        let exec_lpae = encode_flags(PteFormat::MaliLpae, PteFlags::exec_cpu()) as u16;
        let regions = vec![
            region(0x10000, 1, RegionKind::JobBinary, exec_lpae, 0),
            region(
                0x20000,
                1,
                RegionKind::Internal,
                internal_lpae,
                PAGE_SIZE as u64,
            ),
        ];
        let ctx = DumpCtx {
            mem: &mem,
            regions: &regions,
            root: JobRoot::MaliChain { head_va: 0x10000 },
        };
        let vas: Vec<u64> = mali_pages(PteFormat::MaliLpae, &ctx)
            .iter()
            .map(|(va, _)| *va)
            .collect();
        assert_eq!(vas, vec![0x10000]);
    }

    #[test]
    fn v3d_policy_chases_pointers_and_skips_scratch() {
        let mem = SharedMem::new(PhysMem::new(0, 32 * PAGE_SIZE));
        // Control list at VA 0x5000 branches to 0x9000 which runs a shader
        // at 0x4_0000 (outside any hinted region to prove chasing works).
        let regions = vec![
            region(0x5000, 1, RegionKind::JobBinary, 0x3, 0),
            region(0x9000, 1, RegionKind::JobBinary, 0x3, PAGE_SIZE as u64),
            region(0x4_0000, 1, RegionKind::Scratch, 0x3, 2 * PAGE_SIZE as u64),
            region(0x6_0000, 1, RegionKind::Data, 0x3, 3 * PAGE_SIZE as u64),
            region(0x7_0000, 1, RegionKind::Scratch, 0x3, 4 * PAGE_SIZE as u64),
        ];
        let mut sub = ClWriter::new();
        sub.run_shader(0x4_0000, 16, JobCost::default());
        let sub_bytes = sub.finish();
        mem.write(PAGE_SIZE as u64, &sub_bytes).unwrap(); // VA 0x9000 -> PA page 1
        let mut main = ClWriter::new();
        main.branch(0x9000, sub_bytes.len() as u32);
        let main_bytes = main.finish();
        mem.write(0, &main_bytes).unwrap(); // VA 0x5000 -> PA page 0
        let ctx = DumpCtx {
            mem: &mem,
            regions: &regions,
            root: JobRoot::V3dList {
                cl_va: 0x5000,
                cl_len: main_bytes.len() as u32,
            },
        };
        let vas: Vec<u64> = v3d_pages(&ctx).iter().map(|(va, _)| *va).collect();
        assert!(vas.contains(&0x5000), "list page");
        assert!(vas.contains(&0x9000), "branched sub-list page");
        assert!(
            vas.contains(&0x4_0000),
            "shader page found via pointer chase"
        );
        assert!(vas.contains(&0x6_0000), "data hint");
        assert!(
            !vas.contains(&0x7_0000),
            "scratch excluded unless referenced"
        );
    }

    #[test]
    fn v3d_dumps_more_than_mali_for_same_regions() {
        // The paper: "being conservative, the [v3d] recorder has to dump
        // more pages than Mali in general".
        let mem = SharedMem::new(PhysMem::new(0, 32 * PAGE_SIZE));
        let internal_bits = encode_flags(PteFormat::MaliStandard, PteFlags::internal()) as u16;
        let regions = vec![
            region(0x10000, 4, RegionKind::Internal, internal_bits, 0),
            region(0x20000, 1, RegionKind::Data, 0xB, 4 * PAGE_SIZE as u64),
        ];
        let mali_ctx = DumpCtx {
            mem: &mem,
            regions: &regions,
            root: JobRoot::MaliChain { head_va: 0 },
        };
        let v3d_ctx = DumpCtx {
            mem: &mem,
            regions: &regions,
            root: JobRoot::V3dList {
                cl_va: 0,
                cl_len: 0,
            },
        };
        assert!(v3d_pages(&v3d_ctx).len() > mali_pages(PteFormat::MaliStandard, &mali_ctx).len());
    }
}
