//! Magic-value taint tracking for I/O address discovery (§4.4).
//!
//! The runtime is a kernel-bypassing blackbox, so the recorder cannot see
//! where the framework put the input. Instead the record harness injects
//! *synthetic high-entropy inputs* and scans GPU memory for them; output
//! addresses are found by scanning post-run memory for the values the
//! framework returned to the app. Repeating with a second magic input and
//! intersecting the candidates eliminates false matches.

use gr_sim::SimRng;
use gr_soc::{SharedMem, PAGE_SIZE};
use gr_stack::hooks::RegionSnapshot;

/// Generates a high-entropy magic input of `n` f32 values in `[0, 1)`.
pub fn magic_input(n: usize, rng: &mut SimRng) -> Vec<f32> {
    (0..n).map(|_| rng.unit_f64() as f32).collect()
}

/// Serializes f32s to their little-endian byte pattern.
pub fn f32_pattern(vals: &[f32]) -> Vec<u8> {
    let mut b = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b
}

fn find_in(hay: &[u8], base_va: u64, needle: &[u8], hits: &mut Vec<u64>) {
    if needle.is_empty() || hay.len() < needle.len() {
        return;
    }
    let mut i = 0;
    while i + needle.len() <= hay.len() {
        if &hay[i..i + needle.len()] == needle {
            hits.push(base_va + i as u64);
            i += needle.len();
        } else {
            i += 4; // f32-aligned scan
        }
    }
}

/// Scans captured dump pages for `needle`, returning match VAs.
pub fn scan_dump_pages(pages: &[(u64, Vec<u8>)], needle: &[u8]) -> Vec<u64> {
    // Stitch contiguous pages so patterns crossing page boundaries match.
    let mut hits = Vec::new();
    let mut run_va = 0u64;
    let mut run: Vec<u8> = Vec::new();
    for (va, bytes) in pages {
        if !run.is_empty() && run_va + run.len() as u64 == *va {
            run.extend_from_slice(bytes);
        } else {
            find_in(&run, run_va, needle, &mut hits);
            run_va = *va;
            run = bytes.clone();
        }
    }
    find_in(&run, run_va, needle, &mut hits);
    hits
}

/// Scans live GPU memory (all CPU-visible region pages) for `needle`.
pub fn scan_regions(regions: &[RegionSnapshot], mem: &SharedMem, needle: &[u8]) -> Vec<u64> {
    let mut hits = Vec::new();
    for r in regions {
        let mut content = vec![0u8; r.pages * PAGE_SIZE];
        let mut ok = true;
        for (i, &pa) in r.pas.iter().enumerate() {
            if mem
                .read(pa, &mut content[i * PAGE_SIZE..(i + 1) * PAGE_SIZE])
                .is_err()
            {
                ok = false;
                break;
            }
        }
        if ok {
            find_in(&content, r.va, needle, &mut hits);
        }
    }
    hits
}

/// Intersects candidate VAs from two runs (the paper's repeat-and-
/// intersect disambiguation).
pub fn intersect(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().filter(|va| b.contains(va)).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_soc::PhysMem;
    use gr_stack::driver::RegionKind;

    #[test]
    fn magic_is_high_entropy_and_seed_stable() {
        let mut r1 = SimRng::seed_from(5).fork("magic");
        let mut r2 = SimRng::seed_from(5).fork("magic");
        let a = magic_input(64, &mut r1);
        let b = magic_input(64, &mut r2);
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<u32> = a.iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() > 60, "values should be almost all distinct");
    }

    #[test]
    fn dump_scan_finds_pattern_across_page_boundary() {
        let needle = f32_pattern(&[1.25, 2.5, 3.75]);
        let mut page0 = vec![0u8; PAGE_SIZE];
        let mut page1 = vec![0u8; PAGE_SIZE];
        // Place the needle across the boundary.
        let start = PAGE_SIZE - 4;
        page0[start..].copy_from_slice(&needle[..4]);
        page1[..8].copy_from_slice(&needle[4..]);
        let pages = vec![(0x10_0000u64, page0), (0x10_1000u64, page1)];
        let hits = scan_dump_pages(&pages, &needle);
        assert_eq!(hits, vec![0x10_0000 + start as u64]);
    }

    #[test]
    fn intersection_eliminates_false_matches() {
        assert_eq!(
            intersect(&[0x1000, 0x2000], &[0x2000, 0x3000]),
            vec![0x2000]
        );
        assert!(intersect(&[0x1000], &[]).is_empty());
    }

    #[test]
    fn region_scan_reads_through_frames() {
        let mem = SharedMem::new(PhysMem::new(0, 4 * PAGE_SIZE));
        let needle = f32_pattern(&[9.5, -3.25]);
        mem.write(2 * PAGE_SIZE as u64 + 16, &needle).unwrap();
        let regions = vec![RegionSnapshot {
            va: 0x50_0000,
            pages: 1,
            kind: RegionKind::Data,
            pte_flags: vec![0xB],
            pas: vec![2 * PAGE_SIZE as u64],
        }];
        let hits = scan_regions(&regions, &mem, &needle);
        assert_eq!(hits, vec![0x50_0000 + 16]);
    }
}
