//! The record harness — what a developer runs at development time (§3.1).
//!
//! Drives the full stack with the recorder attached, injects magic inputs
//! for taint discovery, slices the workload at the requested granularity,
//! and emits self-contained recordings.

use std::sync::Arc;

use gr_gpu::machine::Machine;
use gr_gpu::timing::JobCost;
use gr_gpu::vm::bytecode::{ActKind, KernelOp};
use gr_mlfw::exec::{GpuExecutor, GpuNetwork};
use gr_mlfw::fusion::{self, Granularity};
use gr_mlfw::layers::ModelSpec;
use gr_mlfw::train::TrainSession;
use gr_recording::{IoSlot, Recording};
use gr_sim::SimRng;
use gr_stack::driver::DriverError;
use gr_stack::runtime::{BufferKind, KernelLaunch};

use crate::builder::{build_recording, BuildConfig};
use crate::sink::{RawEvent, Recorder};
use crate::taint;

/// Inference recordings plus the compiled network (kept for CPU-reference
/// validation) and the discovered I/O addresses.
pub struct InferenceRecordings {
    /// One recording per granularity group, in execution order.
    pub recordings: Vec<Recording>,
    /// The compiled network (op list + weights) for validation.
    pub net: GpuNetwork,
    /// Discovered input VA (must equal `net.input_va`).
    pub input_va: u64,
    /// Discovered output VA (must equal `net.output_va`).
    pub output_va: u64,
}

/// A recorded training iteration.
pub struct TrainingRecording {
    /// The per-iteration recording (weights in + out by address).
    pub recording: Recording,
    /// Initial weight bytes `(va, bytes)` for seeding replays.
    pub initial_weights: Vec<(u64, Vec<u8>)>,
    /// Loss observed during the record run.
    pub record_loss: f32,
}

/// Records workloads end to end.
pub struct RecordHarness {
    machine: Machine,
    recorder: Arc<Recorder>,
    exec: GpuExecutor,
    prologue_end: usize,
    /// Apply §4.5 interval skipping (Fig. 10 ablates with `false`).
    pub skip_idle_intervals: bool,
}

impl std::fmt::Debug for RecordHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordHarness")
            .field("sku", &self.machine.sku().name)
            .finish()
    }
}

impl RecordHarness {
    /// Brings up the full stack with the recorder attached (synchronous
    /// submission enforced, per §2.3).
    ///
    /// # Errors
    ///
    /// Propagates stack bring-up failures.
    pub fn new(machine: Machine) -> Result<Self, DriverError> {
        let recorder = Recorder::new(machine.clock().clone(), machine.sku());
        let exec = GpuExecutor::create(machine.clone(), true, Some(recorder.clone()))?;
        let prologue_end = recorder.mark();
        Ok(RecordHarness {
            machine,
            recorder,
            exec,
            prologue_end,
            skip_idle_intervals: true,
        })
    }

    /// The machine being recorded on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Access to the underlying executor (e.g. for timing probes).
    pub fn executor_mut(&mut self) -> &mut GpuExecutor {
        &mut self.exec
    }

    fn build_cfg(&self, label: String, modeled: u64) -> BuildConfig {
        BuildConfig {
            sku: self.machine.sku(),
            label,
            skip_idle_intervals: self.skip_idle_intervals,
            modeled_gpu_mem_bytes: modeled,
        }
    }

    fn first_dump_pages(&self, from: usize, to: usize) -> Vec<(u64, Vec<u8>)> {
        self.recorder
            .events(from, to)
            .into_iter()
            .find_map(|e| match e.event {
                RawEvent::JobDump { pages, .. } => Some(pages),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Records `model` inference at `granularity`. Runs the workload twice
    /// with different magic inputs for taint-based I/O discovery.
    ///
    /// # Errors
    ///
    /// Fails on stack errors or ambiguous I/O discovery.
    pub fn record_inference(
        &mut self,
        model: &ModelSpec,
        granularity: Granularity,
        seed: u64,
    ) -> Result<InferenceRecordings, DriverError> {
        let net = self.exec.compile(model, seed)?;
        let groups = fusion::groups(&net, granularity);

        // --- Run A (the recorded run) ---
        let mut rng_a = SimRng::seed_from(seed).fork("magicA");
        let magic_a = taint::magic_input(net.input_len(), &mut rng_a);
        self.exec.write_input(&net, &magic_a)?;
        let mut marks = Vec::new();
        for group in &groups {
            self.recorder.reset_dump_cache();
            let m0 = self.recorder.mark();
            for &layer in group {
                self.exec.run_layer(&net, layer)?;
            }
            marks.push((m0, self.recorder.mark()));
        }
        let out_a = self.exec.read_output(&net)?;
        let regions = self.recorder.last_regions();
        // Output taint scans only CPU-visible (Data) allocations — those
        // are the only places an app-facing result can live.
        let data_regions: Vec<_> = regions
            .iter()
            .filter(|r| r.kind == gr_stack::driver::RegionKind::Data)
            .cloned()
            .collect();
        let in_a = taint::scan_dump_pages(
            &self.first_dump_pages(marks[0].0, marks[0].1),
            &taint::f32_pattern(&magic_a),
        );
        let out_hits_a = taint::scan_regions(
            &data_regions,
            self.machine.mem(),
            &taint::f32_pattern(&out_a),
        );

        // --- Run B (discovery confirmation; recording discarded) ---
        let mut rng_b = SimRng::seed_from(seed).fork("magicB");
        let magic_b = taint::magic_input(net.input_len(), &mut rng_b);
        self.exec.write_input(&net, &magic_b)?;
        self.recorder.reset_dump_cache();
        let mb0 = self.recorder.mark();
        for idx in 0..net.layers.len() {
            self.exec.run_layer(&net, idx)?;
        }
        let mb1 = self.recorder.mark();
        let out_b = self.exec.read_output(&net)?;
        let in_b = taint::scan_dump_pages(
            &self.first_dump_pages(mb0, mb1),
            &taint::f32_pattern(&magic_b),
        );
        let out_hits_b = taint::scan_regions(
            &data_regions,
            self.machine.mem(),
            &taint::f32_pattern(&out_b),
        );

        let input_cands = taint::intersect(&in_a, &in_b);
        let output_cands = taint::intersect(&out_hits_a, &out_hits_b);
        let &input_va = input_cands
            .first()
            .ok_or(DriverError::BadState("input not found"))?;
        let &output_va = output_cands
            .first()
            .ok_or(DriverError::BadState("output not found"))?;

        // --- Build recordings from run A ---
        let prologue = self.recorder.events(0, self.prologue_end);
        let mut recordings = Vec::new();
        let n_groups = marks.len();
        for (i, (m0, m1)) in marks.iter().enumerate() {
            let group_events = self.recorder.events(*m0, *m1);
            let inputs = if i == 0 {
                vec![IoSlot {
                    name: "input0".into(),
                    va: input_va,
                    len: (net.input_len() * 4) as u32,
                }]
            } else {
                Vec::new()
            };
            let outputs = if i + 1 == n_groups {
                vec![IoSlot {
                    name: "output0".into(),
                    va: output_va,
                    len: (net.output_len() * 4) as u32,
                }]
            } else {
                Vec::new()
            };
            let cfg = self.build_cfg(
                format!("{}-{}-g{i}", net.model_name, granularity),
                net.modeled_gpu_mem_bytes,
            );
            recordings.push(build_recording(
                &cfg,
                &prologue,
                &regions,
                &group_events,
                inputs,
                outputs,
            ));
        }
        Ok(InferenceRecordings {
            recordings,
            net,
            input_va,
            output_va,
        })
    }

    /// Records one MNIST training iteration (DeepCL-style). Weights are
    /// annotated as input *and* output slots (§4.4 "by value and by
    /// address").
    ///
    /// # Errors
    ///
    /// Propagates stack errors.
    pub fn record_training(&mut self, seed: u64) -> Result<TrainingRecording, DriverError> {
        let rt = self.exec.runtime_mut();
        let sess = TrainSession::build(rt, seed)?;
        let mut rng = SimRng::seed_from(seed).fork("train-img");
        let img = taint::magic_input(
            (gr_mlfw::train::IMG * gr_mlfw::train::IMG) as usize,
            &mut rng,
        );
        self.recorder.reset_dump_cache();
        let m0 = self.recorder.mark();
        let loss = sess.run_iteration(self.exec.runtime_mut(), &img, 3)?;
        let m1 = self.recorder.mark();

        let slot = |name: &str, buf: &gr_stack::runtime::Buffer| IoSlot {
            name: name.into(),
            va: buf.va,
            len: buf.len as u32,
        };
        let inputs = vec![
            slot("image", &sess.x),
            slot("label", &sess.labels),
            slot("w1", &sess.w1),
            slot("wfc", &sess.wfc),
            slot("bfc", &sess.bfc),
        ];
        let outputs = vec![
            slot("probs", &sess.probs),
            slot("w1", &sess.w1),
            slot("wfc", &sess.wfc),
            slot("bfc", &sess.bfc),
        ];
        let prologue = self.recorder.events(0, self.prologue_end);
        let group = self.recorder.events(m0, m1);
        let regions = self.recorder.last_regions();
        let cfg = self.build_cfg("mnist-train-iter".into(), 12 * 1024 * 1024);
        let recording = build_recording(&cfg, &prologue, &regions, &group, inputs, outputs);
        Ok(TrainingRecording {
            recording,
            initial_weights: sess.initial_weights.clone(),
            record_loss: loss,
        })
    }

    /// Records a vector-add math kernel (the §6.4/Fig. 9 cross-SKU
    /// workload: "16M elements vecadd"). `actual_n` elements execute;
    /// `modeled_n` drives the timing model.
    ///
    /// # Errors
    ///
    /// Propagates stack errors.
    pub fn record_vecadd(
        &mut self,
        actual_n: usize,
        modeled_n: u64,
        seed: u64,
    ) -> Result<Recording, DriverError> {
        let rt = self.exec.runtime_mut();
        let a = rt.alloc_buffer(actual_n * 4, BufferKind::Data)?;
        let b = rt.alloc_buffer(actual_n * 4, BufferKind::Data)?;
        let out = rt.alloc_buffer(actual_n * 4, BufferKind::Data)?;
        let mut rng = SimRng::seed_from(seed).fork("vecadd");
        let va_vals = taint::magic_input(actual_n, &mut rng);
        let vb_vals = taint::magic_input(actual_n, &mut rng);
        rt.write_buffer(&a, 0, &taint::f32_pattern(&va_vals))?;
        rt.write_buffer(&b, 0, &taint::f32_pattern(&vb_vals))?;
        self.recorder.reset_dump_cache();
        let m0 = self.recorder.mark();
        let rt = self.exec.runtime_mut();
        rt.launch(&KernelLaunch {
            op: KernelOp::EltwiseAdd {
                a: a.va,
                b: b.va,
                out: out.va,
                n: actual_n as u32,
                act: ActKind::None,
            },
            // Vector kernels on these GPUs are issue-limited: model ~64
            // ALU/LSU slots per element so core count (affinity) governs
            // the replay speed, as in the paper's Fig. 9 experiment.
            cost: JobCost {
                flops: modeled_n * 64,
                bytes: modeled_n,
            },
            kind_key: "eltadd/vec".into(),
            label: "vecadd".into(),
        })?;
        rt.finish()?;
        let m1 = self.recorder.mark();

        let inputs = vec![
            IoSlot {
                name: "a".into(),
                va: a.va,
                len: (actual_n * 4) as u32,
            },
            IoSlot {
                name: "b".into(),
                va: b.va,
                len: (actual_n * 4) as u32,
            },
        ];
        let outputs = vec![IoSlot {
            name: "out".into(),
            va: out.va,
            len: (actual_n * 4) as u32,
        }];
        let prologue = self.recorder.events(0, self.prologue_end);
        let group = self.recorder.events(m0, m1);
        let regions = self.recorder.last_regions();
        let cfg = self.build_cfg(format!("vecadd-{modeled_n}"), modeled_n * 12);
        Ok(build_recording(
            &cfg, &prologue, &regions, &group, inputs, outputs,
        ))
    }

    /// Releases the stack (GPU powered down, ready for a replayer).
    pub fn finish(self) -> Machine {
        self.exec.release();
        self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::sku::{MALI_G71, V3D_RPI4};
    use gr_mlfw::models;

    #[test]
    fn records_mnist_whole_nn_with_discovered_io() {
        let machine = Machine::new(&MALI_G71, 101);
        let mut h = RecordHarness::new(machine).unwrap();
        let recs = h
            .record_inference(&models::mnist(), Granularity::WholeNn, 5)
            .unwrap();
        assert_eq!(recs.recordings.len(), 1);
        let rec = &recs.recordings[0];
        assert_eq!(
            recs.input_va, recs.net.input_va,
            "taint found the true input"
        );
        assert_eq!(
            recs.output_va, recs.net.output_va,
            "taint found the true output"
        );
        assert_eq!(rec.meta.job_count as usize, recs.net.job_count());
        assert!(
            rec.meta.regio_count > 50,
            "regio = {}",
            rec.meta.regio_count
        );
        assert!(!rec.dumps.is_empty());
        assert_eq!(rec.inputs.len(), 1);
        assert_eq!(rec.outputs.len(), 1);
        // Serialization roundtrip of a real recording.
        let bytes = rec.to_bytes();
        let back = gr_recording::Recording::from_bytes(&bytes).unwrap();
        assert_eq!(&back, rec);
        h.finish();
    }

    #[test]
    fn per_layer_granularity_yields_multiple_recordings() {
        let machine = Machine::new(&MALI_G71, 102);
        let mut h = RecordHarness::new(machine).unwrap();
        let recs = h
            .record_inference(&models::mnist(), Granularity::PerLayer, 5)
            .unwrap();
        assert_eq!(recs.recordings.len(), 4, "MNIST has 4 layers");
        assert_eq!(recs.recordings[0].inputs.len(), 1);
        assert!(recs.recordings[1].inputs.is_empty());
        assert_eq!(recs.recordings[3].outputs.len(), 1);
        h.finish();
    }

    #[test]
    fn v3d_recording_dumps_more_and_compresses() {
        let machine = Machine::new(&V3D_RPI4, 103);
        let mut h = RecordHarness::new(machine).unwrap();
        let recs = h
            .record_inference(&models::mnist(), Granularity::WholeNn, 5)
            .unwrap();
        let rec = &recs.recordings[0];
        let raw = rec.dump_bytes();
        let zipped = rec.to_bytes().len();
        assert!(zipped < raw, "zipped {zipped} < raw {raw}");
        h.finish();
    }

    #[test]
    fn training_recording_carries_weight_slots() {
        let machine = Machine::new(&MALI_G71, 104);
        let mut h = RecordHarness::new(machine).unwrap();
        let t = h.record_training(9).unwrap();
        assert_eq!(t.recording.inputs.len(), 5);
        assert_eq!(t.recording.outputs.len(), 4);
        assert_eq!(t.recording.meta.job_count, 17);
        assert!(t.record_loss > 0.0);
        h.finish();
    }

    #[test]
    fn vecadd_recording_is_small() {
        let machine = Machine::new(&MALI_G31, 105);
        let mut h = RecordHarness::new(machine).unwrap();
        let rec = h.record_vecadd(256, 16_000_000, 3).unwrap();
        assert_eq!(rec.meta.job_count, 1);
        assert_eq!(rec.inputs.len(), 2);
        assert_eq!(rec.outputs.len(), 1);
        h.finish();
    }

    use gr_gpu::sku::MALI_G31;
}
