//! The GPUReplay recorder.
//!
//! Lives at the paper's §4 instrumentation seams: it observes every
//! driver↔GPU interaction through [`gr_stack::RecorderSink`], summarizes
//! nondeterministic polling into tolerant `RegReadWait` actions, dumps GPU
//! memory right before each job kick using family-specific policies (the
//! Mali executable-bit heuristic of §6.1; v3d control-list pointer
//! chasing plus alloc-flag hints of §6.2), discovers input/output
//! addresses with magic-value taint scans (§4.4), and decides which
//! inter-action intervals the replayer may skip using the GPU-idle
//! heuristic (§4.5).
//!
//! [`harness::RecordHarness`] drives end-to-end recording of NN inference
//! (at all three Fig. 11 granularities), NN training, and raw kernel
//! workloads.

pub mod builder;
pub mod dump;
pub mod harness;
pub mod sink;
pub mod taint;

pub use harness::RecordHarness;
pub use sink::Recorder;
