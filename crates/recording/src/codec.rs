//! GRZ: the recording compressor.
//!
//! The paper compresses v3d memory dumps with zlib (§6.2); zlib is not
//! available offline, so GRZ is a self-contained LZSS with a 4 KiB window.
//! Dump payloads are dominated by zero pages and repeated structure, which
//! LZSS handles well — zipped/unzipped ratios land in the same regime as
//! the paper's Table 6.
//!
//! Wire format: `"GRZ1"`, u32 uncompressed length, then token groups. Each
//! group starts with a flag byte (bit *i* set ⇒ token *i* is a match),
//! followed by 8 tokens: literals are one byte; matches are three bytes
//! encoding distance−1 (12 bits) and length−3 (12 bits), so a single match
//! covers up to 4 KiB — zero pages collapse to a handful of tokens.

const MAGIC: &[u8; 4] = b"GRZ1";
const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 4098; // 3 + 4095

/// Error decompressing a GRZ stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrzError {
    /// Missing/incorrect magic or truncated header.
    BadHeader,
    /// Stream ended mid-token.
    Truncated,
    /// A match referenced data before the start of output.
    BadMatch,
    /// Output length disagreed with the header.
    LengthMismatch,
}

impl std::fmt::Display for GrzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrzError::BadHeader => write!(f, "bad GRZ header"),
            GrzError::Truncated => write!(f, "GRZ stream truncated"),
            GrzError::BadMatch => write!(f, "GRZ match out of range"),
            GrzError::LengthMismatch => write!(f, "GRZ length mismatch"),
        }
    }
}

impl std::error::Error for GrzError {}

/// Compresses `data`.
pub fn grz_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());

    // Hash chains over 3-byte prefixes for match finding.
    const HASH_SIZE: usize = 1 << 13;
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; data.len().max(1)];
    let hash = |d: &[u8], i: usize| -> usize {
        let h = (u32::from(d[i]) << 16) ^ (u32::from(d[i + 1]) << 8) ^ u32::from(d[i + 2]);
        (h.wrapping_mul(2654435761) as usize >> 19) & (HASH_SIZE - 1)
    };

    let mut i = 0usize;
    let mut flag_pos = 0usize;
    let mut flag = 0u8;
    let mut ntok = 0u8;
    let mut group: Vec<u8> = Vec::with_capacity(17);

    let flush = |out: &mut Vec<u8>,
                 flag: &mut u8,
                 ntok: &mut u8,
                 group: &mut Vec<u8>,
                 flag_pos: &mut usize| {
        let _ = flag_pos;
        out.push(*flag);
        out.extend_from_slice(group);
        *flag = 0;
        *ntok = 0;
        group.clear();
    };

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash(data, i);
            let mut cand = head[h];
            let mut tries = 16;
            while cand != usize::MAX && tries > 0 {
                if i - cand <= WINDOW {
                    let mut l = 0usize;
                    let max = MAX_MATCH.min(data.len() - i);
                    while l < max && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l == MAX_MATCH {
                            break;
                        }
                    }
                } else {
                    break;
                }
                cand = prev[cand];
                tries -= 1;
            }
        }

        if best_len >= MIN_MATCH {
            let d = best_dist - 1;
            let l = best_len - MIN_MATCH;
            group.push((d >> 4) as u8);
            group.push((((d & 0xF) as u8) << 4) | ((l >> 8) as u8 & 0xF));
            group.push((l & 0xFF) as u8);
            flag |= 1 << ntok;
            // Insert hash entries for every position inside the match.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash(data, i);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            group.push(data[i]);
            if i + MIN_MATCH <= data.len() {
                let h = hash(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
        ntok += 1;
        if ntok == 8 {
            flush(&mut out, &mut flag, &mut ntok, &mut group, &mut flag_pos);
        }
    }
    if ntok > 0 {
        flush(&mut out, &mut flag, &mut ntok, &mut group, &mut flag_pos);
    }
    out
}

/// Decompresses a GRZ stream.
///
/// # Errors
///
/// Returns [`GrzError`] for malformed streams.
pub fn grz_decompress(stream: &[u8]) -> Result<Vec<u8>, GrzError> {
    if stream.len() < 8 || &stream[0..4] != MAGIC {
        return Err(GrzError::BadHeader);
    }
    let out_len = u32::from_le_bytes(stream[4..8].try_into().expect("len checked")) as usize;
    let mut out = Vec::with_capacity(out_len);
    let mut pos = 8usize;
    while out.len() < out_len {
        let Some(&flag) = stream.get(pos) else {
            return Err(GrzError::Truncated);
        };
        pos += 1;
        for t in 0..8 {
            if out.len() >= out_len {
                break;
            }
            if flag & (1 << t) != 0 {
                if pos + 3 > stream.len() {
                    return Err(GrzError::Truncated);
                }
                let b0 = stream[pos] as usize;
                let b1 = stream[pos + 1] as usize;
                let b2 = stream[pos + 2] as usize;
                pos += 3;
                let dist = ((b0 << 4) | (b1 >> 4)) + 1;
                let len = (((b1 & 0xF) << 8) | b2) + MIN_MATCH;
                if dist > out.len() {
                    return Err(GrzError::BadMatch);
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                let Some(&b) = stream.get(pos) else {
                    return Err(GrzError::Truncated);
                };
                pos += 1;
                out.push(b);
            }
        }
    }
    if out.len() != out_len {
        return Err(GrzError::LengthMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) {
        let z = grz_compress(data);
        let back = grz_decompress(&z).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn zero_pages_compress_hugely() {
        let data = vec![0u8; 64 * 1024];
        let z = grz_compress(&data);
        assert!(
            z.len() < data.len() / 20,
            "zeros: {} -> {}",
            data.len(),
            z.len()
        );
        assert_eq!(grz_decompress(&z).unwrap(), data);
    }

    #[test]
    fn repeated_structure_compresses() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(&(i % 16).to_le_bytes());
        }
        let z = grz_compress(&data);
        assert!(z.len() < data.len() / 2);
        roundtrip(&data);
    }

    #[test]
    fn incompressible_data_survives() {
        // Pseudo-random bytes: may expand slightly, must round-trip.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_matches_cover_whole_pages() {
        // One 4096-byte zero run should need very few tokens.
        let z = grz_compress(&vec![0u8; 4096]);
        assert!(z.len() < 32, "4K zeros -> {} bytes", z.len());
        assert_eq!(grz_decompress(&z).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn long_range_matches_beyond_window_are_not_used() {
        // Two identical 100-byte blocks separated by > WINDOW of noise.
        let mut data = vec![7u8; 100];
        let mut x = 1u32;
        for _ in 0..WINDOW + 50 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            data.push((x >> 16) as u8);
        }
        data.extend(vec![7u8; 100]);
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        assert_eq!(grz_decompress(b"nope"), Err(GrzError::BadHeader));
        assert_eq!(grz_decompress(b"GRZ1\x01\x00"), Err(GrzError::BadHeader));
        let z = grz_compress(b"hello world hello world");
        assert_eq!(
            grz_decompress(&z[..z.len() - 2]).err(),
            Some(GrzError::Truncated)
        );
        // A match referencing before the origin.
        let bad = [
            b'G',
            b'R',
            b'Z',
            b'1',
            4,
            0,
            0,
            0,
            0b0000_0001,
            0xFF,
            0xF0,
            0x00,
        ];
        assert_eq!(grz_decompress(&bad), Err(GrzError::BadMatch));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            roundtrip(&data);
        }

        #[test]
        fn prop_roundtrip_structured(
            runs in proptest::collection::vec((any::<u8>(), 1usize..64), 0..128)
        ) {
            let mut data = Vec::new();
            for (b, n) in runs {
                data.extend(std::iter::repeat(b).take(n));
            }
            roundtrip(&data);
        }
    }
}
