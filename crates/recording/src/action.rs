//! Replay actions — the paper's Table 2, verbatim.
//!
//! Every action carries a *minimum interval* (§4.5): if the replayer takes
//! `t` to execute the current action it pauses for at least `T − t` before
//! the next one. The recorder sets `T = 0` for intervals the GPU provably
//! sat idle through, and preserves the observed interval otherwise.

/// One replay action. Register offsets are *names* resolved by the
/// replayer against its own register mapping; the recorder and replayer
/// stay oblivious to what most registers mean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Read register `reg` once; a value ≠ `expect` is a replay error
    /// unless `ignore` is set (registers with nondeterministic values).
    RegReadOnce {
        /// Register offset.
        reg: u32,
        /// Expected value.
        expect: u32,
        /// Tolerate any value.
        ignore: bool,
    },
    /// Poll `reg` until `(value & mask) == val`, failing after `timeout_ns`.
    /// Summarizes a nondeterministic-length polling loop.
    RegReadWait {
        /// Register offset.
        reg: u32,
        /// Bits to compare.
        mask: u32,
        /// Value to wait for.
        val: u32,
        /// Give-up horizon in nanoseconds.
        timeout_ns: u64,
    },
    /// Write `val` to the bits of `reg` selected by `mask`.
    RegWrite {
        /// Register offset.
        reg: u32,
        /// Bit-select mask (`u32::MAX` = whole register).
        mask: u32,
        /// Value to write.
        val: u32,
    },
    /// Point the GPU at the page tables the replayer rebuilt. The replayer
    /// substitutes its own table base for the record-time one (physical
    /// layout differs between record and replay).
    SetGpuPgtable,
    /// Allocate and map `pte_flags.len()` pages of GPU memory at `va`,
    /// reproducing the recorded per-page permission bits (a page-table
    /// dump). Flags are opaque to the replayer; the cross-SKU patcher
    /// rewrites them when formats differ.
    MapGpuMem {
        /// First virtual address.
        va: u64,
        /// Low PTE bits for each page, in the *recording* SKU's format.
        pte_flags: Vec<u16>,
    },
    /// Unmap the region at `va` and free its physical pages.
    UnmapGpuMem {
        /// First virtual address.
        va: u64,
    },
    /// Load memory dump `dump_idx` at its virtual address.
    Upload {
        /// Index into the recording's dump table.
        dump_idx: u32,
    },
    /// Copy an app-supplied input buffer into GPU memory (slot resolved
    /// against the recording's input table).
    CopyToGpu {
        /// Input slot index.
        slot: u32,
    },
    /// Copy GPU memory out to an app-supplied output buffer.
    CopyFromGpu {
        /// Output slot index.
        slot: u32,
    },
    /// Wait for a GPU interrupt on `line`; a timeout is a replay error.
    /// Interrupt handling is done by replaying the subsequent actions.
    WaitIrq {
        /// IRQ line number.
        line: u32,
        /// Give-up horizon in nanoseconds.
        timeout_ns: u64,
    },
    /// Marks interrupt-context entry/exit (the nano driver switches CPU
    /// context and `eret`s just as the record-time handler did).
    IrqContext {
        /// `true` = enter handler, `false` = leave (eret).
        enter: bool,
    },
}

impl Action {
    /// Numeric tag used by the container encoding.
    pub fn tag(&self) -> u8 {
        match self {
            Action::RegReadOnce { .. } => 1,
            Action::RegReadWait { .. } => 2,
            Action::RegWrite { .. } => 3,
            Action::SetGpuPgtable => 4,
            Action::MapGpuMem { .. } => 5,
            Action::UnmapGpuMem { .. } => 6,
            Action::Upload { .. } => 7,
            Action::CopyToGpu { .. } => 8,
            Action::CopyFromGpu { .. } => 9,
            Action::WaitIrq { .. } => 10,
            Action::IrqContext { .. } => 11,
        }
    }

    /// `true` for actions that touch a register (used by RegIO counting in
    /// Table 6 and by the verifier's register whitelist).
    pub fn touches_register(&self) -> Option<u32> {
        match self {
            Action::RegReadOnce { reg, .. }
            | Action::RegReadWait { reg, .. }
            | Action::RegWrite { reg, .. } => Some(*reg),
            _ => None,
        }
    }
}

/// An action plus its §4.5 pacing interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedAction {
    /// The action.
    pub action: Action,
    /// Minimum interval (ns) between the *previous* action and this one.
    /// Zero means "fast-forward": the recorder proved the GPU idle across
    /// the recorded gap.
    pub min_interval_ns: u64,
}

impl TimedAction {
    /// An action with no pacing requirement.
    pub fn immediate(action: Action) -> Self {
        TimedAction {
            action,
            min_interval_ns: 0,
        }
    }

    /// An action that must not start before `ns` nanoseconds have elapsed
    /// since the previous action.
    pub fn paced(action: Action, ns: u64) -> Self {
        TimedAction {
            action,
            min_interval_ns: ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique() {
        let actions = vec![
            Action::RegReadOnce {
                reg: 0,
                expect: 0,
                ignore: false,
            },
            Action::RegReadWait {
                reg: 0,
                mask: 0,
                val: 0,
                timeout_ns: 0,
            },
            Action::RegWrite {
                reg: 0,
                mask: 0,
                val: 0,
            },
            Action::SetGpuPgtable,
            Action::MapGpuMem {
                va: 0,
                pte_flags: vec![],
            },
            Action::UnmapGpuMem { va: 0 },
            Action::Upload { dump_idx: 0 },
            Action::CopyToGpu { slot: 0 },
            Action::CopyFromGpu { slot: 0 },
            Action::WaitIrq {
                line: 0,
                timeout_ns: 0,
            },
            Action::IrqContext { enter: true },
        ];
        let mut tags: Vec<u8> = actions.iter().map(Action::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), actions.len());
    }

    #[test]
    fn register_classification() {
        assert_eq!(
            Action::RegWrite {
                reg: 0x18,
                mask: 0,
                val: 0
            }
            .touches_register(),
            Some(0x18)
        );
        assert_eq!(Action::SetGpuPgtable.touches_register(), None);
        assert_eq!(Action::Upload { dump_idx: 1 }.touches_register(), None);
    }

    #[test]
    fn pacing_constructors() {
        let a = TimedAction::immediate(Action::SetGpuPgtable);
        assert_eq!(a.min_interval_ns, 0);
        let b = TimedAction::paced(Action::SetGpuPgtable, 500);
        assert_eq!(b.min_interval_ns, 500);
    }
}
