//! The on-disk recording container.
//!
//! Layout: magic `GREC`, format version, FNV-1a checksum of the payload,
//! then the payload: metadata, actions, I/O slots, and the GRZ-compressed
//! dump section. [`Recording::to_bytes`]/[`Recording::from_bytes`] are the
//! only (de)serialization paths; the replayer's verifier re-checks the
//! checksum and every structural invariant on load.

use crate::action::{Action, TimedAction};
use crate::codec::{grz_compress, grz_decompress, GrzError};
use crate::meta::{Dump, IoSlot, RecordingMeta};

const MAGIC: &[u8; 4] = b"GREC";
const VERSION: u32 = 1;

/// A complete recording: everything needed to reproduce a fixed sequence
/// of GPU jobs on new input.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// Identity and accounting.
    pub meta: RecordingMeta,
    /// The replay action sequence.
    pub actions: Vec<TimedAction>,
    /// Captured memory regions referenced by `Action::Upload`.
    pub dumps: Vec<Dump>,
    /// Discovered input slots referenced by `Action::CopyToGpu`.
    pub inputs: Vec<IoSlot>,
    /// Discovered output slots referenced by `Action::CopyFromGpu`.
    pub outputs: Vec<IoSlot>,
}

/// Error decoding or validating a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Wrong magic / truncated header.
    BadHeader,
    /// Unsupported format version.
    BadVersion(u32),
    /// Payload checksum mismatch (corrupt or tampered recording).
    ChecksumMismatch,
    /// Payload ended mid-field.
    Truncated,
    /// Unknown action tag.
    BadAction(u8),
    /// Dump section failed to decompress.
    Dump(GrzError),
    /// A string field was not valid UTF-8.
    BadString,
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::BadHeader => write!(f, "bad recording header"),
            ContainerError::BadVersion(v) => write!(f, "unsupported recording version {v}"),
            ContainerError::ChecksumMismatch => write!(f, "recording checksum mismatch"),
            ContainerError::Truncated => write!(f, "recording truncated"),
            ContainerError::BadAction(t) => write!(f, "unknown action tag {t}"),
            ContainerError::Dump(e) => write!(f, "dump section: {e}"),
            ContainerError::BadString => write!(f, "invalid utf-8 in recording"),
        }
    }
}

impl std::error::Error for ContainerError {}

impl From<GrzError> for ContainerError {
    fn from(e: GrzError) -> Self {
        ContainerError::Dump(e)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[derive(Default)]
struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ContainerError> {
        let end = self.pos.checked_add(n).ok_or(ContainerError::Truncated)?;
        if end > self.buf.len() {
            return Err(ContainerError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ContainerError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ContainerError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }
    fn u32(&mut self) -> Result<u32, ContainerError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }
    fn u64(&mut self) -> Result<u64, ContainerError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }
    fn bool(&mut self) -> Result<bool, ContainerError> {
        Ok(self.u8()? != 0)
    }
    fn str(&mut self) -> Result<String, ContainerError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| ContainerError::BadString)
    }
    fn bytes(&mut self) -> Result<Vec<u8>, ContainerError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

impl Recording {
    /// Creates an empty recording with the given metadata.
    pub fn new(meta: RecordingMeta) -> Self {
        Recording {
            meta,
            actions: Vec::new(),
            dumps: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Total uncompressed dump bytes (Table 6's "RecSize unzip" driver).
    pub fn dump_bytes(&self) -> usize {
        self.dumps.iter().map(|d| d.bytes.len()).sum()
    }

    /// Serializes to the container format (dumps GRZ-compressed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = W::default();
        // Metadata.
        p.str(&self.meta.family);
        p.str(&self.meta.sku_name);
        p.u32(self.meta.gpu_id);
        p.str(&self.meta.label);
        p.u32(self.meta.job_count);
        p.u32(self.meta.regio_count);
        p.u64(self.meta.peak_mapped_pages);
        p.u64(self.meta.modeled_gpu_mem_bytes);
        // Actions.
        p.u32(self.actions.len() as u32);
        for ta in &self.actions {
            p.u64(ta.min_interval_ns);
            p.u8(ta.action.tag());
            match &ta.action {
                Action::RegReadOnce {
                    reg,
                    expect,
                    ignore,
                } => {
                    p.u32(*reg);
                    p.u32(*expect);
                    p.bool(*ignore);
                }
                Action::RegReadWait {
                    reg,
                    mask,
                    val,
                    timeout_ns,
                } => {
                    p.u32(*reg);
                    p.u32(*mask);
                    p.u32(*val);
                    p.u64(*timeout_ns);
                }
                Action::RegWrite { reg, mask, val } => {
                    p.u32(*reg);
                    p.u32(*mask);
                    p.u32(*val);
                }
                Action::SetGpuPgtable => {}
                Action::MapGpuMem { va, pte_flags } => {
                    p.u64(*va);
                    p.u32(pte_flags.len() as u32);
                    for f in pte_flags {
                        p.u16(*f);
                    }
                }
                Action::UnmapGpuMem { va } => p.u64(*va),
                Action::Upload { dump_idx } => p.u32(*dump_idx),
                Action::CopyToGpu { slot } => p.u32(*slot),
                Action::CopyFromGpu { slot } => p.u32(*slot),
                Action::WaitIrq { line, timeout_ns } => {
                    p.u32(*line);
                    p.u64(*timeout_ns);
                }
                Action::IrqContext { enter } => p.bool(*enter),
            }
        }
        // I/O slots.
        for slots in [&self.inputs, &self.outputs] {
            p.u32(slots.len() as u32);
            for s in slots {
                p.str(&s.name);
                p.u64(s.va);
                p.u32(s.len);
            }
        }
        // Dumps: VAs+lengths in the clear, payload compressed as one blob.
        p.u32(self.dumps.len() as u32);
        let mut payload = Vec::new();
        for d in &self.dumps {
            p.u64(d.va);
            p.u32(d.bytes.len() as u32);
            payload.extend_from_slice(&d.bytes);
        }
        p.bytes(&grz_compress(&payload));

        let mut out = Vec::with_capacity(p.buf.len() + 20);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a(&p.buf).to_le_bytes());
        out.extend_from_slice(&p.buf);
        out
    }

    /// Parses a container, verifying checksum and structure.
    ///
    /// # Errors
    ///
    /// Returns [`ContainerError`] on any structural or integrity problem;
    /// a recording that fails here is rejected before the replayer's
    /// semantic verifier even runs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Recording, ContainerError> {
        if bytes.len() < 16 || &bytes[0..4] != MAGIC {
            return Err(ContainerError::BadHeader);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("len"));
        if version != VERSION {
            return Err(ContainerError::BadVersion(version));
        }
        let checksum = u64::from_le_bytes(bytes[8..16].try_into().expect("len"));
        let payload = &bytes[16..];
        if fnv1a(payload) != checksum {
            return Err(ContainerError::ChecksumMismatch);
        }
        let mut r = R {
            buf: payload,
            pos: 0,
        };
        let mut meta = RecordingMeta::new("", "", 0, "");
        meta.family = r.str()?;
        meta.sku_name = r.str()?;
        meta.gpu_id = r.u32()?;
        meta.label = r.str()?;
        meta.job_count = r.u32()?;
        meta.regio_count = r.u32()?;
        meta.peak_mapped_pages = r.u64()?;
        meta.modeled_gpu_mem_bytes = r.u64()?;

        let n_actions = r.u32()? as usize;
        let mut actions = Vec::with_capacity(n_actions.min(1 << 20));
        for _ in 0..n_actions {
            let min_interval_ns = r.u64()?;
            let tag = r.u8()?;
            let action = match tag {
                1 => Action::RegReadOnce {
                    reg: r.u32()?,
                    expect: r.u32()?,
                    ignore: r.bool()?,
                },
                2 => Action::RegReadWait {
                    reg: r.u32()?,
                    mask: r.u32()?,
                    val: r.u32()?,
                    timeout_ns: r.u64()?,
                },
                3 => Action::RegWrite {
                    reg: r.u32()?,
                    mask: r.u32()?,
                    val: r.u32()?,
                },
                4 => Action::SetGpuPgtable,
                5 => {
                    let va = r.u64()?;
                    let n = r.u32()? as usize;
                    let mut pte_flags = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        pte_flags.push(r.u16()?);
                    }
                    Action::MapGpuMem { va, pte_flags }
                }
                6 => Action::UnmapGpuMem { va: r.u64()? },
                7 => Action::Upload { dump_idx: r.u32()? },
                8 => Action::CopyToGpu { slot: r.u32()? },
                9 => Action::CopyFromGpu { slot: r.u32()? },
                10 => Action::WaitIrq {
                    line: r.u32()?,
                    timeout_ns: r.u64()?,
                },
                11 => Action::IrqContext { enter: r.bool()? },
                other => return Err(ContainerError::BadAction(other)),
            };
            actions.push(TimedAction {
                action,
                min_interval_ns,
            });
        }

        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for slots in [&mut inputs, &mut outputs] {
            let n = r.u32()? as usize;
            for _ in 0..n {
                slots.push(IoSlot {
                    name: r.str()?,
                    va: r.u64()?,
                    len: r.u32()?,
                });
            }
        }

        let n_dumps = r.u32()? as usize;
        let mut headers = Vec::with_capacity(n_dumps.min(1 << 16));
        for _ in 0..n_dumps {
            headers.push((r.u64()?, r.u32()? as usize));
        }
        let blob = r.bytes()?;
        let payload = grz_decompress(&blob)?;
        let total: usize = headers.iter().map(|(_, l)| *l).sum();
        if total != payload.len() {
            return Err(ContainerError::Truncated);
        }
        let mut dumps = Vec::with_capacity(headers.len());
        let mut off = 0usize;
        for (va, len) in headers {
            dumps.push(Dump {
                va,
                bytes: payload[off..off + len].to_vec(),
            });
            off += len;
        }

        Ok(Recording {
            meta,
            actions,
            dumps,
            inputs,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Recording {
        let mut rec = Recording::new(RecordingMeta::new("mali", "G71", 0x6956_0010, "vecadd"));
        rec.meta.job_count = 2;
        rec.meta.regio_count = 40;
        rec.meta.peak_mapped_pages = 10;
        rec.meta.modeled_gpu_mem_bytes = 1 << 20;
        rec.actions = vec![
            TimedAction::immediate(Action::RegReadOnce {
                reg: 0,
                expect: 0x6956_0010,
                ignore: false,
            }),
            TimedAction::paced(
                Action::RegWrite {
                    reg: 0x18,
                    mask: u32::MAX,
                    val: 1,
                },
                1000,
            ),
            TimedAction::immediate(Action::RegReadWait {
                reg: 8,
                mask: 0x100,
                val: 0x100,
                timeout_ns: 1_000_000,
            }),
            TimedAction::immediate(Action::SetGpuPgtable),
            TimedAction::immediate(Action::MapGpuMem {
                va: 0x10_0000,
                pte_flags: vec![0xF, 0xB],
            }),
            TimedAction::immediate(Action::Upload { dump_idx: 0 }),
            TimedAction::immediate(Action::CopyToGpu { slot: 0 }),
            TimedAction::immediate(Action::WaitIrq {
                line: 0,
                timeout_ns: 10_000_000_000,
            }),
            TimedAction::immediate(Action::IrqContext { enter: true }),
            TimedAction::immediate(Action::RegWrite {
                reg: 0x2004,
                mask: u32::MAX,
                val: 1,
            }),
            TimedAction::immediate(Action::IrqContext { enter: false }),
            TimedAction::immediate(Action::CopyFromGpu { slot: 0 }),
            TimedAction::immediate(Action::UnmapGpuMem { va: 0x10_0000 }),
        ];
        rec.dumps = vec![
            Dump {
                va: 0x10_0000,
                bytes: vec![0xAB; 4096],
            },
            Dump {
                va: 0x10_1000,
                bytes: (0..=255u8).cycle().take(8192).collect(),
            },
        ];
        rec.inputs = vec![IoSlot {
            name: "input0".into(),
            va: 0x20_0000,
            len: 1024,
        }];
        rec.outputs = vec![IoSlot {
            name: "out0".into(),
            va: 0x20_1000,
            len: 40,
        }];
        rec
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let rec = sample();
        let bytes = rec.to_bytes();
        let back = Recording::from_bytes(&bytes).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.dump_bytes(), 4096 + 8192);
    }

    #[test]
    fn compression_shrinks_redundant_dumps() {
        let rec = sample();
        let bytes = rec.to_bytes();
        assert!(
            bytes.len() < rec.dump_bytes(),
            "container ({}) should be smaller than raw dumps ({})",
            bytes.len(),
            rec.dump_bytes()
        );
    }

    #[test]
    fn tampering_is_detected() {
        let rec = sample();
        let mut bytes = rec.to_bytes();
        // Flip a payload byte: checksum must catch it.
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert_eq!(
            Recording::from_bytes(&bytes),
            Err(ContainerError::ChecksumMismatch)
        );
    }

    #[test]
    fn header_validation() {
        assert_eq!(Recording::from_bytes(b"xx"), Err(ContainerError::BadHeader));
        let rec = sample();
        let mut bytes = rec.to_bytes();
        bytes[4] = 9; // version
        assert_eq!(
            Recording::from_bytes(&bytes),
            Err(ContainerError::BadVersion(9))
        );
        bytes[0] = b'X';
        assert_eq!(
            Recording::from_bytes(&bytes),
            Err(ContainerError::BadHeader)
        );
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes();
        // Any prefix must fail cleanly (checksum or truncation), never panic.
        for cut in (0..bytes.len()).step_by(97) {
            assert!(Recording::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn empty_recording_roundtrips() {
        let rec = Recording::new(RecordingMeta::new("v3d", "v3d", 1, "empty"));
        let back = Recording::from_bytes(&rec.to_bytes()).unwrap();
        assert!(back.actions.is_empty());
        assert!(back.dumps.is_empty());
    }
}
