//! Recording metadata: SKU binding, memory dumps, and I/O slots.

/// Identity and accounting data carried by every recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordingMeta {
    /// GPU family ("mali" / "v3d") — selects the replayer's nano-driver
    /// personality and register whitelist.
    pub family: String,
    /// SKU name the workload was recorded on ("G71").
    pub sku_name: String,
    /// Value the ID register must return at replay time. By default GR
    /// expects record/replay hardware to match exactly (§3.1); the §6.4
    /// patcher rewrites this field.
    pub gpu_id: u32,
    /// Human label ("alexnet-layer3").
    pub label: String,
    /// Number of GPU jobs the recording submits.
    pub job_count: u32,
    /// Number of register interactions (Table 6's "#RegIO").
    pub regio_count: u32,
    /// Peak GPU physical memory the recording maps, in pages (the §5.1
    /// verifier enforces this as a cap).
    pub peak_mapped_pages: u64,
    /// Modeled full-size GPU memory footprint in bytes (Table 6's
    /// "GPU Mem" column; informational).
    pub modeled_gpu_mem_bytes: u64,
}

impl RecordingMeta {
    /// Creates metadata with zeroed counters.
    pub fn new(family: &str, sku_name: &str, gpu_id: u32, label: &str) -> Self {
        RecordingMeta {
            family: family.to_string(),
            sku_name: sku_name.to_string(),
            gpu_id,
            label: label.to_string(),
            job_count: 0,
            regio_count: 0,
            peak_mapped_pages: 0,
            modeled_gpu_mem_bytes: 0,
        }
    }
}

/// One captured GPU memory region, restored at `va` during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dump {
    /// Target GPU virtual address.
    pub va: u64,
    /// Raw bytes (uncompressed in memory; the container compresses them).
    pub bytes: Vec<u8>,
}

/// A discovered input or output buffer (§4.4 taint tracking results).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoSlot {
    /// Slot name ("input0", "logits").
    pub name: String,
    /// GPU virtual address the app's data is injected to / extracted from.
    pub va: u64,
    /// Byte length.
    pub len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_construction() {
        let m = RecordingMeta::new("mali", "G71", 0x42, "mnist");
        assert_eq!(m.family, "mali");
        assert_eq!(m.gpu_id, 0x42);
        assert_eq!(m.job_count, 0);
    }

    #[test]
    fn dump_and_slot_hold_data() {
        let d = Dump {
            va: 0x1000,
            bytes: vec![1, 2, 3],
        };
        assert_eq!(d.bytes.len(), 3);
        let s = IoSlot {
            name: "in".into(),
            va: 0x2000,
            len: 64,
        };
        assert_eq!(s.len, 64);
    }
}
