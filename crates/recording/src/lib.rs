//! The GPUReplay recording format.
//!
//! A recording encodes a fixed sequence of GPU jobs: the replay actions of
//! the paper's Table 2 ([`Action`]), the GPU memory dumps that hold the
//! proprietary job binaries, the discovered input/output addresses, and
//! metadata binding the recording to a GPU SKU. Recordings serialize to a
//! compact binary container ([`Recording::to_bytes`]) with GRZ (LZSS)
//! compression of the dump payload — standing in for the paper's zlib.
//!
//! # Example
//!
//! ```
//! use gr_recording::{Action, Recording, RecordingMeta, TimedAction};
//!
//! let mut rec = Recording::new(RecordingMeta::new("mali", "G71", 0x6956_0010, "demo"));
//! rec.actions.push(TimedAction::immediate(Action::RegWrite {
//!     reg: 0x18,
//!     mask: u32::MAX,
//!     val: 1,
//! }));
//! let bytes = rec.to_bytes();
//! let back = Recording::from_bytes(&bytes)?;
//! assert_eq!(back.actions.len(), 1);
//! # Ok::<(), gr_recording::ContainerError>(())
//! ```

pub mod action;
pub mod codec;
pub mod container;
pub mod meta;

pub use action::{Action, TimedAction};
pub use codec::{grz_compress, grz_decompress};
pub use container::{ContainerError, Recording};
pub use meta::{Dump, IoSlot, RecordingMeta};
