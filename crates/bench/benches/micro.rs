//! Criterion micro-benchmarks: real wall-clock cost of the replayer's hot
//! paths (action interpretation, verification, GRZ codec, GPU VM kernels).

use criterion::{criterion_group, criterion_main, Criterion};
use gr_gpu::{sku, Machine};
use gr_mlfw::fusion::Granularity;
use gr_mlfw::models;
use gr_recording::{grz_compress, grz_decompress, Recording};
use gr_replayer::{EnvKind, Environment, NanoIface, ReplayIo, Replayer};

fn bench_replay(c: &mut Criterion) {
    let rm = gr_bench::record_model(
        &sku::MALI_G71,
        &models::mnist(),
        Granularity::WholeNn,
        true,
        7,
    );
    let input: Vec<f32> = (0..rm.net.input_len()).map(|i| i as f32 * 0.001).collect();
    c.bench_function("replay_mnist_whole_nn", |b| {
        b.iter(|| {
            let machine = Machine::new(&sku::MALI_G71, 9);
            let env = Environment::new(EnvKind::UserLevel, machine).unwrap();
            let mut replayer = Replayer::new(env);
            let id = replayer.load(rm.recordings[0].clone()).unwrap();
            let mut io = ReplayIo::for_recording(replayer.recording(id));
            io.set_input_f32(0, &input).unwrap();
            replayer.replay(id, &mut io).unwrap();
            replayer.cleanup();
        })
    });
    c.bench_function("verify_mnist_recording", |b| {
        b.iter(|| gr_replayer::verify::verify(&rm.recordings[0], NanoIface::Mali, 1 << 20).unwrap())
    });
    let bytes = rm.recordings[0].to_bytes();
    c.bench_function("container_decode", |b| {
        b.iter(|| Recording::from_bytes(&bytes).unwrap())
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut data = vec![0u8; 256 * 1024];
    for (i, b) in data.iter_mut().enumerate() {
        *b = if i % 7 == 0 { (i / 7) as u8 } else { 0 };
    }
    let z = grz_compress(&data);
    c.bench_function("grz_compress_256k", |b| b.iter(|| grz_compress(&data)));
    c.bench_function("grz_decompress_256k", |b| {
        b.iter(|| grz_decompress(&z).unwrap())
    });
}

fn bench_kernels(c: &mut Criterion) {
    use gr_gpu::vm::bytecode::ActKind;
    use gr_gpu::vm::kernels;
    let x: Vec<f32> = (0..8 * 28 * 28).map(|i| (i as f32 * 0.01).sin()).collect();
    let w: Vec<f32> = (0..16 * 8 * 9).map(|i| (i as f32 * 0.02).cos()).collect();
    c.bench_function("vm_conv2d_8x28x28_to_16", |b| {
        b.iter(|| kernels::conv2d(&x, &w, None, 8, 28, 28, 16, 3, 3, 1, 1, 1, ActKind::Relu))
    });
    let a: Vec<f32> = (0..128 * 128).map(|i| i as f32 * 1e-4).collect();
    c.bench_function("vm_matmul_128", |b| {
        b.iter(|| kernels::matmul(&a, &a, 128, 128, 128))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_replay, bench_codec, bench_kernels
}
criterion_main!(benches);
