//! Regenerates one paper artifact; see gr-bench docs.
fn main() {
    println!("{}", gr_bench::fig11_granularity());
}
