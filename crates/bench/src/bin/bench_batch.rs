//! Benchmark for batched warm-machine replay (`Replayer::replay_batch`).
//!
//! Records MNIST once per SKU, then replays a 16-input batch two ways on
//! a warm replayer:
//!
//! * **sequential** — 16 plain `replay()` calls, each paying the full
//!   action stream (dump re-upload, idempotent remaps, register
//!   prologue);
//! * **batched** — one `replay_batch` call that runs the prologue once
//!   and only the per-input suffix per element.
//!
//! Reports *virtual-time* throughput (deterministic — what the cost model
//! says the hardware+software pipeline takes) and host wall-clock, and
//! hard-fails unless batched outputs are bit-identical to the sequential
//! outputs and to the CPU reference.
//!
//! Usage: `bench_batch [--smoke] [--out PATH]`
//!
//! Writes `BENCH_batch.json` at the workspace root (or `PATH`).

use std::fmt::Write as _;
use std::time::Instant;

use gr_bench::record_model;
use gr_gpu::{sku, GpuSku};
use gr_mlfw::cpu_ref;
use gr_mlfw::fusion::Granularity;
use gr_mlfw::models;
use gr_replayer::{EnvKind, Environment, ReplayIo, Replayer};
use gr_sim::SimRng;

const BATCH: usize = 16;

struct CaseResult {
    sku: &'static str,
    env: EnvKind,
    seq_virtual_ms: f64,
    batch_virtual_ms: f64,
    seq_wall_ms: f64,
    batch_wall_ms: f64,
    prologue_actions: usize,
    suffix_actions: usize,
}

impl CaseResult {
    fn virtual_speedup(&self) -> f64 {
        self.seq_virtual_ms / self.batch_virtual_ms
    }
    fn wall_speedup(&self) -> f64 {
        self.seq_wall_ms / self.batch_wall_ms
    }
}

fn random_input(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.unit_f64() as f32).collect()
}

#[allow(clippy::too_many_lines)]
fn batch_case(sku_ref: &'static GpuSku, env: EnvKind, wall_reps: usize) -> CaseResult {
    let rm = record_model(sku_ref, &models::mnist(), Granularity::WholeNn, true, 7);
    let inputs: Vec<Vec<f32>> = (0..BATCH)
        .map(|k| random_input(rm.net.input_len(), 1000 + k as u64))
        .collect();
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|i| cpu_ref::cpu_infer(&rm.net, i))
        .collect();

    let fresh_replayer = || {
        let machine = gr_gpu::Machine::new(sku_ref, 7);
        let environment = Environment::new(env, machine).expect("env");
        let mut replayer = Replayer::new(environment);
        // This bench measures pure per-batch prologue amortization; the
        // cross-batch residency win is measured by `bench_residency`.
        replayer.set_residency(false);
        let id = replayer.load_bytes(&rm.blobs[0]).expect("load");
        (replayer, id)
    };
    let make_ios = |replayer: &Replayer, id: usize| -> Vec<ReplayIo> {
        inputs
            .iter()
            .map(|input| {
                let mut io = ReplayIo::for_recording(replayer.recording(id));
                io.set_input_f32(0, input).expect("input shape");
                io
            })
            .collect()
    };

    // Sequential: 16 plain replay() calls on a warm replayer. One warm-up
    // element first so both modes start from identical warm state.
    let (mut replayer, id) = fresh_replayer();
    let mut warm = make_ios(&replayer, id);
    replayer.replay(id, &mut warm[0]).expect("warm-up");
    let machine = replayer.env().machine().clone();
    let t0 = machine.now();
    let mut seq_wall_ms = f64::INFINITY;
    let mut seq_outputs = Vec::new();
    for rep in 0..wall_reps {
        let mut ios = make_ios(&replayer, id);
        let w = Instant::now();
        for io in ios.iter_mut() {
            replayer.replay(id, io).expect("sequential replay");
        }
        seq_wall_ms = seq_wall_ms.min(w.elapsed().as_secs_f64() * 1e3);
        if rep == 0 {
            seq_outputs = ios
                .iter()
                .map(|io| io.output_f32(0).expect("output"))
                .collect();
        }
    }
    let seq_virtual_ms = (machine.now() - t0).as_nanos() as f64 / 1e6 / wall_reps as f64;
    replayer.cleanup();

    // Batched: one replay_batch of the same 16 inputs on a warm replayer.
    let (mut replayer, id) = fresh_replayer();
    let mut warm = make_ios(&replayer, id);
    replayer.replay(id, &mut warm[0]).expect("warm-up");
    let machine = replayer.env().machine().clone();
    let t0 = machine.now();
    let mut batch_wall_ms = f64::INFINITY;
    let mut batch_outputs = Vec::new();
    let mut report = None;
    for rep in 0..wall_reps {
        let mut ios = make_ios(&replayer, id);
        let w = Instant::now();
        let r = replayer.replay_batch(id, &mut ios).expect("batched replay");
        batch_wall_ms = batch_wall_ms.min(w.elapsed().as_secs_f64() * 1e3);
        if rep == 0 {
            batch_outputs = ios
                .iter()
                .map(|io| io.output_f32(0).expect("output"))
                .collect();
            report = Some(r);
        }
    }
    let batch_virtual_ms = (machine.now() - t0).as_nanos() as f64 / 1e6 / wall_reps as f64;
    replayer.cleanup();
    let report = report.expect("at least one rep");
    assert!(report.amortized, "MNIST batch must take the amortized path");

    // Bit-exactness gate: batch == sequential == CPU reference.
    assert_eq!(
        batch_outputs, seq_outputs,
        "{}: batched outputs diverged from sequential",
        sku_ref.name
    );
    assert_eq!(
        batch_outputs, expected,
        "{}: outputs diverged from CPU reference",
        sku_ref.name
    );

    CaseResult {
        sku: sku_ref.name,
        env,
        seq_virtual_ms,
        batch_virtual_ms,
        seq_wall_ms,
        batch_wall_ms,
        prologue_actions: report.prologue_actions,
        suffix_actions: report.suffix_actions,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json").to_string()
        });
    let wall_reps = if smoke { 2 } else { 12 };

    eprintln!("bench_batch: {BATCH}-input MNIST batch, Mali G71...");
    let mali = batch_case(&sku::MALI_G71, EnvKind::UserLevel, wall_reps);
    eprintln!("bench_batch: {BATCH}-input MNIST batch, v3d...");
    let v3d = batch_case(&sku::V3D_RPI4, EnvKind::KernelLevel, wall_reps);

    let cases = [mali, v3d];
    let min_virtual = cases
        .iter()
        .map(CaseResult::virtual_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_wall = cases
        .iter()
        .map(CaseResult::wall_speedup)
        .fold(f64::INFINITY, f64::min);

    let mut json = String::from("{\n  \"bench\": \"batch_replay\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"sku\": \"{}\", \"env\": \"{}\", \
             \"sequential_virtual_ms\": {:.3}, \"batch_virtual_ms\": {:.3}, \
             \"virtual_speedup\": {:.2}, \
             \"sequential_wall_ms\": {:.3}, \"batch_wall_ms\": {:.3}, \
             \"wall_speedup\": {:.2}, \
             \"prologue_actions\": {}, \"suffix_actions\": {}}}",
            c.sku,
            c.env,
            c.seq_virtual_ms,
            c.batch_virtual_ms,
            c.virtual_speedup(),
            c.seq_wall_ms,
            c.batch_wall_ms,
            c.wall_speedup(),
            c.prologue_actions,
            c.suffix_actions,
        );
        json.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"min_virtual_speedup\": {min_virtual:.2},");
    let _ = writeln!(json, "  \"min_wall_speedup\": {min_wall:.2}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_batch.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    for c in &cases {
        eprintln!(
            "  {} ({}): virtual {:.3} -> {:.3} ms per {BATCH}-batch ({:.2}x), wall {:.3} -> {:.3} ms ({:.2}x)",
            c.sku,
            c.env,
            c.seq_virtual_ms,
            c.batch_virtual_ms,
            c.virtual_speedup(),
            c.seq_wall_ms,
            c.batch_wall_ms,
            c.wall_speedup(),
        );
    }
    assert!(
        min_virtual >= 2.0,
        "acceptance: batched replay must be >= 2x sequential throughput, got {min_virtual:.2}x"
    );
}
