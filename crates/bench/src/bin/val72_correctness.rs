//! §7.2 correctness validation campaign (scaled-down run count).
fn main() {
    let runs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    println!("{}", gr_bench::val72_correctness(runs));
}
