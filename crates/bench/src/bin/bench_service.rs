//! Benchmark for the `gr-service` scheduler's dynamic batching.
//!
//! Records MNIST once per SKU, then drives a one-worker service at queue
//! depth 16 two ways:
//!
//! * **no coalescing** (`max_batch = 1`) — every queued single-input
//!   submission runs as its own warm batch, paying the
//!   reset/upload/remap prologue per request;
//! * **dynamic batching** (`max_batch = 16`) — the worker drains all 16
//!   compatible submissions into one `replay_batch` call and pays the
//!   prologue once.
//!
//! Both modes use the same lock-step protocol (pause → submit 16 →
//! resume → quiesce) so the queue depth at dequeue time is identical;
//! throughput is measured on the worker machine's *virtual* clock (what
//! the deterministic cost model says the hardware+software pipeline
//! takes) plus host wall-clock. Hard-fails unless every output is
//! bit-identical to the CPU reference and the coalescing speedup is
//! ≥ 1.5× on every SKU.
//!
//! Usage: `bench_service [--smoke] [--out PATH]`
//!
//! Writes `BENCH_service.json` at the workspace root (or `PATH`).

use std::fmt::Write as _;
use std::time::Instant;

use gr_bench::record_model;
use gr_gpu::{sku, GpuSku};
use gr_mlfw::cpu_ref;
use gr_mlfw::fusion::Granularity;
use gr_mlfw::models;
use gr_replayer::{EnvKind, ReplayIo};
use gr_service::{ReplayRequest, ReplayService, ShardSpec};
use gr_sim::SimRng;

const DEPTH: usize = 16;

struct CaseResult {
    sku: &'static str,
    env: EnvKind,
    solo_virtual_ms: f64,
    coalesced_virtual_ms: f64,
    solo_wall_ms: f64,
    coalesced_wall_ms: f64,
    formed_batch: usize,
}

impl CaseResult {
    fn virtual_speedup(&self) -> f64 {
        self.solo_virtual_ms / self.coalesced_virtual_ms
    }
    fn wall_speedup(&self) -> f64 {
        self.solo_wall_ms / self.coalesced_wall_ms
    }
}

fn random_input(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.unit_f64() as f32).collect()
}

/// Drains `reps` waves of DEPTH queued singles through a one-worker
/// service with the given batching cap; returns (virtual ms per wave,
/// best wall ms per wave, largest formed batch).
fn drive(
    sku_ref: &'static GpuSku,
    env: EnvKind,
    blob: &[u8],
    inputs: &[Vec<f32>],
    expected: &[Vec<f32>],
    max_batch: usize,
    reps: usize,
) -> (f64, f64, usize) {
    let service = ReplayService::builder()
        .shard(
            ShardSpec::new(sku_ref, env, vec![blob.to_vec()])
                .queue_cap(DEPTH * 2)
                .max_batch(max_batch)
                // This bench isolates the dynamic-batching win; the
                // cross-batch residency win is measured by
                // `bench_residency`.
                .residency(false),
        )
        .spawn()
        .expect("spawn service");
    let machine = service.machines(sku_ref.name).expect("machines")[0].clone();

    // One warm-up wave so both modes start from identical warm state.
    let rec = gr_recording::Recording::from_bytes(blob).expect("recording");
    let make_ios = |k: usize| {
        let mut io = ReplayIo::for_recording(&rec);
        io.set_input_f32(0, &inputs[k]).expect("input shape");
        io
    };
    service
        .run(sku_ref.name, 0, vec![make_ios(0)])
        .expect("warm-up");

    let mut wall_ms = f64::INFINITY;
    let t0 = machine.now();
    for rep in 0..reps {
        service.pause();
        let tickets: Vec<_> = (0..DEPTH)
            .map(|k| {
                service
                    .submit_request(sku_ref.name, ReplayRequest::single(0, make_ios(k)))
                    .expect("queue depth fits")
            })
            .collect();
        let w = Instant::now();
        service.resume();
        service.quiesce();
        wall_ms = wall_ms.min(w.elapsed().as_secs_f64() * 1e3);
        for (k, t) in tickets.into_iter().enumerate() {
            let outcome = t.wait().expect("replay");
            if rep == 0 {
                assert_eq!(
                    outcome.ios[0].output_f32(0).expect("output"),
                    expected[k],
                    "{}: output diverged from CPU reference",
                    sku_ref.name
                );
            }
        }
    }
    let virtual_ms = (machine.now() - t0).as_nanos() as f64 / 1e6 / reps as f64;
    let stats = service.stats();
    let formed = stats
        .shard(sku_ref.name)
        .map(|s| s.batch_sizes.len())
        .unwrap_or(0);
    service.shutdown();
    (virtual_ms, wall_ms, formed)
}

fn service_case(sku_ref: &'static GpuSku, env: EnvKind, reps: usize) -> CaseResult {
    let rm = record_model(sku_ref, &models::mnist(), Granularity::WholeNn, true, 7);
    let inputs: Vec<Vec<f32>> = (0..DEPTH)
        .map(|k| random_input(rm.net.input_len(), 3000 + k as u64))
        .collect();
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|i| cpu_ref::cpu_infer(&rm.net, i))
        .collect();

    let (solo_virtual_ms, solo_wall_ms, solo_formed) =
        drive(sku_ref, env, &rm.blobs[0], &inputs, &expected, 1, reps);
    assert_eq!(solo_formed, 1, "max_batch=1 must never coalesce");
    let (coalesced_virtual_ms, coalesced_wall_ms, formed_batch) =
        drive(sku_ref, env, &rm.blobs[0], &inputs, &expected, DEPTH, reps);
    assert_eq!(
        formed_batch, DEPTH,
        "all {DEPTH} queued singles must coalesce into one batch"
    );

    CaseResult {
        sku: sku_ref.name,
        env,
        solo_virtual_ms,
        coalesced_virtual_ms,
        solo_wall_ms,
        coalesced_wall_ms,
        formed_batch,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json").to_string()
        });
    let reps = if smoke { 2 } else { 10 };

    eprintln!("bench_service: depth-{DEPTH} MNIST queue, Mali G71...");
    let mali = service_case(&sku::MALI_G71, EnvKind::UserLevel, reps);
    eprintln!("bench_service: depth-{DEPTH} MNIST queue, v3d...");
    let v3d = service_case(&sku::V3D_RPI4, EnvKind::KernelLevel, reps);

    let cases = [mali, v3d];
    let min_virtual = cases
        .iter()
        .map(CaseResult::virtual_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_wall = cases
        .iter()
        .map(CaseResult::wall_speedup)
        .fold(f64::INFINITY, f64::min);

    let mut json = String::from("{\n  \"bench\": \"service_dynamic_batching\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"queue_depth\": {DEPTH},");
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"sku\": \"{}\", \"env\": \"{}\", \
             \"no_coalescing_virtual_ms\": {:.3}, \"coalesced_virtual_ms\": {:.3}, \
             \"virtual_speedup\": {:.2}, \
             \"no_coalescing_wall_ms\": {:.3}, \"coalesced_wall_ms\": {:.3}, \
             \"wall_speedup\": {:.2}, \
             \"formed_batch\": {}}}",
            c.sku,
            c.env,
            c.solo_virtual_ms,
            c.coalesced_virtual_ms,
            c.virtual_speedup(),
            c.solo_wall_ms,
            c.coalesced_wall_ms,
            c.wall_speedup(),
            c.formed_batch,
        );
        json.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"min_virtual_speedup\": {min_virtual:.2},");
    let _ = writeln!(json, "  \"min_wall_speedup\": {min_wall:.2}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_service.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    for c in &cases {
        eprintln!(
            "  {} ({}): virtual {:.3} -> {:.3} ms per {DEPTH}-deep queue ({:.2}x), wall {:.3} -> {:.3} ms ({:.2}x)",
            c.sku,
            c.env,
            c.solo_virtual_ms,
            c.coalesced_virtual_ms,
            c.virtual_speedup(),
            c.solo_wall_ms,
            c.coalesced_wall_ms,
            c.wall_speedup(),
        );
    }
    assert!(
        min_virtual >= 1.5,
        "acceptance: dynamic batching must give >= 1.5x throughput at depth {DEPTH}, got {min_virtual:.2}x"
    );
}
