//! Benchmark for cross-batch warm residency (`DESIGN.md` §13).
//!
//! Records MNIST once per SKU, then drives a one-worker service in
//! steady state — repeated waves of 4 compatible single-input requests,
//! each wave coalescing into one formed batch of 4 — two ways:
//!
//! * **per-batch prologue** (`ShardSpec::residency(false)`) — every
//!   formed batch re-runs the recorded reset/upload/remap prologue, the
//!   pre-residency behaviour;
//! * **resident** (the default) — consecutive batches of the same
//!   recording consult the DRAM dirty log and elide every prologue
//!   action whose backing memory is provably unchanged, re-uploading
//!   only the log-proven dirty subranges.
//!
//! Both modes use the same lock-step protocol (pause → submit 4 →
//! resume → quiesce) and a warm-up wave, so the steady-state regime —
//! small formed batches on a hot recording, exactly where prologue cost
//! dominates — is measured on the worker machine's *virtual* clock.
//! Hard-fails unless every output is bit-identical to the CPU reference,
//! the resident mode actually elided prologue work
//! (`ShardStats::prologue_skipped > 0`), and the speedup is ≥ 1.3× on
//! every SKU.
//!
//! Usage: `bench_residency [--smoke] [--out PATH]`
//!
//! Writes `BENCH_residency.json` at the workspace root (or `PATH`).

use std::fmt::Write as _;
use std::time::Instant;

use gr_bench::record_model;
use gr_gpu::{sku, GpuSku};
use gr_mlfw::cpu_ref;
use gr_mlfw::fusion::Granularity;
use gr_mlfw::models;
use gr_replayer::{EnvKind, ReplayIo};
use gr_service::{ReplayRequest, ReplayService, ShardSpec};
use gr_sim::SimRng;

const BATCH: usize = 4;

struct CaseResult {
    sku: &'static str,
    env: EnvKind,
    per_batch_virtual_ms: f64,
    resident_virtual_ms: f64,
    per_batch_wall_ms: f64,
    resident_wall_ms: f64,
    prologue_skipped: u64,
}

impl CaseResult {
    fn virtual_speedup(&self) -> f64 {
        self.per_batch_virtual_ms / self.resident_virtual_ms
    }
    fn wall_speedup(&self) -> f64 {
        self.per_batch_wall_ms / self.resident_wall_ms
    }
}

fn random_input(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.unit_f64() as f32).collect()
}

/// Drains `reps` steady-state waves of BATCH queued singles through a
/// one-worker service; returns (virtual ms per wave, best wall ms per
/// wave, lifetime prologue_skipped).
fn drive(
    sku_ref: &'static GpuSku,
    env: EnvKind,
    blob: &[u8],
    inputs: &[Vec<f32>],
    expected: &[Vec<f32>],
    residency: bool,
    reps: usize,
) -> (f64, f64, u64) {
    let service = ReplayService::builder()
        .shard(
            ShardSpec::new(sku_ref, env, vec![blob.to_vec()])
                .queue_cap(BATCH * 2)
                .max_batch(BATCH)
                .residency(residency),
        )
        .spawn()
        .expect("spawn service");
    let machine = service.machines(sku_ref.name).expect("machines")[0].clone();

    let rec = gr_recording::Recording::from_bytes(blob).expect("recording");
    let make_io = |k: usize| {
        let mut io = ReplayIo::for_recording(&rec);
        io.set_input_f32(0, &inputs[k]).expect("input shape");
        io
    };
    let run_wave = |check: bool| -> f64 {
        service.pause();
        let tickets: Vec<_> = (0..BATCH)
            .map(|k| {
                service
                    .submit_request(sku_ref.name, ReplayRequest::single(0, make_io(k)))
                    .expect("queue depth fits")
            })
            .collect();
        let w = Instant::now();
        service.resume();
        service.quiesce();
        let wall = w.elapsed().as_secs_f64() * 1e3;
        for (k, t) in tickets.into_iter().enumerate() {
            let outcome = t.wait().expect("replay");
            assert_eq!(
                outcome.report.elements, BATCH,
                "all {BATCH} queued singles must coalesce into one batch"
            );
            if check {
                assert_eq!(
                    outcome.ios[0].output_f32(0).expect("output"),
                    expected[k],
                    "{}: output diverged from CPU reference",
                    sku_ref.name
                );
            }
        }
        wall
    };

    // Warm-up wave: both modes start from an established warm machine
    // (and, in resident mode, an armed residency anchor).
    run_wave(true);

    let t0 = machine.now();
    let mut wall_ms = f64::INFINITY;
    for rep in 0..reps {
        wall_ms = wall_ms.min(run_wave(rep == 0));
    }
    let virtual_ms = (machine.now() - t0).as_nanos() as f64 / 1e6 / reps as f64;
    let stats = service.stats();
    let skipped = stats
        .shard(sku_ref.name)
        .map(|s| s.prologue_skipped)
        .unwrap_or(0);
    service.shutdown();
    (virtual_ms, wall_ms, skipped)
}

fn residency_case(sku_ref: &'static GpuSku, env: EnvKind, reps: usize) -> CaseResult {
    let rm = record_model(sku_ref, &models::mnist(), Granularity::WholeNn, true, 7);
    let inputs: Vec<Vec<f32>> = (0..BATCH)
        .map(|k| random_input(rm.net.input_len(), 5000 + k as u64))
        .collect();
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|i| cpu_ref::cpu_infer(&rm.net, i))
        .collect();

    let (per_batch_virtual_ms, per_batch_wall_ms, cold_skipped) =
        drive(sku_ref, env, &rm.blobs[0], &inputs, &expected, false, reps);
    assert_eq!(cold_skipped, 0, "residency off must never elide");
    let (resident_virtual_ms, resident_wall_ms, prologue_skipped) =
        drive(sku_ref, env, &rm.blobs[0], &inputs, &expected, true, reps);
    assert!(
        prologue_skipped > 0,
        "steady-state resident batches must elide prologue actions"
    );

    CaseResult {
        sku: sku_ref.name,
        env,
        per_batch_virtual_ms,
        resident_virtual_ms,
        per_batch_wall_ms,
        resident_wall_ms,
        prologue_skipped,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_residency.json").to_string()
        });
    let reps = if smoke { 3 } else { 12 };

    eprintln!("bench_residency: steady-state batch-{BATCH} MNIST waves, Mali G71...");
    let mali = residency_case(&sku::MALI_G71, EnvKind::UserLevel, reps);
    eprintln!("bench_residency: steady-state batch-{BATCH} MNIST waves, v3d...");
    let v3d = residency_case(&sku::V3D_RPI4, EnvKind::KernelLevel, reps);

    let cases = [mali, v3d];
    let min_virtual = cases
        .iter()
        .map(CaseResult::virtual_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_wall = cases
        .iter()
        .map(CaseResult::wall_speedup)
        .fold(f64::INFINITY, f64::min);

    let mut json = String::from("{\n  \"bench\": \"cross_batch_warm_residency\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"sku\": \"{}\", \"env\": \"{}\", \
             \"per_batch_prologue_virtual_ms\": {:.3}, \"resident_virtual_ms\": {:.3}, \
             \"virtual_speedup\": {:.2}, \
             \"per_batch_prologue_wall_ms\": {:.3}, \"resident_wall_ms\": {:.3}, \
             \"wall_speedup\": {:.2}, \
             \"prologue_skipped\": {}}}",
            c.sku,
            c.env,
            c.per_batch_virtual_ms,
            c.resident_virtual_ms,
            c.virtual_speedup(),
            c.per_batch_wall_ms,
            c.resident_wall_ms,
            c.wall_speedup(),
            c.prologue_skipped,
        );
        json.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"min_virtual_speedup\": {min_virtual:.2},");
    let _ = writeln!(json, "  \"min_wall_speedup\": {min_wall:.2}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_residency.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    for c in &cases {
        eprintln!(
            "  {} ({}): virtual {:.3} -> {:.3} ms per {BATCH}-wave ({:.2}x), wall {:.3} -> {:.3} ms ({:.2}x), {} prologue actions elided",
            c.sku,
            c.env,
            c.per_batch_virtual_ms,
            c.resident_virtual_ms,
            c.virtual_speedup(),
            c.per_batch_wall_ms,
            c.resident_wall_ms,
            c.wall_speedup(),
            c.prologue_skipped,
        );
    }
    assert!(
        min_virtual >= 1.3,
        "acceptance: warm residency must give >= 1.3x steady-state throughput at batch {BATCH}, got {min_virtual:.2}x"
    );
}
