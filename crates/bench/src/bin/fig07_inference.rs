//! Figures 6 & 7 share one sweep (startup + inference per NN).
fn main() {
    println!("{}", gr_bench::fig06_07_startup_inference());
}
