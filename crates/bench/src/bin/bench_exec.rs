//! Wall-clock microbench for the zero-copy replay fast path.
//!
//! Unlike the `fig*`/`tab*` experiments (virtual time), this measures
//! *host* wall-clock: it records a workload once per SKU, then replays it
//! in a hot loop twice — with the fast path disabled (the pre-PR
//! baseline: translate-every-access page walks, re-fetch + re-decode of
//! every shader at completion) and enabled (software TLB + per-submit
//! decoded-job cache + pooled exec scratch). Outputs must be bit-identical
//! across modes and to the CPU reference executor; any divergence is a
//! hard failure.
//!
//! Usage: `bench_exec [--smoke] [--out PATH]`
//!
//! Writes `BENCH_exec.json` at the workspace root (or `PATH`).

use std::fmt::Write as _;
use std::time::Instant;

use gr_bench::record_model;
use gr_gpu::{fastpath, sku, GpuSku};
use gr_mlfw::cpu_ref;
use gr_mlfw::fusion::Granularity;
use gr_mlfw::models;
use gr_recorder::RecordHarness;
use gr_recording::Recording;
use gr_replayer::{EnvKind, Environment, ReplayIo, Replayer};
use gr_sim::SimRng;

struct CaseResult {
    sku: &'static str,
    workload: &'static str,
    runs: usize,
    baseline_ms: f64,
    fastpath_ms: f64,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.fastpath_ms
    }
}

fn random_input(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.unit_f64() as f32).collect()
}

/// Replays `blobs` in a hot loop on a fresh machine, returning
/// (wall-clock ms per run, last output). The machine, replayer, and
/// loaded recordings persist across runs — only `replay` is in the loop,
/// matching the paper's steady-state inference service.
fn replay_hot_loop(
    sku_ref: &'static GpuSku,
    env: EnvKind,
    blobs: &[Vec<u8>],
    input: &[f32],
    runs: usize,
) -> (f64, Vec<f32>) {
    let machine = gr_gpu::Machine::new(sku_ref, 7);
    let environment = Environment::new(env, machine).expect("env");
    let mut replayer = Replayer::new(environment);
    let ids: Vec<usize> = blobs
        .iter()
        .map(|b| replayer.load_bytes(b).expect("load"))
        .collect();
    // IO blocks are allocated and filled once; `replay` re-sizes outputs
    // itself, so the steady-state loop only pays for the replay proper.
    let mut ios: Vec<ReplayIo> = ids
        .iter()
        .map(|&id| ReplayIo::for_recording(replayer.recording(id)))
        .collect();
    ios[0].set_input_f32(0, input).unwrap();
    let t0 = Instant::now();
    for _ in 0..runs {
        for (i, &id) in ids.iter().enumerate() {
            replayer.replay(id, &mut ios[i]).expect("replay");
        }
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / runs as f64;
    let output = ios[ids.len() - 1].output_f32(0).unwrap();
    replayer.cleanup();
    (ms, output)
}

/// One NN-inference case: record once, replay hot loop in both modes.
fn inference_case(
    sku_ref: &'static GpuSku,
    env: EnvKind,
    model: &gr_mlfw::layers::ModelSpec,
    workload: &'static str,
    runs: usize,
) -> CaseResult {
    let rm = record_model(sku_ref, model, Granularity::WholeNn, true, 7);
    let input = random_input(rm.net.input_len(), 17);
    let expect = cpu_ref::cpu_infer(&rm.net, &input);

    // Warm-up plus three repetitions per mode, keeping the fastest — the
    // standard least-interference estimate for short wall-clock loops.
    let measure = |on: bool| {
        fastpath::with_fastpath(on, || {
            let (_, out) = replay_hot_loop(sku_ref, env, &rm.blobs, &input, runs / 4);
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let (ms, _) = replay_hot_loop(sku_ref, env, &rm.blobs, &input, runs);
                best = best.min(ms);
            }
            (best, out)
        })
    };
    let (baseline_ms, base_out) = measure(false);
    let (fastpath_ms, fast_out) = measure(true);

    assert_eq!(base_out, expect, "{workload}: baseline output diverged");
    assert_eq!(fast_out, expect, "{workload}: fast-path output diverged");
    CaseResult {
        sku: sku_ref.name,
        workload,
        runs,
        baseline_ms,
        fastpath_ms,
    }
}

/// Memory-bound probe: a large vecadd recording replayed in a hot loop.
fn vecadd_case(n: u64, runs: usize) -> CaseResult {
    let dev = gr_gpu::Machine::new(&sku::MALI_G71, 9);
    let mut harness = RecordHarness::new(dev).expect("record stack");
    let rec = harness
        .record_vecadd(n as usize, n, 9)
        .expect("record vecadd");
    harness.finish();
    let blobs = [Recording::to_bytes(&rec)];
    let a = random_input(n as usize, 21);

    let run = |on: bool| {
        fastpath::with_fastpath(on, || {
            let mut best = f64::INFINITY;
            let mut last_out = Vec::new();
            for _ in 0..3 {
                let (ms, out) = vecadd_once(&blobs[0], &a, runs);
                best = best.min(ms);
                last_out = out;
            }
            (best, last_out)
        })
    };
    let (baseline_ms, base_out) = run(false);
    let (fastpath_ms, fast_out) = run(true);
    let expect: Vec<f32> = a.iter().map(|&x| x + x).collect();
    assert_eq!(base_out, expect, "vecadd: baseline output diverged");
    assert_eq!(fast_out, expect, "vecadd: fast-path output diverged");
    CaseResult {
        sku: sku::MALI_G71.name,
        workload: "vecadd",
        runs,
        baseline_ms,
        fastpath_ms,
    }
}

fn vecadd_once(blob: &[u8], a: &[f32], runs: usize) -> (f64, Vec<f32>) {
    let machine = gr_gpu::Machine::new(&sku::MALI_G71, 11);
    let environment = Environment::new(EnvKind::UserLevel, machine).expect("env");
    let mut replayer = Replayer::new(environment);
    let id = replayer.load_bytes(blob).expect("load");
    let mut io = ReplayIo::for_recording(replayer.recording(id));
    io.set_input_f32(0, a).unwrap();
    io.set_input_f32(1, a).unwrap();
    let t0 = Instant::now();
    for _ in 0..runs {
        replayer.replay(id, &mut io).expect("replay");
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / runs as f64;
    let out = io.output_f32(0).unwrap();
    replayer.cleanup();
    (ms, out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json").to_string()
        });
    let (nn_runs, vec_runs, vec_n) = if smoke {
        (4, 2, 262_144)
    } else {
        (240, 20, 4_000_000)
    };

    eprintln!("bench_exec: inference hot loop, Mali G71 (mnist)...");
    let mali = inference_case(
        &sku::MALI_G71,
        EnvKind::UserLevel,
        &models::mnist(),
        "mnist-infer",
        nn_runs,
    );
    eprintln!("bench_exec: inference hot loop, v3d (mnist)...");
    let v3d = inference_case(
        &sku::V3D_RPI4,
        EnvKind::KernelLevel,
        &models::mnist(),
        "mnist-infer",
        nn_runs,
    );
    eprintln!("bench_exec: vecadd memory-path probe ({vec_n} elements)...");
    let vecadd = vecadd_case(vec_n, vec_runs);

    let cases = [mali, v3d, vecadd];
    let min_speedup = cases
        .iter()
        .map(CaseResult::speedup)
        .fold(f64::INFINITY, f64::min);

    let mut json = String::from("{\n  \"bench\": \"exec_hot_loop\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"sku\": \"{}\", \"workload\": \"{}\", \"runs\": {}, \
             \"baseline_ms_per_run\": {:.3}, \"fastpath_ms_per_run\": {:.3}, \
             \"speedup\": {:.2}}}",
            c.sku,
            c.workload,
            c.runs,
            c.baseline_ms,
            c.fastpath_ms,
            c.speedup()
        );
        json.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"min_speedup\": {min_speedup:.2}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_exec.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    for c in &cases {
        eprintln!(
            "  {} {}: {:.3} ms -> {:.3} ms per run ({:.2}x)",
            c.sku,
            c.workload,
            c.baseline_ms,
            c.fastpath_ms,
            c.speedup()
        );
    }
}
