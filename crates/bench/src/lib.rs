//! The experiment harness: one function per paper table/figure.
//!
//! Each `fig*`/`tab*`/`val*` function runs the full pipeline (stack
//! baseline and/or record+replay) in virtual time and returns the rows the
//! paper reports, formatted as text. `cargo run -p gr-bench --release
//! --bin all_experiments` runs everything and writes `EXPERIMENTS.md`.

use std::fmt::Write as _;

use gr_gpu::{sku, FaultKind, GpuSku, Machine};
use gr_mlfw::cpu_ref;
use gr_mlfw::exec::{GpuExecutor, GpuNetwork};
use gr_mlfw::fusion::Granularity;
use gr_mlfw::layers::ModelSpec;
use gr_mlfw::models;
use gr_mlfw::train::TrainSession;
use gr_recorder::RecordHarness;
use gr_recording::{Action, Recording};
use gr_replayer::{
    patch_recording, preempt_gpu, EnvKind, Environment, PatchOptions, ReplayIo, Replayer,
};
use gr_sim::{SimDuration, SimRng};
use gr_stack::runtime::GpuRuntime;

fn random_input(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.unit_f64() as f32).collect()
}

fn secs(d: SimDuration) -> f64 {
    d.as_secs_f64()
}

/// Measured full-stack ("OS") run of one model.
pub struct OsRun {
    /// Startup: context creation through network compile (first job ready).
    pub startup: SimDuration,
    /// End-to-end inference delay.
    pub infer: SimDuration,
    /// Modeled stack CPU memory.
    pub rss: u64,
    /// GPU jobs per inference.
    pub jobs: usize,
}

/// Runs `model` on the full stack without any recorder attached.
pub fn measure_os(sku: &'static GpuSku, model: &ModelSpec, sync: bool, seed: u64) -> OsRun {
    let machine = Machine::new(sku, seed);
    let t0 = machine.now();
    let mut exec = GpuExecutor::create(machine.clone(), sync, None).expect("stack bring-up");
    let net = exec.compile(model, seed).expect("compile");
    let startup = machine.now() - t0;
    let input = random_input(net.input_len(), seed ^ 0x55);
    let t1 = machine.now();
    exec.infer(&net, &input).expect("infer");
    let infer = machine.now() - t1;
    let rss = exec.runtime().total_rss();
    let jobs = net.job_count();
    exec.release();
    OsRun {
        startup,
        infer,
        rss,
        jobs,
    }
}

/// A recorded model ready for replay measurements.
pub struct RecordedModel {
    /// Serialized recordings (one per granularity group).
    pub blobs: Vec<Vec<u8>>,
    /// Raw (uncompressed) dump bytes across recordings.
    pub unzip_bytes: usize,
    /// Serialized (compressed) bytes across recordings.
    pub zip_bytes: usize,
    /// The compiled network (CPU reference / sizes).
    pub net: GpuNetwork,
    /// Per-recording metadata copies.
    pub recordings: Vec<Recording>,
}

/// Records `model` at `granularity` on a fresh developer machine.
pub fn record_model(
    sku: &'static GpuSku,
    model: &ModelSpec,
    granularity: Granularity,
    skip_intervals: bool,
    seed: u64,
) -> RecordedModel {
    let machine = Machine::new(sku, seed);
    let mut harness = RecordHarness::new(machine).expect("record stack");
    harness.skip_idle_intervals = skip_intervals;
    let recs = harness
        .record_inference(model, granularity, seed)
        .expect("record");
    harness.finish();
    let blobs: Vec<Vec<u8>> = recs.recordings.iter().map(Recording::to_bytes).collect();
    RecordedModel {
        unzip_bytes: recs.recordings.iter().map(Recording::dump_bytes).sum(),
        zip_bytes: blobs.iter().map(Vec::len).sum(),
        blobs,
        net: recs.net,
        recordings: recs.recordings,
    }
}

/// Measured replayer ("GR") run.
pub struct GrRun {
    /// Load + verify + reset + dump-load + page-table rebuild time.
    pub startup: SimDuration,
    /// Full replay delay (all recordings, end to end).
    pub infer: SimDuration,
    /// Replayer modeled CPU memory (staged recordings).
    pub rss: u64,
    /// Output of the last recording.
    pub output: Vec<f32>,
}

/// Replays a recorded model on a fresh target machine.
pub fn measure_gr(
    sku: &'static GpuSku,
    rm: &RecordedModel,
    env_kind: EnvKind,
    input: &[f32],
    seed: u64,
) -> GrRun {
    let machine = Machine::new(sku, seed);
    let t0 = machine.now();
    let env = Environment::new(env_kind, machine.clone()).expect("env");
    let mut replayer = Replayer::new(env);
    let ids: Vec<usize> = rm
        .blobs
        .iter()
        .map(|b| replayer.load_bytes(b).expect("load"))
        .collect();
    let load_done = machine.now() - t0;
    let mut output = Vec::new();
    let mut first_startup = SimDuration::ZERO;
    let t1 = machine.now();
    for (i, &id) in ids.iter().enumerate() {
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        if i == 0 {
            io.set_input_f32(0, input).unwrap();
        }
        let report = replayer.replay(id, &mut io).expect("replay");
        if i == 0 {
            first_startup = report.startup;
        }
        if i + 1 == ids.len() {
            output = io.output_f32(0).unwrap();
        }
    }
    let infer = machine.now() - t1;
    let rss = rm.zip_bytes as u64 + rm.unzip_bytes as u64 + 512 * 1024;
    replayer.cleanup();
    GrRun {
        startup: load_done + first_startup,
        infer: infer - first_startup,
        rss,
        output,
    }
}

/// Figure 3: synchronous vs asynchronous job submission on Mali G71.
pub fn fig03_sync_overhead() -> String {
    let mut out = String::from(
        "## Figure 3 — Sync job submission overhead (Mali G71, exec time normalized to async)\n\n\
         | NN | async (s) | sync (s) | sync/async |\n|---|---|---|---|\n",
    );
    for model in models::mali_suite() {
        let a = measure_os(&sku::MALI_G71, &model, false, 31);
        let s = measure_os(&sku::MALI_G71, &model, true, 31);
        let _ = writeln!(
            out,
            "| {} | {:.4} | {:.4} | {:.3}x |",
            model.name,
            secs(a.infer),
            secs(s.infer),
            secs(s.infer) / secs(a.infer)
        );
    }
    out.push_str("\nPaper: sync adds 2–11% (avg 4%).\n");
    out
}

/// Figure 5: intervals between CPU/GPU interactions, accumulated per job.
pub fn fig05_interaction_gaps() -> String {
    let rm = record_model(
        &sku::MALI_G71,
        &models::alexnet(),
        Granularity::WholeNn,
        false,
        51,
    );
    let rec = &rm.recordings[0];
    // Accumulate recorded inter-action gaps per job (job boundary = WaitIrq).
    let mut per_job: Vec<u64> = Vec::new();
    let mut cur = 0u64;
    for ta in &rec.actions {
        cur += ta.min_interval_ns;
        if matches!(ta.action, Action::WaitIrq { .. }) {
            per_job.push(cur);
            cur = 0;
        }
    }
    let mut out = String::from(
        "## Figure 5 — CPU/GPU interaction gaps per job (AlexNet record run, Mali G71)\n\n\
         | job span | accumulated gap (ms) |\n|---|---|\n",
    );
    for (i, gap) in per_job.iter().take(12).enumerate() {
        let _ = writeln!(
            out,
            "| start-{} .. {} | {:.3} |",
            i,
            i + 1,
            *gap as f64 / 1e6
        );
    }
    let tail: u64 = per_job.iter().skip(12).sum();
    let _ = writeln!(out, "| 12 .. end | {:.3} |", tail as f64 / 1e6);
    let head: u64 = per_job.iter().take(3).sum();
    let _ = writeln!(
        out,
        "\nFirst 3 jobs carry {:.0}% of all gap time (paper: early jobs dominated by JIT + memory-manager init).\n",
        100.0 * head as f64 / per_job.iter().sum::<u64>().max(1) as f64
    );
    out
}

/// Table 4: codebase comparison by counting workspace SLoC.
pub fn tab04_codebase() -> String {
    fn sloc(dir: &str) -> usize {
        fn walk(p: &std::path::Path, acc: &mut usize) {
            if let Ok(entries) = std::fs::read_dir(p) {
                for e in entries.flatten() {
                    let path = e.path();
                    if path.is_dir() {
                        walk(&path, acc);
                    } else if path.extension().is_some_and(|x| x == "rs") {
                        if let Ok(content) = std::fs::read_to_string(&path) {
                            *acc += content
                                .lines()
                                .filter(|l| {
                                    let t = l.trim();
                                    !t.is_empty() && !t.starts_with("//")
                                })
                                .count();
                        }
                    }
                }
            }
        }
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut acc = 0;
        walk(&root.join(dir), &mut acc);
        acc
    }
    let runtime = sloc("crates/stack/src/runtime");
    let driver = sloc("crates/stack/src/driver");
    let mlfw = sloc("crates/mlfw/src");
    let recorder = sloc("crates/recorder/src");
    let replayer = sloc("crates/core/src");
    let mut out = String::from(
        "## Table 4 — Codebase comparison (SLoC of this reproduction)\n\n\
         | component | SLoC | role |\n|---|---|---|\n",
    );
    let _ = writeln!(
        out,
        "| ML framework (ACL/ncnn stand-in) | {mlfw} | original stack |"
    );
    let _ = writeln!(
        out,
        "| GPU runtime (blackbox) | {runtime} | original stack |"
    );
    let _ = writeln!(out, "| GPU kernel drivers | {driver} | original stack |");
    let _ = writeln!(
        out,
        "| Recorder (in-driver) | {recorder} | GR, dev machine only |"
    );
    let _ = writeln!(
        out,
        "| **Replayer (whole target-side stack)** | **{replayer}** | GR |"
    );
    let _ = writeln!(
        out,
        "\nReplayer/stack ratio: {:.1}% (paper: a few K SLoC replacing a 45K SLoC driver + 48 MB runtime).\n",
        100.0 * replayer as f64 / (runtime + driver + mlfw) as f64
    );
    out
}

/// Table 5: CVE classes eliminated, demonstrated live against the verifier.
pub fn tab05_cve() -> String {
    use gr_recording::{RecordingMeta, TimedAction};
    let machine = Machine::new(&sku::MALI_G71, 61);
    let env = Environment::new(EnvKind::UserLevel, machine).unwrap();
    let mut replayer = Replayer::new(env);

    let mut rows = Vec::new();
    // CVE-2014-1376 class: arbitrary runtime API abuse -> no runtime exists.
    rows.push((
        "CVE-2014-1376 (OpenCL call abuse)",
        "runtime removed from target",
        "eliminated",
    ));
    // CVE-2019-5068 class: shared-memory permission abuse -> replayer maps only recording memory.
    rows.push((
        "CVE-2019-5068 (shared mem perms)",
        "runtime removed; nano driver maps zeroed frames",
        "eliminated",
    ));
    rows.push((
        "CVE-2018-6253 (malformed shaders hang)",
        "shaders fixed at record time",
        "eliminated",
    ));
    // Driver-class CVEs: demonstrate the verifier rejecting the exploit shapes.
    let mut bad_reg = Recording::new(RecordingMeta::new(
        "mali",
        "G71",
        sku::MALI_G71.gpu_id,
        "cve",
    ));
    bad_reg
        .actions
        .push(TimedAction::immediate(Action::RegWrite {
            reg: 0x2FF4,
            mask: u32::MAX,
            val: 1,
        }));
    let r1 = replayer.load(bad_reg).is_err();
    rows.push((
        "CVE-2017-18643 (kernel info leak)",
        "ioctl surface gone; illegal reg write rejected",
        if r1 { "blocked (verified)" } else { "FAILED" },
    ));
    let mut bad_map = Recording::new(RecordingMeta::new(
        "mali",
        "G71",
        sku::MALI_G71.gpu_id,
        "cve",
    ));
    bad_map
        .actions
        .push(TimedAction::immediate(Action::MapGpuMem {
            va: NanoIfaceVaLimit(),
            pte_flags: vec![0xB],
        }));
    let r2 = replayer.load(bad_map).is_err();
    rows.push((
        "CVE-2019-20577 (invalid addr mapping)",
        "out-of-space mapping rejected",
        if r2 { "blocked (verified)" } else { "FAILED" },
    ));
    let mut hog = Recording::new(RecordingMeta::new(
        "mali",
        "G71",
        sku::MALI_G71.gpu_id,
        "cve",
    ));
    hog.actions.push(TimedAction::immediate(Action::MapGpuMem {
        va: 0,
        pte_flags: vec![0xB; 1 << 17],
    }));
    let r3 = replayer.load(hog).is_err();
    rows.push((
        "CVE-2019-10520 (GPU mem exhaustion)",
        "peak-page cap enforced",
        if r3 { "blocked (verified)" } else { "FAILED" },
    ));
    let mut upload = Recording::new(RecordingMeta::new(
        "mali",
        "G71",
        sku::MALI_G71.gpu_id,
        "cve",
    ));
    upload.dumps.push(gr_recording::Dump {
        va: 0x40_0000,
        bytes: vec![0; 4096],
    });
    upload
        .actions
        .push(TimedAction::immediate(Action::Upload { dump_idx: 0 }));
    let r4 = replayer.load(upload).is_err();
    rows.push((
        "CVE-2014-0972 (IOMMU pgtable overwrite)",
        "dumps must target replayer-mapped pages",
        if r4 { "blocked (verified)" } else { "FAILED" },
    ));
    rows.push((
        "CVE-2020-11179 (ringbuffer race)",
        "no shared ring; one job at a time",
        "eliminated",
    ));
    rows.push((
        "CVE-2019-14615 (register-file leak)",
        "fine-grained sharing disabled; reset-on-handoff",
        "eliminated",
    ));
    replayer.cleanup();

    let mut out = String::from(
        "## Table 5 — GPU-stack CVE classes vs GR\n\n| CVE class | GR mechanism | status |\n|---|---|---|\n",
    );
    for (cve, how, status) in rows {
        let _ = writeln!(out, "| {cve} | {how} | {status} |");
    }
    out
}

#[allow(non_snake_case)]
fn NanoIfaceVaLimit() -> u64 {
    gr_replayer::NanoIface::Mali.va_limit()
}

/// Table 6: recording characteristics for both suites.
pub fn tab06_recordings() -> String {
    let mut out = String::from("## Table 6 — Recordings (WholeNN granularity)\n");
    for (title, sku_ref, suite) in [
        ("(a) Mali G71", &sku::MALI_G71, models::mali_suite()),
        ("(b) v3d", &sku::V3D_RPI4, models::v3d_suite()),
    ] {
        let _ = writeln!(
            out,
            "\n### {title}\n\n| model (#layers) | GPU mem (modeled MB) | #jobs | #RegIO | rec unzip (KB) | rec zip (KB) |\n|---|---|---|---|---|---|"
        );
        for model in suite {
            let rm = record_model(sku_ref, &model, Granularity::WholeNn, true, 66);
            let rec = &rm.recordings[0];
            let _ = writeln!(
                out,
                "| {} ({}) | {:.1} | {} | {} | {:.0} | {:.0} |",
                model.name,
                model.layer_count(),
                rec.meta.modeled_gpu_mem_bytes as f64 / (1024.0 * 1024.0),
                rec.meta.job_count,
                rec.meta.regio_count,
                rm.unzip_bytes as f64 / 1024.0,
                rm.zip_bytes as f64 / 1024.0,
            );
        }
    }
    out
}

/// Figures 6 + 7: startup and inference delays, OS vs GR, both suites.
pub fn fig06_07_startup_inference() -> String {
    let mut out = String::from(
        "## Figures 6 & 7 — Startup and inference delays (OS = full stack, GR = replayer)\n",
    );
    for (title, sku_ref, env, suite) in [
        (
            "Mali G71 (user-level replayer)",
            &sku::MALI_G71,
            EnvKind::UserLevel,
            models::mali_suite(),
        ),
        (
            "v3d (kernel-level replayer)",
            &sku::V3D_RPI4,
            EnvKind::KernelLevel,
            models::v3d_suite(),
        ),
    ] {
        let _ = writeln!(
            out,
            "\n### {title}\n\n| NN | OS startup (s) | GR startup (s) | Δstartup | OS infer (s) | GR infer (s) | Δinfer |\n|---|---|---|---|---|---|---|"
        );
        for model in suite {
            let os = measure_os(sku_ref, &model, false, 71);
            let rm = record_model(sku_ref, &model, Granularity::WholeNn, true, 71);
            let input = random_input(rm.net.input_len(), 99);
            let gr = measure_gr(sku_ref, &rm, env, &input, 72);
            assert_eq!(
                gr.output,
                cpu_ref::cpu_infer(&rm.net, &input),
                "{}: replay must stay correct while being timed",
                model.name
            );
            let _ = writeln!(
                out,
                "| {} | {:.3} | {:.3} | {:+.0}% | {:.4} | {:.4} | {:+.0}% |",
                model.name,
                secs(os.startup),
                secs(gr.startup),
                100.0 * (secs(gr.startup) - secs(os.startup)) / secs(os.startup),
                secs(os.infer),
                secs(gr.infer),
                100.0 * (secs(gr.infer) - secs(os.infer)) / secs(os.infer),
            );
        }
    }
    out.push_str("\nPaper: GR startup 26–98% lower (Mali) / 77–99% lower (v3d); inference ~20% faster (Mali) to ~5% slower (v3d).\n");
    out
}

/// Figure 8: MNIST training, startup + 20 iterations, OS vs GR.
pub fn fig08_training() -> String {
    // OS path.
    let machine = Machine::new(&sku::MALI_G71, 81);
    let t0 = machine.now();
    let mut rt = GpuRuntime::create(machine.clone(), true, None).unwrap();
    let sess = TrainSession::build(&mut rt, 81).unwrap();
    let os_startup = machine.now() - t0;
    let img = random_input(28 * 28, 5);
    let t1 = machine.now();
    for _ in 0..20 {
        sess.run_iteration(&mut rt, &img, 3).unwrap();
    }
    let os_train = machine.now() - t1;
    rt.release();

    // GR path.
    let dev = Machine::new(&sku::MALI_G71, 82);
    let mut harness = RecordHarness::new(dev).unwrap();
    let trec = harness.record_training(81).unwrap();
    let bytes = trec.recording.to_bytes();
    harness.finish();
    let target = Machine::new(&sku::MALI_G71, 83);
    let t0 = target.now();
    let env = Environment::new(EnvKind::UserLevel, target.clone()).unwrap();
    let mut replayer = Replayer::new(env);
    let id = replayer.load_bytes(&bytes).unwrap();
    let mut w: Vec<Vec<u8>> = trec
        .initial_weights
        .iter()
        .map(|(_, b)| b.clone())
        .collect();
    let mut gr_startup = target.now() - t0;
    let t1 = target.now();
    for i in 0..20 {
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.set_input_f32(0, &img).unwrap();
        io.set_input_f32(1, &[3.0]).unwrap();
        io.inputs[2] = w[0].clone();
        io.inputs[3] = w[1].clone();
        io.inputs[4] = w[2].clone();
        let report = replayer.replay(id, &mut io).unwrap();
        if i == 0 {
            gr_startup += report.startup;
        }
        w[0] = io.outputs[1].clone();
        w[1] = io.outputs[2].clone();
        w[2] = io.outputs[3].clone();
    }
    let gr_train = target.now() - t1;
    replayer.cleanup();

    format!(
        "## Figure 8 — MNIST training (DeepCL-style, Mali G71)\n\n\
         | | OS | GR | Δ |\n|---|---|---|---|\n\
         | startup (s) | {:.3} | {:.3} | {:+.0}% |\n\
         | 20 iterations (s) | {:.3} | {:.3} | {:+.0}% |\n\n\
         Paper: GR startup ~99% lower; 20-iteration delay ~40% lower.\n",
        secs(os_startup),
        secs(gr_startup),
        100.0 * (secs(gr_startup) - secs(os_startup)) / secs(os_startup),
        secs(os_train),
        secs(gr_train),
        100.0 * (secs(gr_train) - secs(os_train)) / secs(os_train),
    )
}

/// Figure 9: cross-SKU record/replay of 16M-element vecadd.
pub fn fig09_cross_sku() -> String {
    let mut out = String::from(
        "## Figure 9 — Replaying recordings from other SKUs on Mali G71 (16M-element vecadd)\n\n\
         | recorded on | patch | replay on G71 (ms) |\n|---|---|---|\n",
    );
    let run_on_g71 = |rec: &Recording| -> Result<SimDuration, gr_replayer::ReplayError> {
        let target = Machine::new(&sku::MALI_G71, 92);
        let env = Environment::new(EnvKind::UserLevel, target).unwrap();
        let mut replayer = Replayer::new(env);
        let id = replayer.load(rec.clone())?;
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        let n = replayer.recording(id).inputs[0].len as usize / 4;
        io.set_input_f32(0, &random_input(n, 7)).unwrap();
        io.set_input_f32(1, &random_input(n, 8)).unwrap();
        let report = replayer.replay(id, &mut io)?;
        replayer.cleanup();
        Ok(report.wall - report.startup)
    };
    for (src, label) in [
        (&sku::MALI_G31, "G31 (1 core)"),
        (&sku::MALI_G52, "G52 (2 cores)"),
        (&sku::MALI_G71, "G71 (8 cores)"),
    ] {
        let dev = Machine::new(src, 91);
        let mut harness = RecordHarness::new(dev).unwrap();
        let rec = harness.record_vecadd(1024, 16_000_000, 9).unwrap();
        harness.finish();
        if src.gpu_id == sku::MALI_G71.gpu_id {
            let t = run_on_g71(&rec).unwrap();
            let _ = writeln!(out, "| {label} | none needed | {:.3} |", t.as_millis_f64());
        } else {
            let unpatched = run_on_g71(&rec);
            let _ = writeln!(
                out,
                "| {label} | none | replay error: {} |",
                unpatched.err().map_or("-".into(), |e| e.to_string())
            );
            let partial =
                patch_recording(&rec, src, &sku::MALI_G71, PatchOptions::without_affinity())
                    .unwrap();
            let t1 = run_on_g71(&partial).unwrap();
            let _ = writeln!(
                out,
                "| {label} | pgtable+MMUreg | {:.3} |",
                t1.as_millis_f64()
            );
            let full = patch_recording(&rec, src, &sku::MALI_G71, PatchOptions::full()).unwrap();
            let t2 = run_on_g71(&full).unwrap();
            let _ = writeln!(
                out,
                "| {label} | pgtable+MMUreg+affinity | {:.3} |",
                t2.as_millis_f64()
            );
        }
    }
    out.push_str("\nPaper: unpatched fails; pgtable/MMU patch replays 4–8x slower; affinity patch restores full speed.\n");
    out
}

/// Figure 10: replay time with vs without idle-interval skipping.
pub fn fig10_skip_intervals() -> String {
    let mut out = String::from(
        "## Figure 10 — Interval skipping ablation (Mali G71)\n\n\
         | NN | infer skip (s) | infer keep-all (s) | infer ratio | startup ratio |\n|---|---|---|---|---|\n",
    );
    for model in models::mali_suite() {
        let skip = record_model(&sku::MALI_G71, &model, Granularity::WholeNn, true, 101);
        let keep = record_model(&sku::MALI_G71, &model, Granularity::WholeNn, false, 101);
        let input = random_input(skip.net.input_len(), 3);
        let g1 = measure_gr(&sku::MALI_G71, &skip, EnvKind::UserLevel, &input, 102);
        let g2 = measure_gr(&sku::MALI_G71, &keep, EnvKind::UserLevel, &input, 102);
        let _ = writeln!(
            out,
            "| {} | {:.4} | {:.4} | {:.2}x | {:.0}x |",
            model.name,
            secs(g1.infer),
            secs(g2.infer),
            secs(g2.infer) / secs(g1.infer),
            secs(g2.startup) / secs(g1.startup),
        );
    }
    out.push_str(
        "\nPaper: without skipping, NN inference replay is 1.1–4.9x longer and *startup*\n\
         is up to two orders of magnitude longer (it re-waits the recorded JIT gaps).\n",
    );
    out
}

/// Figure 11: recording granularity (delays include replayer startup).
pub fn fig11_granularity() -> String {
    let mut out = String::from(
        "## Figure 11 — Recording granularity (Mali G71; delay includes startup; #recordings in parens)\n\n\
         | NN | WholeNN | PerFusedLayer | PerLayer |\n|---|---|---|---|\n",
    );
    for model in [models::mnist(), models::alexnet(), models::vgg16()] {
        let mut cells = Vec::new();
        for g in [
            Granularity::WholeNn,
            Granularity::PerFusedLayer,
            Granularity::PerLayer,
        ] {
            let rm = record_model(&sku::MALI_G71, &model, g, true, 111);
            let input = random_input(rm.net.input_len(), 4);
            let gr = measure_gr(&sku::MALI_G71, &rm, EnvKind::UserLevel, &input, 112);
            cells.push(format!(
                "{:.4}s ({})",
                secs(gr.startup) + secs(gr.infer),
                rm.blobs.len()
            ));
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            model.name, cells[0], cells[1], cells[2]
        );
    }
    out.push_str("\nPaper: fused-layer recordings cost ~15% over monolithic; per-layer worst (extra replayer startups).\n");
    out
}

/// §7.2 validation: repeated replays under interference + fault recovery.
pub fn val72_correctness(runs: usize) -> String {
    let rm = record_model(
        &sku::MALI_G71,
        &models::mnist(),
        Granularity::WholeNn,
        true,
        121,
    );
    let mut ok = 0usize;
    let mut recovered = 0usize;
    for i in 0..runs {
        let machine = Machine::new(&sku::MALI_G71, 2000 + i as u64);
        let env = Environment::new(EnvKind::UserLevel, machine.clone()).unwrap();
        let mut replayer = Replayer::new(env);
        let id = replayer.load_bytes(&rm.blobs[0]).unwrap();
        // Interference: underclock some runs, inject a fault in others.
        if i % 3 == 1 {
            machine.pmc().write32(
                gr_soc::pmc::Pmc::clk_rate_off(gr_soc::pmc::PmcDomain::GpuCore),
                300,
            );
            machine.advance(gr_soc::pmc::SETTLE_DELAY);
        }
        if i % 3 == 2 {
            machine.inject_fault(FaultKind::OfflineCores { mask: 0xFF });
        }
        let input = random_input(rm.net.input_len(), 3000 + i as u64);
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.set_input_f32(0, &input).unwrap();
        let report = replayer.replay(id, &mut io).unwrap();
        if report.retries > 0 {
            recovered += 1;
        }
        if io.output_f32(0).unwrap() == cpu_ref::cpu_infer(&rm.net, &input) {
            ok += 1;
        }
        replayer.cleanup();
    }
    format!(
        "## §7.2 — Replay correctness validation\n\n\
         {runs} replays of MNIST under interference (underclocking, forced core-offlining),\n\
         each on a machine with different timing jitter:\n\n\
         - correct (bit-identical to CPU reference): **{ok}/{runs}**\n\
         - runs that needed §5.4 re-execution recovery: {recovered}\n\n\
         Paper: 1,000/2,000-run campaigns; only poll counts and job delays diverge, outputs always correct.\n"
    )
}

/// §7.3: memory overheads.
pub fn tab73_memory() -> String {
    let mut out = String::from(
        "## §7.3 — Memory overheads (Mali G71)\n\n\
         | NN | rec zip (KB) | stack CPU mem (MB) | replayer CPU mem (MB) |\n|---|---|---|---|\n",
    );
    for model in models::mali_suite() {
        let os = measure_os(&sku::MALI_G71, &model, true, 131);
        let rm = record_model(&sku::MALI_G71, &model, Granularity::WholeNn, true, 131);
        let input = random_input(rm.net.input_len(), 5);
        let gr = measure_gr(&sku::MALI_G71, &rm, EnvKind::UserLevel, &input, 132);
        let _ = writeln!(
            out,
            "| {} | {:.0} | {:.0} | {:.1} |",
            model.name,
            rm.zip_bytes as f64 / 1024.0,
            os.rss as f64 / (1024.0 * 1024.0),
            gr.rss as f64 / (1024.0 * 1024.0),
        );
    }
    out.push_str("\nPaper: replayer 2–10 MB vs stack 220–310 MB.\n");
    out
}

/// §7.5 preemption: delay an interactive app perceives.
pub fn fig_preemption() -> String {
    let mut out =
        String::from("## §7.5 — GPU preemption delay\n\n| GPU | delay (µs) |\n|---|---|\n");
    for sku_ref in [&sku::MALI_G71, &sku::V3D_RPI4] {
        let machine = Machine::new(sku_ref, 141);
        let env = Environment::new(EnvKind::UserLevel, machine.clone()).unwrap();
        let replayer = Replayer::new(env);
        let lease = replayer.lease();
        lease.revoke(); // interactive app asked for the GPU
        let d = preempt_gpu(&machine);
        let _ = writeln!(
            out,
            "| {} | {:.1} |",
            sku_ref.name,
            d.as_nanos() as f64 / 1e3
        );
        replayer.cleanup();
    }
    out.push_str("\nPaper: below 1 ms on both GPUs (flush + TLB + soft reset).\n");
    out
}

/// §7.5 checkpoint vs re-execution.
pub fn fig_checkpoint() -> String {
    let rm = record_model(
        &sku::MALI_G71,
        &models::mobilenet(),
        Granularity::WholeNn,
        true,
        151,
    );
    let input = random_input(rm.net.input_len(), 6);
    let run = |every: Option<u32>| -> f64 {
        let machine = Machine::new(&sku::MALI_G71, 152);
        let env = Environment::new(EnvKind::UserLevel, machine).unwrap();
        let mut replayer = Replayer::new(env);
        replayer.checkpoint_every_jobs = every;
        let id = replayer.load_bytes(&rm.blobs[0]).unwrap();
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.set_input_f32(0, &input).unwrap();
        let report = replayer.replay(id, &mut io).unwrap();
        replayer.cleanup();
        secs(report.wall)
    };
    let none = run(None);
    let cp16 = run(Some(16));
    let cp4 = run(Some(4));
    format!(
        "## §7.5 — Checkpointing vs re-execution (MobileNet replay)\n\n\
         | mode | replay (s) | slowdown |\n|---|---|---|\n\
         | no checkpoints | {none:.4} | 1.0x |\n\
         | checkpoint every 16 jobs | {cp16:.4} | {:.1}x |\n\
         | checkpoint every 4 jobs | {cp4:.4} | {:.1}x |\n\n\
         Paper: per-16-job checkpointing slows MobileNet ~8x — re-execution is the better recovery default.\n",
        cp16 / none,
        cp4 / none,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_measurement_is_sane() {
        let run = measure_os(&sku::MALI_G71, &models::mnist(), true, 1);
        assert!(
            run.startup > SimDuration::from_millis(100),
            "startup {}",
            run.startup
        );
        assert!(run.jobs > 5);
        assert!(run.rss > 100 * 1024 * 1024);
    }

    #[test]
    fn gr_is_much_faster_to_start() {
        let os = measure_os(&sku::MALI_G71, &models::mnist(), false, 2);
        let rm = record_model(
            &sku::MALI_G71,
            &models::mnist(),
            Granularity::WholeNn,
            true,
            2,
        );
        let input = random_input(rm.net.input_len(), 9);
        let gr = measure_gr(&sku::MALI_G71, &rm, EnvKind::UserLevel, &input, 3);
        assert!(
            gr.startup.as_nanos() * 4 < os.startup.as_nanos(),
            "GR startup {} should be far below OS startup {}",
            gr.startup,
            os.startup
        );
        assert_eq!(gr.output, cpu_ref::cpu_infer(&rm.net, &input));
    }
}
