//! Modeled CPU heap accounting.
//!
//! §7.3 of the paper compares the replayer's CPU memory consumption
//! (2–10 MB) against the full stack's (220–310 MB). In this reproduction
//! both sides *model* their dominant allocations — GPU contexts, JIT
//! buffers, framework graphs for the stack; dump staging for the replayer —
//! through a [`MemAccount`], which tracks current and peak usage.

use std::sync::Arc;

use parking_lot::Mutex;

#[derive(Debug, Default)]
struct AccountInner {
    current: u64,
    peak: u64,
}

/// A shared ledger of modeled heap bytes.
///
/// # Example
///
/// ```
/// use gr_sim::MemAccount;
///
/// let acct = MemAccount::new();
/// acct.alloc(1024);
/// acct.alloc(2048);
/// acct.free(1024);
/// assert_eq!(acct.current(), 2048);
/// assert_eq!(acct.peak(), 3072);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemAccount {
    inner: Arc<Mutex<AccountInner>>,
}

impl MemAccount {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`.
    pub fn alloc(&self, bytes: u64) {
        let mut g = self.inner.lock();
        g.current = g.current.saturating_add(bytes);
        g.peak = g.peak.max(g.current);
    }

    /// Records a free of `bytes` (saturating at zero; freeing more than was
    /// allocated indicates a modeling bug but must not panic in release).
    pub fn free(&self, bytes: u64) {
        let mut g = self.inner.lock();
        debug_assert!(g.current >= bytes, "MemAccount free underflow");
        g.current = g.current.saturating_sub(bytes);
    }

    /// Bytes currently accounted.
    pub fn current(&self) -> u64 {
        self.inner.lock().current
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.inner.lock().peak
    }

    /// Resets both counters (new experiment phase).
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        g.current = 0;
        g.peak = 0;
    }
}

/// Formats a byte count the way the paper's tables do (KB/MB with one
/// decimal).
pub fn format_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= MB {
        format!("{:.1} MB", b / MB)
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_current_and_peak() {
        let a = MemAccount::new();
        a.alloc(10);
        a.alloc(30);
        assert_eq!(a.current(), 40);
        a.free(25);
        assert_eq!(a.current(), 15);
        assert_eq!(a.peak(), 40);
        a.reset();
        assert_eq!(a.current(), 0);
        assert_eq!(a.peak(), 0);
    }

    #[test]
    fn clones_share_the_ledger() {
        let a = MemAccount::new();
        let b = a.clone();
        a.alloc(100);
        assert_eq!(b.current(), 100);
    }

    #[test]
    fn formatting_matches_paper_style() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(50 * 1024), "50.0 KB");
        assert_eq!(format_bytes(5 * 1024 * 1024 + 512 * 1024), "5.5 MB");
    }
}
