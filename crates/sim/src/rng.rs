//! Deterministic randomness for the simulation.
//!
//! All nondeterminism the paper talks about (GPU job-delay jitter, IRQ
//! latency, poll timing, thermal interference) is *modeled* nondeterminism:
//! it comes from a [`SimRng`] seeded per experiment, so two runs with the
//! same seed produce identical traces while runs with different seeds
//! exercise the recorder's nondeterminism tolerance.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A seeded random source with cheap labeled sub-streams.
///
/// # Example
///
/// ```
/// use gr_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42).fork("gpu-jitter");
/// let mut b = SimRng::seed_from(42).fork("gpu-jitter");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-stream keyed by `label`.
    ///
    /// Forking lets each subsystem (GPU timing, taint magics, interference)
    /// own private randomness that does not perturb the others when one
    /// subsystem draws more values.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17);
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::seed_from(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Applies multiplicative jitter of up to ±`pct` percent to `base`.
    ///
    /// This is the primitive behind the nondeterministic GPU job delays and
    /// IRQ latencies: the *mean* behaviour is fixed by the timing model, the
    /// jitter makes raw traces diverge run-to-run exactly like real silicon.
    pub fn jitter(&mut self, base: SimDuration, pct: f64) -> SimDuration {
        if pct <= 0.0 || base.is_zero() {
            return base;
        }
        let factor = 1.0 + self.range_f64(-pct, pct) / 100.0;
        base.mul_f64(factor.max(0.0))
    }

    /// Fills `buf` with high-entropy bytes (used for taint magic inputs).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = SimRng::seed_from(7);
        let mut f1 = root.fork("a");
        let mut f2 = root.fork("b");
        assert_ne!(f1.next_u64(), f2.next_u64());
        // Forking again with the same label replays the same stream.
        let mut f1b = root.fork("a");
        let mut f1c = root.fork("a");
        assert_eq!(f1b.next_u64(), f1c.next_u64());
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut rng = SimRng::seed_from(99);
        let base = SimDuration::from_micros(100);
        for _ in 0..200 {
            let j = rng.jitter(base, 5.0);
            assert!(j.as_nanos() >= 95_000 && j.as_nanos() <= 105_000, "{j}");
        }
        assert_eq!(rng.jitter(base, 0.0), base);
        assert_eq!(rng.jitter(SimDuration::ZERO, 5.0), SimDuration::ZERO);
    }

    #[test]
    fn range_draws_in_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert_eq!(rng.seed(), 3);
    }

    #[test]
    fn fill_bytes_has_entropy() {
        let mut rng = SimRng::seed_from(11);
        let mut buf = [0u8; 64];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
