//! The CPU/GPU interaction trace.
//!
//! The §7.2 validation experiments log "all the GPU registers on each
//! CPU/GPU interaction" plus memory snapshots, then diff the logs across
//! runs. [`TraceBus`] is that log: the driver, the recorder, and the
//! replayer all publish [`TraceEvent`]s into it.
//!
//! The bus also exposes the *state-changing event* view from §3.2: register
//! writes, register reads whose value differs from the previous read of the
//! same register, reads with side effects, and interrupts.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::SimTime;

/// One logged CPU/GPU interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// CPU read a register and observed `val`. `side_effect` marks reads
    /// that themselves change GPU state (e.g. reading an IRQ-acknowledge
    /// register on some parts).
    RegRead {
        /// Register offset within the device's MMIO window.
        reg: u32,
        /// Observed value.
        val: u32,
        /// Whether the read changes GPU state.
        side_effect: bool,
    },
    /// CPU wrote `val` to a register.
    RegWrite {
        /// Register offset within the device's MMIO window.
        reg: u32,
        /// Written value.
        val: u32,
    },
    /// The GPU raised an interrupt on `line`.
    Irq {
        /// IRQ line identifier.
        line: u32,
    },
    /// A hash of GPU-visible memory, snapshotted around job boundaries.
    MemSnapshot {
        /// FNV-1a hash of the snapshotted region(s).
        hash: u64,
        /// Free-form label ("pre-job-3", "post-irq-7").
        label: String,
    },
    /// Free-form marker (phase boundaries etc.).
    Marker(String),
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the interaction happened on the virtual timeline.
    pub at: SimTime,
    /// The interaction itself.
    pub event: TraceEvent,
}

#[derive(Debug, Default)]
struct BusInner {
    records: Vec<TraceRecord>,
    enabled: bool,
}

/// A shared, cloneable event log.
///
/// Disabled by default so production paths pay nothing; validation harnesses
/// call [`TraceBus::enable`].
///
/// # Example
///
/// ```
/// use gr_sim::{SimTime, TraceBus, TraceEvent};
///
/// let bus = TraceBus::new();
/// bus.enable();
/// bus.publish(SimTime::ZERO, TraceEvent::RegWrite { reg: 0x24, val: 1 });
/// assert_eq!(bus.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBus {
    inner: Arc<Mutex<BusInner>>,
}

impl TraceBus {
    /// Creates a disabled bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts retaining published events.
    pub fn enable(&self) {
        self.inner.lock().enabled = true;
    }

    /// Stops retaining events (already-retained events stay).
    pub fn disable(&self) {
        self.inner.lock().enabled = false;
    }

    /// Whether events are currently retained.
    pub fn is_enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Publishes `event` at instant `at` (no-op while disabled).
    pub fn publish(&self, at: SimTime, event: TraceEvent) {
        let mut g = self.inner.lock();
        if g.enabled {
            g.records.push(TraceRecord { at, event });
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// `true` when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out all retained records.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner.lock().records.clone()
    }

    /// Drops all retained records.
    pub fn clear(&self) {
        self.inner.lock().records.clear();
    }

    /// Extracts the *state-changing* event sequence per §3.2 of the paper:
    /// register writes; register reads returning a value different from the
    /// most recent read of the same register; reads with side effects;
    /// interrupts. Timestamps and repeated-poll reads are dropped, which is
    /// exactly the equivalence the replayer asserts correctness over.
    pub fn state_changing_events(&self) -> Vec<TraceEvent> {
        let records = self.snapshot();
        let mut last_read: HashMap<u32, u32> = HashMap::new();
        let mut out = Vec::new();
        for r in records {
            match &r.event {
                TraceEvent::RegRead {
                    reg,
                    val,
                    side_effect,
                } => {
                    let changed = last_read.insert(*reg, *val) != Some(*val);
                    if changed || *side_effect {
                        out.push(r.event.clone());
                    }
                }
                TraceEvent::RegWrite { .. }
                | TraceEvent::Irq { .. }
                | TraceEvent::MemSnapshot { .. } => out.push(r.event.clone()),
                TraceEvent::Marker(_) => {}
            }
        }
        out
    }
}

/// FNV-1a hash of a byte slice — used for memory snapshots in traces so the
/// validation diff compares hashes instead of multi-MB dumps.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rr(reg: u32, val: u32) -> TraceEvent {
        TraceEvent::RegRead {
            reg,
            val,
            side_effect: false,
        }
    }

    #[test]
    fn disabled_bus_retains_nothing() {
        let bus = TraceBus::new();
        bus.publish(SimTime::ZERO, TraceEvent::Marker("x".into()));
        assert!(bus.is_empty());
        bus.enable();
        assert!(bus.is_enabled());
        bus.publish(SimTime::ZERO, TraceEvent::Marker("y".into()));
        assert_eq!(bus.len(), 1);
        bus.disable();
        bus.publish(SimTime::ZERO, TraceEvent::Marker("z".into()));
        assert_eq!(bus.len(), 1);
    }

    #[test]
    fn polling_collapses_in_state_view() {
        let bus = TraceBus::new();
        bus.enable();
        let t = SimTime::ZERO;
        // Poll STATUS (reg 8) five times at 0, then it flips to 1.
        for _ in 0..5 {
            bus.publish(t, rr(8, 0));
        }
        bus.publish(t, rr(8, 1));
        bus.publish(t, TraceEvent::Irq { line: 1 });
        let sc = bus.state_changing_events();
        assert_eq!(
            sc,
            vec![rr(8, 0), rr(8, 1), TraceEvent::Irq { line: 1 }],
            "first read + changed read + irq"
        );
    }

    #[test]
    fn side_effect_reads_always_count() {
        let bus = TraceBus::new();
        bus.enable();
        let ev = TraceEvent::RegRead {
            reg: 4,
            val: 0,
            side_effect: true,
        };
        bus.publish(SimTime::ZERO, ev.clone());
        bus.publish(SimTime::ZERO, ev.clone());
        assert_eq!(bus.state_changing_events().len(), 2);
    }

    #[test]
    fn markers_are_excluded_from_state_view() {
        let bus = TraceBus::new();
        bus.enable();
        bus.publish(SimTime::ZERO, TraceEvent::Marker("phase".into()));
        bus.publish(SimTime::ZERO, TraceEvent::RegWrite { reg: 1, val: 2 });
        let sc = bus.state_changing_events();
        assert_eq!(sc, vec![TraceEvent::RegWrite { reg: 1, val: 2 }]);
        bus.clear();
        assert!(bus.is_empty());
    }

    #[test]
    fn fnv_distinguishes_content() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
