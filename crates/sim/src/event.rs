//! A small deterministic future-event queue.
//!
//! Device models (GPU job completion, cache-flush done, power-up settle)
//! schedule payloads at absolute instants; the owner drains everything due
//! at or before "now" in schedule order. Ties break by insertion order so
//! simulation stays deterministic.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::time::SimTime;

#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// A time-ordered queue of future events carrying payloads of type `T`.
///
/// # Example
///
/// ```
/// use gr_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop_due(SimTime::from_nanos(15)), Some("early"));
/// assert_eq!(q.pop_due(SimTime::from_nanos(15)), None);
/// assert_eq!(q.next_time(), Some(SimTime::from_nanos(20)));
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// The instant of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the earliest event due at or before `now`, if any.
    pub fn pop_due(&mut self, now: SimTime) -> Option<T> {
        if self.next_time().is_some_and(|t| t <= now) {
            self.heap.pop().map(|Reverse(e)| e.payload)
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events (GPU soft reset).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let now = SimTime::from_nanos(100);
        assert_eq!(q.pop_due(now), Some(1));
        assert_eq!(q.pop_due(now), Some(2));
        assert_eq!(q.pop_due(now), Some(3));
        assert_eq!(q.pop_due(now), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop_due(t), Some(i));
        }
    }

    #[test]
    fn future_events_stay_queued() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(50), "x");
        assert_eq!(q.pop_due(SimTime::from_nanos(49)), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
    }
}
