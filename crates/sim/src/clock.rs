//! The shared virtual clock.
//!
//! One [`SimClock`] is created per simulated machine and cloned into every
//! component (drivers, runtime, GPU device, replayer). Cloning is cheap; all
//! clones observe and advance the same timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// A monotonically advancing virtual clock shared across the machine.
///
/// The clock only moves when a component explicitly charges time to it —
/// there is no background progression. This is what makes record/replay
/// experiments deterministic.
///
/// # Example
///
/// ```
/// use gr_sim::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let driver_view = clock.clone();
/// clock.advance(SimDuration::from_micros(10));
/// assert_eq!(driver_view.now().as_nanos(), 10_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        SimClock {
            ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.ns.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let ns = self.ns.fetch_add(d.as_nanos(), Ordering::SeqCst) + d.as_nanos();
        SimTime::from_nanos(ns)
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise leaves
    /// it unchanged. Returns the (possibly unchanged) current instant.
    ///
    /// Used when waiting for a hardware event scheduled at an absolute time.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        self.ns.fetch_max(t.as_nanos(), Ordering::SeqCst);
        self.now()
    }

    /// Returns `true` if both handles refer to the same timeline.
    pub fn same_timeline(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.ns, &other.ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_timeline() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_nanos(5));
        b.advance(SimDuration::from_nanos(7));
        assert_eq!(a.now(), SimTime::from_nanos(12));
        assert!(a.same_timeline(&b));
        assert!(!a.same_timeline(&SimClock::new()));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = SimClock::new();
        c.advance(SimDuration::from_nanos(100));
        let now = c.advance_to(SimTime::from_nanos(50));
        assert_eq!(now, SimTime::from_nanos(100));
        let now = c.advance_to(SimTime::from_nanos(150));
        assert_eq!(now, SimTime::from_nanos(150));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SimClock::default().now(), SimTime::ZERO);
    }
}
