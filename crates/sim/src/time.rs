//! Virtual-time primitives: [`SimTime`] (an instant) and [`SimDuration`]
//! (a span), both with nanosecond resolution.
//!
//! These are deliberate newtypes (not `std::time`) so that virtual time can
//! never be confused with wall-clock time anywhere in the workspace.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation timeline, in nanoseconds since boot.
///
/// # Example
///
/// ```
/// use gr_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(5);
/// assert_eq!(t.as_nanos(), 5_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// # Example
///
/// ```
/// use gr_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 2_500_000);
/// assert_eq!(d.to_string(), "2.500ms");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after boot.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since boot as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is after `self`
    /// (saturating, mirroring `Instant::saturating_duration_since`).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration seconds: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a non-negative factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid duration scale: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Largest of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Smallest of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is after `self`; use
    /// [`SimTime::saturating_since`] when order is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).saturating_since(t), d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!(t.checked_since(t + d), None);
        assert_eq!((t + d).checked_since(t), Some(d));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn duration_scaling_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.26).as_nanos(), 13);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!((d * 3).as_nanos(), 30);
        assert_eq!((d / 3).as_nanos(), 3);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimDuration::from_nanos(7_500).to_string(), "7.500us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
        assert_eq!(SimTime::from_nanos(1_000).to_string(), "t+1.000us");
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
        assert_eq!(SimDuration::MAX * 2, SimDuration::MAX);
    }

    #[test]
    fn min_max_accessors() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!a.is_zero());
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_nanos(2_000_000_000).as_secs_f64() - 2.0).abs() < 1e-12);
    }
}
