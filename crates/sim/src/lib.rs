//! Simulation substrate for the GPUReplay reproduction.
//!
//! Everything in this workspace runs against *virtual time*: a [`SimClock`]
//! shared by the CPU-side software stack and the simulated GPU hardware.
//! Components charge modeled costs (JIT compilation, ioctl crossings, GPU
//! busy time, cache-flush delays, ...) to the clock instead of burning wall
//! clock, which makes every experiment deterministic and fast while
//! preserving the delay *shapes* the paper reports.
//!
//! The crate also provides:
//!
//! * [`SimRng`] — deterministic, fork-able randomness (timing jitter, magic
//!   input generation, interference schedules);
//! * [`TraceBus`] — the CPU/GPU interaction log used by the §7.2
//!   correctness-validation experiments;
//! * [`EventQueue`] — the pending-event structure device models use to
//!   schedule job completions and IRQs;
//! * [`MemAccount`] — modeled CPU heap accounting for the §7.3 memory
//!   comparison.
//!
//! # Example
//!
//! ```
//! use gr_sim::{SimClock, SimDuration};
//!
//! let clock = SimClock::new();
//! clock.advance(SimDuration::from_millis(3));
//! assert_eq!(clock.now().as_nanos(), 3_000_000);
//! ```

pub mod clock;
pub mod event;
pub mod mem;
pub mod rng;
pub mod time;
pub mod trace;

pub use clock::SimClock;
pub use event::EventQueue;
pub use mem::MemAccount;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceBus, TraceEvent};
