//! The model zoo.
//!
//! Layer stacks follow the published architectures at full size; per-model
//! divisors pick the reduced size the simulation actually executes. Layer
//! counts match the paper's Table 6 ("#layers"). [`catalog`] enumerates
//! the 33 runnable network configurations the paper's abstract counts.

use gr_gpu::vm::bytecode::{ActKind, PoolKind};

use crate::layers::{Dims, LayerSpec, ModelSpec};

use LayerSpec::{
    Conv, DepthwiseConv, Fire, FullyConnected, Norm, Pool, Residual, Softmax, Upsample,
};

const RELU: ActKind = ActKind::Relu;
const LEAKY: ActKind = ActKind::LeakyRelu;
const NONE: ActKind = ActKind::None;

fn maxpool(win: u32, stride: u32) -> LayerSpec {
    Pool {
        win,
        stride,
        kind: PoolKind::Max,
    }
}

fn avgpool(win: u32, stride: u32) -> LayerSpec {
    Pool {
        win,
        stride,
        kind: PoolKind::Avg,
    }
}

/// LeNet-style MNIST classifier — 4 layers, the paper's smallest workload.
pub fn mnist() -> ModelSpec {
    ModelSpec {
        name: "MNIST",
        input: Dims { c: 1, h: 28, w: 28 },
        layers: vec![
            Conv {
                cout: 8,
                k: 5,
                stride: 1,
                pad: 2,
                act: RELU,
            },
            maxpool(2, 2),
            FullyConnected { out: 10, act: NONE },
            Softmax,
        ],
        spatial_div: 1,
        channel_div: 1,
    }
}

/// AlexNet — 8 learnable layers (5 conv + 3 FC) plus pools/norms.
pub fn alexnet() -> ModelSpec {
    ModelSpec {
        name: "AlexNet",
        input: Dims {
            c: 3,
            h: 224,
            w: 224,
        },
        layers: vec![
            Conv {
                cout: 96,
                k: 11,
                stride: 4,
                pad: 2,
                act: RELU,
            },
            Norm,
            maxpool(3, 2),
            Conv {
                cout: 256,
                k: 5,
                stride: 1,
                pad: 2,
                act: RELU,
            },
            Norm,
            maxpool(3, 2),
            Conv {
                cout: 384,
                k: 3,
                stride: 1,
                pad: 1,
                act: RELU,
            },
            Conv {
                cout: 384,
                k: 3,
                stride: 1,
                pad: 1,
                act: RELU,
            },
            Conv {
                cout: 256,
                k: 3,
                stride: 1,
                pad: 1,
                act: RELU,
            },
            maxpool(3, 2),
            FullyConnected {
                out: 4096,
                act: RELU,
            },
            FullyConnected {
                out: 4096,
                act: RELU,
            },
            FullyConnected {
                out: 1000,
                act: NONE,
            },
            Softmax,
        ],
        spatial_div: 8,
        channel_div: 4,
    }
}

/// MobileNet(v1-style) — 28 layers of alternating depthwise/pointwise.
pub fn mobilenet() -> ModelSpec {
    let mut layers = vec![Conv {
        cout: 32,
        k: 3,
        stride: 2,
        pad: 1,
        act: ActKind::Relu6,
    }];
    // (dw stride, pw cout) schedule of MobileNetV1.
    let sched: [(u32, u32); 13] = [
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ];
    for (s, cout) in sched {
        layers.push(DepthwiseConv {
            k: 3,
            stride: s,
            pad: 1,
            act: ActKind::Relu6,
        });
        layers.push(Conv {
            cout,
            k: 1,
            stride: 1,
            pad: 0,
            act: ActKind::Relu6,
        });
    }
    layers.push(FullyConnected {
        out: 1000,
        act: NONE,
    });
    ModelSpec {
        name: "MobileNet",
        input: Dims {
            c: 3,
            h: 224,
            w: 224,
        },
        layers,
        spatial_div: 8,
        channel_div: 4,
    }
}

/// SqueezeNet — 26 layers dominated by fire modules.
pub fn squeezenet() -> ModelSpec {
    let mut layers = vec![
        Conv {
            cout: 96,
            k: 7,
            stride: 2,
            pad: 3,
            act: RELU,
        },
        Norm,
        maxpool(3, 2),
    ];
    for (sq, ex) in [(16, 64), (16, 64), (32, 128)] {
        layers.push(Fire {
            squeeze: sq,
            expand: ex,
        });
        layers.push(Norm);
    }
    layers.push(maxpool(3, 2));
    for (sq, ex) in [(32, 128), (48, 192), (48, 192), (64, 256)] {
        layers.push(Fire {
            squeeze: sq,
            expand: ex,
        });
        layers.push(Norm);
    }
    layers.push(maxpool(3, 2));
    layers.push(Fire {
        squeeze: 64,
        expand: 256,
    });
    layers.push(Norm);
    layers.push(Conv {
        cout: 1000,
        k: 1,
        stride: 1,
        pad: 0,
        act: RELU,
    });
    layers.push(Norm);
    layers.push(avgpool(2, 2));
    layers.push(Norm);
    layers.push(Softmax);
    ModelSpec {
        name: "SqueezeNet",
        input: Dims {
            c: 3,
            h: 224,
            w: 224,
        },
        layers,
        spatial_div: 8,
        channel_div: 4,
    }
}

fn resnet(name: &'static str, blocks: &[(u32, u32)], tail_fc: u32) -> ModelSpec {
    let mut layers = vec![
        Conv {
            cout: 64,
            k: 7,
            stride: 2,
            pad: 3,
            act: RELU,
        },
        maxpool(3, 2),
    ];
    for &(cout, stride) in blocks {
        layers.push(Residual { cout, stride });
    }
    layers.push(avgpool(2, 2));
    layers.push(FullyConnected {
        out: tail_fc,
        act: NONE,
    });
    ModelSpec {
        name,
        input: Dims {
            c: 3,
            h: 224,
            w: 224,
        },
        layers,
        spatial_div: 8,
        channel_div: 4,
    }
}

/// ResNet-12 — 12 layers (the Mali evaluation variant).
pub fn resnet12() -> ModelSpec {
    // conv + pool + 8 residual blocks + avgpool + fc = 12.
    resnet(
        "ResNet12",
        &[
            (64, 1),
            (64, 1),
            (128, 2),
            (128, 1),
            (256, 2),
            (256, 1),
            (512, 2),
            (512, 1),
        ],
        1000,
    )
}

/// ResNet-18 — 18 layers (the v3d evaluation variant).
pub fn resnet18() -> ModelSpec {
    // conv + pool + 14 residual blocks + avgpool + fc = 18.
    resnet(
        "ResNet18",
        &[
            (64, 1),
            (64, 1),
            (64, 1),
            (64, 1),
            (128, 2),
            (128, 1),
            (128, 1),
            (256, 2),
            (256, 1),
            (256, 1),
            (512, 2),
            (512, 1),
            (512, 1),
            (512, 1),
        ],
        1000,
    )
}

/// VGG16 — 16 learnable layers (13 conv + 3 FC).
pub fn vgg16() -> ModelSpec {
    let mut layers = Vec::new();
    let cfg: [(u32, u32); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    for (cout, reps) in cfg {
        for _ in 0..reps {
            layers.push(Conv {
                cout,
                k: 3,
                stride: 1,
                pad: 1,
                act: RELU,
            });
        }
        layers.push(maxpool(2, 2));
    }
    layers.push(FullyConnected {
        out: 4096,
        act: RELU,
    });
    layers.push(FullyConnected {
        out: 4096,
        act: RELU,
    });
    layers.push(FullyConnected {
        out: 1000,
        act: NONE,
    });
    ModelSpec {
        name: "VGG16",
        input: Dims {
            c: 3,
            h: 224,
            w: 224,
        },
        layers,
        spatial_div: 4,
        channel_div: 8,
    }
}

/// YOLOv4-tiny-style detector backbone — 38 layers.
pub fn yolov4_tiny() -> ModelSpec {
    let mut layers = vec![
        Conv {
            cout: 32,
            k: 3,
            stride: 2,
            pad: 1,
            act: LEAKY,
        },
        Conv {
            cout: 64,
            k: 3,
            stride: 2,
            pad: 1,
            act: LEAKY,
        },
    ];
    // CSP-ish stages: conv/conv/conv + pool, repeated.
    for cout in [64u32, 128, 256] {
        for _ in 0..3 {
            layers.push(Conv {
                cout,
                k: 3,
                stride: 1,
                pad: 1,
                act: LEAKY,
            });
        }
        layers.push(maxpool(2, 2));
    }
    // Neck + heads.
    for _ in 0..2 {
        layers.push(Conv {
            cout: 512,
            k: 3,
            stride: 1,
            pad: 1,
            act: LEAKY,
        });
        layers.push(Conv {
            cout: 256,
            k: 1,
            stride: 1,
            pad: 0,
            act: LEAKY,
        });
    }
    layers.push(Upsample);
    for _ in 0..3 {
        layers.push(Conv {
            cout: 256,
            k: 3,
            stride: 1,
            pad: 1,
            act: LEAKY,
        });
    }
    layers.push(Conv {
        cout: 255,
        k: 1,
        stride: 1,
        pad: 0,
        act: NONE,
    });
    // Pad with norm layers to the published 38-layer graph size.
    while layers.len() < 38 {
        layers.push(Norm);
    }
    ModelSpec {
        name: "YOLOv4-tiny",
        input: Dims {
            c: 3,
            h: 416,
            w: 416,
        },
        layers,
        spatial_div: 8,
        channel_div: 4,
    }
}

/// The six NNs of the paper's Mali evaluation (Table 6a).
pub fn mali_suite() -> Vec<ModelSpec> {
    vec![
        mnist(),
        alexnet(),
        mobilenet(),
        squeezenet(),
        resnet12(),
        vgg16(),
    ]
}

/// The six NNs of the paper's v3d evaluation (Table 6b).
pub fn v3d_suite() -> Vec<ModelSpec> {
    vec![
        yolov4_tiny(),
        alexnet(),
        mobilenet(),
        squeezenet(),
        resnet18(),
        vgg16(),
    ]
}

/// Looks a model up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<ModelSpec> {
    let lower = name.to_lowercase();
    catalog()
        .into_iter()
        .find(|m| m.name.to_lowercase() == lower)
}

/// The 33 NN configurations this reproduction can record and replay
/// (base architectures plus reduced-width/-resolution deployment variants,
/// the way mobile frameworks ship multipliers).
pub fn catalog() -> Vec<ModelSpec> {
    let base = [
        mnist(),
        alexnet(),
        mobilenet(),
        squeezenet(),
        resnet12(),
        resnet18(),
        vgg16(),
        yolov4_tiny(),
    ];
    let mut out = Vec::new();
    for m in &base {
        out.push(m.clone());
    }
    // Width-multiplier variants (x0.5 channels).
    for m in &base {
        let mut v = m.clone();
        v.name = match m.name {
            "MNIST" => "MNIST-w0.5",
            "AlexNet" => "AlexNet-w0.5",
            "MobileNet" => "MobileNet-w0.5",
            "SqueezeNet" => "SqueezeNet-w0.5",
            "ResNet12" => "ResNet12-w0.5",
            "ResNet18" => "ResNet18-w0.5",
            "VGG16" => "VGG16-w0.5",
            _ => "YOLOv4-tiny-w0.5",
        };
        v.channel_div *= 2;
        out.push(v);
    }
    // Reduced-resolution variants.
    for m in &base {
        let mut v = m.clone();
        v.name = match m.name {
            "MNIST" => "MNIST-r0.5",
            "AlexNet" => "AlexNet-r0.5",
            "MobileNet" => "MobileNet-r0.5",
            "SqueezeNet" => "SqueezeNet-r0.5",
            "ResNet12" => "ResNet12-r0.5",
            "ResNet18" => "ResNet18-r0.5",
            "VGG16" => "VGG16-r0.5",
            _ => "YOLOv4-tiny-r0.5",
        };
        v.spatial_div *= 2;
        out.push(v);
    }
    // Quantifiably distinct extra configurations used in examples/tests.
    let mut lenet_deep = mnist();
    lenet_deep.name = "MNIST-deep";
    lenet_deep.layers = vec![
        Conv {
            cout: 8,
            k: 5,
            stride: 1,
            pad: 2,
            act: RELU,
        },
        maxpool(2, 2),
        Conv {
            cout: 16,
            k: 5,
            stride: 1,
            pad: 2,
            act: RELU,
        },
        maxpool(2, 2),
        FullyConnected { out: 10, act: NONE },
        Softmax,
    ];
    out.push(lenet_deep);

    let mut alex_big_in = alexnet();
    alex_big_in.name = "AlexNet-hires";
    alex_big_in.spatial_div = 4;
    out.push(alex_big_in);

    let mut mobile_embed = mobilenet();
    mobile_embed.name = "MobileNet-embedding";
    mobile_embed.layers.pop(); // drop the classifier FC
    out.push(mobile_embed);

    let mut yolo_trunk = yolov4_tiny();
    yolo_trunk.name = "YOLOv4-tiny-trunk";
    yolo_trunk.layers.truncate(14);
    out.push(yolo_trunk);

    let mut vgg_headless = vgg16();
    vgg_headless.name = "VGG16-features";
    vgg_headless.layers.truncate(18);
    out.push(vgg_headless);

    let mut sqz_lite = squeezenet();
    sqz_lite.name = "SqueezeNet-lite";
    sqz_lite.layers.truncate(12);
    out.push(sqz_lite);

    let mut res_q = resnet12();
    res_q.name = "ResNet12-w0.25";
    res_q.channel_div *= 4;
    out.push(res_q);

    let mut mob_q = mobilenet();
    mob_q.name = "MobileNet-r0.25";
    mob_q.spatial_div *= 4;
    out.push(mob_q);

    let mut mlp = mnist();
    mlp.name = "MNIST-mlp";
    mlp.layers = vec![
        FullyConnected { out: 64, act: RELU },
        FullyConnected { out: 10, act: NONE },
        Softmax,
    ];
    out.push(mlp);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_the_paper() {
        assert_eq!(mnist().layer_count(), 4);
        assert_eq!(alexnet().layer_count(), 14); // 8 learnable + pools/norms/softmax
        assert_eq!(mobilenet().layer_count(), 28);
        assert_eq!(squeezenet().layer_count(), 26);
        assert_eq!(resnet12().layer_count(), 12);
        assert_eq!(resnet18().layer_count(), 18);
        assert_eq!(vgg16().layer_count(), 21); // 16 learnable + 5 pools
        assert_eq!(yolov4_tiny().layer_count(), 38);
    }

    #[test]
    fn catalog_has_33_distinct_networks() {
        let cat = catalog();
        assert_eq!(cat.len(), 33);
        let mut names: Vec<&str> = cat.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 33, "names must be unique");
    }

    #[test]
    fn suites_have_six_models_each() {
        assert_eq!(mali_suite().len(), 6);
        assert_eq!(v3d_suite().len(), 6);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("vgg16").unwrap().name, "VGG16");
        assert_eq!(by_name("AlexNet-w0.5").unwrap().channel_div, 8);
        assert!(by_name("nope").is_none());
    }
}
