//! Layer and model descriptions.
//!
//! A [`ModelSpec`] holds the *full-size* network (the dimensions the paper
//! evaluates) plus reduction divisors; shape inference runs at both
//! resolutions so lowering can attach modeled full-size costs to
//! reduced-size kernels.

use gr_gpu::vm::bytecode::{ActKind, PoolKind};

/// A CHW tensor shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Channels.
    pub c: u32,
    /// Height.
    pub h: u32,
    /// Width.
    pub w: u32,
}

impl Dims {
    /// Element count.
    pub fn elems(self) -> u64 {
        u64::from(self.c) * u64::from(self.h) * u64::from(self.w)
    }

    /// Byte size as f32.
    pub fn bytes(self) -> u64 {
        self.elems() * 4
    }
}

/// One network layer (as a framework sees it — each lowers to several GPU
/// jobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerSpec {
    /// Standard convolution with fused bias + activation.
    Conv {
        /// Output channels (full-size).
        cout: u32,
        /// Square kernel edge.
        k: u32,
        /// Stride.
        stride: u32,
        /// Padding.
        pad: u32,
        /// Fused activation.
        act: ActKind,
    },
    /// Depthwise convolution (groups = channels).
    DepthwiseConv {
        /// Square kernel edge.
        k: u32,
        /// Stride.
        stride: u32,
        /// Padding.
        pad: u32,
        /// Fused activation.
        act: ActKind,
    },
    /// Pooling.
    Pool {
        /// Window edge.
        win: u32,
        /// Stride.
        stride: u32,
        /// Max or average.
        kind: PoolKind,
    },
    /// Fully connected (flattens input) with fused activation.
    FullyConnected {
        /// Output features (full-size).
        out: u32,
        /// Fused activation.
        act: ActKind,
    },
    /// Row softmax over the flattened activation.
    Softmax,
    /// SqueezeNet fire module: 1×1 squeeze, then parallel 1×1 and 3×3
    /// expands whose outputs concatenate.
    Fire {
        /// Squeeze channels.
        squeeze: u32,
        /// Channels of each expand branch.
        expand: u32,
    },
    /// ResNet basic block: two 3×3 convs plus the identity (or 1×1
    /// projection when `stride != 1` or channels change) skip, ReLU after
    /// the add.
    Residual {
        /// Output channels.
        cout: u32,
        /// Stride of the first conv.
        stride: u32,
    },
    /// Nearest-neighbour 2× upsample (YOLO neck).
    Upsample,
    /// Channel-wise scale+shift (stand-in for LRN/BatchNorm at inference).
    Norm,
}

impl LayerSpec {
    /// Short mnemonic for labels.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerSpec::Conv { .. } => "conv",
            LayerSpec::DepthwiseConv { .. } => "dwconv",
            LayerSpec::Pool { .. } => "pool",
            LayerSpec::FullyConnected { .. } => "fc",
            LayerSpec::Softmax => "softmax",
            LayerSpec::Fire { .. } => "fire",
            LayerSpec::Residual { .. } => "res",
            LayerSpec::Upsample => "upsample",
            LayerSpec::Norm => "norm",
        }
    }

    /// `true` for layers the Fig. 11 fusion pass may merge into the
    /// preceding compute layer (activations/pools/norm/softmax).
    pub fn fusable_with_previous(&self) -> bool {
        matches!(
            self,
            LayerSpec::Pool { .. } | LayerSpec::Softmax | LayerSpec::Norm
        )
    }
}

/// A complete network description.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name ("AlexNet").
    pub name: &'static str,
    /// Full-size input shape.
    pub input: Dims,
    /// Layer stack (full-size parameters).
    pub layers: Vec<LayerSpec>,
    /// Divisor applied to spatial dims for the actual (executed) network.
    pub spatial_div: u32,
    /// Divisor applied to channel counts for the actual network.
    pub channel_div: u32,
}

impl ModelSpec {
    /// Layer count (the paper's "#layers" column).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The reduced ("actual") input shape that really executes.
    pub fn actual_input(&self) -> Dims {
        Dims {
            c: self.input.c, // input channels (e.g. RGB) are not divided
            h: (self.input.h / self.spatial_div).max(1),
            w: (self.input.w / self.spatial_div).max(1),
        }
    }

    /// Scales an internal channel count down to the actual network.
    pub fn scale_ch(&self, ch: u32) -> u32 {
        (ch / self.channel_div).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_arithmetic() {
        let d = Dims { c: 3, h: 4, w: 5 };
        assert_eq!(d.elems(), 60);
        assert_eq!(d.bytes(), 240);
    }

    #[test]
    fn scaling_rules() {
        let m = ModelSpec {
            name: "t",
            input: Dims {
                c: 3,
                h: 224,
                w: 224,
            },
            layers: vec![LayerSpec::Softmax],
            spatial_div: 8,
            channel_div: 4,
        };
        assert_eq!(m.actual_input(), Dims { c: 3, h: 28, w: 28 });
        assert_eq!(m.scale_ch(96), 24);
        assert_eq!(m.scale_ch(2), 1, "never scales to zero");
        assert_eq!(m.layer_count(), 1);
    }

    #[test]
    fn fusion_classification() {
        assert!(LayerSpec::Softmax.fusable_with_previous());
        assert!(LayerSpec::Pool {
            win: 2,
            stride: 2,
            kind: PoolKind::Max
        }
        .fusable_with_previous());
        assert!(!LayerSpec::Conv {
            cout: 8,
            k: 3,
            stride: 1,
            pad: 1,
            act: ActKind::Relu
        }
        .fusable_with_previous());
        assert_eq!(LayerSpec::Upsample.mnemonic(), "upsample");
    }
}
