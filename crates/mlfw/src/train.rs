//! DeepCL-style MNIST training (§7.4 / Fig. 8).
//!
//! One training iteration is a fixed job sequence (forward, backward, SGD
//! updates) submitted synchronously — DeepCL already flushes after every
//! job, which is why the paper can record it unchanged. The convergence
//! predicate runs on the CPU between iterations, so replay loops the
//! per-iteration recording until the app decides to stop (paper Fig. 4).
//!
//! Weights are both inputs *and* outputs of the recording (recorded "by
//! value and by address", §4.4): the app extracts updated weights after
//! each replayed iteration and injects them into the next.

use gr_gpu::timing::JobCost;
use gr_gpu::vm::bytecode::{ActKind, KernelOp, PoolKind};
use gr_sim::SimRng;
use gr_stack::driver::DriverError;
use gr_stack::runtime::{Buffer, BufferKind, GpuRuntime, KernelLaunch};

/// MNIST image side.
pub const IMG: u32 = 28;
/// Conv channels.
pub const CONV_CH: u32 = 8;
/// Classes.
pub const CLASSES: u32 = 10;
/// Flattened feature count after conv+pool (8×14×14).
pub const FLAT: u32 = CONV_CH * (IMG / 2) * (IMG / 2);
/// SGD learning rate.
pub const LR: f32 = 0.05;

/// A built training workload: buffers plus the one-iteration job list.
pub struct TrainSession {
    /// Input image buffer (1×28×28).
    pub x: Buffer,
    /// Label buffer (one f32 class id).
    pub labels: Buffer,
    /// Conv weights (8×1×5×5).
    pub w1: Buffer,
    /// FC weights (1568×10).
    pub wfc: Buffer,
    /// FC bias (10).
    pub bfc: Buffer,
    /// Softmax probabilities (10) — read back for the loss predicate.
    pub probs: Buffer,
    /// The jobs of one iteration, in submission order.
    pub launches: Vec<KernelLaunch>,
    /// Initial weight values `(va, bytes)` (also used by the CPU mirror).
    pub initial_weights: Vec<(u64, Vec<u8>)>,
}

fn f32_bytes(vals: &[f32]) -> Vec<u8> {
    let mut b = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b
}

impl TrainSession {
    /// Allocates buffers, uploads initial weights, and builds the
    /// per-iteration job list.
    ///
    /// # Errors
    ///
    /// Fails when GPU memory runs out.
    pub fn build(rt: &mut GpuRuntime, seed: u64) -> Result<TrainSession, DriverError> {
        let mut rng = SimRng::seed_from(seed).fork("train");
        let alloc =
            |rt: &mut GpuRuntime, elems: u32, kind| rt.alloc_buffer((elems * 4) as usize, kind);

        let x = alloc(rt, IMG * IMG, BufferKind::Data)?;
        let labels = alloc(rt, 1, BufferKind::Data)?;
        let w1 = alloc(rt, CONV_CH * 25, BufferKind::Data)?;
        let wfc = alloc(rt, FLAT * CLASSES, BufferKind::Data)?;
        let bfc = alloc(rt, CLASSES, BufferKind::Data)?;
        let probs = alloc(rt, CLASSES, BufferKind::Data)?;

        let a1_pre = alloc(rt, CONV_CH * IMG * IMG, BufferKind::Internal)?;
        let a1 = alloc(rt, CONV_CH * IMG * IMG, BufferKind::Internal)?;
        let p1 = alloc(rt, FLAT, BufferKind::Internal)?;
        let flat = alloc(rt, FLAT, BufferKind::Internal)?;
        let logits = alloc(rt, CLASSES, BufferKind::Internal)?;
        let dlogits = alloc(rt, CLASSES, BufferKind::Internal)?;
        let dwfc = alloc(rt, FLAT * CLASSES, BufferKind::Internal)?;
        let dbfc = alloc(rt, CLASSES, BufferKind::Internal)?;
        let dflat = alloc(rt, FLAT, BufferKind::Internal)?;
        let da1 = alloc(rt, CONV_CH * IMG * IMG, BufferKind::Internal)?;
        let da1_pre = alloc(rt, CONV_CH * IMG * IMG, BufferKind::Internal)?;
        let dw1 = alloc(rt, CONV_CH * 25, BufferKind::Internal)?;

        // Deterministic initial weights.
        let mut initial_weights = Vec::new();
        for (buf, n, fan_in) in [
            (&w1, CONV_CH * 25, 25u32),
            (&wfc, FLAT * CLASSES, FLAT),
            (&bfc, CLASSES, 1),
        ] {
            let scale = 1.0 / (fan_in as f32).sqrt();
            let vals: Vec<f32> = (0..n)
                .map(|_| (rng.unit_f64() as f32 * 2.0 - 1.0) * scale)
                .collect();
            let bytes = f32_bytes(&vals);
            rt.write_buffer(buf, 0, &bytes)?;
            initial_weights.push((buf.va, bytes));
        }

        let full = |flops: u64, bytes: u64| JobCost { flops, bytes };
        let conv_macs = u64::from(CONV_CH) * 25 * u64::from(IMG * IMG);
        let fc_macs = u64::from(FLAT * CLASSES);
        let mk = |op: KernelOp, cost: JobCost, key: &str, label: &str| KernelLaunch {
            op,
            cost,
            kind_key: key.to_string(),
            label: label.to_string(),
        };

        let launches = vec![
            // --- forward ---
            mk(
                KernelOp::Conv2d {
                    x: x.va,
                    w: w1.va,
                    bias: 0,
                    out: a1_pre.va,
                    cin: 1,
                    h: IMG,
                    wd: IMG,
                    cout: CONV_CH,
                    kh: 5,
                    kw: 5,
                    stride: 1,
                    pad: 2,
                    groups: 1,
                    act: ActKind::None,
                },
                full(2 * conv_macs, 4 * u64::from(CONV_CH * IMG * IMG)),
                "conv2d/k5s1g1c8",
                "fwd:conv1",
            ),
            mk(
                KernelOp::Activation {
                    x: a1_pre.va,
                    out: a1.va,
                    n: CONV_CH * IMG * IMG,
                    act: ActKind::Relu,
                },
                full(
                    u64::from(CONV_CH * IMG * IMG),
                    8 * u64::from(CONV_CH * IMG * IMG),
                ),
                "act/relu",
                "fwd:relu1",
            ),
            mk(
                KernelOp::Pool2d {
                    x: a1.va,
                    out: p1.va,
                    c: CONV_CH,
                    h: IMG,
                    wd: IMG,
                    win: 2,
                    stride: 2,
                    kind: PoolKind::Max,
                },
                full(u64::from(FLAT) * 4, 4 * u64::from(CONV_CH * IMG * IMG)),
                "pool/w2s2",
                "fwd:pool1",
            ),
            mk(
                KernelOp::CopyBytes {
                    src: p1.va,
                    dst: flat.va,
                    len: FLAT * 4,
                },
                full(0, u64::from(FLAT) * 8),
                "copy/flatten",
                "fwd:flatten",
            ),
            mk(
                KernelOp::FullyConnected {
                    x: flat.va,
                    w: wfc.va,
                    bias: bfc.va,
                    out: logits.va,
                    m: 1,
                    k: FLAT,
                    n: CLASSES,
                    act: ActKind::None,
                },
                full(2 * fc_macs, 4 * fc_macs / 8),
                "fc/n10",
                "fwd:fc",
            ),
            mk(
                KernelOp::Softmax {
                    x: logits.va,
                    out: probs.va,
                    rows: 1,
                    cols: CLASSES,
                },
                full(40, 80),
                "softmax",
                "fwd:softmax",
            ),
            // --- backward ---
            mk(
                KernelOp::SoftmaxXentGrad {
                    probs: probs.va,
                    labels: labels.va,
                    dx: dlogits.va,
                    rows: 1,
                    cols: CLASSES,
                },
                full(20, 80),
                "smxent_g",
                "bwd:xent",
            ),
            mk(
                KernelOp::MatMulGradW {
                    x: flat.va,
                    dy: dlogits.va,
                    dw: dwfc.va,
                    m: 1,
                    k: FLAT,
                    n: CLASSES,
                },
                full(2 * fc_macs, 4 * fc_macs / 8),
                "mm_gw/fc",
                "bwd:fc_gw",
            ),
            mk(
                KernelOp::BiasGradReduce {
                    dy: dlogits.va,
                    db: dbfc.va,
                    m: 1,
                    n: CLASSES,
                },
                full(10, 80),
                "bias_g",
                "bwd:fc_gb",
            ),
            mk(
                KernelOp::MatMulGradX {
                    dy: dlogits.va,
                    w: wfc.va,
                    dx: dflat.va,
                    m: 1,
                    k: FLAT,
                    n: CLASSES,
                },
                full(2 * fc_macs, 4 * fc_macs / 8),
                "mm_gx/fc",
                "bwd:fc_gx",
            ),
            mk(
                KernelOp::CopyBytes {
                    src: dflat.va,
                    dst: dflat.va,
                    len: FLAT * 4,
                },
                full(0, u64::from(FLAT) * 8),
                "copy/unflatten",
                "bwd:unflatten",
            ),
            mk(
                KernelOp::PoolGrad {
                    x: a1.va,
                    dy: dflat.va,
                    dx: da1.va,
                    c: CONV_CH,
                    h: IMG,
                    wd: IMG,
                    win: 2,
                    stride: 2,
                    kind: PoolKind::Max,
                },
                full(u64::from(FLAT) * 4, 8 * u64::from(CONV_CH * IMG * IMG)),
                "pool_g",
                "bwd:pool_g",
            ),
            mk(
                KernelOp::ReluGrad {
                    x: a1_pre.va,
                    dy: da1.va,
                    dx: da1_pre.va,
                    n: CONV_CH * IMG * IMG,
                },
                full(
                    u64::from(CONV_CH * IMG * IMG),
                    12 * u64::from(CONV_CH * IMG * IMG),
                ),
                "relu_g",
                "bwd:relu_g",
            ),
            mk(
                KernelOp::Conv2dGradW {
                    x: x.va,
                    dy: da1_pre.va,
                    dw: dw1.va,
                    cin: 1,
                    h: IMG,
                    wd: IMG,
                    cout: CONV_CH,
                    kh: 5,
                    kw: 5,
                    stride: 1,
                    pad: 2,
                },
                full(2 * conv_macs, 4 * u64::from(CONV_CH * IMG * IMG)),
                "conv_gw",
                "bwd:conv_gw",
            ),
            // --- optimizer ---
            mk(
                KernelOp::SgdStep {
                    w: w1.va,
                    g: dw1.va,
                    n: CONV_CH * 25,
                    lr: LR,
                },
                full(u64::from(CONV_CH * 25) * 2, u64::from(CONV_CH * 25) * 12),
                "sgd",
                "opt:w1",
            ),
            mk(
                KernelOp::SgdStep {
                    w: wfc.va,
                    g: dwfc.va,
                    n: FLAT * CLASSES,
                    lr: LR,
                },
                full(
                    u64::from(FLAT * CLASSES) * 2,
                    u64::from(FLAT * CLASSES) * 12,
                ),
                "sgd",
                "opt:wfc",
            ),
            mk(
                KernelOp::SgdStep {
                    w: bfc.va,
                    g: dbfc.va,
                    n: CLASSES,
                    lr: LR,
                },
                full(20, 120),
                "sgd",
                "opt:bfc",
            ),
        ];

        Ok(TrainSession {
            x,
            labels,
            w1,
            wfc,
            bfc,
            probs,
            launches,
            initial_weights,
        })
    }

    /// Runs one training iteration on `(image, label)`, returning the
    /// cross-entropy loss (the CPU-side convergence predicate's signal).
    ///
    /// # Errors
    ///
    /// Propagates job faults.
    pub fn run_iteration(
        &self,
        rt: &mut GpuRuntime,
        image: &[f32],
        label: u32,
    ) -> Result<f32, DriverError> {
        assert_eq!(image.len(), (IMG * IMG) as usize, "image size");
        assert!(label < CLASSES, "label out of range");
        rt.write_buffer(&self.x, 0, &f32_bytes(image))?;
        rt.write_buffer(&self.labels, 0, &f32_bytes(&[label as f32]))?;
        for launch in &self.launches {
            rt.launch(launch)?;
        }
        rt.finish()?;
        let mut bytes = vec![0u8; (CLASSES * 4) as usize];
        rt.read_buffer(&self.probs, 0, &mut bytes)?;
        let probs: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect();
        Ok(-(probs[label as usize].max(1e-12)).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::sku::MALI_G71;
    use gr_gpu::Machine;

    fn digit_image(seed: u64) -> (Vec<f32>, u32) {
        let mut rng = SimRng::seed_from(seed);
        let label = (seed % u64::from(CLASSES)) as u32;
        // A crude synthetic "digit": noise plus a label-dependent stripe.
        let img: Vec<f32> = (0..(IMG * IMG) as usize)
            .map(|i| {
                let row = i as u32 / IMG;
                let base = if row % CLASSES == label { 0.9 } else { 0.1 };
                base + 0.05 * rng.unit_f64() as f32
            })
            .collect();
        (img, label)
    }

    #[test]
    fn loss_decreases_over_iterations() {
        let machine = Machine::new(&MALI_G71, 77);
        let mut rt = GpuRuntime::create(machine, true, None).unwrap();
        let sess = TrainSession::build(&mut rt, 5).unwrap();
        assert_eq!(sess.launches.len(), 17, "one iteration = 17 GPU jobs");
        // Train on a single sample: loss must drop monotonically-ish.
        let (img, label) = digit_image(3);
        let first = sess.run_iteration(&mut rt, &img, label).unwrap();
        let mut last = first;
        for _ in 0..10 {
            last = sess.run_iteration(&mut rt, &img, label).unwrap();
        }
        assert!(
            last < first * 0.5,
            "loss should halve: first {first}, last {last}"
        );
        rt.release();
    }

    #[test]
    fn different_labels_steer_different_classes() {
        let machine = Machine::new(&MALI_G71, 78);
        let mut rt = GpuRuntime::create(machine, true, None).unwrap();
        let sess = TrainSession::build(&mut rt, 6).unwrap();
        let (img, label) = digit_image(4);
        for _ in 0..12 {
            sess.run_iteration(&mut rt, &img, label).unwrap();
        }
        let mut bytes = vec![0u8; (CLASSES * 4) as usize];
        rt.read_buffer(&sess.probs, 0, &mut bytes).unwrap();
        let probs: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let argmax = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax as u32, label, "probs: {probs:?}");
        rt.release();
    }
}
