//! Recording granularity groupings (Fig. 11).
//!
//! The paper studies three ways to slice a workload into recordings: one
//! monolithic recording per NN (efficient), one per NN layer (composable),
//! and one per *fused* layer (ACL-style fusion; the recommended middle
//! ground). These functions compute the layer-index groups; the record
//! harness turns each group into one recording.

use crate::exec::GpuNetwork;

/// A recording granularity choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One recording for the whole network.
    WholeNn,
    /// One recording per fused layer group.
    PerFusedLayer,
    /// One recording per framework layer.
    PerLayer,
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Granularity::WholeNn => write!(f, "WholeNN"),
            Granularity::PerFusedLayer => write!(f, "PerFusedLayer"),
            Granularity::PerLayer => write!(f, "PerLayer"),
        }
    }
}

/// Returns the layer-index groups for `granularity`; each group becomes
/// one recording.
pub fn groups(net: &GpuNetwork, granularity: Granularity) -> Vec<Vec<usize>> {
    match granularity {
        Granularity::WholeNn => vec![(0..net.layers.len()).collect()],
        Granularity::PerLayer => (0..net.layers.len()).map(|i| vec![i]).collect(),
        Granularity::PerFusedLayer => {
            let mut out: Vec<Vec<usize>> = Vec::new();
            for (i, layer) in net.layers.iter().enumerate() {
                if layer.fusable_with_previous && !out.is_empty() {
                    out.last_mut().expect("non-empty checked").push(i);
                } else {
                    out.push(vec![i]);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::CompiledLayer;

    fn fake_net(fusable: &[bool]) -> GpuNetwork {
        GpuNetwork {
            model_name: "fake".into(),
            layers: fusable
                .iter()
                .enumerate()
                .map(|(i, &f)| CompiledLayer {
                    name: format!("L{i}"),
                    launches: vec![],
                    fusable_with_previous: f,
                })
                .collect(),
            input_va: 0,
            input_elems: 0,
            output_va: 0,
            output_elems: 0,
            weight_uploads: vec![],
            modeled_gpu_mem_bytes: 0,
        }
    }

    #[test]
    fn whole_nn_is_one_group() {
        let net = fake_net(&[false, true, false]);
        assert_eq!(groups(&net, Granularity::WholeNn), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn per_layer_is_singletons() {
        let net = fake_net(&[false, true, false]);
        assert_eq!(
            groups(&net, Granularity::PerLayer),
            vec![vec![0], vec![1], vec![2]]
        );
    }

    #[test]
    fn fused_merges_pool_and_softmax_into_compute() {
        // conv, pool(fusable), conv, softmax(fusable) -> 2 groups.
        let net = fake_net(&[false, true, false, true]);
        assert_eq!(
            groups(&net, Granularity::PerFusedLayer),
            vec![vec![0, 1], vec![2, 3]]
        );
    }

    #[test]
    fn leading_fusable_layer_starts_its_own_group() {
        let net = fake_net(&[true, false]);
        assert_eq!(
            groups(&net, Granularity::PerFusedLayer),
            vec![vec![0], vec![1]]
        );
    }

    #[test]
    fn group_counts_are_ordered_like_fig11() {
        let net = fake_net(&[false, true, false, true, false, true, true]);
        let whole = groups(&net, Granularity::WholeNn).len();
        let fused = groups(&net, Granularity::PerFusedLayer).len();
        let per = groups(&net, Granularity::PerLayer).len();
        assert!(whole <= fused && fused <= per);
        assert_eq!(whole, 1);
        assert_eq!(per, 7);
        assert_eq!(Granularity::PerFusedLayer.to_string(), "PerFusedLayer");
    }
}
