//! CPU reference execution.
//!
//! §7.2 validates replay by comparing "the GPU's outcome with the
//! reference answers computed by CPU". This module replays the *exact*
//! kernel op sequence of a compiled network against plain host memory —
//! same ops, same f32 order — so matching results are bit-identical, not
//! merely close.

use std::collections::HashMap;

use gr_gpu::vm::exec::{execute, VaMem};

use crate::exec::GpuNetwork;

const PG: u64 = 4096;

/// Sparse page-granular host memory keyed by GPU VA (no translation — the
/// reference executor sees the same address space the ops were lowered
/// against).
#[derive(Debug, Default)]
pub struct CpuMem {
    pages: HashMap<u64, Vec<u8>>,
}

impl CpuMem {
    /// Creates empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes f32 values at `va`.
    pub fn write_f32s(&mut self, va: u64, vals: &[f32]) {
        let mut bytes = Vec::with_capacity(vals.len() * 4);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(va, &bytes).expect("CpuMem is infallible");
    }

    /// Reads f32 values at `va`.
    pub fn read_f32s(&mut self, va: u64, n: usize) -> Vec<f32> {
        self.read_bytes(va, n * 4)
            .expect("CpuMem is infallible")
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect()
    }
}

impl VaMem for CpuMem {
    fn read_bytes(&mut self, va: u64, len: usize) -> Result<Vec<u8>, u64> {
        let mut out = vec![0u8; len];
        for (i, b) in out.iter_mut().enumerate() {
            let a = va + i as u64;
            if let Some(p) = self.pages.get(&(a / PG)) {
                *b = p[(a % PG) as usize];
            }
        }
        Ok(out)
    }

    fn write_bytes(&mut self, va: u64, data: &[u8]) -> Result<(), u64> {
        for (i, &b) in data.iter().enumerate() {
            let a = va + i as u64;
            let p = self
                .pages
                .entry(a / PG)
                .or_insert_with(|| vec![0; PG as usize]);
            p[(a % PG) as usize] = b;
        }
        Ok(())
    }
}

/// Runs the compiled network on the CPU: loads the recorded weight
/// uploads, injects `input`, executes every kernel op in order, extracts
/// the output.
///
/// # Panics
///
/// Panics if an op fails — the op list came from a successful lowering,
/// so failure indicates an internal inconsistency.
pub fn cpu_infer(net: &GpuNetwork, input: &[f32]) -> Vec<f32> {
    assert_eq!(input.len(), net.input_elems, "input size mismatch");
    let mut mem = CpuMem::new();
    for (va, bytes) in &net.weight_uploads {
        mem.write_bytes(*va, bytes).expect("CpuMem is infallible");
    }
    mem.write_f32s(net.input_va, input);
    for launch in net.all_launches() {
        execute(&launch.op, &mut mem)
            .unwrap_or_else(|e| panic!("cpu ref failed at {}: {e}", launch.label));
    }
    mem.read_f32s(net.output_va, net.output_elems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::GpuExecutor;
    use crate::models;
    use gr_gpu::sku::{MALI_G71, V3D_RPI4};
    use gr_gpu::Machine;
    use gr_sim::SimRng;

    fn random_input(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| rng.unit_f64() as f32).collect()
    }

    #[test]
    fn gpu_matches_cpu_bit_for_bit_mnist() {
        let machine = Machine::new(&MALI_G71, 9);
        let mut exec = GpuExecutor::create(machine, true, None).unwrap();
        let net = exec.compile(&models::mnist(), 4).unwrap();
        let input = random_input(net.input_len(), 17);
        let gpu = exec.infer(&net, &input).unwrap();
        let cpu = cpu_infer(&net, &input);
        assert_eq!(gpu, cpu, "bit-identical expected");
        exec.release();
    }

    #[test]
    fn gpu_matches_cpu_on_v3d_family() {
        let machine = Machine::new(&V3D_RPI4, 9);
        let mut exec = GpuExecutor::create(machine, true, None).unwrap();
        let net = exec.compile(&models::mnist(), 4).unwrap();
        let input = random_input(net.input_len(), 23);
        let gpu = exec.infer(&net, &input).unwrap();
        let cpu = cpu_infer(&net, &input);
        assert_eq!(gpu, cpu);
        exec.release();
    }

    #[test]
    fn cpumem_is_zero_initialized_and_page_crossing() {
        let mut m = CpuMem::new();
        assert_eq!(m.read_f32s(0x1000, 2), vec![0.0, 0.0]);
        m.write_f32s(PG - 4, &[1.5, 2.5]);
        assert_eq!(m.read_f32s(PG - 4, 2), vec![1.5, 2.5]);
    }
}
