//! ML frameworks for the GPUReplay reproduction (ACL / ncnn / DeepCL
//! stand-ins).
//!
//! Provides the workload side of the paper: a model zoo mirroring the
//! evaluated networks (Table 6), shape inference at *two* resolutions
//! (full-size dimensions drive the modeled GPU time and memory; reduced
//! dimensions drive the actual f32 compute so the suite runs fast),
//! family-specific lowering of layers into GPU kernel launches (several
//! jobs per NN layer, like ACL's 5–6), a CPU reference executor that
//! replays the exact same kernel ops for bit-identical validation (§7.2),
//! layer fusion for the Fig. 11 granularity study, and DeepCL-style MNIST
//! training (§7.4).
//!
//! # Example
//!
//! ```no_run
//! use gr_gpu::{Machine, sku};
//! use gr_mlfw::exec::GpuExecutor;
//! use gr_mlfw::models;
//!
//! let machine = Machine::new(&sku::MALI_G71, 1);
//! let mut exec = GpuExecutor::create(machine, true, None)?;
//! let net = exec.compile(&models::mnist(), 42)?;
//! let input = vec![0.5; net.input_len()];
//! let logits = exec.infer(&net, &input)?;
//! assert_eq!(logits.len(), 10);
//! # Ok::<(), gr_stack::DriverError>(())
//! ```

pub mod cpu_ref;
pub mod exec;
pub mod fusion;
pub mod layers;
pub mod models;
pub mod train;

pub use exec::{CompiledLayer, GpuExecutor, GpuNetwork};
pub use layers::{Dims, LayerSpec, ModelSpec};
