//! Lowering networks to GPU jobs and running them on the full stack.
//!
//! Each framework layer lowers to several GPU jobs, ACL-style on Mali
//! (weights-prep + im2col staging + fused conv) and ncnn-style on v3d
//! (pad staging + fused conv). Modeled costs come from the *full-size*
//! dimensions; the kernels themselves run at the reduced dimensions.

use gr_gpu::machine::Machine;
use gr_gpu::sku::GpuFamilyKind;
use gr_gpu::timing::JobCost;
use gr_gpu::vm::bytecode::{ActKind, KernelOp};
use gr_gpu::vm::kernels::out_dim;
use gr_sim::SimRng;
use gr_stack::driver::DriverError;
use gr_stack::hooks::RecorderSink;
use gr_stack::runtime::{Buffer, BufferKind, GpuRuntime, KernelLaunch};

use std::sync::Arc;

use crate::layers::{Dims, LayerSpec, ModelSpec};

/// Fixed modeled framework overhead added to every network's GPU
/// footprint (contexts, arenas).
const MODELED_BASE_MEM: u64 = 4 * 1024 * 1024;

/// One lowered framework layer.
#[derive(Debug, Clone)]
pub struct CompiledLayer {
    /// Display name ("L03:conv").
    pub name: String,
    /// The GPU jobs this layer submits, in order.
    pub launches: Vec<KernelLaunch>,
    /// Whether the Fig. 11 fusion pass may merge this layer into its
    /// predecessor.
    pub fusable_with_previous: bool,
}

/// A compiled network bound to GPU buffers.
#[derive(Debug, Clone)]
pub struct GpuNetwork {
    /// Source model name.
    pub model_name: String,
    /// Lowered layers.
    pub layers: Vec<CompiledLayer>,
    /// Input buffer VA (f32 elements).
    pub input_va: u64,
    /// Input element count.
    pub input_elems: usize,
    /// Output buffer VA.
    pub output_va: u64,
    /// Output element count.
    pub output_elems: usize,
    /// Weight/constant uploads performed at compile time `(va, bytes)` —
    /// the CPU reference executor replays these.
    pub weight_uploads: Vec<(u64, Vec<u8>)>,
    /// Modeled full-size GPU memory footprint (Table 6's "GPU Mem").
    pub modeled_gpu_mem_bytes: u64,
}

impl GpuNetwork {
    /// Input length in f32 elements.
    pub fn input_len(&self) -> usize {
        self.input_elems
    }

    /// Output length in f32 elements.
    pub fn output_len(&self) -> usize {
        self.output_elems
    }

    /// Total GPU jobs across all layers.
    pub fn job_count(&self) -> usize {
        self.layers.iter().map(|l| l.launches.len()).sum()
    }

    /// All kernel launches in submission order.
    pub fn all_launches(&self) -> impl Iterator<Item = &KernelLaunch> {
        self.layers.iter().flat_map(|l| l.launches.iter())
    }
}

struct Lowerer<'m> {
    rt: &'m mut GpuRuntime,
    model: &'m ModelSpec,
    rng: SimRng,
    weight_uploads: Vec<(u64, Vec<u8>)>,
    modeled_mem: u64,
    family: GpuFamilyKind,
}

/// Parallel actual/full shape tracking.
#[derive(Debug, Clone, Copy)]
struct Shapes {
    actual: Dims,
    full: Dims,
}

fn f32_bytes(vals: &[f32]) -> Vec<u8> {
    let mut b = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b
}

impl<'m> Lowerer<'m> {
    fn alloc(
        &mut self,
        elems: u64,
        kind: BufferKind,
        full_bytes: u64,
    ) -> Result<Buffer, DriverError> {
        self.modeled_mem += full_bytes;
        self.rt.alloc_buffer((elems * 4) as usize, kind)
    }

    /// Allocates a weights buffer, fills it deterministically, uploads it.
    fn weights(&mut self, label: &str, elems: usize, fan_in: u32) -> Result<Buffer, DriverError> {
        let buf = self.alloc(elems as u64, BufferKind::Weights, elems as u64 * 4)?;
        let scale = 1.0 / f32::max(1.0, (fan_in as f32).sqrt());
        let mut rng = self.rng.fork(label);
        let vals: Vec<f32> = (0..elems)
            .map(|_| (rng.unit_f64() as f32 * 2.0 - 1.0) * scale)
            .collect();
        let bytes = f32_bytes(&vals);
        self.rt.write_buffer(&buf, 0, &bytes)?;
        self.weight_uploads.push((buf.va, bytes));
        Ok(buf)
    }

    fn conv_out(d: Dims, cout: u32, k: u32, stride: u32, pad: u32) -> Dims {
        Dims {
            c: cout,
            h: out_dim(d.h, k, stride, pad).max(1),
            w: out_dim(d.w, k, stride, pad).max(1),
        }
    }

    /// Lowers a convolution: returns (jobs, out buffer, out shapes).
    #[allow(clippy::too_many_arguments)]
    fn lower_conv(
        &mut self,
        idx: usize,
        x: &Buffer,
        s: Shapes,
        cout_full: u32,
        k: u32,
        stride: u32,
        pad: u32,
        groups_of_cin: bool,
        act: ActKind,
    ) -> Result<(Vec<KernelLaunch>, Buffer, Shapes), DriverError> {
        let cout_a = if groups_of_cin {
            s.actual.c
        } else {
            self.model.scale_ch(cout_full)
        };
        let cout_f = if groups_of_cin { s.full.c } else { cout_full };
        let groups_a = if groups_of_cin { s.actual.c } else { 1 };
        let out_a = Self::conv_out(s.actual, cout_a, k, stride, pad);
        let out_f = Self::conv_out(s.full, cout_f, k, stride, pad);
        let cing_a = s.actual.c / groups_a;
        let cing_f = if groups_of_cin { 1 } else { s.full.c };

        let w_elems = (cout_a * cing_a * k * k) as usize;
        let w_full_bytes = u64::from(cout_f) * u64::from(cing_f) * u64::from(k * k) * 4;
        let wraw = self.weights(&format!("w{idx}"), w_elems, cing_a * k * k)?;
        let bias = self.weights(&format!("b{idx}"), cout_a as usize, 1)?;
        self.modeled_mem += w_full_bytes;

        // The "reshaped" weights the conv job actually reads — produced by
        // a weights-prep GPU job (ACL reshapes weights on device).
        let wdev = self.alloc(w_elems as u64, BufferKind::Internal, w_full_bytes)?;
        let out = self.alloc(out_a.elems(), BufferKind::Internal, out_f.bytes())?;

        let full_macs = u64::from(cout_f)
            * u64::from(cing_f)
            * u64::from(k * k)
            * u64::from(out_f.h)
            * u64::from(out_f.w);
        let mut jobs = Vec::new();
        jobs.push(KernelLaunch {
            op: KernelOp::CopyBytes {
                src: wraw.va,
                dst: wdev.va,
                len: (w_elems * 4) as u32,
            },
            cost: JobCost {
                flops: 0,
                bytes: 2 * w_full_bytes,
            },
            kind_key: "copy/wprep".into(),
            label: format!("L{idx:02}:wprep"),
        });
        if k > 1 && self.family == GpuFamilyKind::Mali {
            // ACL GEMM-conv path: an im2col staging job fills a scratch
            // patch matrix (the conv job below carries the FLOPs).
            let cols = out_a.h as u64 * out_a.w as u64 * u64::from(s.actual.c * k * k);
            let cols_full =
                u64::from(out_f.h) * u64::from(out_f.w) * u64::from(s.full.c * k * k) * 4;
            let scratch = self.alloc(cols, BufferKind::Scratch, cols_full)?;
            jobs.push(KernelLaunch {
                op: KernelOp::Im2Col {
                    x: x.va,
                    out: scratch.va,
                    cin: s.actual.c,
                    h: s.actual.h,
                    wd: s.actual.w,
                    kh: k,
                    kw: k,
                    stride,
                    pad,
                },
                cost: JobCost {
                    flops: 0,
                    bytes: s.full.bytes() + cols_full,
                },
                kind_key: format!("im2col/k{k}s{stride}"),
                label: format!("L{idx:02}:im2col"),
            });
        } else if k > 1 {
            // ncnn direct path: pad/stage copy.
            jobs.push(KernelLaunch {
                op: KernelOp::CopyBytes {
                    src: x.va,
                    dst: x.va,
                    len: (s.actual.elems() * 4) as u32,
                },
                cost: JobCost {
                    flops: 0,
                    bytes: 2 * s.full.bytes(),
                },
                kind_key: "copy/pad".into(),
                label: format!("L{idx:02}:pad"),
            });
        }
        jobs.push(KernelLaunch {
            op: KernelOp::Conv2d {
                x: x.va,
                w: wdev.va,
                bias: bias.va,
                out: out.va,
                cin: s.actual.c,
                h: s.actual.h,
                wd: s.actual.w,
                cout: cout_a,
                kh: k,
                kw: k,
                stride,
                pad,
                groups: groups_a,
                act,
            },
            cost: JobCost {
                flops: 2 * full_macs,
                bytes: w_full_bytes + out_f.bytes(),
            },
            kind_key: format!("conv2d/k{k}s{stride}g{}c{cout_a}", groups_a.min(2)),
            label: format!("L{idx:02}:conv"),
        });
        Ok((
            jobs,
            out,
            Shapes {
                actual: out_a,
                full: out_f,
            },
        ))
    }

    fn lower_layer(
        &mut self,
        idx: usize,
        layer: &LayerSpec,
        x: &Buffer,
        s: Shapes,
    ) -> Result<(Vec<KernelLaunch>, Buffer, Shapes), DriverError> {
        match *layer {
            LayerSpec::Conv {
                cout,
                k,
                stride,
                pad,
                act,
            } => self.lower_conv(idx, x, s, cout, k, stride, pad, false, act),
            LayerSpec::DepthwiseConv {
                k,
                stride,
                pad,
                act,
            } => self.lower_conv(idx, x, s, 0, k, stride, pad, true, act),
            LayerSpec::Pool { win, stride, kind } => {
                // Clamp the window for heavily reduced actual shapes.
                let win_a = win.min(s.actual.h).min(s.actual.w).max(1);
                let stride_a = stride.min(win_a);
                let out_a = Dims {
                    c: s.actual.c,
                    h: out_dim(s.actual.h, win_a, stride_a, 0).max(1),
                    w: out_dim(s.actual.w, win_a, stride_a, 0).max(1),
                };
                let out_f = Dims {
                    c: s.full.c,
                    h: out_dim(s.full.h, win, stride, 0).max(1),
                    w: out_dim(s.full.w, win, stride, 0).max(1),
                };
                let out = self.alloc(out_a.elems(), BufferKind::Internal, out_f.bytes())?;
                let jobs = vec![KernelLaunch {
                    op: KernelOp::Pool2d {
                        x: x.va,
                        out: out.va,
                        c: s.actual.c,
                        h: s.actual.h,
                        wd: s.actual.w,
                        win: win_a,
                        stride: stride_a,
                        kind,
                    },
                    cost: JobCost {
                        flops: out_f.elems() * u64::from(win * win),
                        bytes: s.full.bytes() + out_f.bytes(),
                    },
                    kind_key: format!("pool/w{win}s{stride}"),
                    label: format!("L{idx:02}:pool"),
                }];
                Ok((
                    jobs,
                    out,
                    Shapes {
                        actual: out_a,
                        full: out_f,
                    },
                ))
            }
            LayerSpec::FullyConnected { out: out_full, act } => {
                let in_a = s.actual.elems() as u32;
                let in_f = s.full.elems();
                let out_a_n = self.model.scale_ch(out_full);
                let w = self.weights(&format!("w{idx}"), (in_a * out_a_n) as usize, in_a)?;
                let b = self.weights(&format!("b{idx}"), out_a_n as usize, 1)?;
                self.modeled_mem += in_f * u64::from(out_full) * 4;
                // Staging copy (flatten/reshape job), then the GEMM.
                let stage = self.alloc(u64::from(in_a), BufferKind::Scratch, in_f * 4)?;
                let out = self.alloc(
                    u64::from(out_a_n),
                    BufferKind::Internal,
                    u64::from(out_full) * 4,
                )?;
                let jobs = vec![
                    KernelLaunch {
                        op: KernelOp::CopyBytes {
                            src: x.va,
                            dst: stage.va,
                            len: in_a * 4,
                        },
                        cost: JobCost {
                            flops: 0,
                            bytes: 2 * in_f * 4,
                        },
                        kind_key: "copy/flatten".into(),
                        label: format!("L{idx:02}:flatten"),
                    },
                    KernelLaunch {
                        op: KernelOp::FullyConnected {
                            x: stage.va,
                            w: w.va,
                            bias: b.va,
                            out: out.va,
                            m: 1,
                            k: in_a,
                            n: out_a_n,
                            act,
                        },
                        cost: JobCost {
                            flops: 2 * in_f * u64::from(out_full),
                            bytes: in_f * u64::from(out_full) * 4 / 16,
                        },
                        kind_key: format!("fc/n{out_a_n}"),
                        label: format!("L{idx:02}:fc"),
                    },
                ];
                let dims_a = Dims {
                    c: out_a_n,
                    h: 1,
                    w: 1,
                };
                let dims_f = Dims {
                    c: out_full,
                    h: 1,
                    w: 1,
                };
                Ok((
                    jobs,
                    out,
                    Shapes {
                        actual: dims_a,
                        full: dims_f,
                    },
                ))
            }
            LayerSpec::Softmax => {
                let n_a = s.actual.elems() as u32;
                let out = self.alloc(u64::from(n_a), BufferKind::Internal, s.full.bytes())?;
                let jobs = vec![KernelLaunch {
                    op: KernelOp::Softmax {
                        x: x.va,
                        out: out.va,
                        rows: 1,
                        cols: n_a,
                    },
                    cost: JobCost {
                        flops: 4 * s.full.elems(),
                        bytes: 2 * s.full.bytes(),
                    },
                    kind_key: "softmax".into(),
                    label: format!("L{idx:02}:softmax"),
                }];
                Ok((jobs, out, s))
            }
            LayerSpec::Norm => {
                let scale = self.weights(&format!("ns{idx}"), s.actual.c as usize, 1)?;
                let shift = self.weights(&format!("nh{idx}"), s.actual.c as usize, 1)?;
                let out = self.alloc(s.actual.elems(), BufferKind::Internal, s.full.bytes())?;
                let jobs = vec![KernelLaunch {
                    op: KernelOp::BatchNormInf {
                        x: x.va,
                        out: out.va,
                        scale: scale.va,
                        shift: shift.va,
                        c: s.actual.c,
                        hw: s.actual.h * s.actual.w,
                    },
                    cost: JobCost {
                        flops: 2 * s.full.elems(),
                        bytes: 2 * s.full.bytes(),
                    },
                    kind_key: "norm".into(),
                    label: format!("L{idx:02}:norm"),
                }];
                Ok((jobs, out, s))
            }
            LayerSpec::Upsample => {
                let out_a = Dims {
                    c: s.actual.c,
                    h: s.actual.h * 2,
                    w: s.actual.w * 2,
                };
                let out_f = Dims {
                    c: s.full.c,
                    h: s.full.h * 2,
                    w: s.full.w * 2,
                };
                let out = self.alloc(out_a.elems(), BufferKind::Internal, out_f.bytes())?;
                let jobs = vec![KernelLaunch {
                    op: KernelOp::Upsample2x {
                        x: x.va,
                        out: out.va,
                        c: s.actual.c,
                        h: s.actual.h,
                        wd: s.actual.w,
                    },
                    cost: JobCost {
                        flops: out_f.elems(),
                        bytes: s.full.bytes() + out_f.bytes(),
                    },
                    kind_key: "upsample".into(),
                    label: format!("L{idx:02}:upsample"),
                }];
                Ok((
                    jobs,
                    out,
                    Shapes {
                        actual: out_a,
                        full: out_f,
                    },
                ))
            }
            LayerSpec::Fire { squeeze, expand } => {
                // squeeze 1x1 -> (expand 1x1 || expand 3x3) -> concat.
                let (mut jobs, sq_buf, sq_s) =
                    self.lower_conv(idx, x, s, squeeze, 1, 1, 0, false, ActKind::Relu)?;
                let (j1, e1_buf, e1_s) =
                    self.lower_conv(idx, &sq_buf, sq_s, expand, 1, 1, 0, false, ActKind::Relu)?;
                jobs.extend(j1);
                let (j3, e3_buf, e3_s) =
                    self.lower_conv(idx, &sq_buf, sq_s, expand, 3, 1, 1, false, ActKind::Relu)?;
                jobs.extend(j3);
                debug_assert_eq!(e1_s.actual.h, e3_s.actual.h);
                let out_a = Dims {
                    c: e1_s.actual.c + e3_s.actual.c,
                    h: e1_s.actual.h,
                    w: e1_s.actual.w,
                };
                let out_f = Dims {
                    c: e1_s.full.c + e3_s.full.c,
                    h: e1_s.full.h,
                    w: e1_s.full.w,
                };
                let out = self.alloc(out_a.elems(), BufferKind::Internal, out_f.bytes())?;
                jobs.push(KernelLaunch {
                    op: KernelOp::Concat2 {
                        a: e1_buf.va,
                        na: e1_s.actual.elems() as u32,
                        b: e3_buf.va,
                        nb: e3_s.actual.elems() as u32,
                        out: out.va,
                    },
                    cost: JobCost {
                        flops: 0,
                        bytes: 2 * out_f.bytes(),
                    },
                    kind_key: "concat".into(),
                    label: format!("L{idx:02}:concat"),
                });
                Ok((
                    jobs,
                    out,
                    Shapes {
                        actual: out_a,
                        full: out_f,
                    },
                ))
            }
            LayerSpec::Residual { cout, stride } => {
                let (mut jobs, c1_buf, c1_s) =
                    self.lower_conv(idx, x, s, cout, 3, stride, 1, false, ActKind::Relu)?;
                let (j2, c2_buf, c2_s) =
                    self.lower_conv(idx, &c1_buf, c1_s, cout, 3, 1, 1, false, ActKind::None)?;
                jobs.extend(j2);
                // Skip path: identity, or 1x1 projection when shape changes.
                let (skip_buf, skip_s) = if stride != 1 || s.actual.c != c2_s.actual.c {
                    let (jp, pb, ps) =
                        self.lower_conv(idx, x, s, cout, 1, stride, 0, false, ActKind::None)?;
                    jobs.extend(jp);
                    (pb, ps)
                } else {
                    (*x, s)
                };
                debug_assert_eq!(skip_s.actual.elems(), c2_s.actual.elems());
                let out =
                    self.alloc(c2_s.actual.elems(), BufferKind::Internal, c2_s.full.bytes())?;
                jobs.push(KernelLaunch {
                    op: KernelOp::EltwiseAdd {
                        a: c2_buf.va,
                        b: skip_buf.va,
                        out: out.va,
                        n: c2_s.actual.elems() as u32,
                        act: ActKind::Relu,
                    },
                    cost: JobCost {
                        flops: c2_s.full.elems(),
                        bytes: 3 * c2_s.full.bytes(),
                    },
                    kind_key: "eltadd".into(),
                    label: format!("L{idx:02}:add"),
                });
                Ok((jobs, out, c2_s))
            }
        }
    }
}

/// Runs networks on the full GPU stack.
pub struct GpuExecutor {
    rt: GpuRuntime,
}

impl std::fmt::Debug for GpuExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuExecutor").finish()
    }
}

impl GpuExecutor {
    /// Creates the runtime context (stack startup begins here).
    ///
    /// # Errors
    ///
    /// Propagates driver probe failures.
    pub fn create(
        machine: Machine,
        sync: bool,
        hooks: Option<Arc<dyn RecorderSink>>,
    ) -> Result<Self, DriverError> {
        Ok(GpuExecutor {
            rt: GpuRuntime::create(machine, sync, hooks)?,
        })
    }

    /// The machine underneath.
    pub fn machine(&self) -> Machine {
        self.rt.machine().clone()
    }

    /// The runtime (for RSS/job accounting).
    pub fn runtime(&self) -> &GpuRuntime {
        &self.rt
    }

    /// Mutable runtime access (cache flush etc.).
    pub fn runtime_mut(&mut self) -> &mut GpuRuntime {
        &mut self.rt
    }

    /// Compiles `model`: allocates buffers, uploads deterministic weights
    /// (seeded by `seed`), JIT-compiles every kernel variant, and builds
    /// the per-layer job lists. This is the startup phase Fig. 6 measures.
    ///
    /// # Errors
    ///
    /// Fails when GPU memory runs out.
    pub fn compile(&mut self, model: &ModelSpec, seed: u64) -> Result<GpuNetwork, DriverError> {
        let family = self.rt.machine().sku().family;
        let input_a = model.actual_input();
        let input_f = model.input;
        let input_buf = self
            .rt
            .alloc_buffer((input_a.elems() * 4) as usize, BufferKind::Data)?;

        let mut low = Lowerer {
            rt: &mut self.rt,
            model,
            rng: SimRng::seed_from(seed).fork(model.name),
            weight_uploads: Vec::new(),
            modeled_mem: MODELED_BASE_MEM + input_f.bytes(),
            family,
        };

        let mut layers = Vec::with_capacity(model.layers.len());
        let mut cur_buf = input_buf;
        let mut cur_s = Shapes {
            actual: input_a,
            full: input_f,
        };
        for (idx, layer) in model.layers.iter().enumerate() {
            let (launches, out, s) = low.lower_layer(idx, layer, &cur_buf, cur_s)?;
            layers.push(CompiledLayer {
                name: format!("L{idx:02}:{}", layer.mnemonic()),
                launches,
                fusable_with_previous: layer.fusable_with_previous(),
            });
            cur_buf = out;
            cur_s = s;
        }
        let weight_uploads = std::mem::take(&mut low.weight_uploads);
        let modeled = (low.modeled_mem as f64 * 1.25) as u64;

        // Final activation must be CPU-extractable: copy into a Data
        // buffer as the network's last job (frameworks stage outputs too).
        let out_elems = cur_s.actual.elems();
        let out_buf = self
            .rt
            .alloc_buffer((out_elems * 4) as usize, BufferKind::Data)?;
        let extract = KernelLaunch {
            op: KernelOp::CopyBytes {
                src: cur_buf.va,
                dst: out_buf.va,
                len: (out_elems * 4) as u32,
            },
            cost: JobCost {
                flops: 0,
                bytes: 2 * cur_s.full.bytes(),
            },
            kind_key: "copy/out".into(),
            label: "out:copy".into(),
        };
        layers
            .last_mut()
            .expect("models have at least one layer")
            .launches
            .push(extract);

        // ACL configures (JIT-compiles) all kernels while building the
        // network — charge it now, inside the startup window.
        let keys: Vec<String> = layers
            .iter()
            .flat_map(|l| l.launches.iter().map(|k| k.kind_key.clone()))
            .collect();
        for key in keys {
            self.rt.prejit(&key);
        }

        Ok(GpuNetwork {
            model_name: model.name.to_string(),
            layers,
            input_va: input_buf.va,
            input_elems: input_a.elems() as usize,
            output_va: out_buf.va,
            output_elems: out_elems as usize,
            weight_uploads,
            modeled_gpu_mem_bytes: modeled,
        })
    }

    /// Writes the network input.
    ///
    /// # Errors
    ///
    /// Fails on size mismatch.
    pub fn write_input(&mut self, net: &GpuNetwork, input: &[f32]) -> Result<(), DriverError> {
        if input.len() != net.input_elems {
            return Err(DriverError::BadState("input size mismatch"));
        }
        let buf = Buffer {
            va: net.input_va,
            len: input.len() * 4,
        };
        self.rt.write_buffer(&buf, 0, &f32_bytes(input))
    }

    /// Submits every job of layer `idx`.
    ///
    /// # Errors
    ///
    /// Propagates job faults.
    pub fn run_layer(&mut self, net: &GpuNetwork, idx: usize) -> Result<(), DriverError> {
        for launch in &net.layers[idx].launches {
            self.rt.launch(launch)?;
        }
        Ok(())
    }

    /// Reads the network output.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn read_output(&mut self, net: &GpuNetwork) -> Result<Vec<f32>, DriverError> {
        let buf = Buffer {
            va: net.output_va,
            len: net.output_elems * 4,
        };
        let mut bytes = vec![0u8; net.output_elems * 4];
        self.rt.read_buffer(&buf, 0, &mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect())
    }

    /// Full inference: input → all layers → output.
    ///
    /// # Errors
    ///
    /// Propagates job faults.
    pub fn infer(&mut self, net: &GpuNetwork, input: &[f32]) -> Result<Vec<f32>, DriverError> {
        self.write_input(net, input)?;
        for idx in 0..net.layers.len() {
            self.run_layer(net, idx)?;
        }
        self.rt.finish()?;
        self.read_output(net)
    }

    /// Releases the context (GPU powered down).
    pub fn release(self) {
        self.rt.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use gr_gpu::sku::{MALI_G71, V3D_RPI4};

    fn random_input(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| rng.unit_f64() as f32).collect()
    }

    #[test]
    fn mnist_inference_produces_a_distribution() {
        let machine = Machine::new(&MALI_G71, 42);
        let mut exec = GpuExecutor::create(machine, true, None).unwrap();
        let net = exec.compile(&models::mnist(), 7).unwrap();
        assert_eq!(net.output_len(), 10);
        assert!(net.job_count() >= 6, "jobs = {}", net.job_count());
        let out = exec.infer(&net, &random_input(net.input_len(), 3)).unwrap();
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "softmax sums to 1, got {sum}");
        assert!(out.iter().all(|v| v.is_finite() && *v >= 0.0));
        exec.release();
    }

    #[test]
    fn mnist_runs_on_v3d_too() {
        let machine = Machine::new(&V3D_RPI4, 42);
        let mut exec = GpuExecutor::create(machine, true, None).unwrap();
        let net = exec.compile(&models::mnist(), 7).unwrap();
        let out = exec.infer(&net, &random_input(net.input_len(), 3)).unwrap();
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        exec.release();
    }

    #[test]
    fn different_inputs_different_outputs() {
        let machine = Machine::new(&MALI_G71, 42);
        let mut exec = GpuExecutor::create(machine, true, None).unwrap();
        let net = exec.compile(&models::mnist(), 7).unwrap();
        let a = exec.infer(&net, &random_input(net.input_len(), 1)).unwrap();
        let b = exec.infer(&net, &random_input(net.input_len(), 2)).unwrap();
        assert_ne!(a, b);
        exec.release();
    }

    #[test]
    fn squeezenet_and_resnet_structures_lower() {
        let machine = Machine::new(&MALI_G71, 42);
        let mut exec = GpuExecutor::create(machine, true, None).unwrap();
        for model in [models::squeezenet(), models::resnet12()] {
            let net = exec.compile(&model, 7).unwrap();
            assert!(net.job_count() > model.layer_count(), "{}", model.name);
            let out = exec.infer(&net, &random_input(net.input_len(), 5)).unwrap();
            assert!(
                out.iter().all(|v| v.is_finite()),
                "{} non-finite",
                model.name
            );
        }
        exec.release();
    }

    #[test]
    fn modeled_memory_ranks_models_like_table6() {
        let machine = Machine::new(&MALI_G71, 42);
        let mut exec = GpuExecutor::create(machine, true, None).unwrap();
        let mnist = exec.compile(&models::mnist(), 7).unwrap();
        let vgg = exec.compile(&models::vgg16(), 7).unwrap();
        assert!(
            vgg.modeled_gpu_mem_bytes > 100 * mnist.modeled_gpu_mem_bytes,
            "VGG {} vs MNIST {}",
            vgg.modeled_gpu_mem_bytes,
            mnist.modeled_gpu_mem_bytes
        );
        exec.release();
    }
}
