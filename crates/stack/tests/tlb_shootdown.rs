//! Regression tests for the driver TLB-shootdown bugfix: unmapping a
//! region must issue the architectural flush (Mali `AS_CMD_FLUSH`, v3d
//! `MMU_CTRL` TLB-clear) so that a *recycled* VA observes its new mapping.
//!
//! Before the fix the stack drivers cleared PTEs without any shootdown,
//! which was only correct because the VA space never reused addresses.
//! With exact-fit VA recycling in `VaSpace`, a stale cached translation
//! would silently write the freed physical frame instead of the new one.

use gr_gpu::mali::jobs::JobHeader;
use gr_gpu::sku::{MALI_G71, V3D_RPI4};
use gr_gpu::timing::JobCost;
use gr_gpu::v3d::cl::ClWriter;
use gr_gpu::vm::bytecode::KernelOp;
use gr_gpu::Machine;
use gr_stack::driver::{MaliDriver, RegionKind, V3dDriver};

fn f32s_of(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[test]
fn mali_recycled_va_observes_new_mapping() {
    let machine = Machine::new(&MALI_G71, 31);
    let mut drv = MaliDriver::probe(machine, None, true).unwrap();
    let chain = drv.alloc_region(1, RegionKind::JobBinary).unwrap();
    let data = drv.alloc_region(1, RegionKind::Data).unwrap();

    fn run_fill(drv: &mut MaliDriver, chain: u64, out: u64, value: f32) {
        let blob = KernelOp::Fill { out, n: 4, value }.encode();
        let header = JobHeader {
            next_va: 0,
            shader_va: chain + 0x100,
            shader_len: blob.len() as u32,
            cost: JobCost {
                flops: 4,
                bytes: 16,
            },
        };
        drv.mmap_write(chain, &header.encode()).unwrap();
        drv.mmap_write(chain + 0x100, &blob).unwrap();
        drv.submit(chain).unwrap();
    }

    // Warm the device TLB: a job writes through `data`'s translation.
    run_fill(&mut drv, chain, data, 1.0);

    // Free the region and allocate again: the VA is recycled while the
    // backing frame changes (the frame allocator's rotating cursor never
    // hands the freed frame straight back).
    drv.free_region(data).unwrap();
    let data2 = drv.alloc_region(1, RegionKind::Data).unwrap();
    assert_eq!(data2, data, "exact-fit recycling must reuse the VA");

    run_fill(&mut drv, chain, data2, 2.0);
    let mut out = vec![0u8; 16];
    drv.read_gpu(data2, &mut out).unwrap();
    assert_eq!(
        f32s_of(&out),
        vec![2.0; 4],
        "stale TLB entry served the freed frame"
    );
    drv.teardown();
}

#[test]
fn v3d_recycled_va_observes_new_mapping() {
    let machine = Machine::new(&V3D_RPI4, 33);
    let mut drv = V3dDriver::probe(machine, None).unwrap();
    let binv = drv.alloc_region(1, RegionKind::JobBinary).unwrap();
    let data = drv.alloc_region(1, RegionKind::Data).unwrap();

    fn run_fill(drv: &mut V3dDriver, binv: u64, out: u64, value: f32) {
        let blob = KernelOp::Fill { out, n: 4, value }.encode();
        drv.mmap_write(binv + 0x200, &blob).unwrap();
        let mut w = ClWriter::new();
        w.run_shader(
            binv + 0x200,
            blob.len() as u32,
            JobCost {
                flops: 4,
                bytes: 16,
            },
        );
        let cl = w.finish();
        drv.mmap_write(binv, &cl).unwrap();
        drv.submit(binv, cl.len() as u32).unwrap();
    }

    run_fill(&mut drv, binv, data, 1.0);

    drv.free_region(data).unwrap();
    let data2 = drv.alloc_region(1, RegionKind::Data).unwrap();
    assert_eq!(data2, data, "exact-fit recycling must reuse the VA");

    run_fill(&mut drv, binv, data2, 2.0);
    let mut out = vec![0u8; 16];
    drv.read_gpu(data2, &mut out).unwrap();
    assert_eq!(
        f32s_of(&out),
        vec![2.0; 4],
        "stale TLB entry served the freed frame"
    );
    drv.teardown();
}
