//! GPU virtual-address-space bookkeeping shared by both drivers.
//!
//! The driver owns the authoritative map of VA regions → physical frames +
//! permissions; the recorder snapshots it at dump points and CPU-side
//! accesses (the runtime's "mmap'd GPU memory") resolve through it.

use std::collections::BTreeMap;

use gr_soc::{SharedMem, PAGE_SIZE};

use crate::driver::{DriverError, RegionKind};

/// One mapped region.
#[derive(Debug, Clone)]
pub struct Region {
    /// First VA.
    pub va: u64,
    /// Length in pages.
    pub pages: usize,
    /// Allocation kind.
    pub kind: RegionKind,
    /// Backing frames, one per page.
    pub pas: Vec<u64>,
    /// Low PTE bits per page (family encoding), kept for snapshots.
    pub pte_flags: Vec<u16>,
}

impl Region {
    /// Region byte length.
    pub fn len_bytes(&self) -> usize {
        self.pages * PAGE_SIZE
    }

    /// `true` when `[va, va+len)` lies inside the region.
    pub fn contains(&self, va: u64, len: usize) -> bool {
        va >= self.va && va + len as u64 <= self.va + self.len_bytes() as u64
    }
}

/// GPU VA space with a region table: bump-allocated, with a free-list
/// recycler that **splits** oversized holes on reuse and **coalesces**
/// adjacent holes on free (general recycling — no exact-size-match
/// restriction). Recycling is only sound because both drivers issue the
/// architectural TLB shootdown on unmap — a stale cached translation for
/// a recycled VA would otherwise read or write freed physical frames.
#[derive(Debug)]
pub struct VaSpace {
    next_va: u64,
    limit: u64,
    regions: BTreeMap<u64, Region>,
    peak_pages: u64,
    mapped_pages: u64,
    /// Freed holes, keyed by base VA → page count. Kept coalesced:
    /// no two entries are adjacent. First-fit (lowest VA) reuse keeps
    /// allocation deterministic.
    free: BTreeMap<u64, usize>,
}

impl VaSpace {
    /// Creates a VA space spanning `[base, limit)`.
    pub fn new(base: u64, limit: u64) -> Self {
        VaSpace {
            next_va: base,
            limit,
            regions: BTreeMap::new(),
            peak_pages: 0,
            mapped_pages: 0,
            free: BTreeMap::new(),
        }
    }

    /// Reserves `pages` of VA (no mapping yet), returning the base VA.
    /// Freed holes are recycled first-fit before the bump pointer grows;
    /// an oversized hole is split, its tail staying on the free list.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::OutOfMemory`] when VA space is exhausted.
    pub fn reserve(&mut self, pages: usize) -> Result<u64, DriverError> {
        if let Some((&va, &hole)) = self.free.iter().find(|&(_, &p)| p >= pages) {
            self.free.remove(&va);
            if hole > pages {
                // Split: hand out the low part, keep the tail free.
                self.free
                    .insert(va + (pages * PAGE_SIZE) as u64, hole - pages);
            }
            return Ok(va);
        }
        let bytes = (pages * PAGE_SIZE) as u64;
        if self.next_va + bytes > self.limit {
            return Err(DriverError::OutOfMemory);
        }
        let va = self.next_va;
        self.next_va += bytes;
        Ok(va)
    }

    /// Returns `(va, pages)` to the free list, merging with the holes
    /// immediately below and above so fragmentation heals on free.
    fn release_range(&mut self, va: u64, pages: usize) {
        let mut start = va;
        let mut count = pages;
        if let Some((&prev_va, &prev_pages)) = self.free.range(..va).next_back() {
            if prev_va + (prev_pages * PAGE_SIZE) as u64 == va {
                self.free.remove(&prev_va);
                start = prev_va;
                count += prev_pages;
            }
        }
        let end = va + (pages * PAGE_SIZE) as u64;
        if let Some(&next_pages) = self.free.get(&end) {
            self.free.remove(&end);
            count += next_pages;
        }
        self.free.insert(start, count);
    }

    /// Records a region as mapped.
    pub fn insert(&mut self, region: Region) {
        self.mapped_pages += region.pages as u64;
        self.peak_pages = self.peak_pages.max(self.mapped_pages);
        self.regions.insert(region.va, region);
    }

    /// Removes a region, returning it for unmapping/freeing.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::BadAddress`] when `va` is not a region base.
    pub fn remove(&mut self, va: u64) -> Result<Region, DriverError> {
        let r = self
            .regions
            .remove(&va)
            .ok_or(DriverError::BadAddress(va))?;
        self.mapped_pages -= r.pages as u64;
        self.release_range(va, r.pages);
        Ok(r)
    }

    /// The region whose range contains `va`, if any.
    pub fn find(&self, va: u64) -> Option<&Region> {
        self.regions
            .range(..=va)
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.contains(va, 1))
    }

    /// Iterates over all regions in VA order.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.values()
    }

    /// Currently mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// High-water mark of mapped pages.
    pub fn peak_pages(&self) -> u64 {
        self.peak_pages
    }

    /// CPU-side write into a mapped region (the runtime's mmap view).
    /// With the fast path on, holds the DRAM lock once across the whole
    /// tensor transfer; otherwise re-locks per chunk like the pre-fast-path
    /// code (the measured `bench_exec` baseline).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::BadAddress`] when the range is unmapped.
    pub fn cpu_write(&self, mem: &SharedMem, va: u64, data: &[u8]) -> Result<(), DriverError> {
        if !gr_gpu::fastpath::enabled() {
            return self.cpu_access(va, data.len(), |pa, off, chunk| {
                mem.write(pa, &data[off..off + chunk])
                    .map_err(|_| DriverError::BadAddress(va))
            });
        }
        let mut g = mem.write_guard();
        self.cpu_access(va, data.len(), |pa, off, chunk| {
            g.write(pa, &data[off..off + chunk])
                .map_err(|_| DriverError::BadAddress(va))
        })
    }

    /// CPU-side read from a mapped region. Lock-amortized like
    /// [`VaSpace::cpu_write`]; the pre-fast-path baseline stages through a
    /// scratch vector (so `out` stays untouched on error) and re-locks per
    /// chunk.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::BadAddress`] when the range is unmapped.
    pub fn cpu_read(&self, mem: &SharedMem, va: u64, out: &mut [u8]) -> Result<(), DriverError> {
        let len = out.len();
        if !gr_gpu::fastpath::enabled() {
            let mut buf = vec![0u8; len];
            self.cpu_access(va, len, |pa, off, chunk| {
                mem.read(pa, &mut buf[off..off + chunk])
                    .map_err(|_| DriverError::BadAddress(va))
            })?;
            out.copy_from_slice(&buf);
            return Ok(());
        }
        let g = mem.read_guard();
        self.cpu_access(va, len, |pa, off, chunk| {
            g.read(pa, &mut out[off..off + chunk])
                .map_err(|_| DriverError::BadAddress(va))
        })
    }

    fn cpu_access(
        &self,
        va: u64,
        len: usize,
        mut f: impl FnMut(u64, usize, usize) -> Result<(), DriverError>,
    ) -> Result<(), DriverError> {
        let mut done = 0usize;
        while done < len {
            let cur = va + done as u64;
            let region = self.find(cur).ok_or(DriverError::BadAddress(cur))?;
            let off = (cur - region.va) as usize;
            let page = off / PAGE_SIZE;
            let chunk = (PAGE_SIZE - off % PAGE_SIZE).min(len - done);
            let pa = region.pas[page] + (off % PAGE_SIZE) as u64;
            f(pa, done, chunk)?;
            done += chunk;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_soc::PhysMem;

    fn region(va: u64, pages: usize, first_pa: u64) -> Region {
        Region {
            va,
            pages,
            kind: RegionKind::Data,
            pas: (0..pages)
                .map(|i| first_pa + (i * PAGE_SIZE) as u64)
                .collect(),
            pte_flags: vec![0xB; pages],
        }
    }

    #[test]
    fn reserve_bumps_and_limits() {
        let mut vs = VaSpace::new(0x10_0000, 0x10_0000 + 3 * PAGE_SIZE as u64);
        assert_eq!(vs.reserve(1).unwrap(), 0x10_0000);
        assert_eq!(vs.reserve(2).unwrap(), 0x10_0000 + PAGE_SIZE as u64);
        assert_eq!(vs.reserve(1), Err(DriverError::OutOfMemory));
    }

    #[test]
    fn find_resolves_interior_addresses() {
        let mut vs = VaSpace::new(0, 1 << 30);
        vs.insert(region(0x4000, 2, 0x10_0000));
        vs.insert(region(0xA000, 1, 0x20_0000));
        assert_eq!(vs.find(0x4000).unwrap().va, 0x4000);
        assert_eq!(vs.find(0x5FFF).unwrap().va, 0x4000);
        assert!(vs.find(0x6000).is_none());
        assert_eq!(vs.find(0xA123).unwrap().va, 0xA000);
        assert_eq!(vs.iter().count(), 2);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut vs = VaSpace::new(0, 1 << 30);
        vs.insert(region(0x1000, 3, 0x10_0000));
        vs.insert(region(0x8000, 2, 0x20_0000));
        assert_eq!(vs.peak_pages(), 5);
        vs.remove(0x1000).unwrap();
        assert_eq!(vs.mapped_pages(), 2);
        assert_eq!(vs.peak_pages(), 5);
        assert!(matches!(
            vs.remove(0x1000),
            Err(DriverError::BadAddress(0x1000))
        ));
    }

    #[test]
    fn freed_ranges_recycle_on_exact_size_match() {
        let mut vs = VaSpace::new(0x10_0000, 1 << 30);
        let a = vs.reserve(2).unwrap();
        vs.insert(region(a, 2, 0x100_0000));
        let b = vs.reserve(1).unwrap();
        vs.insert(region(b, 1, 0x200_0000));
        vs.remove(a).unwrap();
        // The 2-page hole cannot satisfy 3 pages: bump allocation continues.
        assert_eq!(vs.reserve(3).unwrap(), b + PAGE_SIZE as u64);
        // Exact fit: the freed 2-page range comes back.
        assert_eq!(vs.reserve(2).unwrap(), a);
        // And is gone from the free list afterwards.
        assert_ne!(vs.reserve(2).unwrap(), a);
    }

    #[test]
    fn oversized_hole_splits_on_reuse_and_recoalesces_on_free() {
        let mut vs = VaSpace::new(0x10_0000, 1 << 30);
        let a = vs.reserve(2).unwrap();
        vs.insert(region(a, 2, 0x100_0000));
        let guard = vs.reserve(1).unwrap(); // pins the bump pointer past `a`
        vs.insert(region(guard, 1, 0x200_0000));
        vs.remove(a).unwrap();

        // A 2-page hole satisfies a 1-page allocation: the low half is
        // handed out, the high half stays free.
        let low = vs.reserve(1).unwrap();
        assert_eq!(low, a, "split must reuse the hole's low half");
        vs.insert(region(low, 1, 0x300_0000));
        let high = vs.reserve(1).unwrap();
        assert_eq!(
            high,
            a + PAGE_SIZE as u64,
            "the split tail must be reused before the bump pointer grows"
        );
        vs.insert(region(high, 1, 0x400_0000));

        // Freeing both halves re-coalesces the original 2-page hole...
        vs.remove(low).unwrap();
        vs.remove(high).unwrap();
        assert_eq!(vs.reserve(2).unwrap(), a, "halves must merge back");

        // ...and coalescing joins across a middle hole freed last.
        let c = vs.reserve(3).unwrap();
        vs.insert(region(c, 3, 0x500_0000));
        vs.remove(c).unwrap();
        let p0 = vs.reserve(1).unwrap();
        let p1 = vs.reserve(1).unwrap();
        let p2 = vs.reserve(1).unwrap();
        assert_eq!((p0, p1, p2), (c, c + 0x1000, c + 0x2000));
        vs.insert(region(p0, 1, 0x600_0000));
        vs.insert(region(p1, 1, 0x700_0000));
        vs.insert(region(p2, 1, 0x800_0000));
        vs.remove(p0).unwrap();
        vs.remove(p2).unwrap();
        vs.remove(p1).unwrap(); // bridges the two holes
        assert_eq!(vs.reserve(3).unwrap(), c, "three frees must merge");
    }

    #[test]
    fn cpu_rw_through_discontiguous_frames() {
        let mem = SharedMem::new(PhysMem::new(0, 16 * PAGE_SIZE));
        let mut vs = VaSpace::new(0, 1 << 30);
        let mut r = region(0x4000, 2, 0);
        r.pas = vec![2 * PAGE_SIZE as u64, 7 * PAGE_SIZE as u64];
        vs.insert(r);
        let data: Vec<u8> = (0..200).collect();
        let va = 0x4000 + PAGE_SIZE as u64 - 100;
        vs.cpu_write(&mem, va, &data).unwrap();
        let mut back = vec![0u8; 200];
        vs.cpu_read(&mem, va, &mut back).unwrap();
        assert_eq!(back, data);
        // The second half physically landed in frame 7.
        let mut direct = vec![0u8; 100];
        mem.read(7 * PAGE_SIZE as u64, &mut direct).unwrap();
        assert_eq!(direct, data[100..]);
        assert!(vs.cpu_write(&mem, 0x9000, &[1]).is_err());
    }
}
