//! The v3d-family kernel driver (drm/v3d-style).
//!
//! Differences from the Mali driver that matter to GPUReplay: power comes
//! from the firmware *mailbox* (not direct register pokes), the page table
//! is a flat array with no executable bit, submission is a control-list
//! window kicked by the end-address write, the queue is depth-1, and cache
//! cleaning is polled on a busy register rather than interrupt-driven.

use std::sync::Arc;

use gr_gpu::machine::{Machine, WaitOutcome};
use gr_gpu::sku::GpuFamilyKind;
use gr_gpu::v3d::pgtable::{self, V3dPteFlags};
use gr_gpu::v3d::regs as r;
use gr_sim::{MemAccount, SimDuration};
use gr_soc::mailbox::{MboxRequest, MboxStatus};
use gr_soc::pmc::PmcDomain;
use gr_soc::PAGE_SIZE;

use crate::costs;
use crate::driver::vaspace::{Region, VaSpace};
use crate::driver::{DriverError, RegionKind};
use crate::hooks::{DumpCtx, JobRoot, RecorderSink, RegionSnapshot};

const HEAP_BASE: u64 = 0x0040_0000;
const POLL_INTERVAL: SimDuration = SimDuration::from_micros(2);
const CTRL_TIMEOUT: SimDuration = SimDuration::from_millis(50);
/// Job-completion wait budget.
pub const JOB_TIMEOUT: SimDuration = SimDuration::from_secs(10);

/// The v3d kernel driver instance.
pub struct V3dDriver {
    machine: Machine,
    vaspace: VaSpace,
    table_pa: u64,
    hooks: Option<Arc<dyn RecorderSink>>,
    mem_inited: bool,
    rss: MemAccount,
    jobs_submitted: u64,
}

impl std::fmt::Debug for V3dDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("V3dDriver")
            .field("jobs_submitted", &self.jobs_submitted)
            .finish()
    }
}

impl V3dDriver {
    /// Probes the device: mailbox power-up, reset, MMU setup.
    ///
    /// v3d submission is naturally synchronous (queue depth 1), so there
    /// is no sync/async mode switch.
    ///
    /// # Errors
    ///
    /// Fails on power/reset timeouts.
    pub fn probe(
        machine: Machine,
        hooks: Option<Arc<dyn RecorderSink>>,
    ) -> Result<Self, DriverError> {
        assert_eq!(
            machine.sku().family,
            GpuFamilyKind::V3d,
            "V3dDriver requires a v3d-family machine"
        );
        machine.advance(costs::DRIVER_PROBE);
        let rss = MemAccount::new();
        rss.alloc(costs::STACK_BASE_RSS / 4); // v3d stack is leaner (Table 4)

        // Firmware mailbox power-up (RaspberryPi property interface).
        for domain in [PmcDomain::GpuCore, PmcDomain::GpuMem] {
            let mut mbox = machine.mailbox().lock();
            mbox.submit(MboxRequest::SetPower { domain, on: true })
                .map_err(|_| DriverError::BadState("mailbox busy"))?;
            loop {
                match mbox.status() {
                    MboxStatus::Done => {
                        mbox.take_response();
                        break;
                    }
                    MboxStatus::Busy => {
                        let t = mbox.next_completion().expect("busy implies pending");
                        machine.clock().advance_to(t);
                    }
                    MboxStatus::Idle => return Err(DriverError::PowerFailure),
                }
            }
        }
        // Wait for the domains to settle.
        let deadline = machine.now() + SimDuration::from_millis(10);
        while machine.now() < deadline && !machine.pmc().is_stable(PmcDomain::GpuMem) {
            machine.advance(SimDuration::from_micros(20));
        }
        if !machine.pmc().is_stable(PmcDomain::GpuCore) {
            return Err(DriverError::PowerFailure);
        }

        let mut drv = V3dDriver {
            machine,
            vaspace: VaSpace::new(HEAP_BASE, pgtable::VA_SPACE_SIZE),
            table_pa: 0,
            hooks,
            mem_inited: false,
            rss,
            jobs_submitted: 0,
        };
        drv.reset_and_bring_up()?;
        Ok(drv)
    }

    /// The machine this driver drives.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Modeled CPU memory footprint (§7.3).
    pub fn rss(&self) -> &MemAccount {
        &self.rss
    }

    /// Jobs submitted so far.
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs_submitted
    }

    /// Peak GPU pages ever mapped.
    pub fn peak_mapped_pages(&self) -> u64 {
        self.vaspace.peak_pages()
    }

    fn rd(&self, reg: u32) -> u32 {
        let val = self.machine.gpu_read32(reg);
        if let Some(h) = &self.hooks {
            h.reg_read(reg, val);
        }
        val
    }

    fn wr(&self, reg: u32, val: u32) {
        if let Some(h) = &self.hooks {
            h.reg_write(reg, val);
        }
        self.machine.gpu_write32(reg, val);
    }

    fn poll(
        &self,
        reg: u32,
        mask: u32,
        want: u32,
        timeout: SimDuration,
    ) -> Result<(), DriverError> {
        let (val, polls) = self
            .machine
            .poll_reg(reg, mask, want, POLL_INTERVAL, timeout);
        if let Some(h) = &self.hooks {
            h.poll(reg, mask, want, polls, timeout);
        }
        if val & mask == want {
            Ok(())
        } else {
            Err(DriverError::Timeout)
        }
    }

    fn reset_and_bring_up(&mut self) -> Result<(), DriverError> {
        self.wr(r::CTL_RESET, 1);
        self.poll(r::CT0CS, r::CS_RESETTING, 0, CTRL_TIMEOUT)?;
        if self.table_pa == 0 {
            let mut frames = self.machine.frames().lock();
            self.table_pa = pgtable::alloc_table(self.machine.mem(), &mut frames)
                .map_err(|_| DriverError::OutOfMemory)?;
        }
        if let Some(h) = &self.hooks {
            h.pgtable_set();
        }
        self.machine
            .gpu_write32(r::MMU_PT_BASE_LO, self.table_pa as u32);
        self.machine
            .gpu_write32(r::MMU_PT_BASE_HI, (self.table_pa >> 32) as u32);
        self.wr(r::MMU_CTRL, 1);
        self.wr(r::INT_MSK, 0xFFFF_FFFF);
        Ok(())
    }

    /// Allocates and maps `pages` of GPU memory.
    ///
    /// # Errors
    ///
    /// Fails when memory runs out.
    pub fn alloc_region(&mut self, pages: usize, kind: RegionKind) -> Result<u64, DriverError> {
        self.machine.advance(costs::IOCTL_ENTRY);
        if !self.mem_inited {
            self.machine.advance(costs::MEM_MGR_INIT / 2);
            self.mem_inited = true;
        }
        self.machine
            .advance((costs::ALLOC_PER_PAGE + costs::MAP_PER_PAGE) * pages as u64);
        let va = self.vaspace.reserve(pages)?;
        let flags = V3dPteFlags::rw();
        let mut pas = Vec::with_capacity(pages);
        {
            let mut frames = self.machine.frames().lock();
            for i in 0..pages {
                let pa = frames
                    .alloc_zeroed(self.machine.mem())
                    .map_err(|_| DriverError::OutOfMemory)?
                    .ok_or(DriverError::OutOfMemory)?;
                pgtable::map_page(
                    self.machine.mem(),
                    self.table_pa,
                    va + (i * PAGE_SIZE) as u64,
                    pa,
                    flags,
                )
                .map_err(|_| DriverError::OutOfMemory)?;
                pas.push(pa);
            }
        }
        let pte_bits = pgtable::encode_pte(0, flags) as u16 & 0xF;
        let region = Region {
            va,
            pages,
            kind,
            pas,
            pte_flags: vec![pte_bits; pages],
        };
        if let Some(h) = &self.hooks {
            h.map(va, kind, &region.pte_flags);
        }
        self.vaspace.insert(region);
        Ok(va)
    }

    /// Unmaps and frees the region at `va`.
    ///
    /// # Errors
    ///
    /// Fails when `va` is not a region base.
    pub fn free_region(&mut self, va: u64) -> Result<(), DriverError> {
        self.machine.advance(costs::IOCTL_ENTRY);
        let region = self.vaspace.remove(va)?;
        {
            let mut frames = self.machine.frames().lock();
            for i in 0..region.pages {
                if let Ok(Some(pa)) = pgtable::unmap_page(
                    self.machine.mem(),
                    self.table_pa,
                    va + (i * PAGE_SIZE) as u64,
                ) {
                    let _ = frames.free(pa);
                }
            }
        }
        if let Some(h) = &self.hooks {
            h.unmap(va);
        }
        // Architectural TLB shootdown (see MaliDriver::free_region): the
        // v3d equivalent is the self-clearing MMU_CTRL TLB-clear bit.
        self.wr(
            r::MMU_CTRL,
            self.machine.gpu_read32(r::MMU_CTRL) | r::MMU_CTRL_TLB_CLEAR,
        );
        Ok(())
    }

    /// CPU→GPU copy.
    ///
    /// # Errors
    ///
    /// Fails when the range is unmapped.
    pub fn write_gpu(&self, va: u64, data: &[u8]) -> Result<(), DriverError> {
        self.machine
            .advance(costs::COPY_PER_PAGE * (data.len() / PAGE_SIZE + 1) as u64);
        self.vaspace.cpu_write(self.machine.mem(), va, data)?;
        if let Some(h) = &self.hooks {
            h.copy_to_gpu(va, data.len());
        }
        Ok(())
    }

    /// GPU→CPU copy.
    ///
    /// # Errors
    ///
    /// Fails when the range is unmapped.
    pub fn read_gpu(&self, va: u64, out: &mut [u8]) -> Result<(), DriverError> {
        self.machine
            .advance(costs::COPY_PER_PAGE * (out.len() / PAGE_SIZE + 1) as u64);
        self.vaspace.cpu_read(self.machine.mem(), va, out)?;
        if let Some(h) = &self.hooks {
            h.copy_from_gpu(va, out.len());
        }
        Ok(())
    }

    /// Kernel-bypassing mmap write used by the runtime for binaries.
    ///
    /// # Errors
    ///
    /// Fails when the range is unmapped.
    pub fn mmap_write(&self, va: u64, data: &[u8]) -> Result<(), DriverError> {
        self.vaspace.cpu_write(self.machine.mem(), va, data)
    }

    /// Submits the control list `[cl_va, cl_va+cl_len)` and waits for it
    /// (v3d has no async mode — queue depth 1).
    ///
    /// # Errors
    ///
    /// Returns job faults/timeouts.
    pub fn submit(&mut self, cl_va: u64, cl_len: u32) -> Result<(), DriverError> {
        self.machine
            .advance(costs::IOCTL_ENTRY + costs::JOB_SUBMIT_CPU);
        if let Some(h) = &self.hooks {
            let regions: Vec<RegionSnapshot> = self
                .vaspace
                .iter()
                .map(|r| RegionSnapshot {
                    va: r.va,
                    pages: r.pages,
                    kind: r.kind,
                    pte_flags: r.pte_flags.clone(),
                    pas: r.pas.clone(),
                })
                .collect();
            let ctx = DumpCtx {
                mem: self.machine.mem(),
                regions: &regions,
                root: JobRoot::V3dList { cl_va, cl_len },
            };
            h.pre_job_submit(&ctx);
        }
        self.wr(r::CT0CA_LO, cl_va as u32);
        self.wr(r::CT0CA_HI, (cl_va >> 32) as u32);
        self.wr(r::CT0EA_HI, ((cl_va + u64::from(cl_len)) >> 32) as u32);
        self.wr(r::CT0EA_LO, (cl_va + u64::from(cl_len)) as u32);
        if let Some(h) = &self.hooks {
            h.gpu_phase(true);
        }
        self.jobs_submitted += 1;

        if let Some(h) = &self.hooks {
            h.wait_irq(r::irq_lines::V3D.0, JOB_TIMEOUT);
        }
        match self.machine.wait_irq(r::irq_lines::V3D, JOB_TIMEOUT) {
            WaitOutcome::Irq => {}
            WaitOutcome::Timeout => return Err(DriverError::Timeout),
        }
        if let Some(h) = &self.hooks {
            h.irq_context(true);
        }
        self.machine.advance(costs::IRQ_HANDLER);
        let sts = self.rd(r::INT_STS);
        self.wr(r::INT_CLR, sts);
        let cs = self.rd(r::CT0CS);
        if let Some(h) = &self.hooks {
            h.irq_context(false);
            h.gpu_phase(false);
            let regions: Vec<RegionSnapshot> = self
                .vaspace
                .iter()
                .map(|rg| RegionSnapshot {
                    va: rg.va,
                    pages: rg.pages,
                    kind: rg.kind,
                    pte_flags: rg.pte_flags.clone(),
                    pas: rg.pas.clone(),
                })
                .collect();
            let ctx = DumpCtx {
                mem: self.machine.mem(),
                regions: &regions,
                root: JobRoot::V3dList { cl_va, cl_len },
            };
            h.post_job_complete(&ctx);
        }
        if sts & r::INT_MMU_FAULT != 0 || cs & r::CS_ERROR != 0 {
            let err = self.rd(r::ERR_STAT);
            return Err(DriverError::JobFault { code: err });
        }
        Ok(())
    }

    /// Cleans GPU caches by polling the busy bit (`v3d_clean_caches`).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Timeout`] if cleaning never finishes.
    pub fn cache_clean(&mut self) -> Result<(), DriverError> {
        self.wr(r::CACHE_CLEAN, 1);
        self.poll(r::CACHE_CLEAN, 1, 0, CTRL_TIMEOUT)
    }

    /// Resets and re-initializes the device (recovery path).
    ///
    /// # Errors
    ///
    /// Propagates bring-up failures.
    pub fn recover(&mut self) -> Result<(), DriverError> {
        self.reset_and_bring_up()
    }

    /// Tears down: frees GPU memory and powers off via the mailbox.
    pub fn teardown(mut self) {
        let vas: Vec<u64> = self.vaspace.iter().map(|r| r.va).collect();
        for va in vas {
            let _ = self.free_region(va);
        }
        if self.table_pa != 0 {
            let mut frames = self.machine.frames().lock();
            for i in 0..pgtable::PT_PAGES {
                let _ = frames.free(self.table_pa + (i * PAGE_SIZE) as u64);
            }
        }
        for domain in [PmcDomain::GpuCore, PmcDomain::GpuMem] {
            let mut mbox = self.machine.mailbox().lock();
            if mbox
                .submit(MboxRequest::SetPower { domain, on: false })
                .is_ok()
            {
                loop {
                    match mbox.status() {
                        MboxStatus::Done => {
                            mbox.take_response();
                            break;
                        }
                        MboxStatus::Busy => {
                            let t = mbox.next_completion().expect("pending");
                            self.machine.clock().advance_to(t);
                        }
                        MboxStatus::Idle => break,
                    }
                }
            }
        }
        self.rss.free(costs::STACK_BASE_RSS / 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::sku::V3D_RPI4;
    use gr_gpu::timing::JobCost;
    use gr_gpu::v3d::cl::ClWriter;
    use gr_gpu::vm::bytecode::KernelOp;
    use gr_gpu::Machine;

    #[test]
    fn probe_powers_via_mailbox_and_runs_a_list() {
        let machine = Machine::new(&V3D_RPI4, 21);
        let mut drv = V3dDriver::probe(machine.clone(), None).unwrap();
        assert!(machine.pmc().is_stable(PmcDomain::GpuCore));

        let binv = drv.alloc_region(1, RegionKind::JobBinary).unwrap();
        let data = drv.alloc_region(1, RegionKind::Data).unwrap();
        let blob = KernelOp::Fill {
            out: data,
            n: 8,
            value: 2.5,
        }
        .encode();
        drv.mmap_write(binv + 0x200, &blob).unwrap();
        let mut w = ClWriter::new();
        w.run_shader(
            binv + 0x200,
            blob.len() as u32,
            JobCost {
                flops: 8,
                bytes: 32,
            },
        );
        let cl = w.finish();
        drv.mmap_write(binv, &cl).unwrap();
        drv.submit(binv, cl.len() as u32).unwrap();
        let mut out = vec![0u8; 8 * 4];
        drv.read_gpu(data, &mut out).unwrap();
        for ch in out.chunks_exact(4) {
            assert_eq!(f32::from_le_bytes(ch.try_into().unwrap()), 2.5);
        }
        drv.cache_clean().unwrap();
        drv.teardown();
        assert!(!machine.pmc().is_stable(PmcDomain::GpuCore), "powered off");
    }

    #[test]
    fn submit_unmapped_list_reports_fault() {
        let machine = Machine::new(&V3D_RPI4, 21);
        let mut drv = V3dDriver::probe(machine, None).unwrap();
        let err = drv.submit(0x0100_0000, 16).unwrap_err();
        assert!(matches!(err, DriverError::JobFault { .. }), "{err:?}");
        drv.recover().unwrap();
        drv.teardown();
    }
}
