//! Kernel drivers for the two GPU families.
//!
//! Both expose the same Rust-level surface (probe / alloc / map / copy /
//! submit / wait / flush / reset / teardown) but speak entirely different
//! register protocols underneath, mirroring Mali kbase and drm/v3d.

pub mod mali;
pub mod v3d;
pub mod vaspace;

pub use mali::MaliDriver;
pub use v3d::V3dDriver;
pub use vaspace::{Region, VaSpace};

/// Allocation kind, equivalent to the flags of the real drivers' memory
/// ioctls. Decides PTE permissions on Mali and dump hints on v3d.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Job binaries (commands + shaders). Mapped executable on Mali.
    JobBinary,
    /// CPU-visible data (weights, inputs, outputs).
    Data,
    /// GPU-internal intermediate buffers (never CPU-mapped).
    Internal,
    /// Per-job scratch memory (excluded from dumps via alloc-flag hints).
    Scratch,
}

/// Errors from driver operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// GPU did not come out of reset / power up.
    PowerFailure,
    /// Wrong or unknown GPU ID.
    UnknownDevice(u32),
    /// Physical memory exhausted.
    OutOfMemory,
    /// Bad VA handed to the driver.
    BadAddress(u64),
    /// Job failed (hardware fault status attached).
    JobFault {
        /// Family-specific fault code.
        code: u32,
    },
    /// Timed out waiting for the GPU.
    Timeout,
    /// Driver used in a state it does not allow.
    BadState(&'static str),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::PowerFailure => write!(f, "GPU power-up failed"),
            DriverError::UnknownDevice(id) => write!(f, "unknown GPU id {id:#x}"),
            DriverError::OutOfMemory => write!(f, "GPU memory exhausted"),
            DriverError::BadAddress(va) => write!(f, "bad GPU address {va:#x}"),
            DriverError::JobFault { code } => write!(f, "GPU job fault (code {code:#x})"),
            DriverError::Timeout => write!(f, "timed out waiting for GPU"),
            DriverError::BadState(s) => write!(f, "driver misuse: {s}"),
        }
    }
}

impl std::error::Error for DriverError {}
