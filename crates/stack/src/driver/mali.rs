//! The Mali-family kernel driver (kbase-style).
//!
//! Owns GPU power bring-up (direct PMC programming), the GPU address
//! space, job submission through the `JS0` slot (synchronous, or
//! double-buffered via the `_NEXT` registers for the Fig. 3 async
//! baseline), and interrupt handling. Every hardware interaction funnels
//! through hooked accessors so a [`RecorderSink`] observes exactly what
//! the paper's instrumentation observes.

use std::sync::Arc;

use gr_gpu::machine::{Machine, WaitOutcome};
use gr_gpu::mali::pgtable::{self, PteFlags};
use gr_gpu::mali::regs as r;
use gr_gpu::sku::GpuFamilyKind;
use gr_sim::{MemAccount, SimDuration};
use gr_soc::pmc::{Pmc, PmcDomain, PWR_STATUS_ON};
use gr_soc::PAGE_SIZE;

use crate::costs;
use crate::driver::vaspace::{Region, VaSpace};
use crate::driver::{DriverError, RegionKind};
use crate::hooks::{DumpCtx, JobRoot, RecorderSink, RegionSnapshot};

/// GPU VA where the driver's heap starts.
const HEAP_BASE: u64 = 0x0100_0000;
/// Poll cadence for register waits.
const POLL_INTERVAL: SimDuration = SimDuration::from_micros(2);
/// Budget for reset/flush register waits.
const CTRL_TIMEOUT: SimDuration = SimDuration::from_millis(50);
/// Budget for job completion (paper example: `WaitIRQ timeout=10 sec`).
pub const JOB_TIMEOUT: SimDuration = SimDuration::from_secs(10);

/// The Mali kernel driver instance.
pub struct MaliDriver {
    machine: Machine,
    vaspace: VaSpace,
    root_pa: u64,
    hooks: Option<Arc<dyn RecorderSink>>,
    sync: bool,
    outstanding: u32,
    mem_inited: bool,
    rss: MemAccount,
    jobs_submitted: u64,
    last_head: u64,
}

impl std::fmt::Debug for MaliDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaliDriver")
            .field("sku", &self.machine.sku().name)
            .field("jobs_submitted", &self.jobs_submitted)
            .finish()
    }
}

impl MaliDriver {
    /// Probes the device: powers it, resets it, brings up shader cores and
    /// the MMU. `sync` selects synchronous job submission (queue depth 1,
    /// required while recording) vs the async depth-2 baseline.
    ///
    /// # Errors
    ///
    /// Fails on power/reset timeouts or an unknown GPU ID.
    pub fn probe(
        machine: Machine,
        hooks: Option<Arc<dyn RecorderSink>>,
        sync: bool,
    ) -> Result<Self, DriverError> {
        assert_eq!(
            machine.sku().family,
            GpuFamilyKind::Mali,
            "MaliDriver requires a Mali-family machine"
        );
        machine.advance(costs::DRIVER_PROBE);
        let rss = MemAccount::new();
        rss.alloc(costs::STACK_BASE_RSS);

        // Power bring-up: direct PMC programming (kbase_pm style). Not part
        // of the GPU register trace — user/kernel replayers inherit it.
        for domain in [PmcDomain::GpuCore, PmcDomain::GpuMem] {
            machine.pmc().write32(Pmc::pwr_ctrl_off(domain), 1);
        }
        let deadline = machine.now() + SimDuration::from_millis(10);
        while machine.now() < deadline {
            let core = machine
                .pmc()
                .read32(Pmc::pwr_status_off(PmcDomain::GpuCore));
            let mem = machine.pmc().read32(Pmc::pwr_status_off(PmcDomain::GpuMem));
            if core == PWR_STATUS_ON && mem == PWR_STATUS_ON {
                break;
            }
            machine.advance(SimDuration::from_micros(20));
        }
        if !machine.pmc().is_stable(PmcDomain::GpuCore) {
            return Err(DriverError::PowerFailure);
        }

        let mut drv = MaliDriver {
            machine,
            vaspace: VaSpace::new(HEAP_BASE, pgtable::VA_SPACE_SIZE),
            root_pa: 0,
            hooks,
            sync,
            outstanding: 0,
            mem_inited: false,
            rss,
            jobs_submitted: 0,
            last_head: 0,
        };

        let id = drv.rd(r::GPU_ID);
        if gr_gpu::sku::sku_by_id(id).is_none() {
            return Err(DriverError::UnknownDevice(id));
        }
        drv.reset_and_bring_up()?;
        Ok(drv)
    }

    /// The machine this driver drives.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Modeled CPU memory footprint of the stack (§7.3).
    pub fn rss(&self) -> &MemAccount {
        &self.rss
    }

    /// Jobs submitted so far.
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs_submitted
    }

    /// Peak GPU pages ever mapped (Table 6 accounting).
    pub fn peak_mapped_pages(&self) -> u64 {
        self.vaspace.peak_pages()
    }

    fn rd(&self, reg: u32) -> u32 {
        let val = self.machine.gpu_read32(reg);
        if let Some(h) = &self.hooks {
            h.reg_read(reg, val);
        }
        val
    }

    fn wr(&self, reg: u32, val: u32) {
        if let Some(h) = &self.hooks {
            h.reg_write(reg, val);
        }
        self.machine.gpu_write32(reg, val);
    }

    /// Hooked polling wait (`wait_for()` seam).
    fn poll(
        &self,
        reg: u32,
        mask: u32,
        want: u32,
        timeout: SimDuration,
    ) -> Result<(), DriverError> {
        let (val, polls) = self
            .machine
            .poll_reg(reg, mask, want, POLL_INTERVAL, timeout);
        if let Some(h) = &self.hooks {
            h.poll(reg, mask, want, polls, timeout);
        }
        if val & mask == want {
            Ok(())
        } else {
            Err(DriverError::Timeout)
        }
    }

    fn reset_and_bring_up(&mut self) -> Result<(), DriverError> {
        // Soft reset and wait for RESET_COMPLETED.
        self.wr(r::GPU_COMMAND, r::GPU_CMD_SOFT_RESET);
        self.poll(
            r::GPU_IRQ_RAWSTAT,
            r::GPU_IRQ_RESET_COMPLETED,
            r::GPU_IRQ_RESET_COMPLETED,
            CTRL_TIMEOUT,
        )?;
        self.wr(r::GPU_IRQ_CLEAR, r::GPU_IRQ_RESET_COMPLETED);

        // Interrupt masks.
        self.wr(r::JOB_IRQ_MASK, 0xFFFF_FFFF);
        self.wr(r::MMU_IRQ_MASK, 0xFFFF_FFFF);
        self.wr(r::GPU_IRQ_MASK, 0xFFFF_FFFF);

        // Shader cores.
        let present = self.rd(r::SHADER_PRESENT);
        self.wr(r::SHADER_PWRON, present);
        self.poll(r::SHADER_READY, present, present, CTRL_TIMEOUT)?;

        // MMU: allocate (or re-point at) the root table.
        if self.root_pa == 0 {
            let root = self
                .machine
                .frames()
                .lock()
                .alloc_zeroed(self.machine.mem())
                .map_err(|_| DriverError::OutOfMemory)?
                .ok_or(DriverError::OutOfMemory)?;
            self.root_pa = root;
        }
        self.set_pgtable()?;
        Ok(())
    }

    fn set_pgtable(&mut self) -> Result<(), DriverError> {
        // The table-base write is recorded as SetGpuPgtable (the replayer
        // substitutes its own base); TRANSCFG and the UPDATE command are
        // recorded verbatim — TRANSCFG is a §6.4 patch target.
        if let Some(h) = &self.hooks {
            h.pgtable_set();
        }
        self.machine
            .gpu_write32(r::AS0_TRANSTAB_LO, self.root_pa as u32);
        self.machine
            .gpu_write32(r::AS0_TRANSTAB_HI, (self.root_pa >> 32) as u32);
        let mut cfg = r::TRANSCFG_ENABLE;
        if self.machine.sku().requires_rd_alloc {
            cfg |= r::TRANSCFG_RD_ALLOC;
        }
        self.wr(r::AS0_TRANSCFG, cfg);
        self.wr(r::AS0_COMMAND, r::AS_CMD_UPDATE);
        Ok(())
    }

    fn flags_for(&self, kind: RegionKind) -> PteFlags {
        match kind {
            RegionKind::JobBinary => PteFlags::exec_cpu(),
            RegionKind::Data => PteFlags::rw_cpu(),
            RegionKind::Internal | RegionKind::Scratch => PteFlags::internal(),
        }
    }

    /// Allocates and maps `pages` of GPU memory (`MEM_ALLOC` ioctl).
    ///
    /// # Errors
    ///
    /// Fails when physical frames or VA space run out.
    pub fn alloc_region(&mut self, pages: usize, kind: RegionKind) -> Result<u64, DriverError> {
        self.machine.advance(costs::IOCTL_ENTRY);
        if !self.mem_inited {
            self.machine.advance(costs::MEM_MGR_INIT);
            self.mem_inited = true;
        }
        self.machine
            .advance(costs::ALLOC_PER_PAGE * pages as u64 + costs::MAP_PER_PAGE * pages as u64);
        let va = self.vaspace.reserve(pages)?;
        let flags = self.flags_for(kind);
        let fmt = self.machine.sku().pte_format;
        let mut pas = Vec::with_capacity(pages);
        {
            let mut frames = self.machine.frames().lock();
            for i in 0..pages {
                let pa = frames
                    .alloc_zeroed(self.machine.mem())
                    .map_err(|_| DriverError::OutOfMemory)?
                    .ok_or(DriverError::OutOfMemory)?;
                pgtable::map_page(
                    self.machine.mem(),
                    &mut frames,
                    fmt,
                    self.root_pa,
                    va + (i * PAGE_SIZE) as u64,
                    pa,
                    flags,
                )
                .map_err(|_| DriverError::OutOfMemory)?;
                pas.push(pa);
            }
        }
        let pte_bits = pgtable::encode_flags(fmt, flags) as u16;
        let region = Region {
            va,
            pages,
            kind,
            pas,
            pte_flags: vec![pte_bits; pages],
        };
        if let Some(h) = &self.hooks {
            h.map(va, kind, &region.pte_flags);
        }
        self.vaspace.insert(region);
        self.rss.alloc(4 * 1024); // kernel bookkeeping per region
        Ok(va)
    }

    /// Unmaps and frees the region at `va` (`MEM_FREE` ioctl).
    ///
    /// # Errors
    ///
    /// Fails when `va` is not a region base.
    pub fn free_region(&mut self, va: u64) -> Result<(), DriverError> {
        self.machine.advance(costs::IOCTL_ENTRY);
        let region = self.vaspace.remove(va)?;
        let fmt = self.machine.sku().pte_format;
        {
            let mut frames = self.machine.frames().lock();
            for i in 0..region.pages {
                let page_va = va + (i * PAGE_SIZE) as u64;
                if let Ok(Some(pa)) =
                    pgtable::unmap_page(self.machine.mem(), fmt, self.root_pa, page_va)
                {
                    let _ = frames.free(pa);
                }
            }
        }
        if let Some(h) = &self.hooks {
            h.unmap(va);
        }
        // Architectural TLB shootdown: clearing PTEs alone leaves stale
        // translations in the GPU TLB, which becomes a use-after-free the
        // moment the VA space recycles this range (kbase flushes the AS on
        // every region teardown for the same reason).
        self.wr(r::AS0_COMMAND, r::AS_CMD_FLUSH);
        self.rss.free(4 * 1024);
        Ok(())
    }

    /// CPU→GPU copy through the driver mapping (input injection path).
    ///
    /// # Errors
    ///
    /// Fails when the range is unmapped.
    pub fn write_gpu(&self, va: u64, data: &[u8]) -> Result<(), DriverError> {
        self.machine
            .advance(costs::COPY_PER_PAGE * (data.len() / PAGE_SIZE + 1) as u64);
        self.vaspace.cpu_write(self.machine.mem(), va, data)?;
        if let Some(h) = &self.hooks {
            h.copy_to_gpu(va, data.len());
        }
        Ok(())
    }

    /// GPU→CPU copy (output extraction path).
    ///
    /// # Errors
    ///
    /// Fails when the range is unmapped.
    pub fn read_gpu(&self, va: u64, out: &mut [u8]) -> Result<(), DriverError> {
        self.machine
            .advance(costs::COPY_PER_PAGE * (out.len() / PAGE_SIZE + 1) as u64);
        self.vaspace.cpu_read(self.machine.mem(), va, out)?;
        if let Some(h) = &self.hooks {
            h.copy_from_gpu(va, out.len());
        }
        Ok(())
    }

    /// Kernel-bypassing mmap write — the path the proprietary runtime uses
    /// to emit job binaries *without the driver (or recorder) seeing it*.
    ///
    /// # Errors
    ///
    /// Fails when the range is unmapped.
    pub fn mmap_write(&self, va: u64, data: &[u8]) -> Result<(), DriverError> {
        self.vaspace.cpu_write(self.machine.mem(), va, data)
    }

    fn snapshot_regions(&self) -> Vec<RegionSnapshot> {
        self.vaspace
            .iter()
            .map(|r| RegionSnapshot {
                va: r.va,
                pages: r.pages,
                kind: r.kind,
                pte_flags: r.pte_flags.clone(),
                pas: r.pas.clone(),
            })
            .collect()
    }

    fn kick(&mut self, chain_va: u64, affinity: u32) {
        self.machine.advance(costs::JOB_SUBMIT_CPU);
        self.last_head = chain_va;
        // §4.3: dump right before the kick.
        if let Some(h) = &self.hooks {
            let regions = self.snapshot_regions();
            let ctx = DumpCtx {
                mem: self.machine.mem(),
                regions: &regions,
                root: JobRoot::MaliChain { head_va: chain_va },
            };
            h.pre_job_submit(&ctx);
        }
        self.wr(r::JS0_HEAD_LO, chain_va as u32);
        self.wr(r::JS0_HEAD_HI, (chain_va >> 32) as u32);
        self.wr(r::JS0_AFFINITY, affinity);
        self.wr(r::JS0_CONFIG, 0);
        self.wr(r::JS0_COMMAND, r::JS_CMD_START);
        if let Some(h) = &self.hooks {
            h.gpu_phase(true);
        }
        self.jobs_submitted += 1;
        self.rss.alloc(costs::STACK_PER_JOB_RSS);
        self.rss.free(costs::STACK_PER_JOB_RSS); // transient per-job state
    }

    fn wait_job_irq(&mut self) -> Result<(), DriverError> {
        if !self.sync {
            // Collapsed-completion race: with the depth-2 queue, two jobs
            // can both finish while the CPU is off emitting work, latching
            // the per-slot DONE bit once for both. If nothing is pending
            // and the GPU is idle, the completions were coalesced — check
            // the slot state instead of waiting (what kbase does).
            self.machine.tick_gpu();
            if self.outstanding > 0
                && !self.machine.irq().pending(r::irq_lines::JOB)
                && !self.machine.gpu_busy()
                && self.machine.next_gpu_event().is_none()
            {
                let js = self.rd(r::JS0_STATUS);
                self.outstanding = self.outstanding.saturating_sub(1);
                if js != r::JS_STATUS_COMPLETED {
                    return Err(DriverError::JobFault { code: js });
                }
                return Ok(());
            }
        }
        if let Some(h) = &self.hooks {
            h.wait_irq(r::irq_lines::JOB.0, JOB_TIMEOUT);
        }
        match self.machine.wait_irq(r::irq_lines::JOB, JOB_TIMEOUT) {
            WaitOutcome::Irq => {}
            WaitOutcome::Timeout => return Err(DriverError::Timeout),
        }
        // Interrupt handler (top half).
        if let Some(h) = &self.hooks {
            h.irq_context(true);
        }
        self.machine.advance(costs::IRQ_HANDLER);
        let status = self.rd(r::JOB_IRQ_STATUS);
        self.wr(r::JOB_IRQ_CLEAR, status);
        // In sync mode the slot must sit at COMPLETED; with the async
        // double buffer the next job may already be ACTIVE again, so only
        // the per-slot IRQ bits are authoritative (as in kbase).
        let js = self.rd(r::JS0_STATUS);
        let slot_bad = self.sync && js != r::JS_STATUS_COMPLETED;
        if let Some(h) = &self.hooks {
            h.irq_context(false);
            h.gpu_phase(false);
            let regions = self.snapshot_regions();
            let ctx = DumpCtx {
                mem: self.machine.mem(),
                regions: &regions,
                root: JobRoot::MaliChain {
                    head_va: self.last_head,
                },
            };
            h.post_job_complete(&ctx);
        }
        self.outstanding = self.outstanding.saturating_sub(1);
        if status & r::JOB_IRQ_FAIL0 != 0 || slot_bad {
            let fault = self.rd(r::AS0_FAULTSTATUS);
            return Err(DriverError::JobFault { code: fault });
        }
        Ok(())
    }

    /// Submits the chain at `chain_va` on all present cores and (in sync
    /// mode) waits for completion.
    ///
    /// In async mode the job may be double-buffered behind a running one;
    /// call [`MaliDriver::wait_all`] to drain.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::JobFault`] / [`DriverError::Timeout`] on
    /// hardware failures.
    pub fn submit(&mut self, chain_va: u64) -> Result<(), DriverError> {
        self.machine.advance(costs::IOCTL_ENTRY);
        let affinity = (1u32 << self.machine.sku().cores) - 1;
        if self.sync {
            self.kick(chain_va, affinity);
            self.outstanding = 1;
            return self.wait_job_irq();
        }
        // Async: depth-2 via the NEXT registers.
        if self.outstanding == 2 {
            self.wait_job_irq()?;
        }
        if self.outstanding == 0 {
            self.kick(chain_va, affinity);
            self.outstanding = 1;
        } else {
            self.machine.advance(costs::JOB_SUBMIT_CPU);
            if let Some(h) = &self.hooks {
                let regions = self.snapshot_regions();
                let ctx = DumpCtx {
                    mem: self.machine.mem(),
                    regions: &regions,
                    root: JobRoot::MaliChain { head_va: chain_va },
                };
                h.pre_job_submit(&ctx);
            }
            self.wr(r::JS0_HEAD_NEXT_LO, chain_va as u32);
            self.wr(r::JS0_HEAD_NEXT_HI, (chain_va >> 32) as u32);
            self.wr(r::JS0_AFFINITY_NEXT, affinity);
            self.wr(r::JS0_COMMAND_NEXT, r::JS_CMD_START);
            self.jobs_submitted += 1;
            self.outstanding = 2;
        }
        Ok(())
    }

    /// Drains all outstanding async jobs.
    ///
    /// # Errors
    ///
    /// Propagates job faults/timeouts.
    pub fn wait_all(&mut self) -> Result<(), DriverError> {
        while self.outstanding > 0 {
            self.wait_job_irq()?;
        }
        Ok(())
    }

    /// Flushes GPU caches (polled, like `kbase_cache_clean_worker`).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Timeout`] if the flush never completes.
    pub fn cache_flush(&mut self) -> Result<(), DriverError> {
        self.wr(r::GPU_COMMAND, r::GPU_CMD_CLEAN_CACHES);
        self.poll(
            r::GPU_IRQ_RAWSTAT,
            r::GPU_IRQ_CLEAN_CACHES_COMPLETED,
            r::GPU_IRQ_CLEAN_CACHES_COMPLETED,
            CTRL_TIMEOUT,
        )?;
        self.wr(r::GPU_IRQ_CLEAR, r::GPU_IRQ_CLEAN_CACHES_COMPLETED);
        Ok(())
    }

    /// Soft-resets the GPU and re-runs bring-up (recovery path).
    ///
    /// # Errors
    ///
    /// Propagates bring-up failures.
    pub fn recover(&mut self) -> Result<(), DriverError> {
        self.outstanding = 0;
        self.reset_and_bring_up()
    }

    /// Tears the driver down: frees all GPU memory and powers off.
    pub fn teardown(mut self) {
        let vas: Vec<u64> = self.vaspace.iter().map(|r| r.va).collect();
        for va in vas {
            let _ = self.free_region(va);
        }
        if self.root_pa != 0 {
            // Free the L2 tables map_page grew on demand, then the root.
            for l1_idx in 0..512u64 {
                if let Ok(l1) = self.machine.mem().read_u64(self.root_pa + l1_idx * 8) {
                    if l1 & 1 != 0 {
                        let _ = self
                            .machine
                            .frames()
                            .lock()
                            .free(l1 & 0x0000_FFFF_FFFF_F000);
                    }
                }
            }
            let _ = self.machine.frames().lock().free(self.root_pa);
        }
        for domain in [PmcDomain::GpuCore, PmcDomain::GpuMem] {
            self.machine.pmc().write32(Pmc::pwr_ctrl_off(domain), 0);
        }
        self.rss.free(costs::STACK_BASE_RSS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::mali::jobs::JobHeader;
    use gr_gpu::sku::MALI_G71;
    use gr_gpu::timing::JobCost;
    use gr_gpu::vm::bytecode::{ActKind, KernelOp};
    use gr_gpu::Machine;

    fn f32s(vals: &[f32]) -> Vec<u8> {
        let mut b = Vec::new();
        for v in vals {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    }

    #[test]
    fn probe_and_vecadd_roundtrip() {
        let machine = Machine::new(&MALI_G71, 11);
        let mut drv = MaliDriver::probe(machine, None, true).unwrap();
        let chain = drv.alloc_region(1, RegionKind::JobBinary).unwrap();
        let data = drv.alloc_region(1, RegionKind::Data).unwrap();
        drv.write_gpu(data, &f32s(&[1., 2., 3., 10., 20., 30.]))
            .unwrap();
        let op = KernelOp::EltwiseAdd {
            a: data,
            b: data + 12,
            out: data + 24,
            n: 3,
            act: ActKind::None,
        };
        let blob = op.encode();
        let header = JobHeader {
            next_va: 0,
            shader_va: chain + 0x100,
            shader_len: blob.len() as u32,
            cost: JobCost {
                flops: 3,
                bytes: 24,
            },
        };
        drv.mmap_write(chain, &header.encode()).unwrap();
        drv.mmap_write(chain + 0x100, &blob).unwrap();
        drv.submit(chain).unwrap();
        let mut out = vec![0u8; 12];
        drv.read_gpu(data + 24, &mut out).unwrap();
        assert_eq!(out, f32s(&[11., 22., 33.]));
        assert_eq!(drv.jobs_submitted(), 1);
        assert!(drv.peak_mapped_pages() >= 2);
        drv.teardown();
    }

    #[test]
    fn async_mode_overlaps_submissions() {
        // Submit 4 compute-heavy jobs sync vs async; async finishes sooner.
        let elapsed = |sync: bool| -> u64 {
            let machine = Machine::new(&MALI_G71, 5);
            let mut drv = MaliDriver::probe(machine.clone(), None, sync).unwrap();
            let chain = drv.alloc_region(1, RegionKind::JobBinary).unwrap();
            let data = drv.alloc_region(1, RegionKind::Data).unwrap();
            let op = KernelOp::Fill {
                out: data,
                n: 4,
                value: 1.0,
            };
            let blob = op.encode();
            let header = JobHeader {
                next_va: 0,
                shader_va: chain + 0x100,
                shader_len: blob.len() as u32,
                cost: JobCost {
                    flops: 60_000_000,
                    bytes: 0,
                },
            };
            drv.mmap_write(chain, &header.encode()).unwrap();
            drv.mmap_write(chain + 0x100, &blob).unwrap();
            let t0 = machine.now();
            for _ in 0..4 {
                drv.submit(chain).unwrap();
            }
            drv.wait_all().unwrap();
            let dt = (machine.now() - t0).as_nanos();
            drv.teardown();
            dt
        };
        let sync_t = elapsed(true);
        let async_t = elapsed(false);
        assert!(
            async_t < sync_t,
            "async {async_t} should beat sync {sync_t}"
        );
    }

    #[test]
    fn cache_flush_and_recover() {
        let machine = Machine::new(&MALI_G71, 3);
        let mut drv = MaliDriver::probe(machine, None, true).unwrap();
        drv.cache_flush().unwrap();
        drv.recover().unwrap();
        drv.teardown();
    }

    #[test]
    fn free_region_returns_frames() {
        let machine = Machine::new(&MALI_G71, 3);
        let before = machine.frames().lock().used();
        let mut drv = MaliDriver::probe(machine.clone(), None, true).unwrap();
        let va = drv.alloc_region(4, RegionKind::Data).unwrap();
        drv.free_region(va).unwrap();
        assert!(drv.write_gpu(va, &[0]).is_err(), "stale VA rejected");
        drv.teardown();
        assert_eq!(machine.frames().lock().used(), before);
    }
}
