//! The full GPU software stack — the thing GPUReplay replaces at run time.
//!
//! Mirrors the paper's Figure 2: a *kernel driver* per GPU family
//! (ioctl-style interface, GPU VA-space management, job queues, IRQ
//! handling, power bring-up) and a *blackbox runtime* on top (JIT
//! compilation of kernels into opaque job binaries emitted straight into
//! mmap'd GPU memory, buffer management, queue API).
//!
//! Every layer charges modeled costs to the machine's virtual clock, so
//! end-to-end delays (startup, per-job overhead, ioctl crossings, JIT)
//! have the shapes the paper measures. The driver exposes the
//! instrumentation seams ([`RecorderSink`]) the paper adds to Mali/v3d
//! drivers — register accessors, poll loops, page-table updates, job
//! submission, IRQ entry/exit.
//!
//! # Example
//!
//! ```
//! use gr_gpu::{Machine, sku};
//! use gr_stack::runtime::{BufferKind, GpuRuntime};
//!
//! let machine = Machine::new(&sku::MALI_G71, 7);
//! let mut rt = GpuRuntime::create(machine, true, None)?;
//! let buf = rt.alloc_buffer(1024, BufferKind::Data)?;
//! rt.write_buffer(&buf, 0, &[1, 2, 3, 4])?;
//! # Ok::<(), gr_stack::driver::DriverError>(())
//! ```

pub mod costs;
pub mod driver;
pub mod hooks;
pub mod runtime;

pub use driver::{DriverError, RegionKind};
pub use hooks::{DumpCtx, JobRoot, RecorderSink, RegionSnapshot};
pub use runtime::{Buffer, BufferKind, GpuRuntime, KernelLaunch};
