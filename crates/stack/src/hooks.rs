//! The driver instrumentation seams the recorder taps.
//!
//! §4.1 of the paper: "We instrument the driver code: register accessors;
//! register writes starting a GPU job; accessors of GPU page tables;
//! interrupt handling." [`RecorderSink`] is that instrumentation surface —
//! the recorder crate implements it; production drivers run with no sink
//! attached and pay nothing.

use gr_sim::SimDuration;
use gr_soc::{SharedMem, PAGE_SIZE};

use crate::driver::RegionKind;

/// Family-specific root of a submitted job, as visible at the driver level
/// (ioctl arguments / submit registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobRoot {
    /// Mali: VA of the first job-chain header.
    MaliChain {
        /// Chain head VA.
        head_va: u64,
    },
    /// v3d: control-list window.
    V3dList {
        /// List start VA.
        cl_va: u64,
        /// List byte length.
        cl_len: u32,
    },
}

/// Snapshot of one mapped GPU VA region at dump time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSnapshot {
    /// First virtual address.
    pub va: u64,
    /// Region length in pages.
    pub pages: usize,
    /// Allocation kind (the v3d recorder's syscall-flag hint, §6.2).
    pub kind: RegionKind,
    /// Low PTE bits per page, in the recording SKU's format.
    pub pte_flags: Vec<u16>,
    /// Backing physical frames, one per page.
    pub pas: Vec<u64>,
}

impl RegionSnapshot {
    /// Byte length of the region.
    pub fn len_bytes(&self) -> usize {
        self.pages * PAGE_SIZE
    }
}

/// Everything the recorder may inspect at a dump point (right before the
/// driver kicks the GPU, §4.3).
pub struct DumpCtx<'a> {
    /// Shared DRAM (for reading page contents).
    pub mem: &'a SharedMem,
    /// All currently mapped regions.
    pub regions: &'a [RegionSnapshot],
    /// The job about to be submitted.
    pub root: JobRoot,
}

impl DumpCtx<'_> {
    /// Reads `len` bytes at GPU virtual address `va` using the region
    /// snapshots (CPU-side access, like the paper's in-driver dumper).
    /// Returns `None` if the range is not fully mapped.
    pub fn read_va(&self, va: u64, len: usize) -> Option<Vec<u8>> {
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let cur = va + done as u64;
            let region = self
                .regions
                .iter()
                .find(|r| cur >= r.va && cur < r.va + r.len_bytes() as u64)?;
            let off = (cur - region.va) as usize;
            let page = off / PAGE_SIZE;
            let in_page = PAGE_SIZE - off % PAGE_SIZE;
            let chunk = in_page.min(len - done);
            let pa = region.pas[page] + (off % PAGE_SIZE) as u64;
            self.mem.read(pa, &mut out[done..done + chunk]).ok()?;
            done += chunk;
        }
        Some(out)
    }

    /// Reads a whole region's content.
    pub fn read_region(&self, region: &RegionSnapshot) -> Vec<u8> {
        let mut out = vec![0u8; region.len_bytes()];
        for (i, &pa) in region.pas.iter().enumerate() {
            self.mem
                .read(pa, &mut out[i * PAGE_SIZE..(i + 1) * PAGE_SIZE])
                .expect("region frames are in DRAM");
        }
        out
    }
}

/// Instrumentation calls the driver makes on its way to the hardware.
///
/// Implementations must be cheap and side-effect-free with respect to the
/// driver: the paper's recorder is an observer, not a participant.
pub trait RecorderSink: Send + Sync {
    /// A register write reached the GPU.
    fn reg_write(&self, reg: u32, val: u32);

    /// A single register read returned `val`.
    fn reg_read(&self, reg: u32, val: u32);

    /// A polling loop on `reg` completed (`polls` reads, nondeterministic)
    /// waiting for `(value & mask) == val` within `timeout`.
    fn poll(&self, reg: u32, mask: u32, val: u32, polls: u32, timeout: SimDuration);

    /// The driver blocked for an interrupt on `line`.
    fn wait_irq(&self, line: u32, timeout: SimDuration);

    /// Interrupt handler entry (`true`) / exit via eret (`false`).
    fn irq_context(&self, enter: bool);

    /// The driver pointed the GPU at (new) page tables.
    fn pgtable_set(&self);

    /// A VA region was mapped (per-page PTE flag bits attached).
    fn map(&self, va: u64, kind: RegionKind, pte_flags: &[u16]);

    /// A VA region was unmapped.
    fn unmap(&self, va: u64);

    /// CPU data was copied into GPU memory at `va` (candidate input).
    fn copy_to_gpu(&self, va: u64, len: usize);

    /// GPU data was copied out to the CPU from `va` (candidate output).
    fn copy_from_gpu(&self, va: u64, len: usize);

    /// Fires right before the job kick — the §4.3 dump point.
    fn pre_job_submit(&self, ctx: &DumpCtx<'_>);

    /// Fires after a job completes (IRQ acknowledged). Recorders use it to
    /// refresh their page-content view so GPU-written pages (buffers
    /// passed among jobs) are never re-dumped — §4.3: dumps "should
    /// exclude GPU buffers passed among jobs so that loading of memory
    /// dumps does not overwrite these buffers".
    fn post_job_complete(&self, ctx: &DumpCtx<'_>) {
        let _ = ctx;
    }

    /// GPU went busy (`true`, job kicked) or idle (`false`, completion
    /// acknowledged) — the §4.5 interval-skipping events.
    fn gpu_phase(&self, busy: bool);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_soc::PhysMem;

    #[test]
    fn dumpctx_reads_across_region_pages() {
        let mem = SharedMem::new(PhysMem::new(0, 8 * PAGE_SIZE));
        // Region: VA 0x10000, 2 pages, physically at pages 3 and 5 (discontiguous).
        mem.write(3 * PAGE_SIZE as u64, b"tail-of-page-one")
            .unwrap();
        mem.write(5 * PAGE_SIZE as u64, b"head-of-page-two")
            .unwrap();
        let region = RegionSnapshot {
            va: 0x10000,
            pages: 2,
            kind: RegionKind::Data,
            pte_flags: vec![0xB, 0xB],
            pas: vec![3 * PAGE_SIZE as u64, 5 * PAGE_SIZE as u64],
        };
        let regions = [region];
        let ctx = DumpCtx {
            mem: &mem,
            regions: &regions,
            root: JobRoot::MaliChain { head_va: 0 },
        };
        assert_eq!(ctx.read_va(0x10000, 4).unwrap(), b"tail");
        assert_eq!(ctx.read_va(0x10000 + PAGE_SIZE as u64, 4).unwrap(), b"head");
        // Cross-page read stitches the two frames.
        let cross = ctx.read_va(0x10000 + PAGE_SIZE as u64 - 2, 6).unwrap();
        assert_eq!(&cross[2..], b"head");
        // Unmapped VA yields None.
        assert!(ctx.read_va(0x50000, 4).is_none());
        let full = ctx.read_region(&ctx.regions[0]);
        assert_eq!(full.len(), 2 * PAGE_SIZE);
        assert_eq!(&full[0..4], b"tail");
    }
}
