//! The runtime API surface (OpenCL/Vulkan-queue flavoured).

use std::collections::HashSet;
use std::sync::Arc;

use gr_gpu::machine::Machine;
use gr_gpu::mali::jobs::JobHeader;
use gr_gpu::sku::GpuFamilyKind;
use gr_gpu::timing::JobCost;
use gr_gpu::v3d::cl::ClWriter;
use gr_gpu::vm::bytecode::KernelOp;
use gr_sim::MemAccount;
use gr_soc::PAGE_SIZE;

use crate::costs;
use crate::driver::{DriverError, MaliDriver, RegionKind, V3dDriver};
use crate::hooks::RecorderSink;

/// How a buffer will be used — decides mapping kind and, downstream, the
/// recorder's dump policy for the pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferKind {
    /// CPU-visible data: network inputs/outputs (record by address).
    Data,
    /// CPU-visible constants: weights/parameters (record by value).
    Weights,
    /// GPU-internal intermediate passed between jobs (never dumped).
    Internal,
    /// Per-job scratch (excluded from dumps via alloc hints).
    Scratch,
}

impl BufferKind {
    fn region_kind(self) -> RegionKind {
        match self {
            BufferKind::Data | BufferKind::Weights => RegionKind::Data,
            BufferKind::Internal => RegionKind::Internal,
            BufferKind::Scratch => RegionKind::Scratch,
        }
    }
}

/// A GPU buffer handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    /// GPU virtual address.
    pub va: u64,
    /// Byte length (page-rounded underneath).
    pub len: usize,
}

/// One kernel launch request from the framework layer.
#[derive(Debug, Clone)]
pub struct KernelLaunch {
    /// The compute to run (buffer VAs already resolved).
    pub op: KernelOp,
    /// Modeled full-size work, drives GPU busy time.
    pub cost: JobCost,
    /// JIT-cache key; first use of a key pays the compile cost.
    pub kind_key: String,
    /// Human label for logs.
    pub label: String,
}

enum DriverHandle {
    Mali(MaliDriver),
    V3d(V3dDriver),
}

/// Job-binary arena size in pages (runtimes ring-buffer their command
/// memory; sync submission makes wrap-around safe).
const ARENA_PAGES: usize = 64;

/// The runtime context — create one per app.
pub struct GpuRuntime {
    driver: DriverHandle,
    machine: Machine,
    jit_cache: HashSet<String>,
    arena_va: u64,
    arena_off: usize,
    rss: MemAccount,
    jobs: u64,
}

impl std::fmt::Debug for GpuRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuRuntime")
            .field("sku", &self.machine.sku().name)
            .field("jobs", &self.jobs)
            .finish()
    }
}

impl GpuRuntime {
    /// Loads the runtime and probes the driver. `sync` forces synchronous
    /// job submission (the GPUReplay record-time requirement); the async
    /// depth-2 path is the Fig. 3 baseline (Mali only — v3d is always
    /// depth 1).
    ///
    /// # Errors
    ///
    /// Propagates driver probe failures.
    pub fn create(
        machine: Machine,
        sync: bool,
        hooks: Option<Arc<dyn RecorderSink>>,
    ) -> Result<Self, DriverError> {
        machine.advance(costs::RUNTIME_INIT);
        let rss = MemAccount::new();
        rss.alloc(48 * 1024 * 1024); // the runtime .so itself
        let mut driver = match machine.sku().family {
            GpuFamilyKind::Mali => {
                DriverHandle::Mali(MaliDriver::probe(machine.clone(), hooks, sync)?)
            }
            GpuFamilyKind::V3d => DriverHandle::V3d(V3dDriver::probe(machine.clone(), hooks)?),
        };
        let arena_va = match &mut driver {
            DriverHandle::Mali(d) => d.alloc_region(ARENA_PAGES, RegionKind::JobBinary)?,
            DriverHandle::V3d(d) => d.alloc_region(ARENA_PAGES, RegionKind::JobBinary)?,
        };
        Ok(GpuRuntime {
            driver,
            machine,
            jit_cache: HashSet::new(),
            arena_va,
            arena_off: 0,
            rss,
            jobs: 0,
        })
    }

    /// The machine underneath.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Jobs launched so far.
    pub fn job_count(&self) -> u64 {
        self.jobs
    }

    /// Modeled CPU footprint of runtime + driver (§7.3).
    pub fn total_rss(&self) -> u64 {
        let drv = match &self.driver {
            DriverHandle::Mali(d) => d.rss().current(),
            DriverHandle::V3d(d) => d.rss().current(),
        };
        drv + self.rss.current()
    }

    /// Peak GPU pages mapped (Table 6 accounting).
    pub fn peak_mapped_pages(&self) -> u64 {
        match &self.driver {
            DriverHandle::Mali(d) => d.peak_mapped_pages(),
            DriverHandle::V3d(d) => d.peak_mapped_pages(),
        }
    }

    /// Allocates a buffer of at least `len` bytes.
    ///
    /// # Errors
    ///
    /// Fails when GPU memory runs out.
    pub fn alloc_buffer(&mut self, len: usize, kind: BufferKind) -> Result<Buffer, DriverError> {
        self.machine.advance(costs::BUFFER_CREATE);
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let va = match &mut self.driver {
            DriverHandle::Mali(d) => d.alloc_region(pages, kind.region_kind())?,
            DriverHandle::V3d(d) => d.alloc_region(pages, kind.region_kind())?,
        };
        self.rss.alloc(1024); // runtime-side buffer object
        Ok(Buffer { va, len })
    }

    /// Frees a buffer.
    ///
    /// # Errors
    ///
    /// Fails when `buf` is not a live allocation.
    pub fn free_buffer(&mut self, buf: Buffer) -> Result<(), DriverError> {
        match &mut self.driver {
            DriverHandle::Mali(d) => d.free_region(buf.va)?,
            DriverHandle::V3d(d) => d.free_region(buf.va)?,
        }
        self.rss.free(1024);
        Ok(())
    }

    /// Writes app data into a buffer (the recorded input-injection path).
    ///
    /// # Errors
    ///
    /// Fails on bad offsets.
    pub fn write_buffer(
        &self,
        buf: &Buffer,
        offset: usize,
        data: &[u8],
    ) -> Result<(), DriverError> {
        if offset + data.len() > buf.len.div_ceil(PAGE_SIZE) * PAGE_SIZE {
            return Err(DriverError::BadAddress(buf.va + offset as u64));
        }
        match &self.driver {
            DriverHandle::Mali(d) => d.write_gpu(buf.va + offset as u64, data),
            DriverHandle::V3d(d) => d.write_gpu(buf.va + offset as u64, data),
        }
    }

    /// Reads data out of a buffer (output extraction).
    ///
    /// # Errors
    ///
    /// Fails on bad offsets.
    pub fn read_buffer(
        &self,
        buf: &Buffer,
        offset: usize,
        out: &mut [u8],
    ) -> Result<(), DriverError> {
        match &self.driver {
            DriverHandle::Mali(d) => d.read_gpu(buf.va + offset as u64, out),
            DriverHandle::V3d(d) => d.read_gpu(buf.va + offset as u64, out),
        }
    }

    fn arena_take(&mut self, bytes: usize) -> Result<u64, DriverError> {
        let aligned = bytes.div_ceil(64) * 64;
        if self.arena_off + aligned > ARENA_PAGES * PAGE_SIZE {
            // Ring wrap: drain outstanding work first so the GPU is not
            // reading the bytes we are about to overwrite.
            if let DriverHandle::Mali(d) = &mut self.driver {
                d.wait_all()?;
            }
            self.arena_off = 0;
        }
        let va = self.arena_va + self.arena_off as u64;
        self.arena_off += aligned;
        Ok(va)
    }

    /// JIT-compiles a kernel variant ahead of time (ACL configures —
    /// i.e. compiles — kernels while building the network, which is what
    /// the Fig. 6 startup window contains).
    pub fn prejit(&mut self, kind_key: &str) {
        if !self.jit_cache.contains(kind_key) {
            self.machine.advance(costs::jit_cost(kind_key));
            self.jit_cache.insert(kind_key.to_string());
            self.rss.alloc(256 * 1024);
        }
    }

    /// JIT-compiles (first use per `kind_key`), emits the job binary into
    /// mmap'd GPU memory, and submits it.
    ///
    /// # Errors
    ///
    /// Propagates driver submission failures.
    pub fn launch(&mut self, k: &KernelLaunch) -> Result<(), DriverError> {
        if !self.jit_cache.contains(&k.kind_key) {
            self.machine.advance(costs::jit_cost(&k.kind_key));
            self.jit_cache.insert(k.kind_key.clone());
            self.rss.alloc(256 * 1024); // compiled program + metadata
        }
        self.machine.advance(costs::JOB_EMIT);
        let blob = k.op.encode();
        match &mut self.driver {
            DriverHandle::Mali(_) => {
                let hdr_va =
                    self.arena_take(gr_gpu::mali::jobs::JOB_HEADER_SIZE + blob.len() + 64)?;
                let shader_va = hdr_va + gr_gpu::mali::jobs::JOB_HEADER_SIZE as u64;
                let header = JobHeader {
                    next_va: 0,
                    shader_va,
                    shader_len: blob.len() as u32,
                    cost: k.cost,
                };
                let DriverHandle::Mali(d) = &mut self.driver else {
                    unreachable!()
                };
                d.mmap_write(hdr_va, &header.encode())?;
                d.mmap_write(shader_va, &blob)?;
                d.submit(hdr_va)?;
            }
            DriverHandle::V3d(_) => {
                let blob_va = self.arena_take(blob.len() + 64)?;
                let mut w = ClWriter::new();
                w.run_shader(blob_va, blob.len() as u32, k.cost);
                let cl = w.finish();
                let cl_va = self.arena_take(cl.len() + 16)?;
                let DriverHandle::V3d(d) = &mut self.driver else {
                    unreachable!()
                };
                d.mmap_write(blob_va, &blob)?;
                d.mmap_write(cl_va, &cl)?;
                d.submit(cl_va, cl.len() as u32)?;
            }
        }
        self.jobs += 1;
        Ok(())
    }

    /// Drains outstanding async jobs (no-op in sync mode / on v3d).
    ///
    /// # Errors
    ///
    /// Propagates job faults.
    pub fn finish(&mut self) -> Result<(), DriverError> {
        if let DriverHandle::Mali(d) = &mut self.driver {
            d.wait_all()?;
        }
        Ok(())
    }

    /// Flushes GPU caches (the `CLFlush` the paper's DeepCL workload uses).
    ///
    /// # Errors
    ///
    /// Propagates timeouts.
    pub fn cache_flush(&mut self) -> Result<(), DriverError> {
        match &mut self.driver {
            DriverHandle::Mali(d) => d.cache_flush(),
            DriverHandle::V3d(d) => d.cache_clean(),
        }
    }

    /// Releases the context: drains, frees, powers the GPU down.
    pub fn release(mut self) {
        let _ = self.finish();
        match self.driver {
            DriverHandle::Mali(d) => d.teardown(),
            DriverHandle::V3d(d) => d.teardown(),
        }
        self.rss.free(self.rss.current());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::sku::{MALI_G71, V3D_RPI4};
    use gr_gpu::vm::bytecode::ActKind;

    fn f32s(vals: &[f32]) -> Vec<u8> {
        let mut b = Vec::new();
        for v in vals {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    }

    fn vecadd_on(sku: &'static gr_gpu::GpuSku) {
        let machine = Machine::new(sku, 33);
        let mut rt = GpuRuntime::create(machine, true, None).unwrap();
        let a = rt.alloc_buffer(12, BufferKind::Data).unwrap();
        let b = rt.alloc_buffer(12, BufferKind::Data).unwrap();
        let out = rt.alloc_buffer(12, BufferKind::Data).unwrap();
        rt.write_buffer(&a, 0, &f32s(&[1., 2., 3.])).unwrap();
        rt.write_buffer(&b, 0, &f32s(&[4., 5., 6.])).unwrap();
        rt.launch(&KernelLaunch {
            op: KernelOp::EltwiseAdd {
                a: a.va,
                b: b.va,
                out: out.va,
                n: 3,
                act: ActKind::None,
            },
            cost: JobCost {
                flops: 3,
                bytes: 36,
            },
            kind_key: "eltadd/3".into(),
            label: "vecadd".into(),
        })
        .unwrap();
        rt.finish().unwrap();
        let mut got = vec![0u8; 12];
        rt.read_buffer(&out, 0, &mut got).unwrap();
        assert_eq!(got, f32s(&[5., 7., 9.]));
        assert_eq!(rt.job_count(), 1);
        rt.release();
    }

    #[test]
    fn vecadd_works_on_both_families() {
        vecadd_on(&MALI_G71);
        vecadd_on(&V3D_RPI4);
    }

    #[test]
    fn jit_cost_is_paid_once_per_variant() {
        let machine = Machine::new(&MALI_G71, 1);
        let mut rt = GpuRuntime::create(machine.clone(), true, None).unwrap();
        let buf = rt.alloc_buffer(16, BufferKind::Data).unwrap();
        let launch = KernelLaunch {
            op: KernelOp::Fill {
                out: buf.va,
                n: 4,
                value: 0.0,
            },
            cost: JobCost {
                flops: 4,
                bytes: 16,
            },
            kind_key: "fill/4".into(),
            label: "fill".into(),
        };
        let t0 = machine.now();
        rt.launch(&launch).unwrap();
        let first = machine.now() - t0;
        let t1 = machine.now();
        rt.launch(&launch).unwrap();
        let second = machine.now() - t1;
        assert!(
            first.as_nanos() > second.as_nanos() + costs::JIT_SIMPLE.as_nanos() / 2,
            "first {first} should include JIT, second {second} should not"
        );
        rt.release();
    }

    #[test]
    fn arena_wraps_without_corruption() {
        let machine = Machine::new(&MALI_G71, 1);
        let mut rt = GpuRuntime::create(machine, true, None).unwrap();
        let buf = rt.alloc_buffer(16, BufferKind::Data).unwrap();
        // Enough launches to wrap the 256 KiB arena several times.
        for i in 0..3000 {
            rt.launch(&KernelLaunch {
                op: KernelOp::Fill {
                    out: buf.va,
                    n: 4,
                    value: i as f32,
                },
                cost: JobCost {
                    flops: 4,
                    bytes: 16,
                },
                kind_key: "fill/4".into(),
                label: format!("fill{i}"),
            })
            .unwrap();
        }
        let mut got = vec![0u8; 4];
        rt.read_buffer(&buf, 0, &mut got).unwrap();
        assert_eq!(f32::from_le_bytes(got.try_into().unwrap()), 2999.0);
        rt.release();
    }

    #[test]
    fn rss_accounts_the_stack_footprint() {
        let machine = Machine::new(&MALI_G71, 1);
        let rt = GpuRuntime::create(machine, true, None).unwrap();
        // §7.3 regime: the full stack occupies hundreds of MB.
        assert!(
            rt.total_rss() > 200 * 1024 * 1024,
            "rss = {}",
            rt.total_rss()
        );
        rt.release();
    }
}
