//! The "proprietary" GPU runtime (libmali.so / libvulkan_broadcom.so
//! stand-in).
//!
//! Sits on top of a kernel driver and does what the paper's Figure 2
//! shows: JIT-compiles kernels (charging realistic compile costs, cached
//! per kernel variant), emits opaque job binaries **directly into mmap'd
//! GPU memory, bypassing the driver** — the kernel-bypass blackbox
//! behaviour that forces GPUReplay's recorder to dump memory instead of
//! parsing anything — and submits jobs through the driver's ioctl surface.

mod api;

pub use api::{Buffer, BufferKind, GpuRuntime, KernelLaunch};
