//! Modeled CPU costs of the full GPU stack.
//!
//! These constants are the knobs that make virtual-time delays land in the
//! regimes the paper reports (seconds of stack startup dominated by JIT
//! and memory management; per-job overheads of tens to hundreds of
//! microseconds; 48 MB runtime binaries taking hundreds of milliseconds to
//! initialize). They are calibrated against Figures 5–8, not measured from
//! real silicon — see DESIGN.md.

use gr_sim::SimDuration;

/// Entering the kernel for an ioctl (crossing + argument validation).
pub const IOCTL_ENTRY: SimDuration = SimDuration::from_micros(9);

/// Driver probe: device discovery, feature probing, PM policy setup.
pub const DRIVER_PROBE: SimDuration = SimDuration::from_millis(16);

/// Kernel-side memory-manager initialization (first allocation pays it).
pub const MEM_MGR_INIT: SimDuration = SimDuration::from_millis(34);

/// Per-page cost of allocating + zeroing GPU memory.
pub const ALLOC_PER_PAGE: SimDuration = SimDuration::from_nanos(900);

/// Per-page cost of page-table insertion (`kbase_mmu_insert_pages`).
pub const MAP_PER_PAGE: SimDuration = SimDuration::from_nanos(650);

/// Per-page cost of CPU↔GPU data movement through the driver mapping.
pub const COPY_PER_PAGE: SimDuration = SimDuration::from_nanos(480);

/// Kernel-side job submission bookkeeping (dep tracking, slot scheduling).
pub const JOB_SUBMIT_CPU: SimDuration = SimDuration::from_micros(24);

/// Top + bottom half of the job-done interrupt.
pub const IRQ_HANDLER: SimDuration = SimDuration::from_micros(7);

/// Loading and relocating the proprietary runtime (libmali.so is 48 MB).
pub const RUNTIME_INIT: SimDuration = SimDuration::from_millis(320);

/// Runtime-side buffer object creation.
pub const BUFFER_CREATE: SimDuration = SimDuration::from_micros(15);

/// Runtime-side command emission per job (filling command arrays).
pub const JOB_EMIT: SimDuration = SimDuration::from_micros(95);

/// JIT-compiling one convolution kernel variant (ACL tunes per shape).
pub const JIT_CONV: SimDuration = SimDuration::from_millis(240);

/// JIT-compiling one GEMM/fully-connected variant.
pub const JIT_GEMM: SimDuration = SimDuration::from_millis(130);

/// JIT-compiling a simple elementwise/pool/softmax kernel.
pub const JIT_SIMPLE: SimDuration = SimDuration::from_millis(36);

/// Modeled resident size of the runtime + driver state (§7.3: the stack's
/// CPU footprint is 220–310 MB).
pub const STACK_BASE_RSS: u64 = 210 * 1024 * 1024;

/// Modeled per-job CPU-side allocation (contexts, command buffers).
pub const STACK_PER_JOB_RSS: u64 = 512 * 1024;

/// Picks the JIT cost for a kernel-cache key (by mnemonic prefix).
pub fn jit_cost(kind_key: &str) -> SimDuration {
    if kind_key.starts_with("conv") || kind_key.starts_with("im2col") {
        JIT_CONV
    } else if kind_key.starts_with("fc")
        || kind_key.starts_with("matmul")
        || kind_key.starts_with("mm_")
    {
        JIT_GEMM
    } else {
        JIT_SIMPLE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jit_costs_rank_by_complexity() {
        assert!(jit_cost("conv2d/3x3") > jit_cost("fc/128"));
        assert!(jit_cost("fc/128") > jit_cost("relu/64"));
        assert_eq!(jit_cost("im2col/x"), JIT_CONV);
        assert_eq!(jit_cost("mm_gw/a"), JIT_GEMM);
        assert_eq!(jit_cost("softmax/10"), JIT_SIMPLE);
    }

    #[test]
    fn startup_dominates_per_job_costs() {
        // Sanity: one JIT compile outweighs hundreds of job submissions,
        // which is the imbalance Figure 5/6 rest on.
        assert!(JIT_CONV.as_nanos() > 100 * (JOB_SUBMIT_CPU + JOB_EMIT).as_nanos());
        assert!(RUNTIME_INIT > DRIVER_PROBE);
    }
}
