//! Deployment environments (§6.3).
//!
//! The replayer runs at user level (mmap'd registers, select()-style IRQ
//! waits), at kernel level (a module reusing the stock driver's IRQ
//! plumbing), inside a TEE (normal/secure world switching on entry), or
//! bare-metal (where it must bring up SoC power/clocks itself, including
//! the firmware mailbox dance on v3d).

use gr_gpu::machine::Machine;
use gr_gpu::sku::GpuFamilyKind;
use gr_sim::SimDuration;
use gr_soc::mailbox::{MboxRequest, MboxStatus};
use gr_soc::pmc::{Pmc, PmcDomain, SETTLE_DELAY};

use crate::error::ReplayError;

/// Where the replayer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvKind {
    /// Daemon with kernel bypass (paper: Mali user-level replayer).
    UserLevel,
    /// Kernel module (paper: v3d replayer).
    KernelLevel,
    /// TrustZone secure world (OPTEE-hosted).
    Tee,
    /// No OS at all (paper: standalone v3d replayer, 50 KB binary).
    Baremetal,
}

impl std::fmt::Display for EnvKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvKind::UserLevel => write!(f, "user"),
            EnvKind::KernelLevel => write!(f, "kernel"),
            EnvKind::Tee => write!(f, "tee"),
            EnvKind::Baremetal => write!(f, "baremetal"),
        }
    }
}

/// An initialized deployment environment bound to a machine.
#[derive(Debug, Clone)]
pub struct Environment {
    kind: EnvKind,
    machine: Machine,
}

impl Environment {
    /// Initializes the environment: maps registers/memory and ensures GPU
    /// power. User/kernel/TEE inherit the kernel's power configuration
    /// transparently; baremetal replays the extracted bring-up sequence
    /// itself (PMC writes on Mali-like SoCs, mailbox property calls on
    /// v3d-like ones).
    ///
    /// # Errors
    ///
    /// Fails if power never stabilizes.
    pub fn new(kind: EnvKind, machine: Machine) -> Result<Environment, ReplayError> {
        let setup = match kind {
            EnvKind::UserLevel => SimDuration::from_millis(2), // mmap + uio setup
            EnvKind::KernelLevel => SimDuration::from_millis(1), // module init
            EnvKind::Tee => SimDuration::from_millis(8),       // TA session + SMC setup
            EnvKind::Baremetal => SimDuration::from_millis(4), // CPU boot glue
        };
        machine.advance(setup);
        match kind {
            EnvKind::Baremetal => {
                // The ported power/clock bring-up (§6.3).
                match machine.sku().family {
                    GpuFamilyKind::V3d => {
                        for domain in [PmcDomain::GpuCore, PmcDomain::GpuMem] {
                            let mut mbox = machine.mailbox().lock();
                            mbox.submit(MboxRequest::SetPower { domain, on: true })
                                .map_err(|_| ReplayError::Env("mailbox busy".into()))?;
                            loop {
                                match mbox.status() {
                                    MboxStatus::Done => {
                                        mbox.take_response();
                                        break;
                                    }
                                    MboxStatus::Busy => {
                                        let t = mbox.next_completion().expect("pending");
                                        machine.clock().advance_to(t);
                                    }
                                    MboxStatus::Idle => {
                                        return Err(ReplayError::Env("mailbox idle".into()))
                                    }
                                }
                            }
                        }
                    }
                    GpuFamilyKind::Mali => {
                        for domain in [PmcDomain::GpuCore, PmcDomain::GpuMem] {
                            machine.pmc().write32(Pmc::pwr_ctrl_off(domain), 1);
                        }
                    }
                }
                machine.advance(SETTLE_DELAY);
            }
            _ => {
                // "Replayers at the user or the kernel level reuse the
                // configuration done by the kernel transparently."
                for domain in [PmcDomain::GpuCore, PmcDomain::GpuMem] {
                    machine.pmc().write32(Pmc::pwr_ctrl_off(domain), 1);
                }
                machine.advance(SETTLE_DELAY);
            }
        }
        if !machine.pmc().is_stable(PmcDomain::GpuCore) {
            return Err(ReplayError::Env("GPU power did not stabilize".into()));
        }
        Ok(Environment { kind, machine })
    }

    /// The environment kind.
    pub fn kind(&self) -> EnvKind {
        self.kind
    }

    /// The machine underneath.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Extra per-action overhead of this environment.
    pub fn action_overhead(&self) -> SimDuration {
        match self.kind {
            EnvKind::UserLevel => SimDuration::from_nanos(150),
            EnvKind::KernelLevel => SimDuration::from_nanos(100),
            EnvKind::Tee => SimDuration::from_nanos(200),
            EnvKind::Baremetal => SimDuration::from_nanos(50),
        }
    }

    /// Fixed cost of entering a replay (TEE world switch, kernel ioctl).
    pub fn replay_entry_cost(&self) -> SimDuration {
        match self.kind {
            EnvKind::UserLevel => SimDuration::from_micros(2),
            EnvKind::KernelLevel => SimDuration::from_micros(9),
            EnvKind::Tee => SimDuration::from_micros(55), // SMC world switch
            EnvKind::Baremetal => SimDuration::ZERO,
        }
    }

    /// Extra latency observing an interrupt (user: select() wakeup).
    pub fn irq_wait_overhead(&self) -> SimDuration {
        match self.kind {
            EnvKind::UserLevel => SimDuration::from_micros(4),
            EnvKind::KernelLevel => SimDuration::from_micros(1),
            EnvKind::Tee => SimDuration::from_micros(2),
            EnvKind::Baremetal => SimDuration::from_nanos(300),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::sku::{MALI_G71, V3D_RPI4};

    #[test]
    fn all_envs_power_the_gpu() {
        for kind in [
            EnvKind::UserLevel,
            EnvKind::KernelLevel,
            EnvKind::Tee,
            EnvKind::Baremetal,
        ] {
            let machine = Machine::new(&MALI_G71, 3);
            let env = Environment::new(kind, machine.clone()).unwrap();
            assert!(machine.pmc().is_stable(PmcDomain::GpuCore), "{kind}");
            assert_eq!(env.kind(), kind);
        }
    }

    #[test]
    fn baremetal_v3d_uses_the_mailbox() {
        let machine = Machine::new(&V3D_RPI4, 3);
        Environment::new(EnvKind::Baremetal, machine.clone()).unwrap();
        assert!(machine.pmc().is_stable(PmcDomain::GpuMem));
    }

    #[test]
    fn overheads_rank_sensibly() {
        let machine = Machine::new(&MALI_G71, 3);
        let bare = Environment::new(EnvKind::Baremetal, machine.clone()).unwrap();
        let tee = Environment::new(EnvKind::Tee, machine).unwrap();
        assert!(bare.action_overhead() < tee.action_overhead());
        assert!(bare.replay_entry_cost() < tee.replay_entry_cost());
        assert!(tee.irq_wait_overhead() < SimDuration::from_millis(1));
        assert_eq!(EnvKind::Tee.to_string(), "tee");
    }
}
