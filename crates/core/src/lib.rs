//! The GPUReplay replayer — the paper's core contribution (§5).
//!
//! A drop-in replacement for the whole GPU stack: a few K SLoC that
//! statically verifies recordings ([`verify`]), rebuilds GPU page tables
//! and loads memory dumps through a ~600-line-scale nano driver
//! ([`nano`]), and interprets the replay actions with §4.5 pacing,
//! §5.4 failure detection + re-execution recovery, §5.3 GPU handoff /
//! preemption and optional checkpointing, in any of four deployment
//! environments (user, kernel, TEE, baremetal — [`env`], §6.3). The §6.4
//! cross-SKU recording patcher lives in [`patch`].
//!
//! # Example
//!
//! ```no_run
//! use gr_gpu::{Machine, sku};
//! use gr_replayer::{Environment, EnvKind, Replayer, ReplayIo};
//!
//! # fn demo(bytes: &[u8], input: &[f32]) -> Result<(), gr_replayer::ReplayError> {
//! let machine = Machine::new(&sku::MALI_G71, 1);
//! let env = Environment::new(EnvKind::UserLevel, machine)?;
//! let mut replayer = Replayer::new(env);
//! let id = replayer.load_bytes(bytes)?;
//! let mut io = ReplayIo::for_recording(replayer.recording(id));
//! io.set_input_f32(0, input)?;
//! let report = replayer.replay(id, &mut io)?;
//! println!("replayed {} actions in {}", report.actions, report.wall);
//! # Ok(()) }
//! ```

pub mod costs;
pub mod env;
pub mod error;
pub mod handoff;
pub mod iface;
pub mod nano;
pub mod patch;
pub mod replayer;
pub mod verify;

pub use env::{EnvKind, Environment};
pub use error::ReplayError;
pub use handoff::{preempt_gpu, GpuLease};
pub use iface::NanoIface;
pub use patch::{patch_recording, PatchOptions};
pub use replayer::{BatchReport, IsolatedBatchReport, ReplayIo, ReplayReport, Replayer};
pub use verify::{PrologueRange, VerifyReport};
