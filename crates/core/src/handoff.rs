//! GPU handoff and preemption (§5.3).
//!
//! The replayer fully owns the GPU during replay but lets the OS preempt
//! it at any time without waiting for the job to finish: a preemption is
//! a cache/TLB flush plus a soft reset — which is why the paper measures
//! sub-millisecond handoff delays.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gr_gpu::machine::Machine;
use gr_gpu::sku::GpuFamilyKind;
use gr_gpu::{mali, v3d};
use gr_sim::SimDuration;

/// A revocable GPU ownership token shared between the replayer and the
/// OS/arbiter (interactive apps ask the arbiter, which revokes the lease).
#[derive(Debug, Clone, Default)]
pub struct GpuLease {
    granted: Arc<AtomicBool>,
}

impl GpuLease {
    /// A granted lease.
    pub fn new() -> GpuLease {
        let l = GpuLease::default();
        l.granted.store(true, Ordering::SeqCst);
        l
    }

    /// `true` while the replayer may keep running.
    pub fn is_granted(&self) -> bool {
        self.granted.load(Ordering::SeqCst)
    }

    /// OS side: take the GPU away.
    pub fn revoke(&self) {
        self.granted.store(false, Ordering::SeqCst);
    }

    /// OS side: hand the GPU back.
    pub fn grant(&self) {
        self.granted.store(true, Ordering::SeqCst);
    }
}

/// Immediately preempts the GPU from an ongoing replay: hard-stops the
/// job, flushes caches (no data leaks to the next owner), soft-resets.
/// Returns the delay the interactive app perceived.
pub fn preempt_gpu(machine: &Machine) -> SimDuration {
    let t0 = machine.now();
    match machine.sku().family {
        GpuFamilyKind::Mali => {
            machine.gpu_write32(mali::regs::JS0_COMMAND, mali::regs::JS_CMD_HARD_STOP);
            machine.gpu_write32(
                mali::regs::GPU_COMMAND,
                mali::regs::GPU_CMD_CLEAN_INV_CACHES,
            );
            machine.poll_reg(
                mali::regs::GPU_IRQ_RAWSTAT,
                mali::regs::GPU_IRQ_CLEAN_CACHES_COMPLETED,
                mali::regs::GPU_IRQ_CLEAN_CACHES_COMPLETED,
                SimDuration::from_micros(2),
                SimDuration::from_millis(5),
            );
            machine.gpu_write32(
                mali::regs::GPU_IRQ_CLEAR,
                mali::regs::GPU_IRQ_CLEAN_CACHES_COMPLETED,
            );
            machine.gpu_write32(mali::regs::GPU_COMMAND, mali::regs::GPU_CMD_SOFT_RESET);
            machine.poll_reg(
                mali::regs::GPU_IRQ_RAWSTAT,
                mali::regs::GPU_IRQ_RESET_COMPLETED,
                mali::regs::GPU_IRQ_RESET_COMPLETED,
                SimDuration::from_micros(2),
                SimDuration::from_millis(5),
            );
            machine.gpu_write32(
                mali::regs::GPU_IRQ_CLEAR,
                mali::regs::GPU_IRQ_RESET_COMPLETED,
            );
        }
        GpuFamilyKind::V3d => {
            machine.gpu_write32(v3d::regs::CACHE_CLEAN, 1);
            machine.poll_reg(
                v3d::regs::CACHE_CLEAN,
                1,
                0,
                SimDuration::from_micros(2),
                SimDuration::from_millis(5),
            );
            machine.gpu_write32(v3d::regs::CTL_RESET, 1);
            machine.poll_reg(
                v3d::regs::CT0CS,
                v3d::regs::CS_RESETTING,
                0,
                SimDuration::from_micros(2),
                SimDuration::from_millis(5),
            );
        }
    }
    machine.now() - t0
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::sku::{MALI_G71, V3D_RPI4};
    use gr_soc::pmc::{Pmc, PmcDomain, SETTLE_DELAY};

    fn powered(sku: &'static gr_gpu::GpuSku) -> Machine {
        let m = Machine::new(sku, 1);
        for d in [PmcDomain::GpuCore, PmcDomain::GpuMem] {
            m.pmc().write32(Pmc::pwr_ctrl_off(d), 1);
        }
        m.advance(SETTLE_DELAY);
        m
    }

    #[test]
    fn lease_toggles() {
        let l = GpuLease::new();
        assert!(l.is_granted());
        let peer = l.clone();
        peer.revoke();
        assert!(!l.is_granted());
        l.grant();
        assert!(peer.is_granted());
    }

    #[test]
    fn preemption_is_submillisecond_on_both_families() {
        for sku in [&MALI_G71, &V3D_RPI4] {
            let m = powered(sku);
            let d = preempt_gpu(&m);
            assert!(
                d < SimDuration::from_millis(1),
                "{}: preemption took {d}",
                sku.name
            );
            assert!(!m.gpu_busy());
        }
    }
}
