//! The replayer proper: Init / Load / Replay (§5).

use std::collections::HashMap;

use gr_gpu::machine::WaitOutcome;
use gr_recording::{Action, Recording};
use gr_sim::trace::fnv1a;
use gr_sim::{SimDuration, SimTime};
use gr_soc::{DirtyMark, IrqLine};

use crate::costs;
use crate::env::Environment;
use crate::error::ReplayError;
use crate::handoff::GpuLease;
use crate::iface::NanoIface;
use crate::nano::NanoDriver;
use crate::verify;

/// Default cap on physical pages a recording may map (§5.1: "apps or the
/// replayer can reject memory-hungry recordings").
pub const DEFAULT_MAX_PAGES: u64 = 24 * 1024; // 96 MiB

/// Maximum §5.4 re-execution attempts before giving up.
pub const MAX_ATTEMPTS: u32 = 3;

/// App-supplied input/output buffers for one replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayIo {
    /// One byte buffer per input slot (must match slot lengths).
    pub inputs: Vec<Vec<u8>>,
    /// Filled by the replayer, one per output slot.
    pub outputs: Vec<Vec<u8>>,
}

impl ReplayIo {
    /// Builds an IO block shaped for `rec` (inputs zeroed, outputs sized).
    pub fn for_recording(rec: &Recording) -> ReplayIo {
        ReplayIo {
            inputs: rec
                .inputs
                .iter()
                .map(|s| vec![0u8; s.len as usize])
                .collect(),
            outputs: rec
                .outputs
                .iter()
                .map(|s| vec![0u8; s.len as usize])
                .collect(),
        }
    }

    /// Sets input slot `slot` from f32 values.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Io`] when the slot does not exist or the
    /// sizes mismatch. A malformed request must never abort the caller —
    /// service workers feed these from untrusted submissions.
    pub fn set_input_f32(&mut self, slot: usize, vals: &[f32]) -> Result<(), ReplayError> {
        let buf = self
            .inputs
            .get_mut(slot)
            .ok_or_else(|| ReplayError::Io(format!("input slot {slot} does not exist")))?;
        if buf.len() != vals.len() * 4 {
            return Err(ReplayError::Io(format!(
                "input slot {slot} is {} bytes, {} given",
                buf.len(),
                vals.len() * 4
            )));
        }
        for (chunk, v) in buf.chunks_exact_mut(4).zip(vals) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        Ok(())
    }

    /// Reads output slot `slot` as f32 values.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Io`] when the slot does not exist or its
    /// byte length is not a whole number of f32s.
    pub fn output_f32(&self, slot: usize) -> Result<Vec<f32>, ReplayError> {
        let buf = self
            .outputs
            .get(slot)
            .ok_or_else(|| ReplayError::Io(format!("output slot {slot} does not exist")))?;
        if buf.len() % 4 != 0 {
            return Err(ReplayError::Io(format!(
                "output slot {slot} is {} bytes, not f32-shaped",
                buf.len()
            )));
        }
        Ok(buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect())
    }
}

/// Result of a successful replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Actions executed (last attempt).
    pub actions: usize,
    /// §5.4 re-execution attempts used beyond the first.
    pub retries: u32,
    /// Virtual time the replay took.
    pub wall: SimDuration,
    /// GPU jobs completed (WaitIrq successes).
    pub jobs: u32,
    /// Checkpoints taken.
    pub checkpoints: u32,
    /// Time from replay start until the first job wait began — the
    /// replayer-side startup (reset, dump loads, page-table rebuild).
    pub startup: SimDuration,
}

/// Result of a fault-isolated batched replay ([`Replayer::replay_batch_isolated`]).
///
/// Element-scoped failures (shape validation, §5.4 recovery exhausted on
/// one element's suffix) are attributed to the failing element in
/// `errors` instead of aborting the batch, so a scheduler that coalesced
/// independent requests can fail exactly the poisoned ticket and answer
/// the rest from the same warm run.
#[derive(Debug)]
pub struct IsolatedBatchReport {
    /// Aggregate batch report; `elements` counts every element, including
    /// failed ones (their outputs stay zeroed).
    pub report: BatchReport,
    /// Terminal per-element failures, sorted by element index. Empty when
    /// the whole batch succeeded.
    pub errors: Vec<(usize, ReplayError)>,
}

/// Result of a successful batched replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Inputs replayed.
    pub elements: usize,
    /// Prologue span length when amortized (0 when not amortized). When
    /// `prologue_skipped > 0`, only `prologue_actions - prologue_skipped`
    /// of these actually executed this batch — the rest were elided by
    /// cross-batch warm residency.
    pub prologue_actions: usize,
    /// Prologue actions elided because the dirty log (or its hash
    /// fallback) proved their backing memory unchanged since the previous
    /// batch of the same recording on this warm machine.
    pub prologue_skipped: usize,
    /// Dump bytes a *resident* batch re-uploaded to re-establish the
    /// post-prologue memory image: only the log-proven dirty subranges of
    /// each dump (or a whole dump on a hash-fallback mismatch). Always 0
    /// for a non-resident batch, which uploads everything via the full
    /// prologue instead.
    pub resident_reupload_bytes: u64,
    /// Actions executed per element.
    pub suffix_actions: usize,
    /// `true` when the prologue/suffix split applied; `false` means the
    /// recording's shape forced full per-element replays.
    pub amortized: bool,
    /// §5.4 re-executions across the whole batch.
    pub retries: u32,
    /// GPU jobs completed across the whole batch.
    pub jobs: u32,
    /// Virtual time the batch took.
    pub wall: SimDuration,
}

struct Loaded {
    rec: Recording,
    /// Load-time verifier facts: provably-dead `Upload` actions (elided
    /// during replay) and the warm-batch prologue/suffix split.
    dead_uploads: std::collections::HashSet<usize>,
    batch_split: Option<usize>,
    /// Backing ranges of prologue `Upload` actions, consulted by the
    /// residency state machine (empty when unbatchable).
    prologue_ranges: Vec<verify::PrologueRange>,
    /// Verifier fact: the prologue's shape admits cross-batch residency
    /// (see `VerifyReport::residency_safe`).
    residency_safe: bool,
    /// FNV-1a over each dump's bytes, the static side of the residency
    /// hash fallback (dump content never changes after load).
    dump_hashes: Vec<u64>,
}

/// Cross-batch warm residency: what the previous successful warm batch of
/// `id` left behind. `mark` was taken right after that batch's prologue
/// work; `epoch` pins the dirty log's epoch (GPU reset or AS switch bumps
/// it, dropping residency — the §5.4 re-warm path included); `access` is
/// the suffix's first-read/write sets (None when the access log
/// overflowed or checkpointing interleaved reads the log cannot see).
#[derive(Debug, Clone)]
struct Residency {
    id: usize,
    epoch: u64,
    mark: DirtyMark,
    access: Option<gr_gpu::AccessSnapshot>,
}

struct Checkpoint {
    action_idx: usize,
    jobs: u32,
    memory: Vec<(u64, Vec<u8>)>,
    reg_state: HashMap<u32, u32>,
}

/// The GPUReplay replayer.
pub struct Replayer {
    env: Environment,
    iface: NanoIface,
    nano: NanoDriver,
    loaded: Vec<Loaded>,
    lease: GpuLease,
    /// Take a checkpoint every N completed jobs (None = disabled; §5.3
    /// finds checkpointing generally inferior to re-execution).
    pub checkpoint_every_jobs: Option<u32>,
    /// Physical-page cap enforced at load time.
    pub max_pages: u64,
    reg_state: HashMap<u32, u32>,
    checkpoint: Option<Checkpoint>,
    residency: Option<Residency>,
    residency_enabled: bool,
}

impl std::fmt::Debug for Replayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replayer")
            .field("env", &self.env.kind())
            .field("recordings", &self.loaded.len())
            .finish()
    }
}

impl Replayer {
    /// Init: acquires the GPU in `env` (§5 API #1).
    ///
    /// # Panics
    ///
    /// Panics if the machine has too little memory for a page-table root.
    pub fn new(env: Environment) -> Replayer {
        let iface = NanoIface::for_family(env.machine().sku().family);
        let nano = NanoDriver::new(env.machine().clone(), iface)
            .expect("machine must have memory for page tables");
        Replayer {
            env,
            iface,
            nano,
            loaded: Vec::new(),
            lease: GpuLease::new(),
            checkpoint_every_jobs: None,
            max_pages: DEFAULT_MAX_PAGES,
            reg_state: HashMap::new(),
            checkpoint: None,
            residency: None,
            residency_enabled: true,
        }
    }

    /// Enables or disables cross-batch warm residency (on by default).
    /// Disabling also drops any residency already established —
    /// benchmarks use this to measure the per-batch-prologue baseline.
    pub fn set_residency(&mut self, on: bool) {
        self.residency_enabled = on;
        if !on {
            self.residency = None;
        }
    }

    /// `true` when cross-batch warm residency is enabled.
    pub fn residency_enabled(&self) -> bool {
        self.residency_enabled
    }

    /// The lease the OS/arbiter uses to preempt this replayer.
    pub fn lease(&self) -> GpuLease {
        self.lease.clone()
    }

    /// The environment.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// A loaded recording.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn recording(&self, id: usize) -> &Recording {
        &self.loaded[id].rec
    }

    /// Load (§5 API #2) from serialized bytes: integrity check, static
    /// verification, charging storage/decompress costs.
    ///
    /// # Errors
    ///
    /// Propagates container and verifier rejections.
    pub fn load_bytes(&mut self, bytes: &[u8]) -> Result<usize, ReplayError> {
        let machine = self.env.machine().clone();
        machine.advance(costs::xfer(bytes.len() as u64, costs::STORAGE_BW));
        let rec = Recording::from_bytes(bytes)?;
        machine.advance(costs::xfer(rec.dump_bytes() as u64, costs::DECOMPRESS_BW));
        self.load(rec)
    }

    /// Load from an in-memory recording (cost of verification only).
    ///
    /// # Errors
    ///
    /// Propagates verifier rejections.
    pub fn load(&mut self, rec: Recording) -> Result<usize, ReplayError> {
        let report = verify::verify(&rec, self.iface, self.max_pages)?;
        self.env
            .machine()
            .advance(costs::VERIFY_PER_ACTION * report.actions as u64);
        let dump_hashes = rec.dumps.iter().map(|d| fnv1a(&d.bytes)).collect();
        self.loaded.push(Loaded {
            rec,
            dead_uploads: report.dead_uploads.into_iter().collect(),
            batch_split: report.batch_split,
            prologue_ranges: report.prologue_ranges,
            residency_safe: report.residency_safe,
            dump_hashes,
        });
        Ok(self.loaded.len() - 1)
    }

    /// Replay (§5 API #3): executes the recording with `io`, recovering
    /// from transient failures by re-execution with injected delays.
    ///
    /// # Errors
    ///
    /// Returns the terminal error when recovery is exhausted, the replay
    /// is preempted, or I/O does not match.
    pub fn replay(&mut self, id: usize, io: &mut ReplayIo) -> Result<ReplayReport, ReplayError> {
        self.validate_io(id, io)?;
        // A full replay rewrites machine state outside the residency
        // bookkeeping: drop any warm anchor rather than reason about it.
        self.residency = None;
        self.reset_outputs(id, io);

        let machine = self.env.machine().clone();
        machine.advance(self.env.replay_entry_cost());
        let t0 = machine.now();
        let end = self.loaded[id].rec.actions.len();
        let mut attempt = 0u32;
        loop {
            let delay_scale = 1u64 << attempt; // inject delays on retries
            match self.run_span(id, io, delay_scale, 0, end, 0, costs::ACTION_DISPATCH) {
                Ok((jobs, checkpoints, startup)) => {
                    return Ok(ReplayReport {
                        actions: self.loaded[id].rec.actions.len(),
                        retries: attempt,
                        wall: machine.now() - t0,
                        jobs,
                        checkpoints,
                        startup,
                    });
                }
                Err(e) if e.is_recoverable() && attempt + 1 < MAX_ATTEMPTS => {
                    attempt += 1;
                    // §5.4: reset the GPU, re-populate the page tables,
                    // start over the whole recording.
                    self.iface.soft_reset(&machine)?;
                    self.nano.remap_all()?;
                }
                Err(e) if e.is_recoverable() => {
                    return Err(ReplayError::RecoveryFailed {
                        attempts: attempt + 1,
                        last: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Replays recording `id` for a whole batch of inputs on the warm
    /// machine, running the input-independent prologue (reset sequence,
    /// dump uploads, idempotent remaps, register bring-up) **once** and
    /// only the per-input suffix (input `CopyToGpu`, job kicks, output
    /// readback) per element.
    ///
    /// Falls back to full per-element replay when the recording's shape
    /// does not admit the split (see `VerifyReport::batch_split`); either
    /// way every element's outputs are bit-identical to a fresh sequential
    /// [`Replayer::replay`] of the same inputs.
    ///
    /// §5.4 recovery applies per element: a transient failure resets the
    /// GPU, rebuilds the page tables, re-runs the prologue to restore the
    /// warm state, and retries only the failing element — elements already
    /// replayed keep their extracted outputs.
    ///
    /// # Errors
    ///
    /// Returns the first terminal error; earlier elements' outputs are
    /// already written to their `ReplayIo`s.
    pub fn replay_batch(
        &mut self,
        id: usize,
        ios: &mut [ReplayIo],
    ) -> Result<BatchReport, ReplayError> {
        self.run_batch(id, ios, false).map(|r| r.report)
    }

    /// Like [`Replayer::replay_batch`], but element failures are isolated:
    /// a shape-invalid element or one whose §5.4 recovery is exhausted is
    /// recorded in [`IsolatedBatchReport::errors`] and the machine is
    /// re-warmed (reset, table rebuild, prologue re-run) before the next
    /// element, so batchmates coalesced from independent requests keep
    /// their bit-exact outputs.
    ///
    /// # Errors
    ///
    /// Only batch-scoped failures return `Err`: empty batch, unknown
    /// recording id, terminal prologue/re-warm failure, preemption, or a
    /// warm-state invariant violation.
    pub fn replay_batch_isolated(
        &mut self,
        id: usize,
        ios: &mut [ReplayIo],
    ) -> Result<IsolatedBatchReport, ReplayError> {
        self.run_batch(id, ios, true)
    }

    /// Shared batch engine. With `isolate == false` this reproduces the
    /// historical `replay_batch` semantics exactly (first terminal error
    /// aborts the call; identical cost charging); with `isolate == true`
    /// element-scoped errors are attributed instead of propagated.
    #[allow(clippy::too_many_lines)]
    fn run_batch(
        &mut self,
        id: usize,
        ios: &mut [ReplayIo],
        isolate: bool,
    ) -> Result<IsolatedBatchReport, ReplayError> {
        if ios.is_empty() {
            return Err(ReplayError::Io("empty batch".into()));
        }
        if self.loaded.get(id).is_none() {
            return Err(ReplayError::BadRecording(id));
        }
        let mut errors: Vec<(usize, ReplayError)> = Vec::new();
        let mut skip = vec![false; ios.len()];
        for (k, io) in ios.iter_mut().enumerate() {
            if let Err(e) = self.validate_io(id, io) {
                if isolate {
                    skip[k] = true;
                    errors.push((k, e));
                    // A failed element must hand back zeroed outputs, not
                    // whatever the caller's buffers held.
                    self.reset_outputs(id, io);
                } else {
                    return Err(e);
                }
            }
        }
        if skip.iter().all(|&s| s) {
            // Nothing runnable: answer without touching the machine.
            return Ok(IsolatedBatchReport {
                report: BatchReport {
                    elements: ios.len(),
                    prologue_actions: 0,
                    prologue_skipped: 0,
                    resident_reupload_bytes: 0,
                    suffix_actions: 0,
                    amortized: false,
                    retries: 0,
                    jobs: 0,
                    wall: SimDuration::ZERO,
                },
                errors,
            });
        }

        let Some(split) = self.loaded[id].batch_split else {
            // Shape does not admit amortization: full replay per element.
            // The inner replay() calls rewrite machine state freely, so
            // any warm anchor is stale afterwards.
            self.residency = None;
            let machine = self.env.machine().clone();
            let t0 = machine.now();
            let (mut jobs, mut retries) = (0u32, 0u32);
            for (k, io) in ios.iter_mut().enumerate() {
                if skip[k] {
                    continue;
                }
                match self.replay(id, io) {
                    Ok(report) => {
                        jobs += report.jobs;
                        retries += report.retries;
                    }
                    Err(e @ ReplayError::Preempted { .. }) => return Err(e),
                    Err(e) if isolate => {
                        errors.push((k, e));
                        // Discard the failed attempt's partial writes.
                        self.reset_outputs(id, io);
                    }
                    Err(e) => return Err(e),
                }
            }
            errors.sort_by_key(|(k, _)| *k);
            return Ok(IsolatedBatchReport {
                report: BatchReport {
                    elements: ios.len(),
                    prologue_actions: 0,
                    prologue_skipped: 0,
                    resident_reupload_bytes: 0,
                    suffix_actions: self.loaded[id].rec.actions.len(),
                    amortized: false,
                    retries,
                    jobs,
                    wall: machine.now() - t0,
                },
                errors,
            });
        };

        let machine = self.env.machine().clone();
        // t0 before the entry cost so `wall` covers everything the batch
        // call spent, matching the fallback path (which pays one entry per
        // inner replay()).
        let t0 = machine.now();
        machine.advance(self.env.replay_entry_cost());
        let end = self.loaded[id].rec.actions.len();
        let mut retries = 0u32;
        let mut jobs_total = 0u32;
        let first = skip.iter().position(|&s| !s).expect("a runnable element");

        // Cross-batch warm residency: when the previous successful warm
        // batch was this same recording and the dirty log proves (or its
        // hash fallback verifies) the prologue's backing memory unchanged,
        // elide the prologue instead of re-establishing state. Taking the
        // anchor here means any error return below leaves residency
        // dropped — only a fully successful batch re-arms it.
        let mut prologue_skipped = 0usize;
        let mut reupload_bytes = 0u64;
        let mut resident = false;
        if let Some(res) = self.valid_residency(id) {
            (prologue_skipped, reupload_bytes) = self.run_prologue_resident(id, split, &res)?;
            resident = true;
        }
        if !resident {
            // Prologue, once (it contains no Copy actions, so any io works).
            self.run_recovering(id, &mut ios[first], 0, split, &mut retries)?;
            // Resolve the per-input suffix once: the bounds / dead-upload /
            // payload checks paid here are what lets every warm re-run
            // charge only ACTION_DISPATCH_WARM per action. A resident batch
            // reuses the previous batch's resolution — same recording,
            // same warm machine — and pays nothing here.
            machine.advance(
                (costs::ACTION_DISPATCH - costs::ACTION_DISPATCH_WARM) * (end - split) as u64,
            );
        }
        // New residency anchor: everything written after this point
        // (element inputs, shader stores, external dirtiers) is visible to
        // the next batch's cleanliness queries. Stored only on success; a
        // mid-batch §5.4 reset bumps the epoch and invalidates it anyway.
        let mut anchor = Residency {
            id,
            epoch: machine.mem().dirty_epoch(),
            mark: machine.mem().dirty_mark(),
            access: None,
        };
        // Arm the GPU access log for the suffix: the next batch uses its
        // first-read/write sets to skip restoring dump bytes the suffix
        // provably overwrites before reading (see `gr_gpu::access`).
        machine.gpu_access().arm();
        // Warm-state invariant: the suffix must never grow or shrink the
        // mapped set (the verifier guarantees no map/unmap actions, this
        // guards the nano driver itself).
        let warm_pages = self.nano.phys_pages();

        'elements: for k in 0..ios.len() {
            if skip[k] {
                continue;
            }
            self.reset_outputs(id, &mut ios[k]);
            let mut attempt = 0u32;
            let jobs = loop {
                let scale = 1u64 << attempt;
                let io = &mut ios[k];
                let res = if attempt == 0 {
                    self.run_span(id, io, scale, split, end, 0, costs::ACTION_DISPATCH_WARM)
                } else {
                    // §5.4 inside a batch: reset, rebuild the tables,
                    // re-run the prologue to restore warm state, then
                    // retry this element's suffix.
                    self.iface.soft_reset(&machine)?;
                    self.nano.remap_all()?;
                    self.run_span(id, io, scale, 0, split, 0, costs::ACTION_DISPATCH)
                        .and_then(|_| {
                            self.run_span(id, io, scale, split, end, 0, costs::ACTION_DISPATCH_WARM)
                        })
                };
                match res {
                    Ok((jobs, _, _)) => break jobs,
                    Err(e) if e.is_recoverable() && attempt + 1 < MAX_ATTEMPTS => {
                        attempt += 1;
                        retries += 1;
                    }
                    Err(e) => {
                        let e = if e.is_recoverable() {
                            ReplayError::RecoveryFailed {
                                attempts: attempt + 1,
                                last: Box::new(e),
                            }
                        } else {
                            e
                        };
                        // Preemption revokes the whole replayer, never one
                        // element; everything else is attributed to the
                        // element when isolating.
                        if !isolate || matches!(e, ReplayError::Preempted { .. }) {
                            return Err(e);
                        }
                        errors.push((k, e));
                        // Discard the failed attempts' partial writes.
                        self.reset_outputs(id, &mut ios[k]);
                        if skip[k + 1..].iter().any(|&s| !s) {
                            // The failed suffix may have left the machine
                            // dirty: re-warm before the next element (the
                            // same reset + remap + prologue §5.4 recovery
                            // performs). A terminal re-warm failure is
                            // batch-scoped.
                            self.iface.soft_reset(&machine)?;
                            self.nano.remap_all()?;
                            self.run_recovering(id, &mut ios[k], 0, split, &mut retries)?;
                        }
                        continue 'elements;
                    }
                }
            };
            jobs_total += jobs;
            if self.nano.phys_pages() != warm_pages {
                return Err(ReplayError::Verify(
                    "batch suffix mutated the warm address space".into(),
                ));
            }
        }
        errors.sort_by_key(|(k, _)| *k);
        // Checkpoints read all mapped memory outside the logged paths;
        // keep the access sets only when none could have been taken.
        if self.checkpoint_every_jobs.is_none() {
            anchor.access = machine.gpu_access().snapshot();
        }
        self.residency = Some(anchor);
        Ok(IsolatedBatchReport {
            report: BatchReport {
                elements: ios.len(),
                prologue_actions: split,
                prologue_skipped,
                resident_reupload_bytes: reupload_bytes,
                suffix_actions: end - split,
                amortized: true,
                retries,
                jobs: jobs_total,
                wall: machine.now() - t0,
            },
            errors,
        })
    }

    /// Takes the stored residency if it is still valid for recording `id`:
    /// residency enabled, same recording, and the dirty-log epoch
    /// unchanged (no GPU reset or address-space switch since the anchor
    /// was taken — including §5.4 re-warms, which reset). Taking it means
    /// an invalid or consumed anchor never survives an error path.
    fn valid_residency(&mut self, id: usize) -> Option<Residency> {
        let res = self.residency.take()?;
        if !self.residency_enabled || res.id != id || !self.loaded[id].residency_safe {
            return None;
        }
        if self.env.machine().mem().dirty_epoch() != res.epoch {
            return None;
        }
        Some(res)
    }

    /// Runs the prologue `[0, split)` in resident mode: prologue actions
    /// whose backing memory is provably unchanged since `res.mark` are
    /// elided (registers, maps, and the table-base switch are warm — the
    /// suffix cannot touch them, exactly the inter-element invariant warm
    /// batches already rely on; `residency_safe` guarantees no prologue
    /// action after the first upload could observe memory). `Upload`s
    /// re-establish exactly what changed:
    ///
    /// * log-proven dirty intervals re-upload **only those subranges** of
    ///   the dump, rounded out to a 64-byte transfer line (the clean
    ///   remainder provably already equals the post-prologue bytes);
    /// * subranges the suffix overwrites before any read, and bytes a
    ///   later prologue upload covers, skip restoration — nothing can
    ///   observe them before their final content is re-established;
    /// * `Unknown` verdicts (log overflowed past the mark) fall back to a
    ///   content hash against the dump's load-time hash — a match keeps
    ///   the action elided, a mismatch (or an overlapped dump, whose
    ///   post-prologue content is not its own bytes) re-uploads the whole
    ///   dump.
    ///
    /// Returns `(fully_elided_actions, re_uploaded_bytes)`.
    #[allow(clippy::too_many_lines)]
    fn run_prologue_resident(
        &mut self,
        id: usize,
        split: usize,
        res: &Residency,
    ) -> Result<(usize, u64), ReplayError> {
        use gr_gpu::IntervalSet;

        /// DMA granularity for partial re-uploads.
        const LINE: u64 = 64;

        let machine = self.env.machine().clone();
        let mem = machine.mem().clone();
        let overhead = self.env.action_overhead();
        // Decide every annotated upload up front (reads only), then apply.
        // `restore` holds the `(start, end)` spans each planned upload
        // re-writes from its dump.
        let ranges = self.loaded[id].prologue_ranges.clone();
        let mut plans: Vec<(usize, u32, IntervalSet)> = Vec::new();
        for pr in &ranges {
            if self.loaded[id].dead_uploads.contains(&pr.index) {
                continue;
            }
            // Interval-precise verdicts: the log hands back exactly the
            // written subranges. `Unknown` is a property of the mark
            // (overflow/epoch), so one unknown chunk means the whole dump
            // is.
            let mut dirty = IntervalSet::new();
            let mut unknown = false;
            let mut off = 0u64;
            for (pa, plen) in self.nano.phys_ranges(pr.va, pr.len)? {
                let Some(intervals) = mem.dirty_intervals_since(res.mark, pa, plen) else {
                    unknown = true;
                    break;
                };
                for (s, e) in intervals {
                    // Map the physical interval back into the dump's VA
                    // span, round out to the transfer line, clip.
                    let va_s = ((pr.va + off + (s - pa)) / LINE * LINE).max(pr.va);
                    let va_e = ((pr.va + off + (e - pa)).div_ceil(LINE) * LINE).min(pr.va + pr.len);
                    dirty.insert(va_s, va_e);
                }
                off += plen as u64;
            }
            if unknown {
                if pr.hash_skippable {
                    // The log cannot answer (overflow): verify content
                    // against the dump's load-time hash, charging the read.
                    machine.advance(costs::xfer(pr.len, costs::HASH_BW));
                    let mut buf = vec![0u8; pr.len as usize];
                    self.nano.read_va(pr.va, &mut buf)?;
                    if fnv1a(&buf) != self.loaded[id].dump_hashes[pr.upload as usize] {
                        let mut whole = IntervalSet::new();
                        whole.insert(pr.va, pr.va + pr.len);
                        plans.push((pr.index, pr.upload, whole));
                    }
                } else {
                    let mut whole = IntervalSet::new();
                    whole.insert(pr.va, pr.va + pr.len);
                    plans.push((pr.index, pr.upload, whole));
                }
            } else if !dirty.is_empty() {
                // Suffix access-set elision: a dirty byte needs restoring
                // only when the suffix reads it before writing it, or
                // does not rewrite it at all (then the post-batch image
                // must still equal cold replay's). Bytes the suffix
                // overwrites before any read skip restoration outright.
                let mut restore = IntervalSet::new();
                for &(s, e) in dirty.intervals() {
                    match &res.access {
                        Some(acc) => {
                            for (ms, me) in acc.written.subtract_from(s, e) {
                                restore.insert(ms, me);
                            }
                            for (ms, me) in acc.first_reads.clip(s, e) {
                                restore.insert(ms, me);
                            }
                        }
                        None => restore.insert(s, e),
                    }
                }
                if !restore.is_empty() {
                    plans.push((pr.index, pr.upload, restore));
                }
            }
        }
        // Dead-write elision across the prologue: `residency_safe`
        // guarantees nothing but uploads follow the first upload, so a
        // byte covered by any *later* upload either gets rewritten by
        // that upload's plan or already holds its (clean/hash-proven)
        // bytes — exactly the post-prologue content. Earlier uploads need
        // not restore such bytes. (The v3d recorder re-dumps its
        // control-list page per job: 8 overlapping single-page uploads
        // collapse to 1.)
        {
            let mut cover = IntervalSet::new();
            let mut cover_at: HashMap<usize, IntervalSet> = HashMap::new();
            for pr in ranges.iter().rev() {
                if self.loaded[id].dead_uploads.contains(&pr.index) {
                    continue;
                }
                cover_at.insert(pr.index, cover.clone());
                cover.insert(pr.va, pr.va + pr.len);
            }
            for (idx, dump_idx, restore) in std::mem::take(&mut plans) {
                let cov = cover_at.get(&idx).expect("every plan is annotated");
                let mut remaining = IntervalSet::new();
                for &(s, e) in restore.intervals() {
                    for (rs, re) in cov.subtract_from(s, e) {
                        remaining.insert(rs, re);
                    }
                }
                if !remaining.is_empty() {
                    plans.push((idx, dump_idx, remaining));
                }
            }
            plans.sort_by_key(|(idx, _, _)| *idx);
        }
        // Apply: re-upload what changed, skip-charge everything else.
        let mut skipped = 0usize;
        let mut reuploaded = 0u64;
        let mut pending = plans.into_iter().peekable();
        for idx in 0..split {
            if self.loaded[id].dead_uploads.contains(&idx) {
                continue; // elided cold and warm alike
            }
            let Some((pidx, _, _)) = pending.peek() else {
                machine.advance(costs::ACTION_RESIDENT_SKIP);
                skipped += 1;
                continue;
            };
            if *pidx != idx {
                machine.advance(costs::ACTION_RESIDENT_SKIP);
                skipped += 1;
                continue;
            }
            let (_, dump_idx, restore) = pending.next().expect("peeked");
            if !self.lease.is_granted() {
                return Err(ReplayError::Preempted { index: idx });
            }
            machine.advance(overhead + costs::ACTION_DISPATCH);
            let loaded = &self.loaded[id];
            let dump = &loaded.rec.dumps[dump_idx as usize];
            let total: u64 = restore.intervals().iter().map(|(s, e)| e - s).sum();
            reuploaded += total;
            machine.advance(costs::xfer(total, costs::UPLOAD_BW));
            for &(s, e) in restore.intervals() {
                let start = (s - dump.va) as usize;
                self.nano
                    .write_va(s, &dump.bytes[start..start + (e - s) as usize])?;
            }
        }
        Ok((skipped, reuploaded))
    }

    /// Runs `[start, end)` with the standard §5.4 retry loop (reset +
    /// table rebuild between attempts), accumulating retries into `retries`.
    fn run_recovering(
        &mut self,
        id: usize,
        io: &mut ReplayIo,
        start: usize,
        end: usize,
        retries: &mut u32,
    ) -> Result<(), ReplayError> {
        let machine = self.env.machine().clone();
        let mut attempt = 0u32;
        loop {
            match self.run_span(
                id,
                io,
                1u64 << attempt,
                start,
                end,
                0,
                costs::ACTION_DISPATCH,
            ) {
                Ok(_) => return Ok(()),
                Err(e) if e.is_recoverable() && attempt + 1 < MAX_ATTEMPTS => {
                    attempt += 1;
                    *retries += 1;
                    self.iface.soft_reset(&machine)?;
                    self.nano.remap_all()?;
                }
                Err(e) if e.is_recoverable() => {
                    return Err(ReplayError::RecoveryFailed {
                        attempts: attempt + 1,
                        last: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Checks `io`'s shape against recording `id` without touching the GPU.
    fn validate_io(&self, id: usize, io: &ReplayIo) -> Result<(), ReplayError> {
        let Some(loaded) = self.loaded.get(id) else {
            return Err(ReplayError::BadRecording(id));
        };
        if io.inputs.len() != loaded.rec.inputs.len() {
            return Err(ReplayError::Io(format!(
                "recording takes {} inputs, {} given",
                loaded.rec.inputs.len(),
                io.inputs.len()
            )));
        }
        for (i, (buf, slot)) in io.inputs.iter().zip(&loaded.rec.inputs).enumerate() {
            if buf.len() != slot.len as usize {
                return Err(ReplayError::Io(format!(
                    "input {i} is {} bytes, slot wants {}",
                    buf.len(),
                    slot.len
                )));
            }
        }
        Ok(())
    }

    fn reset_outputs(&self, id: usize, io: &mut ReplayIo) {
        io.outputs = self.loaded[id]
            .rec
            .outputs
            .iter()
            .map(|s| vec![0u8; s.len as usize])
            .collect();
    }

    /// Resumes a preempted replay from the most recent checkpoint (or
    /// fails if none was taken).
    ///
    /// # Errors
    ///
    /// Propagates replay errors; `Verify` if no checkpoint exists.
    pub fn resume(&mut self, id: usize, io: &mut ReplayIo) -> Result<ReplayReport, ReplayError> {
        self.residency = None;
        let machine = self.env.machine().clone();
        let Some(cp) = self.checkpoint.take() else {
            return Err(ReplayError::Verify("no checkpoint to resume from".into()));
        };
        let t0 = machine.now();
        // Restore: reset, re-point tables, restore registers and memory.
        self.iface.soft_reset(&machine)?;
        self.nano.remap_all()?;
        self.nano.set_pgtable_base();
        let mut regs: Vec<(u32, u32)> = cp.reg_state.iter().map(|(r, v)| (*r, *v)).collect();
        regs.sort_unstable();
        for (reg, val) in regs {
            if !self.iface.is_kick_reg(reg) {
                machine.gpu_write32(reg, val);
            }
        }
        let total = cp.memory.iter().map(|(_, b)| b.len() as u64).sum::<u64>();
        machine.advance(costs::xfer(total, costs::UPLOAD_BW));
        for (va, bytes) in &cp.memory {
            self.nano.write_va(*va, bytes)?;
        }
        let start = cp.action_idx;
        let jobs0 = cp.jobs;
        self.checkpoint = Some(cp);
        let end = self.loaded[id].rec.actions.len();
        let (jobs, checkpoints, startup) =
            self.run_span(id, io, 1, start, end, jobs0, costs::ACTION_DISPATCH)?;
        Ok(ReplayReport {
            actions: self.loaded[id].rec.actions.len() - start,
            retries: 0,
            wall: machine.now() - t0,
            jobs,
            checkpoints,
            startup,
        })
    }

    /// Interprets actions `[start, end)` of recording `id`, charging
    /// `dispatch` per action ([`costs::ACTION_DISPATCH`] for cold
    /// interpretation, [`costs::ACTION_DISPATCH_WARM`] for a batch suffix
    /// that was resolved once at batch start).
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn run_span(
        &mut self,
        id: usize,
        io: &mut ReplayIo,
        delay_scale: u64,
        start: usize,
        end: usize,
        jobs0: u32,
        dispatch: SimDuration,
    ) -> Result<(u32, u32, SimDuration), ReplayError> {
        let machine = self.env.machine().clone();
        let overhead = self.env.action_overhead();
        let irq_overhead = self.env.irq_wait_overhead();
        let mut jobs = jobs0;
        let mut checkpoints = 0u32;
        let mut prev_at: Option<SimTime> = None;
        let run_start = machine.now();
        let mut startup: Option<SimDuration> = None;

        for idx in start..end {
            if !self.lease.is_granted() {
                return Err(ReplayError::Preempted { index: idx });
            }
            if self.loaded[id].dead_uploads.contains(&idx) {
                // Load-time elision: this upload's bytes are provably
                // overwritten before anything can observe them.
                continue;
            }
            let rec = &self.loaded[id].rec;
            let ta = &rec.actions[idx];
            // §4.5 pacing: keep at least the recorded minimum interval
            // (scaled up on recovery attempts, §5.4).
            if ta.min_interval_ns > 0 {
                if let Some(p) = prev_at {
                    machine
                        .clock()
                        .advance_to(p + SimDuration::from_nanos(ta.min_interval_ns * delay_scale));
                }
            }
            machine.advance(overhead + dispatch);

            let action = ta.action.clone();
            match action {
                Action::RegReadOnce {
                    reg,
                    expect,
                    ignore,
                } => {
                    let got = machine.gpu_read32(reg);
                    if !ignore && got != expect {
                        return Err(ReplayError::Diverged {
                            index: idx,
                            reg,
                            reg_name: self.iface.reg_name(reg),
                            expect,
                            got,
                        });
                    }
                }
                Action::RegReadWait {
                    reg,
                    mask,
                    val,
                    timeout_ns,
                } => {
                    let timeout = SimDuration::from_nanos(timeout_ns * delay_scale);
                    let (got, _) =
                        machine.poll_reg(reg, mask, val, SimDuration::from_micros(2), timeout);
                    if got & mask != val {
                        return Err(ReplayError::PollTimeout {
                            index: idx,
                            reg,
                            reg_name: self.iface.reg_name(reg),
                        });
                    }
                }
                Action::RegWrite { reg, mask, val } => {
                    if mask == u32::MAX {
                        machine.gpu_write32(reg, val);
                        self.reg_state.insert(reg, val);
                    } else {
                        let old = machine.gpu_read32(reg);
                        let new = (old & !mask) | (val & mask);
                        machine.gpu_write32(reg, new);
                        self.reg_state.insert(reg, new);
                    }
                }
                Action::SetGpuPgtable => self.nano.set_pgtable_base(),
                Action::MapGpuMem { va, pte_flags } => self.nano.map(va, &pte_flags)?,
                Action::UnmapGpuMem { va } => self.nano.unmap(va)?,
                Action::Upload { dump_idx } => {
                    let rec = &self.loaded[id].rec;
                    let dump = &rec.dumps[dump_idx as usize];
                    machine
                        .gpu_access()
                        .note_write(dump.va, dump.bytes.len() as u64);
                    machine.advance(costs::xfer(dump.bytes.len() as u64, costs::UPLOAD_BW));
                    if gr_gpu::fastpath::enabled() {
                        // Zero-copy: upload straight from the staged
                        // recording instead of cloning megabytes of dump
                        // per replay.
                        self.nano.write_va(dump.va, &dump.bytes)?;
                    } else {
                        let (va, bytes) = (dump.va, dump.bytes.clone());
                        self.nano.write_va(va, &bytes)?;
                    }
                }
                Action::CopyToGpu { slot } => {
                    let rec = &self.loaded[id].rec;
                    let va = rec.inputs[slot as usize].va;
                    machine
                        .gpu_access()
                        .note_write(va, io.inputs[slot as usize].len() as u64);
                    machine.advance(costs::xfer(
                        io.inputs[slot as usize].len() as u64,
                        costs::UPLOAD_BW,
                    ));
                    if gr_gpu::fastpath::enabled() {
                        self.nano.write_va(va, &io.inputs[slot as usize])?;
                    } else {
                        let data = io.inputs[slot as usize].clone();
                        self.nano.write_va(va, &data)?;
                    }
                }
                Action::CopyFromGpu { slot } => {
                    let rec = &self.loaded[id].rec;
                    let va = rec.outputs[slot as usize].va;
                    machine
                        .gpu_access()
                        .note_read(va, rec.outputs[slot as usize].len as u64);
                    let mut buf = std::mem::take(&mut io.outputs[slot as usize]);
                    machine.advance(costs::xfer(buf.len() as u64, costs::UPLOAD_BW));
                    self.nano.read_va(va, &mut buf)?;
                    io.outputs[slot as usize] = buf;
                }
                Action::WaitIrq { line, timeout_ns } => {
                    startup.get_or_insert_with(|| machine.now() - run_start);
                    machine.advance(irq_overhead);
                    let timeout = SimDuration::from_nanos(timeout_ns * delay_scale);
                    match machine.wait_irq(IrqLine(line), timeout) {
                        WaitOutcome::Irq => {
                            jobs += 1;
                            if let Some(every) = self.checkpoint_every_jobs {
                                if jobs % every == 0 {
                                    self.take_checkpoint(idx + 1, jobs);
                                    checkpoints += 1;
                                }
                            }
                        }
                        WaitOutcome::Timeout => {
                            return Err(ReplayError::IrqTimeout { index: idx, line })
                        }
                    }
                }
                Action::IrqContext { .. } => {
                    machine.advance(costs::IRQ_CTX_SWITCH);
                }
            }
            prev_at = Some(machine.now());
        }
        let startup = startup.unwrap_or_else(|| machine.now() - run_start);
        Ok((jobs, checkpoints, startup))
    }

    fn take_checkpoint(&mut self, action_idx: usize, jobs: u32) {
        let machine = self.env.machine().clone();
        let memory = self.nano.snapshot_memory();
        let total: u64 = memory.iter().map(|(_, b)| b.len() as u64).sum();
        machine.advance(costs::xfer(total, costs::CHECKPOINT_BW));
        self.checkpoint = Some(Checkpoint {
            action_idx,
            jobs,
            memory,
            reg_state: self.reg_state.clone(),
        });
    }

    /// Cleanup (§5 API #1): resets the GPU and releases all memory.
    pub fn cleanup(self) {
        let _ = self.iface.soft_reset(self.env.machine());
        self.nano.release();
    }
}
