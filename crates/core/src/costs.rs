//! Modeled replayer costs — why GR startup is "register accesses and GPU
//! memory copy" instead of seconds of stack initialization.

use gr_sim::SimDuration;

/// Interpreter dispatch per action.
pub const ACTION_DISPATCH: SimDuration = SimDuration::from_nanos(300);

/// Interpreter dispatch per action on a pre-resolved batch suffix
/// (`replay_batch`): bounds checks, dead-upload lookups, and payload
/// validation were done once when the batch started, so warm re-runs are
/// a branch-light sweep over resolved actions. The difference to
/// [`ACTION_DISPATCH`] is charged once per suffix action at batch start.
pub const ACTION_DISPATCH_WARM: SimDuration = SimDuration::from_nanos(100);

/// Bookkeeping charge for a prologue action elided by cross-batch warm
/// residency: the replayer still walks the resolved action list and
/// consults the dirty log, but performs no register access or transfer.
pub const ACTION_RESIDENT_SKIP: SimDuration = SimDuration::from_nanos(20);

/// Hashing throughput for the residency hash fallback (verifying a dump's
/// backing memory is byte-identical when the dirty log overflowed),
/// bytes/sec. Faster than an upload — it reads DRAM once and does ALU
/// work — but far from free, which is why the log is the primary proof.
pub const HASH_BW: f64 = 8.0e9;

/// Static verification per action (§5.1).
pub const VERIFY_PER_ACTION: SimDuration = SimDuration::from_nanos(150);

/// Reading the recording from storage (eMMC-class flash), bytes/sec.
pub const STORAGE_BW: f64 = 120e6;

/// GRZ decompression throughput, bytes/sec.
pub const DECOMPRESS_BW: f64 = 300e6;

/// Copying dumps into GPU memory, bytes/sec.
pub const UPLOAD_BW: f64 = 2.0e9;

/// Rebuilding one PTE.
pub const MAP_PER_PAGE: SimDuration = SimDuration::from_nanos(500);

/// Interrupt-context switch (enter or eret).
pub const IRQ_CTX_SWITCH: SimDuration = SimDuration::from_nanos(800);

/// Checkpoint copy bandwidth (GPU memory + registers → host), bytes/sec.
pub const CHECKPOINT_BW: f64 = 0.4e9;

/// Duration of moving `bytes` at `bw` bytes/sec.
pub fn xfer(bytes: u64, bw: f64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 / bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_times_scale() {
        assert_eq!(xfer(120_000_000, STORAGE_BW), SimDuration::from_secs(1));
        assert!(xfer(1 << 20, UPLOAD_BW) < SimDuration::from_millis(1));
    }
}
