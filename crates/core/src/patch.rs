//! Cross-SKU recording patching (§6.4).
//!
//! A recording from one Mali SKU can replay on another SKU of the family
//! after three fixes: (1) re-arranging page-table permission bits
//! (G31/G52 use an LPAE-style order, G71 the standard one); (2) flipping
//! the read-allocate bit in the translation configuration register; (3)
//! optionally rewriting the per-job core-affinity register so the job
//! spreads over all of the target's shader cores. The patch also rebinds
//! the GPU-ID expectation the recording asserts.

use gr_gpu::mali::pgtable::convert_flag_bits;
use gr_gpu::mali::regs as mr;
use gr_gpu::sku::{GpuFamilyKind, GpuSku};
use gr_recording::{Action, Recording};

use crate::error::ReplayError;

/// What to patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchOptions {
    /// Re-encode page-table permission bits for the target's layout.
    pub pgtable_format: bool,
    /// Fix the MMU translation-config register value.
    pub mmu_config: bool,
    /// Rewrite job core-affinity masks to the target's full core set.
    pub core_affinity: bool,
}

impl PatchOptions {
    /// Everything — full-speed replay on the target.
    pub fn full() -> PatchOptions {
        PatchOptions {
            pgtable_format: true,
            mmu_config: true,
            core_affinity: true,
        }
    }

    /// Page tables + MMU config only (the Fig. 9 mid bar: replay works
    /// but uses only the recorded affinity's cores).
    pub fn without_affinity() -> PatchOptions {
        PatchOptions {
            pgtable_format: true,
            mmu_config: true,
            core_affinity: false,
        }
    }
}

/// Produces a patched copy of `rec` retargeted from `from` to `to`.
///
/// # Errors
///
/// Returns [`ReplayError::Verify`] if either SKU is not Mali-family or
/// the recording does not match `from`.
pub fn patch_recording(
    rec: &Recording,
    from: &GpuSku,
    to: &'static GpuSku,
    opts: PatchOptions,
) -> Result<Recording, ReplayError> {
    if from.family != GpuFamilyKind::Mali || to.family != GpuFamilyKind::Mali {
        return Err(ReplayError::Verify(
            "cross-SKU patching is a Mali-family mechanism".into(),
        ));
    }
    if rec.meta.gpu_id != from.gpu_id {
        return Err(ReplayError::Verify(format!(
            "recording was made on gpu_id {:#x}, not {:#x}",
            rec.meta.gpu_id, from.gpu_id
        )));
    }
    let mut out = rec.clone();
    out.meta.gpu_id = to.gpu_id;
    out.meta.sku_name = to.name.to_string();
    let target_affinity = (1u32 << to.cores) - 1;

    for ta in &mut out.actions {
        match &mut ta.action {
            Action::RegReadOnce { reg, expect, .. } if *reg == mr::GPU_ID => {
                *expect = to.gpu_id;
            }
            Action::RegReadOnce { reg, expect, .. } if *reg == mr::SHADER_PRESENT => {
                *expect = target_affinity;
            }
            Action::RegWrite { reg, val, .. } if *reg == mr::SHADER_PWRON && opts.core_affinity => {
                *val = target_affinity;
            }
            Action::RegReadWait { reg, mask, val, .. }
                if *reg == mr::SHADER_READY && opts.core_affinity =>
            {
                *mask = target_affinity;
                *val = target_affinity;
            }
            Action::RegWrite { reg, val, .. } if *reg == mr::AS0_TRANSCFG && opts.mmu_config => {
                if to.requires_rd_alloc {
                    *val |= mr::TRANSCFG_RD_ALLOC;
                } else {
                    *val &= !mr::TRANSCFG_RD_ALLOC;
                }
            }
            Action::RegWrite { reg, val, .. }
                if (*reg == mr::JS0_AFFINITY || *reg == mr::JS0_AFFINITY_NEXT)
                    && opts.core_affinity =>
            {
                *val = target_affinity;
            }
            Action::MapGpuMem { pte_flags, .. } if opts.pgtable_format => {
                for bits in pte_flags.iter_mut() {
                    *bits =
                        convert_flag_bits(from.pte_format, to.pte_format, u64::from(*bits)) as u16;
                }
            }
            _ => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::sku::{MALI_G31, MALI_G71, V3D_RPI4};
    use gr_gpu::PteFormat;
    use gr_recording::{RecordingMeta, TimedAction};

    fn g31_rec() -> Recording {
        let mut rec = Recording::new(RecordingMeta::new("mali", "G31", MALI_G31.gpu_id, "t"));
        rec.actions = vec![
            TimedAction::immediate(Action::RegReadOnce {
                reg: mr::GPU_ID,
                expect: MALI_G31.gpu_id,
                ignore: false,
            }),
            TimedAction::immediate(Action::RegWrite {
                reg: mr::AS0_TRANSCFG,
                mask: u32::MAX,
                val: mr::TRANSCFG_ENABLE,
            }),
            TimedAction::immediate(Action::MapGpuMem {
                va: 0x10_0000,
                pte_flags: vec![gr_gpu::mali::pgtable::encode_flags(
                    PteFormat::MaliLpae,
                    gr_gpu::mali::pgtable::PteFlags::rw_cpu(),
                ) as u16],
            }),
            TimedAction::immediate(Action::RegWrite {
                reg: mr::JS0_AFFINITY,
                mask: u32::MAX,
                val: 0x1,
            }),
        ];
        rec
    }

    #[test]
    fn full_patch_rewrites_everything() {
        let rec = g31_rec();
        let patched = patch_recording(&rec, &MALI_G31, &MALI_G71, PatchOptions::full()).unwrap();
        assert_eq!(patched.meta.gpu_id, MALI_G71.gpu_id);
        assert!(matches!(
            patched.actions[0].action,
            Action::RegReadOnce { expect, .. } if expect == MALI_G71.gpu_id
        ));
        assert!(matches!(
            patched.actions[1].action,
            Action::RegWrite { val, .. } if val & mr::TRANSCFG_RD_ALLOC != 0
        ));
        let Action::MapGpuMem { pte_flags, .. } = &patched.actions[2].action else {
            panic!()
        };
        let std_rw = gr_gpu::mali::pgtable::encode_flags(
            PteFormat::MaliStandard,
            gr_gpu::mali::pgtable::PteFlags::rw_cpu(),
        ) as u16;
        assert_eq!(pte_flags[0], std_rw, "permission bits re-arranged");
        assert!(
            matches!(
                patched.actions[3].action,
                Action::RegWrite { val: 0xFF, .. }
            ),
            "affinity widened to 8 cores"
        );
    }

    #[test]
    fn partial_patch_keeps_recorded_affinity() {
        let rec = g31_rec();
        let patched =
            patch_recording(&rec, &MALI_G31, &MALI_G71, PatchOptions::without_affinity()).unwrap();
        assert!(matches!(
            patched.actions[3].action,
            Action::RegWrite { val: 0x1, .. }
        ));
    }

    #[test]
    fn rejects_non_mali_and_mismatched_source() {
        let rec = g31_rec();
        assert!(patch_recording(&rec, &V3D_RPI4, &MALI_G71, PatchOptions::full()).is_err());
        assert!(patch_recording(&rec, &MALI_G71, &MALI_G71, PatchOptions::full()).is_err());
    }
}
