//! Replay errors.
//!
//! §5.4: when the replayer cannot recover it "seeks to emit meaningful
//! errors as the full driver does: it reports the failed action and the
//! associated source locations in the full driver" — hence the register
//! names in the `Display` output.

use gr_recording::ContainerError;

/// Why a load or replay failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The recording container was malformed or tampered with.
    Container(ContainerError),
    /// The static verifier rejected the recording (§5.1).
    Verify(String),
    /// A `RegReadOnce` observed a value different from the record run —
    /// the GPU state diverged.
    Diverged {
        /// Failing action index.
        index: usize,
        /// Register offset.
        reg: u32,
        /// Register name (driver source location analogue).
        reg_name: &'static str,
        /// Expected value.
        expect: u32,
        /// Observed value.
        got: u32,
    },
    /// A `RegReadWait` poll never matched within its timeout.
    PollTimeout {
        /// Failing action index.
        index: usize,
        /// Register offset.
        reg: u32,
        /// Register name.
        reg_name: &'static str,
    },
    /// A `WaitIrq` timed out.
    IrqTimeout {
        /// Failing action index.
        index: usize,
        /// IRQ line.
        line: u32,
    },
    /// The OS revoked the GPU lease mid-replay (§5.3 preemption).
    Preempted {
        /// Action index at which the preemption was observed.
        index: usize,
    },
    /// App-supplied I/O did not match the recording's slots.
    Io(String),
    /// Environment/bring-up failure.
    Env(String),
    /// Physical memory exhausted while loading.
    OutOfMemory,
    /// Re-execution recovery gave up (§5.4 persistent failure).
    RecoveryFailed {
        /// Attempts made.
        attempts: u32,
        /// The last underlying error.
        last: Box<ReplayError>,
    },
    /// Unknown recording id.
    BadRecording(usize),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Container(e) => write!(f, "recording container: {e}"),
            ReplayError::Verify(msg) => write!(f, "recording rejected by verifier: {msg}"),
            ReplayError::Diverged { index, reg, reg_name, expect, got } => write!(
                f,
                "state divergence at action {index}: {reg_name} ({reg:#x}) expected {expect:#x}, got {got:#x}"
            ),
            ReplayError::PollTimeout { index, reg, reg_name } => {
                write!(f, "poll timeout at action {index} on {reg_name} ({reg:#x})")
            }
            ReplayError::IrqTimeout { index, line } => {
                write!(f, "irq timeout at action {index} on line {line}")
            }
            ReplayError::Preempted { index } => write!(f, "preempted at action {index}"),
            ReplayError::Io(msg) => write!(f, "replay i/o: {msg}"),
            ReplayError::Env(msg) => write!(f, "environment: {msg}"),
            ReplayError::OutOfMemory => write!(f, "out of physical memory"),
            ReplayError::RecoveryFailed { attempts, last } => {
                write!(f, "recovery failed after {attempts} attempts: {last}")
            }
            ReplayError::BadRecording(id) => write!(f, "unknown recording id {id}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<ContainerError> for ReplayError {
    fn from(e: ContainerError) -> Self {
        ReplayError::Container(e)
    }
}

impl ReplayError {
    /// `true` for transient failures §5.4 re-execution may overcome.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            ReplayError::Diverged { .. }
                | ReplayError::PollTimeout { .. }
                | ReplayError::IrqTimeout { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_registers() {
        let e = ReplayError::Diverged {
            index: 7,
            reg: 0x2024,
            reg_name: "JS0_STATUS",
            expect: 2,
            got: 3,
        };
        let s = e.to_string();
        assert!(s.contains("JS0_STATUS") && s.contains("action 7"));
        assert!(e.is_recoverable());
        assert!(!ReplayError::OutOfMemory.is_recoverable());
        assert!(!ReplayError::Preempted { index: 0 }.is_recoverable());
    }
}
