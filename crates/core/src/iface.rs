//! Family interface knowledge (paper Table 1).
//!
//! Everything the nano driver knows about a GPU family: which register
//! offsets exist (the §5.1 whitelist), which register points at the page
//! tables, how to insert physical addresses into opaque PTE flag bits,
//! which writes kick jobs, and how to reset. This is the "no more than 1K
//! SLoC per GPU family" knowledge the paper extracts from the open driver.

use gr_gpu::machine::Machine;
use gr_gpu::sku::GpuFamilyKind;
use gr_gpu::{mali, v3d};
use gr_soc::PAGE_SIZE;

use crate::error::ReplayError;

const MALI_PA_MASK: u64 = 0x0000_FFFF_FFFF_F000;
const MALI_L1_SHIFT: u32 = 21;
const MALI_L2_SHIFT: u32 = 12;
const MALI_IDX_MASK: u64 = 0x1FF;

/// Per-family knowledge table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NanoIface {
    /// Mali-like: two-level tables, three IRQ lines, JS job slot.
    Mali,
    /// v3d-like: flat table, one IRQ line, control-list window.
    V3d,
}

impl NanoIface {
    /// Selects the interface for a family.
    pub fn for_family(family: GpuFamilyKind) -> NanoIface {
        match family {
            GpuFamilyKind::Mali => NanoIface::Mali,
            GpuFamilyKind::V3d => NanoIface::V3d,
        }
    }

    /// Parses the family string a recording carries.
    pub fn from_name(name: &str) -> Option<NanoIface> {
        match name {
            "mali" => Some(NanoIface::Mali),
            "v3d" => Some(NanoIface::V3d),
            _ => None,
        }
    }

    /// §5.1 whitelist: is `reg` an architecturally defined register?
    pub fn is_known_reg(self, reg: u32) -> bool {
        match self {
            NanoIface::Mali => mali::regs::is_known_reg(reg),
            NanoIface::V3d => v3d::regs::is_known_reg(reg),
        }
    }

    /// Human-readable register name for error reports.
    pub fn reg_name(self, reg: u32) -> &'static str {
        match self {
            NanoIface::Mali => mali::regs::reg_name(reg),
            NanoIface::V3d => v3d::regs::reg_name(reg),
        }
    }

    /// Registers whose write starts a job (never blindly re-issued when
    /// restoring register state from a checkpoint).
    pub fn is_kick_reg(self, reg: u32) -> bool {
        match self {
            NanoIface::Mali => {
                reg == mali::regs::JS0_COMMAND || reg == mali::regs::JS0_COMMAND_NEXT
            }
            NanoIface::V3d => reg == v3d::regs::CT0EA_LO,
        }
    }

    /// Highest IRQ line the family uses.
    pub fn max_irq_line(self) -> u32 {
        match self {
            NanoIface::Mali => 2,
            NanoIface::V3d => 0,
        }
    }

    /// Implements the `SetGPUPgtable` action: points the GPU at the
    /// replayer's own table base.
    pub fn set_pgtable_base(self, machine: &Machine, root_pa: u64) {
        match self {
            NanoIface::Mali => {
                machine.gpu_write32(mali::regs::AS0_TRANSTAB_LO, root_pa as u32);
                machine.gpu_write32(mali::regs::AS0_TRANSTAB_HI, (root_pa >> 32) as u32);
            }
            NanoIface::V3d => {
                machine.gpu_write32(v3d::regs::MMU_PT_BASE_LO, root_pa as u32);
                machine.gpu_write32(v3d::regs::MMU_PT_BASE_HI, (root_pa >> 32) as u32);
            }
        }
    }

    /// Registers whose replayed *write* can retarget translation or reset
    /// device state: table base, MMU/address-space control, and global
    /// command registers. A batch suffix containing one is not warm-safe —
    /// sequential replay would re-establish the machine state from the
    /// prologue each time, a warm batch would not (see
    /// `VerifyReport::batch_split`).
    pub fn is_batch_hazard_reg(self, reg: u32) -> bool {
        match self {
            NanoIface::Mali => matches!(
                reg,
                mali::regs::GPU_COMMAND
                    | mali::regs::AS0_COMMAND
                    | mali::regs::AS0_TRANSTAB_LO
                    | mali::regs::AS0_TRANSTAB_HI
                    | mali::regs::AS0_TRANSCFG
            ),
            NanoIface::V3d => matches!(
                reg,
                v3d::regs::CTL_RESET
                    | v3d::regs::MMU_CTRL
                    | v3d::regs::MMU_PT_BASE_LO
                    | v3d::regs::MMU_PT_BASE_HI
            ),
        }
    }

    /// Issues the family's architectural TLB shootdown: Mali's
    /// `AS_CMD_FLUSH`, or a v3d `MMU_CTRL` write with the self-clearing
    /// TLB-clear bit. Required after an unmap so no stale translation can
    /// be served once the VA (or its backing frame) is recycled.
    pub fn tlb_shootdown(self, machine: &Machine) {
        match self {
            NanoIface::Mali => {
                machine.gpu_write32(mali::regs::AS0_COMMAND, mali::regs::AS_CMD_FLUSH);
            }
            NanoIface::V3d => {
                let ctrl = machine.gpu_read32(v3d::regs::MMU_CTRL);
                machine.gpu_write32(v3d::regs::MMU_CTRL, ctrl | v3d::regs::MMU_CTRL_TLB_CLEAR);
            }
        }
    }

    /// Issues a GPU soft reset and waits for it (the §5.4 recovery and
    /// §5.3 handoff primitive).
    pub fn soft_reset(self, machine: &Machine) -> Result<(), ReplayError> {
        let poll = |reg: u32, mask: u32, want: u32| -> Result<(), ReplayError> {
            let (v, _) = machine.poll_reg(
                reg,
                mask,
                want,
                gr_sim::SimDuration::from_micros(2),
                gr_sim::SimDuration::from_millis(50),
            );
            if v & mask == want {
                Ok(())
            } else {
                Err(ReplayError::Env("reset timeout".into()))
            }
        };
        match self {
            NanoIface::Mali => {
                machine.gpu_write32(mali::regs::GPU_COMMAND, mali::regs::GPU_CMD_SOFT_RESET);
                poll(
                    mali::regs::GPU_IRQ_RAWSTAT,
                    mali::regs::GPU_IRQ_RESET_COMPLETED,
                    mali::regs::GPU_IRQ_RESET_COMPLETED,
                )?;
                machine.gpu_write32(
                    mali::regs::GPU_IRQ_CLEAR,
                    mali::regs::GPU_IRQ_RESET_COMPLETED,
                );
            }
            NanoIface::V3d => {
                machine.gpu_write32(v3d::regs::CTL_RESET, 1);
                poll(v3d::regs::CT0CS, v3d::regs::CS_RESETTING, 0)?;
            }
        }
        Ok(())
    }

    /// Allocates the family's (empty) top-level page table, returning
    /// `(root_pa, frames_used)`.
    pub fn alloc_root(self, machine: &Machine) -> Result<(u64, Vec<u64>), ReplayError> {
        let mut frames = machine.frames().lock();
        match self {
            NanoIface::Mali => {
                let root = frames
                    .alloc_zeroed(machine.mem())
                    .map_err(|_| ReplayError::OutOfMemory)?
                    .ok_or(ReplayError::OutOfMemory)?;
                Ok((root, vec![root]))
            }
            NanoIface::V3d => {
                let base = frames
                    .alloc_contig(v3d::pgtable::PT_PAGES)
                    .ok_or(ReplayError::OutOfMemory)?;
                for i in 0..v3d::pgtable::PT_PAGES {
                    machine
                        .mem()
                        .fill(base + (i * PAGE_SIZE) as u64, PAGE_SIZE, 0)
                        .map_err(|_| ReplayError::OutOfMemory)?;
                }
                let pages = (0..v3d::pgtable::PT_PAGES)
                    .map(|i| base + (i * PAGE_SIZE) as u64)
                    .collect();
                Ok((base, pages))
            }
        }
    }

    /// Writes a PTE mapping `va → pa` with the *opaque* recorded flag
    /// bits. The nano driver only knows where the PA field lives (Table 1
    /// "Pgtables" knowledge); the permission bits pass through untouched.
    ///
    /// For Mali this may allocate an L2 table frame, returned for
    /// bookkeeping.
    pub fn map_page_raw(
        self,
        machine: &Machine,
        root_pa: u64,
        va: u64,
        pa: u64,
        raw_flags: u16,
    ) -> Result<Option<u64>, ReplayError> {
        let mem = machine.mem();
        match self {
            NanoIface::Mali => {
                let l1_pa = root_pa + ((va >> MALI_L1_SHIFT) & MALI_IDX_MASK) * 8;
                let l1 = mem.read_u64(l1_pa).map_err(|_| ReplayError::OutOfMemory)?;
                let (l2_pa, new_frame) = if l1 & 1 != 0 {
                    (l1 & MALI_PA_MASK, None)
                } else {
                    let f = machine
                        .frames()
                        .lock()
                        .alloc_zeroed(mem)
                        .map_err(|_| ReplayError::OutOfMemory)?
                        .ok_or(ReplayError::OutOfMemory)?;
                    mem.write_u64(l1_pa, (f & MALI_PA_MASK) | 1)
                        .map_err(|_| ReplayError::OutOfMemory)?;
                    (f, Some(f))
                };
                let pte_pa = l2_pa + ((va >> MALI_L2_SHIFT) & MALI_IDX_MASK) * 8;
                mem.write_u64(pte_pa, (pa & MALI_PA_MASK) | u64::from(raw_flags))
                    .map_err(|_| ReplayError::OutOfMemory)?;
                Ok(new_frame)
            }
            NanoIface::V3d => {
                let pte_pa = root_pa + (va >> 12) * 4;
                let pte = (((pa >> 12) as u32) << 4) | u32::from(raw_flags & 0xF);
                mem.write_u32(pte_pa, pte)
                    .map_err(|_| ReplayError::OutOfMemory)?;
                Ok(None)
            }
        }
    }

    /// Clears the PTE at `va`.
    pub fn unmap_page_raw(self, machine: &Machine, root_pa: u64, va: u64) {
        let mem = machine.mem();
        match self {
            NanoIface::Mali => {
                if let Ok(l1) = mem.read_u64(root_pa + ((va >> MALI_L1_SHIFT) & MALI_IDX_MASK) * 8)
                {
                    if l1 & 1 != 0 {
                        let pte_pa =
                            (l1 & MALI_PA_MASK) + ((va >> MALI_L2_SHIFT) & MALI_IDX_MASK) * 8;
                        let _ = mem.write_u64(pte_pa, 0);
                    }
                }
            }
            NanoIface::V3d => {
                let _ = mem.write_u32(root_pa + (va >> 12) * 4, 0);
            }
        }
    }

    /// The VA-space limit of the family.
    pub fn va_limit(self) -> u64 {
        match self {
            NanoIface::Mali => mali::pgtable::VA_SPACE_SIZE,
            NanoIface::V3d => v3d::pgtable::VA_SPACE_SIZE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::sku::{MALI_G71, V3D_RPI4};

    #[test]
    fn whitelists_differ_by_family() {
        let m = NanoIface::Mali;
        let v = NanoIface::V3d;
        assert!(m.is_known_reg(mali::regs::JS0_COMMAND));
        assert!(!v.is_known_reg(mali::regs::JS0_COMMAND));
        assert!(v.is_known_reg(v3d::regs::CT0EA_LO));
        assert!(m.is_kick_reg(mali::regs::JS0_COMMAND));
        assert!(v.is_kick_reg(v3d::regs::CT0EA_LO));
        assert!(!m.is_kick_reg(mali::regs::GPU_IRQ_MASK));
        assert_eq!(NanoIface::from_name("mali"), Some(NanoIface::Mali));
        assert_eq!(NanoIface::from_name("v3d"), Some(NanoIface::V3d));
        assert_eq!(NanoIface::from_name("adreno"), None);
    }

    #[test]
    fn raw_mapping_preserves_opaque_flags_mali() {
        let machine = Machine::new(&MALI_G71, 1);
        let iface = NanoIface::Mali;
        let (root, _) = iface.alloc_root(&machine).unwrap();
        let frame = machine.frames().lock().alloc().unwrap();
        // Map with raw bits 0xF (whatever they mean) and read back through
        // the device's own walker in standard format.
        iface
            .map_page_raw(&machine, root, 0x40_0000, frame, 0xF)
            .unwrap();
        let (pa, flags) = gr_gpu::mali::pgtable::translate(
            machine.mem(),
            gr_gpu::PteFormat::MaliStandard,
            root,
            0x40_0000,
        )
        .unwrap();
        assert_eq!(pa, frame);
        assert!(flags.valid && flags.write && flags.exec && flags.cpu_mapped);
        iface.unmap_page_raw(&machine, root, 0x40_0000);
        assert!(gr_gpu::mali::pgtable::translate(
            machine.mem(),
            gr_gpu::PteFormat::MaliStandard,
            root,
            0x40_0000
        )
        .is_none());
    }

    #[test]
    fn raw_mapping_v3d() {
        let machine = Machine::new(&V3D_RPI4, 1);
        let iface = NanoIface::V3d;
        let (root, frames) = iface.alloc_root(&machine).unwrap();
        assert_eq!(frames.len(), v3d::pgtable::PT_PAGES);
        let frame = machine.frames().lock().alloc().unwrap();
        iface
            .map_page_raw(&machine, root, 0x9000, frame, 0x3)
            .unwrap();
        let (pa, fl) = gr_gpu::v3d::pgtable::translate(machine.mem(), root, 0x9000).unwrap();
        assert_eq!(pa, frame);
        assert!(fl.write);
    }

    #[test]
    fn soft_reset_completes_on_powered_machines() {
        let machine = Machine::new(&MALI_G71, 1);
        // Power the domains like an OS kernel would.
        for d in [
            gr_soc::pmc::PmcDomain::GpuCore,
            gr_soc::pmc::PmcDomain::GpuMem,
        ] {
            machine.pmc().write32(gr_soc::pmc::Pmc::pwr_ctrl_off(d), 1);
        }
        machine.advance(gr_soc::pmc::SETTLE_DELAY);
        NanoIface::Mali.soft_reset(&machine).unwrap();
    }
}
