//! The nano GPU driver (§5.2) — "it only has 600 SLoC".
//!
//! Most functions map directly to replay actions: mapping GPU memory by
//! rebuilding page tables from recorded (opaque) PTE flag bits, loading
//! memory dumps at virtual addresses, copying data in and out, and
//! pointing the GPU at the rebuilt tables. It allocates its own physical
//! frames (always zeroed — the §5.1 "no sensitive data" guarantee) and
//! never interprets dump contents.

use std::collections::BTreeMap;

use gr_gpu::machine::Machine;
use gr_soc::PAGE_SIZE;

use crate::costs;
use crate::error::ReplayError;
use crate::iface::NanoIface;

#[derive(Debug, Clone)]
struct NanoRegion {
    pages: usize,
    pas: Vec<u64>,
    flags: Vec<u16>,
}

/// The nano driver: page tables + VA map + raw memory moves.
pub struct NanoDriver {
    machine: Machine,
    iface: NanoIface,
    root_pa: u64,
    table_frames: Vec<u64>,
    regions: BTreeMap<u64, NanoRegion>,
}

impl std::fmt::Debug for NanoDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NanoDriver")
            .field("regions", &self.regions.len())
            .finish()
    }
}

impl NanoDriver {
    /// Allocates the top-level table and returns the driver.
    ///
    /// # Errors
    ///
    /// Fails when physical memory is exhausted.
    pub fn new(machine: Machine, iface: NanoIface) -> Result<NanoDriver, ReplayError> {
        let (root_pa, table_frames) = iface.alloc_root(&machine)?;
        Ok(NanoDriver {
            machine,
            iface,
            root_pa,
            table_frames,
            regions: BTreeMap::new(),
        })
    }

    /// Physical pages currently consumed (tables + mapped regions).
    pub fn phys_pages(&self) -> u64 {
        self.table_frames.len() as u64 + self.regions.values().map(|r| r.pages as u64).sum::<u64>()
    }

    /// Implements `SetGPUPgtable`: writes the GPU's table-base register
    /// with *this* driver's root.
    pub fn set_pgtable_base(&self) {
        self.iface.set_pgtable_base(&self.machine, self.root_pa);
    }

    /// Implements `MapGPUMem`: allocates zeroed frames and writes PTEs
    /// carrying the recorded flag bits. Idempotent: re-mapping the same
    /// base VA with the same page count is a no-op (recordings replayed
    /// back-to-back in one session share their address space).
    ///
    /// # Errors
    ///
    /// Fails on OOM or a conflicting existing mapping.
    pub fn map(&mut self, va: u64, flags: &[u16]) -> Result<(), ReplayError> {
        if let Some(existing) = self.regions.get(&va) {
            if existing.pages == flags.len() {
                return Ok(());
            }
            return Err(ReplayError::Verify(format!(
                "conflicting mapping at {va:#x}"
            )));
        }
        self.machine
            .advance(costs::MAP_PER_PAGE * flags.len() as u64);
        let mut pas = Vec::with_capacity(flags.len());
        for (i, &bits) in flags.iter().enumerate() {
            let pa = self
                .machine
                .frames()
                .lock()
                .alloc_zeroed(self.machine.mem())
                .map_err(|_| ReplayError::OutOfMemory)?
                .ok_or(ReplayError::OutOfMemory)?;
            if let Some(table_frame) = self.iface.map_page_raw(
                &self.machine,
                self.root_pa,
                va + (i * PAGE_SIZE) as u64,
                pa,
                bits,
            )? {
                self.table_frames.push(table_frame);
            }
            pas.push(pa);
        }
        self.regions.insert(
            va,
            NanoRegion {
                pages: flags.len(),
                pas,
                flags: flags.to_vec(),
            },
        );
        Ok(())
    }

    /// Implements `UnMapGPUMem`: clears PTEs and frees frames.
    ///
    /// # Errors
    ///
    /// Fails if `va` is not a mapped region base.
    pub fn unmap(&mut self, va: u64) -> Result<(), ReplayError> {
        let region = self
            .regions
            .remove(&va)
            .ok_or_else(|| ReplayError::Verify(format!("unmap of unmapped {va:#x}")))?;
        for (i, pa) in region.pas.iter().enumerate() {
            self.iface
                .unmap_page_raw(&self.machine, self.root_pa, va + (i * PAGE_SIZE) as u64);
            let _ = self.machine.frames().lock().free(*pa);
        }
        // Architectural TLB shootdown: without it a stale translation
        // could survive into a mapping that later recycles this VA (or
        // leak writes into whoever now owns the freed frames).
        self.iface.tlb_shootdown(&self.machine);
        Ok(())
    }

    /// Rewrites every PTE from the driver's bookkeeping — the §5.4
    /// recovery step that re-populates page tables after corruption.
    pub fn remap_all(&mut self) -> Result<(), ReplayError> {
        let regions: Vec<(u64, Vec<u64>, Vec<u16>)> = self
            .regions
            .iter()
            .map(|(va, r)| (*va, r.pas.clone(), r.flags.clone()))
            .collect();
        for (va, pas, flags) in regions {
            for (i, (&pa, &bits)) in pas.iter().zip(flags.iter()).enumerate() {
                self.iface
                    .unmap_page_raw(&self.machine, self.root_pa, va + (i * PAGE_SIZE) as u64);
                if let Some(f) = self.iface.map_page_raw(
                    &self.machine,
                    self.root_pa,
                    va + (i * PAGE_SIZE) as u64,
                    pa,
                    bits,
                )? {
                    self.table_frames.push(f);
                }
            }
        }
        Ok(())
    }

    fn locate(&self, va: u64) -> Result<(u64, usize), ReplayError> {
        let (base, region) = self
            .regions
            .range(..=va)
            .next_back()
            .ok_or_else(|| ReplayError::Io(format!("va {va:#x} unmapped")))?;
        let off = (va - base) as usize;
        if off >= region.pages * PAGE_SIZE {
            return Err(ReplayError::Io(format!("va {va:#x} unmapped")));
        }
        Ok((*base, off))
    }

    /// Writes `data` at GPU virtual address `va` (dump loads / input
    /// injection). Holds the DRAM lock once across the whole transfer
    /// instead of re-acquiring it per 4-KiB chunk.
    ///
    /// # Errors
    ///
    /// Fails when the range is unmapped.
    pub fn write_va(&self, va: u64, data: &[u8]) -> Result<(), ReplayError> {
        // The guard is taken once for the whole transfer; the pre-fast-path
        // baseline re-locks per chunk (kept for `bench_exec`'s baseline).
        let mut g = gr_gpu::fastpath::enabled().then(|| self.machine.mem().write_guard());
        let mut done = 0usize;
        while done < data.len() {
            let cur = va + done as u64;
            let (base, off) = self.locate(cur)?;
            let region = &self.regions[&base];
            let page = off / PAGE_SIZE;
            let chunk = (PAGE_SIZE - off % PAGE_SIZE).min(data.len() - done);
            let pa = region.pas[page] + (off % PAGE_SIZE) as u64;
            match &mut g {
                Some(g) => g.write(pa, &data[done..done + chunk]),
                None => self.machine.mem().write(pa, &data[done..done + chunk]),
            }
            .map_err(|_| ReplayError::OutOfMemory)?;
            done += chunk;
        }
        Ok(())
    }

    /// Reads `out.len()` bytes from `va` (output extraction, checkpoints).
    /// Lock-amortized like [`NanoDriver::write_va`].
    ///
    /// # Errors
    ///
    /// Fails when the range is unmapped.
    pub fn read_va(&self, va: u64, out: &mut [u8]) -> Result<(), ReplayError> {
        let g = gr_gpu::fastpath::enabled().then(|| self.machine.mem().read_guard());
        let len = out.len();
        let mut done = 0usize;
        while done < len {
            let cur = va + done as u64;
            let (base, off) = self.locate(cur)?;
            let region = &self.regions[&base];
            let page = off / PAGE_SIZE;
            let chunk = (PAGE_SIZE - off % PAGE_SIZE).min(len - done);
            let pa = region.pas[page] + (off % PAGE_SIZE) as u64;
            match &g {
                Some(g) => g.read(pa, &mut out[done..done + chunk]),
                None => self.machine.mem().read(pa, &mut out[done..done + chunk]),
            }
            .map_err(|_| ReplayError::OutOfMemory)?;
            done += chunk;
        }
        Ok(())
    }

    /// Resolves the GPU-virtual range `[va, va+len)` to its backing
    /// physical ranges (contiguous pages coalesced). Used by the warm-
    /// residency state machine to query the DRAM dirty log about the
    /// memory behind a dump.
    ///
    /// # Errors
    ///
    /// Fails when any part of the range is unmapped.
    pub fn phys_ranges(&self, va: u64, len: u64) -> Result<Vec<(u64, usize)>, ReplayError> {
        let mut out: Vec<(u64, usize)> = Vec::new();
        let mut done = 0u64;
        while done < len {
            let cur = va + done;
            let (base, off) = self.locate(cur)?;
            let region = &self.regions[&base];
            let page = off / PAGE_SIZE;
            let chunk = ((PAGE_SIZE - off % PAGE_SIZE) as u64).min(len - done);
            let pa = region.pas[page] + (off % PAGE_SIZE) as u64;
            match out.last_mut() {
                Some((last_pa, last_len)) if *last_pa + *last_len as u64 == pa => {
                    *last_len += chunk as usize;
                }
                _ => out.push((pa, chunk as usize)),
            }
            done += chunk;
        }
        Ok(out)
    }

    /// Snapshot of all mapped content (checkpointing).
    pub fn snapshot_memory(&self) -> Vec<(u64, Vec<u8>)> {
        self.regions
            .iter()
            .map(|(va, r)| {
                let mut bytes = vec![0u8; r.pages * PAGE_SIZE];
                for (i, &pa) in r.pas.iter().enumerate() {
                    let _ = self
                        .machine
                        .mem()
                        .read(pa, &mut bytes[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
                }
                (*va, bytes)
            })
            .collect()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.regions
            .values()
            .map(|r| (r.pages * PAGE_SIZE) as u64)
            .sum()
    }

    /// Frees everything (Cleanup API).
    pub fn release(mut self) {
        let vas: Vec<u64> = self.regions.keys().copied().collect();
        for va in vas {
            let _ = self.unmap(va);
        }
        for f in self.table_frames.drain(..) {
            let _ = self.machine.frames().lock().free(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_gpu::sku::MALI_G71;

    #[test]
    fn map_write_read_unmap() {
        let machine = Machine::new(&MALI_G71, 2);
        let mut nano = NanoDriver::new(machine.clone(), NanoIface::Mali).unwrap();
        nano.map(0x10_0000, &[0xF, 0xF]).unwrap();
        nano.write_va(
            0x10_0FF0,
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17],
        )
        .unwrap();
        let mut back = [0u8; 17];
        nano.read_va(0x10_0FF0, &mut back).unwrap();
        assert_eq!(back[0], 1);
        assert_eq!(back[16], 17);
        assert!(nano.phys_pages() >= 3);
        // Idempotent re-map.
        nano.map(0x10_0000, &[0xF, 0xF]).unwrap();
        assert!(nano.map(0x10_0000, &[0xF]).is_err(), "size conflict");
        nano.unmap(0x10_0000).unwrap();
        assert!(nano.write_va(0x10_0000, &[0]).is_err());
        nano.release();
    }

    #[test]
    fn frames_are_zeroed_no_sensitive_data() {
        let machine = Machine::new(&MALI_G71, 2);
        // Dirty some frames first.
        let dirty = machine.frames().lock().alloc().unwrap();
        machine.mem().fill(dirty, PAGE_SIZE, 0xEE).unwrap();
        machine.frames().lock().free(dirty).unwrap();
        let mut nano = NanoDriver::new(machine.clone(), NanoIface::Mali).unwrap();
        // Map enough pages to certainly reuse the dirty frame.
        nano.map(0x20_0000, &[0xB; 16]).unwrap();
        let mut buf = vec![0u8; 16 * PAGE_SIZE];
        nano.read_va(0x20_0000, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "§5.1: frames must be scrubbed");
        nano.release();
    }

    #[test]
    fn release_returns_all_frames() {
        let machine = Machine::new(&MALI_G71, 2);
        let before = machine.frames().lock().used();
        let mut nano = NanoDriver::new(machine.clone(), NanoIface::Mali).unwrap();
        nano.map(0x30_0000, &[0xB; 4]).unwrap();
        nano.release();
        assert_eq!(machine.frames().lock().used(), before);
    }

    #[test]
    fn snapshot_covers_all_regions() {
        let machine = Machine::new(&MALI_G71, 2);
        let mut nano = NanoDriver::new(machine, NanoIface::Mali).unwrap();
        nano.map(0x10_0000, &[0xB]).unwrap();
        nano.map(0x20_0000, &[0xB, 0xB]).unwrap();
        nano.write_va(0x20_0000, b"abc").unwrap();
        let snap = nano.snapshot_memory();
        assert_eq!(snap.len(), 2);
        assert_eq!(nano.mapped_bytes(), 3 * PAGE_SIZE as u64);
        assert_eq!(&snap[1].1[..3], b"abc");
        nano.release();
    }
}
