//! Static verification of security properties (§5.1).
//!
//! Before any action executes, the replayer proves: no illegal register
//! access by the CPU (whitelist of architecturally-defined offsets); no
//! illegal memory access by the GPU (every Upload/IO target lies inside
//! memory the replayer itself maps); bounded physical memory (a cap on
//! peak mapped pages). A fabricated recording can hang the GPU but cannot
//! break these guarantees.

use std::collections::HashSet;

use gr_recording::{Action, Recording};
use gr_soc::PAGE_SIZE;

use crate::error::ReplayError;
use crate::iface::NanoIface;

/// What the verifier proved about a recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Actions checked.
    pub actions: usize,
    /// Peak simultaneously-mapped pages.
    pub peak_pages: u64,
    /// Distinct registers touched.
    pub registers_touched: usize,
    /// Indices of `Upload` actions proven dead: their whole dump range is
    /// overwritten by a later `CopyToGpu` before any register write could
    /// have started a job, so the uploaded bytes are never observed.
    pub dead_uploads: Vec<usize>,
    /// First action index of the per-input replay suffix, when the
    /// recording supports warm batched replay (see
    /// [`crate::Replayer::replay_batch`]): the prologue `[0, split)` is
    /// input-independent (no `CopyToGpu`/`CopyFromGpu`, no job waits) and
    /// the suffix `[split, end)` never mutates the address space (no
    /// map/unmap/table-base switch), so the prologue can run once per warm
    /// machine and the suffix once per batch element.
    pub batch_split: Option<usize>,
    /// The memory ranges backing each prologue `Upload` action (empty
    /// when `batch_split` is `None`). Cross-batch warm residency consults
    /// these against the dirty log to decide which uploads can be elided
    /// on an unchanged machine; register bring-up and `MapGpuMem` carry
    /// no annotation because a resident batch elides them unconditionally
    /// (they are warm and idempotent — the maps rewrite nothing).
    pub prologue_ranges: Vec<PrologueRange>,
    /// `true` when the prologue's shape additionally admits cross-batch
    /// residency: every prologue action from the first `Upload` onward is
    /// itself an `Upload`. Elided register actions cannot observe memory,
    /// and before the first upload resident memory equals post-suffix
    /// memory in cold warm-batch replay too — so with this shape no
    /// observation point can distinguish a resident prologue from a full
    /// one mid-establishment, and later uploads always shadow earlier
    /// ones with nothing in between. Recordings that interleave register
    /// work with uploads fall back to the full per-batch prologue.
    pub residency_safe: bool,
}

/// The VA range a prologue upload establishes, annotated at verify time
/// for the residency state machine (see `DESIGN.md` §13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrologueRange {
    /// Action index within `[0, batch_split)`.
    pub index: usize,
    /// First GPU VA the upload touches.
    pub va: u64,
    /// Byte length of the range.
    pub len: u64,
    /// The dump the action uploads.
    pub upload: u32,
    /// `Upload` only: `true` when no *later* prologue upload overlaps this
    /// dump's range, so the post-prologue content of the range equals the
    /// dump bytes and a static content hash can stand in for the dirty
    /// log when it overflowed. Overlapped dumps must re-upload instead.
    pub hash_skippable: bool,
}

/// Annotates every `Upload` action in the prologue `[0, split)` with its
/// backing VA range (documented on [`VerifyReport::prologue_ranges`]).
fn annotate_prologue(rec: &Recording, split: usize) -> Vec<PrologueRange> {
    let mut out = Vec::new();
    for (i, ta) in rec.actions[..split].iter().enumerate() {
        let Action::Upload { dump_idx } = &ta.action else {
            continue;
        };
        let Some(dump) = rec.dumps.get(*dump_idx as usize) else {
            continue; // verify() proper rejects this recording
        };
        let (va, len) = (dump.va, dump.bytes.len() as u64);
        let hash_skippable = rec.actions[i + 1..split].iter().all(|later| {
            let Action::Upload { dump_idx: later_d } = &later.action else {
                return true;
            };
            let Some(ld) = rec.dumps.get(*later_d as usize) else {
                return true;
            };
            // Disjoint ranges keep the hash meaningful.
            ld.va >= va + len || ld.va + ld.bytes.len() as u64 <= va
        });
        out.push(PrologueRange {
            index: i,
            va,
            len,
            upload: *dump_idx,
            hash_skippable,
        });
    }
    out
}

/// Residency shape check (documented on [`VerifyReport::residency_safe`]):
/// from the first prologue `Upload` onward, only `Upload` actions may
/// follow inside the prologue.
fn residency_safe(rec: &Recording, split: usize) -> bool {
    match rec.actions[..split]
        .iter()
        .position(|ta| matches!(ta.action, Action::Upload { .. }))
    {
        None => true,
        Some(first) => rec.actions[first..split]
            .iter()
            .all(|ta| matches!(ta.action, Action::Upload { .. })),
    }
}

/// Finds `Upload` actions whose dump range is fully overwritten by a later
/// `CopyToGpu` before any job could run (satisfying the elision rule the
/// report documents). The scan is conservative: any register write, IRQ
/// wait, output copy, or unmap between the upload and the covering input
/// copy keeps the upload live.
fn find_dead_uploads(rec: &Recording) -> Vec<usize> {
    let mut dead = Vec::new();
    for (i, ta) in rec.actions.iter().enumerate() {
        let Action::Upload { dump_idx } = &ta.action else {
            continue;
        };
        let Some(dump) = rec.dumps.get(*dump_idx as usize) else {
            continue; // verify() proper rejects this recording
        };
        let (dva, dlen) = (dump.va, dump.bytes.len() as u64);
        for later in &rec.actions[i + 1..] {
            match &later.action {
                Action::CopyToGpu { slot } => {
                    let Some(s) = rec.inputs.get(*slot as usize) else {
                        break;
                    };
                    if s.va <= dva && dva + dlen <= s.va + u64::from(s.len) {
                        dead.push(i);
                        break;
                    }
                }
                // Overwriting the same bytes again cannot resurrect them;
                // keep scanning. Everything else might observe the upload.
                Action::Upload { .. } => {}
                _ => break,
            }
        }
    }
    dead
}

/// Computes the warm-batch split point, if the recording's shape allows
/// prologue/suffix amortization (documented on `VerifyReport::batch_split`).
///
/// Besides address-space actions, the suffix must not *write* any
/// translation/reset hazard register (`NanoIface::is_batch_hazard_reg`):
/// a fabricated recording could otherwise retarget the page-table base
/// mid-suffix and diverge from sequential replay, which re-establishes
/// the base from the prologue on every element.
fn find_batch_split(rec: &Recording, iface: NanoIface) -> Option<usize> {
    let split = rec
        .actions
        .iter()
        .position(|ta| matches!(ta.action, Action::CopyToGpu { .. }))?;
    let prologue_clean = rec.actions[..split].iter().all(|ta| {
        !matches!(
            ta.action,
            Action::WaitIrq { .. } | Action::CopyFromGpu { .. }
        )
    });
    let suffix_clean = rec.actions[split..].iter().all(|ta| match &ta.action {
        Action::MapGpuMem { .. } | Action::UnmapGpuMem { .. } | Action::SetGpuPgtable => false,
        Action::RegWrite { reg, .. } => !iface.is_batch_hazard_reg(*reg),
        _ => true,
    });
    (prologue_clean && suffix_clean).then_some(split)
}

/// Verifies `rec` against the family interface and a physical-page cap.
///
/// # Errors
///
/// Returns [`ReplayError::Verify`] describing the first violated property.
pub fn verify(
    rec: &Recording,
    iface: NanoIface,
    max_pages: u64,
) -> Result<VerifyReport, ReplayError> {
    if NanoIface::from_name(&rec.meta.family) != Some(iface) {
        return Err(ReplayError::Verify(format!(
            "recording is for family '{}', replayer is {:?}",
            rec.meta.family, iface
        )));
    }
    let mut mapped_pages: HashSet<u64> = HashSet::new();
    let mut region_sizes: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut peak = 0u64;
    let mut regs = HashSet::new();
    let mut irq_depth = 0i32;
    let va_limit = iface.va_limit();

    let check_mapped = |mapped: &HashSet<u64>, va: u64, len: u64, what: &str| {
        let mut page = va & !(PAGE_SIZE as u64 - 1);
        let end = va + len.max(1);
        while page < end {
            if !mapped.contains(&page) {
                return Err(ReplayError::Verify(format!(
                    "{what} touches unmapped GPU memory at {page:#x}"
                )));
            }
            page += PAGE_SIZE as u64;
        }
        Ok(())
    };

    for (i, ta) in rec.actions.iter().enumerate() {
        if let Some(reg) = ta.action.touches_register() {
            if !iface.is_known_reg(reg) {
                return Err(ReplayError::Verify(format!(
                    "action {i}: illegal register access at offset {reg:#x}"
                )));
            }
            regs.insert(reg);
        }
        match &ta.action {
            Action::MapGpuMem { va, pte_flags } => {
                if pte_flags.is_empty() {
                    return Err(ReplayError::Verify(format!("action {i}: empty mapping")));
                }
                if va % PAGE_SIZE as u64 != 0
                    || *va + (pte_flags.len() * PAGE_SIZE) as u64 > va_limit
                {
                    return Err(ReplayError::Verify(format!(
                        "action {i}: mapping outside GPU address space at {va:#x}"
                    )));
                }
                if let Some(&existing) = region_sizes.get(va) {
                    if existing != pte_flags.len() {
                        return Err(ReplayError::Verify(format!(
                            "action {i}: conflicting re-map at {va:#x}"
                        )));
                    }
                } else {
                    region_sizes.insert(*va, pte_flags.len());
                    for p in 0..pte_flags.len() {
                        mapped_pages.insert(*va + (p * PAGE_SIZE) as u64);
                    }
                }
                peak = peak.max(mapped_pages.len() as u64);
                if peak > max_pages {
                    return Err(ReplayError::Verify(format!(
                        "action {i}: recording maps {peak} pages, cap is {max_pages}"
                    )));
                }
            }
            Action::UnmapGpuMem { va } => {
                let Some(pages) = region_sizes.remove(va) else {
                    return Err(ReplayError::Verify(format!(
                        "action {i}: unmap of unmapped {va:#x}"
                    )));
                };
                for p in 0..pages {
                    mapped_pages.remove(&(*va + (p * PAGE_SIZE) as u64));
                }
            }
            Action::Upload { dump_idx } => {
                let Some(dump) = rec.dumps.get(*dump_idx as usize) else {
                    return Err(ReplayError::Verify(format!(
                        "action {i}: dump index {dump_idx} out of range"
                    )));
                };
                check_mapped(&mapped_pages, dump.va, dump.bytes.len() as u64, "dump")?;
            }
            Action::CopyToGpu { slot } => {
                let Some(s) = rec.inputs.get(*slot as usize) else {
                    return Err(ReplayError::Verify(format!(
                        "action {i}: input slot {slot} out of range"
                    )));
                };
                check_mapped(&mapped_pages, s.va, u64::from(s.len), "input")?;
            }
            Action::CopyFromGpu { slot } => {
                let Some(s) = rec.outputs.get(*slot as usize) else {
                    return Err(ReplayError::Verify(format!(
                        "action {i}: output slot {slot} out of range"
                    )));
                };
                check_mapped(&mapped_pages, s.va, u64::from(s.len), "output")?;
            }
            Action::WaitIrq { line, .. } if *line > iface.max_irq_line() => {
                return Err(ReplayError::Verify(format!(
                    "action {i}: irq line {line} does not exist"
                )));
            }
            Action::IrqContext { enter } => {
                irq_depth += if *enter { 1 } else { -1 };
                if !(0..=1).contains(&irq_depth) {
                    return Err(ReplayError::Verify(format!(
                        "action {i}: unbalanced interrupt context"
                    )));
                }
            }
            _ => {}
        }
    }
    if irq_depth != 0 {
        return Err(ReplayError::Verify(
            "recording ends inside irq context".into(),
        ));
    }
    let batch_split = find_batch_split(rec, iface);
    Ok(VerifyReport {
        actions: rec.actions.len(),
        peak_pages: peak,
        registers_touched: regs.len(),
        dead_uploads: find_dead_uploads(rec),
        batch_split,
        prologue_ranges: batch_split.map_or_else(Vec::new, |s| annotate_prologue(rec, s)),
        residency_safe: batch_split.is_some_and(|s| residency_safe(rec, s)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_recording::{Dump, IoSlot, RecordingMeta, TimedAction};

    fn base_rec() -> Recording {
        let mut rec = Recording::new(RecordingMeta::new("mali", "G71", 1, "t"));
        rec.actions.push(TimedAction::immediate(Action::MapGpuMem {
            va: 0x10_0000,
            pte_flags: vec![0xF, 0xB],
        }));
        rec
    }

    #[test]
    fn accepts_well_formed_recordings() {
        let mut rec = base_rec();
        rec.dumps.push(Dump {
            va: 0x10_0000,
            bytes: vec![0; PAGE_SIZE],
        });
        rec.actions
            .push(TimedAction::immediate(Action::Upload { dump_idx: 0 }));
        rec.inputs.push(IoSlot {
            name: "in".into(),
            va: 0x10_1000,
            len: 64,
        });
        rec.actions
            .push(TimedAction::immediate(Action::CopyToGpu { slot: 0 }));
        rec.actions.push(TimedAction::immediate(Action::RegWrite {
            reg: gr_gpu::mali::regs::JS0_COMMAND,
            mask: u32::MAX,
            val: 1,
        }));
        let report = verify(&rec, NanoIface::Mali, 1024).unwrap();
        assert_eq!(report.peak_pages, 2);
        assert_eq!(report.registers_touched, 1);
        assert!(report.dead_uploads.is_empty(), "input does not cover dump");
        assert_eq!(report.batch_split, Some(2), "suffix starts at CopyToGpu");
    }

    #[test]
    fn detects_dead_uploads_covered_by_input_copy() {
        let mut rec = base_rec();
        // Dump fully inside the input slot's range, then the input copy.
        rec.dumps.push(Dump {
            va: 0x10_0000,
            bytes: vec![0xEE; 64],
        });
        rec.inputs.push(IoSlot {
            name: "in".into(),
            va: 0x10_0000,
            len: 128,
        });
        rec.actions
            .push(TimedAction::immediate(Action::Upload { dump_idx: 0 }));
        rec.actions
            .push(TimedAction::immediate(Action::CopyToGpu { slot: 0 }));
        let report = verify(&rec, NanoIface::Mali, 1024).unwrap();
        assert_eq!(report.dead_uploads, vec![1]);

        // A register write between upload and input copy (a potential job
        // kick) keeps the upload live.
        let mut rec2 = base_rec();
        rec2.dumps.push(Dump {
            va: 0x10_0000,
            bytes: vec![0xEE; 64],
        });
        rec2.inputs.push(IoSlot {
            name: "in".into(),
            va: 0x10_0000,
            len: 128,
        });
        rec2.actions
            .push(TimedAction::immediate(Action::Upload { dump_idx: 0 }));
        rec2.actions.push(TimedAction::immediate(Action::RegWrite {
            reg: gr_gpu::mali::regs::JS0_COMMAND,
            mask: u32::MAX,
            val: 1,
        }));
        rec2.actions
            .push(TimedAction::immediate(Action::CopyToGpu { slot: 0 }));
        let report2 = verify(&rec2, NanoIface::Mali, 1024).unwrap();
        assert!(report2.dead_uploads.is_empty(), "kick may observe the dump");
    }

    #[test]
    fn batch_split_requires_clean_prologue_and_suffix() {
        // No inputs at all: nothing to amortize per element.
        let rec = base_rec();
        assert_eq!(
            verify(&rec, NanoIface::Mali, 1024).unwrap().batch_split,
            None
        );

        // A map after the first input copy makes warm reuse unsound.
        let mut rec2 = base_rec();
        rec2.inputs.push(IoSlot {
            name: "in".into(),
            va: 0x10_0000,
            len: 64,
        });
        rec2.actions
            .push(TimedAction::immediate(Action::CopyToGpu { slot: 0 }));
        rec2.actions.push(TimedAction::immediate(Action::MapGpuMem {
            va: 0x20_0000,
            pte_flags: vec![0xB],
        }));
        assert_eq!(
            verify(&rec2, NanoIface::Mali, 1024).unwrap().batch_split,
            None
        );

        // A suffix write to a translation/reset hazard register (here the
        // page-table base) could hijack warm elements: unbatchable.
        let mut rec_hazard = base_rec();
        rec_hazard.inputs.push(IoSlot {
            name: "in".into(),
            va: 0x10_0000,
            len: 64,
        });
        rec_hazard
            .actions
            .push(TimedAction::immediate(Action::CopyToGpu { slot: 0 }));
        rec_hazard
            .actions
            .push(TimedAction::immediate(Action::RegWrite {
                reg: gr_gpu::mali::regs::AS0_TRANSTAB_LO,
                mask: u32::MAX,
                val: 0xDEAD_B000,
            }));
        assert_eq!(
            verify(&rec_hazard, NanoIface::Mali, 1024)
                .unwrap()
                .batch_split,
            None,
            "suffix table-base write must disqualify batching"
        );

        // A job wait before the input copy means jobs ran input-independent:
        // leave those recordings on the unamortized path.
        let mut rec3 = base_rec();
        rec3.inputs.push(IoSlot {
            name: "in".into(),
            va: 0x10_0000,
            len: 64,
        });
        rec3.actions.push(TimedAction::immediate(Action::WaitIrq {
            line: 0,
            timeout_ns: 1,
        }));
        rec3.actions
            .push(TimedAction::immediate(Action::CopyToGpu { slot: 0 }));
        assert_eq!(
            verify(&rec3, NanoIface::Mali, 1024).unwrap().batch_split,
            None
        );
    }

    #[test]
    fn prologue_ranges_annotate_uploads_and_maps() {
        let mut rec = base_rec();
        rec.dumps.push(Dump {
            va: 0x10_0000,
            bytes: vec![1; PAGE_SIZE],
        });
        // A second dump overlapping the first: the first loses hash
        // skippability (its post-prologue content is not its own bytes),
        // the second keeps it.
        rec.dumps.push(Dump {
            va: 0x10_0800,
            bytes: vec![2; 64],
        });
        rec.actions
            .push(TimedAction::immediate(Action::Upload { dump_idx: 0 }));
        rec.actions
            .push(TimedAction::immediate(Action::Upload { dump_idx: 1 }));
        rec.inputs.push(IoSlot {
            name: "in".into(),
            va: 0x10_1000,
            len: 64,
        });
        rec.actions
            .push(TimedAction::immediate(Action::CopyToGpu { slot: 0 }));
        let report = verify(&rec, NanoIface::Mali, 1024).unwrap();
        assert_eq!(report.batch_split, Some(3));
        assert!(report.residency_safe, "tail-consecutive uploads");
        assert_eq!(report.prologue_ranges.len(), 2);
        let up0 = &report.prologue_ranges[0];
        assert_eq!((up0.index, up0.va, up0.len), (1, 0x10_0000, 4096));
        assert_eq!(up0.upload, 0);
        assert!(!up0.hash_skippable, "overlapped by the later upload");
        let up1 = &report.prologue_ranges[1];
        assert_eq!(up1.upload, 1);
        assert!(up1.hash_skippable, "nothing later overlaps it");

        // Unbatchable recordings carry no annotations and no residency.
        let plain = base_rec();
        let plain_report = verify(&plain, NanoIface::Mali, 1024).unwrap();
        assert!(plain_report.prologue_ranges.is_empty());
        assert!(!plain_report.residency_safe);
    }

    #[test]
    fn register_work_after_an_upload_disables_residency() {
        // A register write between prologue uploads could be a job kick
        // observing the half-established memory image: such prologues
        // must fall back to the full per-batch prologue.
        let mut rec = base_rec();
        rec.dumps.push(Dump {
            va: 0x10_0000,
            bytes: vec![1; 64],
        });
        rec.actions
            .push(TimedAction::immediate(Action::Upload { dump_idx: 0 }));
        rec.actions.push(TimedAction::immediate(Action::RegWrite {
            reg: gr_gpu::mali::regs::JS0_COMMAND,
            mask: u32::MAX,
            val: 1,
        }));
        rec.actions
            .push(TimedAction::immediate(Action::Upload { dump_idx: 0 }));
        rec.inputs.push(IoSlot {
            name: "in".into(),
            va: 0x10_1000,
            len: 64,
        });
        rec.actions
            .push(TimedAction::immediate(Action::CopyToGpu { slot: 0 }));
        let report = verify(&rec, NanoIface::Mali, 1024).unwrap();
        assert!(report.batch_split.is_some(), "still batchable");
        assert!(
            !report.residency_safe,
            "register work between uploads must disable residency"
        );
    }

    #[test]
    fn rejects_illegal_register() {
        let mut rec = base_rec();
        rec.actions.push(TimedAction::immediate(Action::RegWrite {
            reg: 0x2FF8, // hole in the map
            mask: u32::MAX,
            val: 0xDEAD,
        }));
        let err = verify(&rec, NanoIface::Mali, 1024).unwrap_err();
        assert!(err.to_string().contains("illegal register"), "{err}");
    }

    #[test]
    fn rejects_unmapped_gpu_access() {
        let mut rec = base_rec();
        rec.dumps.push(Dump {
            va: 0x90_0000,
            bytes: vec![0; 16],
        });
        rec.actions
            .push(TimedAction::immediate(Action::Upload { dump_idx: 0 }));
        let err = verify(&rec, NanoIface::Mali, 1024).unwrap_err();
        assert!(err.to_string().contains("unmapped GPU memory"), "{err}");
    }

    #[test]
    fn enforces_memory_cap() {
        let mut rec = Recording::new(RecordingMeta::new("mali", "G71", 1, "t"));
        rec.actions.push(TimedAction::immediate(Action::MapGpuMem {
            va: 0,
            pte_flags: vec![0xB; 100],
        }));
        let err = verify(&rec, NanoIface::Mali, 10).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn rejects_family_mismatch_and_bad_irq() {
        let rec = base_rec();
        assert!(verify(&rec, NanoIface::V3d, 1024).is_err());
        let mut rec2 = base_rec();
        rec2.actions.push(TimedAction::immediate(Action::WaitIrq {
            line: 5,
            timeout_ns: 1,
        }));
        assert!(verify(&rec2, NanoIface::Mali, 1024).is_err());
    }

    #[test]
    fn rejects_unbalanced_irq_context() {
        let mut rec = base_rec();
        rec.actions
            .push(TimedAction::immediate(Action::IrqContext { enter: false }));
        assert!(verify(&rec, NanoIface::Mali, 1024).is_err());
        let mut rec2 = base_rec();
        rec2.actions
            .push(TimedAction::immediate(Action::IrqContext { enter: true }));
        assert!(
            verify(&rec2, NanoIface::Mali, 1024).is_err(),
            "ends inside irq ctx"
        );
    }

    #[test]
    fn rejects_out_of_space_mapping() {
        let mut rec = Recording::new(RecordingMeta::new("mali", "G71", 1, "t"));
        rec.actions.push(TimedAction::immediate(Action::MapGpuMem {
            va: NanoIface::Mali.va_limit(),
            pte_flags: vec![0xB],
        }));
        assert!(verify(&rec, NanoIface::Mali, 1024).is_err());
    }
}
