//! Physical-address dirty-range tracking for cross-batch warm residency.
//!
//! Every DRAM mutation funnels through [`crate::PhysMem`] (plain writes,
//! scalar stores, fills, and the zero-copy `slice_mut` used by the GPU
//! shader-store path), so a bounded append-only log of written intervals
//! is a complete record of "what changed since instant X" at the physical
//! level — device DMA, CPU-side stack writes, and replayer uploads alike.
//!
//! Consumers take a [`DirtyMark`] (a position in the log) and later ask
//! [`DirtyLog::dirty_since`] whether a physical range was written after
//! that mark. Three answers are possible:
//!
//! * [`DirtyVerdict::Clean`] — provably untouched since the mark;
//! * [`DirtyVerdict::Dirty`] — a logged write overlaps the range;
//! * [`DirtyVerdict::Unknown`] — the log cannot answer: the mark is from
//!   an older *epoch* (the GPU reset or switched address spaces, which
//!   invalidates every outstanding mark, mirroring `SoftTlb` flushes) or
//!   the bounded log was trimmed past the mark (overflow). Callers fall
//!   back to content hashing or to re-establishing state.
//!
//! The log is bounded ([`DirtyLog::set_cap`]): appends past the capacity
//! trim the oldest intervals, turning *older* marks into `Unknown` —
//! conservative, never unsound. Adjacent/overlapping appends coalesce
//! into the tail interval (its sequence number is refreshed, which can
//! only over-report dirtiness for old marks — again conservative).

use std::collections::VecDeque;

/// Default bound on retained write intervals. Steady-state replay batches
/// append a few hundred intervals; the window comfortably covers several
/// inter-batch gaps before queries degrade to `Unknown`.
pub const DEFAULT_DIRTY_LOG_CAP: usize = 4096;

/// A position in a [`DirtyLog`]: everything appended *after* the mark is
/// visible to [`DirtyLog::dirty_since`] queries against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtyMark {
    epoch: u64,
    seq: u64,
}

/// Answer to "was this range written since the mark?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirtyVerdict {
    /// Provably untouched since the mark.
    Clean,
    /// A logged write overlaps the range.
    Dirty,
    /// The log cannot answer (stale epoch or trimmed past the mark);
    /// callers must verify content another way.
    Unknown,
}

/// One retained write interval: `[start, end)` appended at `seq`.
#[derive(Debug, Clone, Copy)]
struct Interval {
    seq: u64,
    start: u64,
    end: u64,
}

/// Bounded write-interval log over physical addresses.
#[derive(Debug)]
pub struct DirtyLog {
    epoch: u64,
    next_seq: u64,
    /// Queries from marks with `seq < trimmed` are `Unknown`.
    trimmed: u64,
    intervals: VecDeque<Interval>,
    cap: usize,
}

impl Default for DirtyLog {
    fn default() -> Self {
        DirtyLog::new(DEFAULT_DIRTY_LOG_CAP)
    }
}

impl DirtyLog {
    /// Creates an empty log retaining at most `cap` intervals (min 1).
    pub fn new(cap: usize) -> DirtyLog {
        DirtyLog {
            epoch: 0,
            next_seq: 0,
            trimmed: 0,
            intervals: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Current epoch; bumped by [`DirtyLog::bump_epoch`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Shrinks or grows the retention bound (tests force overflow with a
    /// tiny cap). Trims immediately when shrinking.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap.max(1);
        while self.intervals.len() > self.cap {
            let dropped = self.intervals.pop_front().expect("non-empty");
            self.trimmed = dropped.seq + 1;
        }
    }

    /// Records a write of `[start, start+len)`. Coalesces with the tail
    /// interval when overlapping or adjacent; the merged interval's
    /// sequence is refreshed so older marks see it as new (conservative).
    pub fn record(&mut self, start: u64, len: usize) {
        if len == 0 {
            return;
        }
        let end = start.saturating_add(len as u64);
        if let Some(tail) = self.intervals.back_mut() {
            if start <= tail.end && end >= tail.start {
                tail.start = tail.start.min(start);
                tail.end = tail.end.max(end);
                tail.seq = self.next_seq;
                self.next_seq += 1;
                return;
            }
        }
        self.intervals.push_back(Interval {
            seq: self.next_seq,
            start,
            end,
        });
        self.next_seq += 1;
        if self.intervals.len() > self.cap {
            let dropped = self.intervals.pop_front().expect("over cap");
            self.trimmed = dropped.seq + 1;
        }
    }

    /// A mark covering everything appended from now on.
    pub fn mark(&self) -> DirtyMark {
        DirtyMark {
            epoch: self.epoch,
            seq: self.next_seq,
        }
    }

    /// Was `[start, start+len)` written since `mark`?
    pub fn dirty_since(&self, mark: DirtyMark, start: u64, len: usize) -> DirtyVerdict {
        if mark.epoch != self.epoch {
            return DirtyVerdict::Unknown;
        }
        if mark.seq < self.trimmed {
            return DirtyVerdict::Unknown;
        }
        let end = start.saturating_add(len.max(1) as u64);
        // Sequences are nondecreasing front-to-back: scan from the tail
        // and stop at the first interval older than the mark.
        for iv in self.intervals.iter().rev() {
            if iv.seq < mark.seq {
                break;
            }
            if start < iv.end && iv.start < end {
                return DirtyVerdict::Dirty;
            }
        }
        DirtyVerdict::Clean
    }

    /// The written subranges of `[start, start+len)` since `mark`, as
    /// clipped, sorted, merged `(start, end)` pairs — empty means clean.
    /// `None` when the log cannot answer (stale epoch or trimmed past the
    /// mark). The interval-precise sibling of [`DirtyLog::dirty_since`]:
    /// consumers re-establish exactly the bytes that changed.
    pub fn dirty_intervals_since(
        &self,
        mark: DirtyMark,
        start: u64,
        len: usize,
    ) -> Option<Vec<(u64, u64)>> {
        if mark.epoch != self.epoch || mark.seq < self.trimmed {
            return None;
        }
        let end = start.saturating_add(len.max(1) as u64);
        let mut out: Vec<(u64, u64)> = Vec::new();
        for iv in self.intervals.iter().rev() {
            if iv.seq < mark.seq {
                break;
            }
            if start < iv.end && iv.start < end {
                out.push((iv.start.max(start), iv.end.min(end)));
            }
        }
        out.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (s, e) in out {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        Some(merged)
    }

    /// Invalidates every outstanding mark and clears the retained
    /// intervals. Wired into GPU reset and address-space switches, the
    /// same events that flush the software TLB.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.intervals.clear();
        self.trimmed = self.next_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_until_written_then_dirty() {
        let mut log = DirtyLog::default();
        let mark = log.mark();
        assert_eq!(log.dirty_since(mark, 0x1000, 64), DirtyVerdict::Clean);
        log.record(0x1020, 8);
        assert_eq!(log.dirty_since(mark, 0x1000, 64), DirtyVerdict::Dirty);
        // Non-overlapping range stays clean.
        assert_eq!(log.dirty_since(mark, 0x2000, 64), DirtyVerdict::Clean);
        // A fresh mark no longer sees the old write.
        let mark2 = log.mark();
        assert_eq!(log.dirty_since(mark2, 0x1000, 64), DirtyVerdict::Clean);
    }

    #[test]
    fn adjacent_writes_coalesce_and_refresh_seq() {
        let mut log = DirtyLog::new(4);
        log.record(0x1000, 16);
        let mark = log.mark();
        // Extends the tail interval: the merged interval must be visible
        // to `mark` even though part of it predates it (conservative).
        log.record(0x1010, 16);
        assert_eq!(log.dirty_since(mark, 0x1000, 8), DirtyVerdict::Dirty);
        // Still one retained interval.
        assert_eq!(log.intervals.len(), 1);
    }

    #[test]
    fn overflow_degrades_old_marks_to_unknown() {
        let mut log = DirtyLog::new(2);
        let mark = log.mark();
        log.record(0x1000, 1);
        log.record(0x3000, 1);
        assert_eq!(log.dirty_since(mark, 0x5000, 1), DirtyVerdict::Clean);
        log.record(0x5000, 1); // trims the 0x1000 interval
        assert_eq!(log.dirty_since(mark, 0x9000, 1), DirtyVerdict::Unknown);
        // A mark taken after the trim point still answers.
        let mark2 = log.mark();
        log.record(0x7000, 1);
        assert_eq!(log.dirty_since(mark2, 0x7000, 1), DirtyVerdict::Dirty);
        assert_eq!(log.dirty_since(mark2, 0x9000, 1), DirtyVerdict::Clean);
    }

    #[test]
    fn interval_queries_clip_sort_and_merge() {
        let mut log = DirtyLog::default();
        let mark = log.mark();
        log.record(0x2000, 0x10);
        log.record(0x1000, 0x20); // out of address order
        log.record(0x2008, 0x10); // overlaps the first
        assert_eq!(
            log.dirty_intervals_since(mark, 0x1010, 0x1010),
            Some(vec![(0x1010, 0x1020), (0x2000, 0x2018)]),
            "clipped at the query start, merged where overlapping"
        );
        assert_eq!(
            log.dirty_intervals_since(mark, 0x8000, 0x100),
            Some(vec![]),
            "clean range yields an empty list"
        );
        log.bump_epoch();
        assert_eq!(log.dirty_intervals_since(mark, 0, 0x1000), None);
    }

    #[test]
    fn epoch_bump_invalidates_all_marks() {
        let mut log = DirtyLog::default();
        let mark = log.mark();
        log.bump_epoch();
        assert_eq!(log.dirty_since(mark, 0, 1), DirtyVerdict::Unknown);
        let fresh = log.mark();
        assert_eq!(log.dirty_since(fresh, 0, 1), DirtyVerdict::Clean);
        assert_eq!(log.epoch(), 1);
    }

    #[test]
    fn zero_length_writes_are_ignored() {
        let mut log = DirtyLog::default();
        let mark = log.mark();
        log.record(0x1000, 0);
        assert_eq!(log.dirty_since(mark, 0x1000, 16), DirtyVerdict::Clean);
    }

    #[test]
    fn shrinking_cap_trims_immediately() {
        let mut log = DirtyLog::new(8);
        let mark = log.mark();
        log.record(0x1000, 1);
        log.record(0x3000, 1);
        log.record(0x5000, 1);
        log.set_cap(1);
        assert_eq!(log.dirty_since(mark, 0x1000, 1), DirtyVerdict::Unknown);
    }
}
