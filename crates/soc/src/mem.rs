//! Simulated shared DRAM.
//!
//! Integrated GPUs share DRAM with the CPU (paper §2.1, footnote 2: "GPU
//! memory" is part of shared DRAM). [`PhysMem`] is that DRAM: a flat,
//! byte-addressable region at a fixed physical base. Both the CPU-side
//! stack and the GPU device model operate on the same [`SharedMem`] handle;
//! GPU page tables, job binaries, and tensors all live here.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::dirty::{DirtyLog, DirtyMark, DirtyVerdict};

/// Page/frame size used throughout the machine (both GPU MMU formats map
/// 4 KiB pages, like Mali's and v3d's smallest granule).
pub const PAGE_SIZE: usize = 4096;

/// Error raised by out-of-range physical accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    /// Faulting physical address.
    pub pa: u64,
    /// Access length in bytes.
    pub len: usize,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "physical access out of range: pa={:#x} len={}",
            self.pa, self.len
        )
    }
}

impl std::error::Error for MemError {}

/// Flat simulated DRAM starting at a fixed physical base address.
///
/// # Example
///
/// ```
/// use gr_soc::{PhysMem, PAGE_SIZE};
///
/// let mut mem = PhysMem::new(0x1000, 2 * PAGE_SIZE);
/// mem.write(0x1004, &[1, 2, 3])?;
/// let mut buf = [0u8; 3];
/// mem.read(0x1004, &mut buf)?;
/// assert_eq!(buf, [1, 2, 3]);
/// # Ok::<(), gr_soc::MemError>(())
/// ```
pub struct PhysMem {
    base: u64,
    bytes: Vec<u8>,
    /// Write-interval log: every mutation path records here, so warm-
    /// residency consumers can prove ranges unchanged between replays.
    dirty: DirtyLog,
}

impl fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysMem")
            .field("base", &format_args!("{:#x}", self.base))
            .field("size", &self.bytes.len())
            .finish()
    }
}

impl PhysMem {
    /// Creates `size` bytes of zeroed DRAM at physical address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not page-aligned or `base + size` overflows.
    pub fn new(base: u64, size: usize) -> Self {
        assert!(size % PAGE_SIZE == 0, "DRAM size must be page aligned");
        assert!(base.checked_add(size as u64).is_some(), "address overflow");
        PhysMem {
            base,
            bytes: vec![0; size],
            dirty: DirtyLog::default(),
        }
    }

    /// The DRAM's dirty-range log (read-only view).
    pub fn dirty(&self) -> &DirtyLog {
        &self.dirty
    }

    /// Mutable access to the dirty log (epoch bumps, cap tuning).
    pub fn dirty_mut(&mut self) -> &mut DirtyLog {
        &mut self.dirty
    }

    /// First valid physical address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// One past the last valid physical address.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// `true` when `[pa, pa+len)` lies inside DRAM.
    pub fn contains(&self, pa: u64, len: usize) -> bool {
        pa >= self.base && pa.saturating_add(len as u64) <= self.end()
    }

    fn offset(&self, pa: u64, len: usize) -> Result<usize, MemError> {
        if self.contains(pa, len) {
            Ok((pa - self.base) as usize)
        } else {
            Err(MemError { pa, len })
        }
    }

    /// Copies DRAM content at `pa` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when the range is out of bounds.
    pub fn read(&self, pa: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let off = self.offset(pa, buf.len())?;
        buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
        Ok(())
    }

    /// Copies `data` into DRAM at `pa`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when the range is out of bounds.
    pub fn write(&mut self, pa: u64, data: &[u8]) -> Result<(), MemError> {
        let off = self.offset(pa, data.len())?;
        self.bytes[off..off + data.len()].copy_from_slice(data);
        self.dirty.record(pa, data.len());
        Ok(())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn read_u32(&self, pa: u64) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read(pa, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn write_u32(&mut self, pa: u64, val: u32) -> Result<(), MemError> {
        self.write(pa, &val.to_le_bytes())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn read_u64(&self, pa: u64) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read(pa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn write_u64(&mut self, pa: u64, val: u64) -> Result<(), MemError> {
        self.write(pa, &val.to_le_bytes())
    }

    /// Fills `[pa, pa+len)` with `byte`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn fill(&mut self, pa: u64, len: usize, byte: u8) -> Result<(), MemError> {
        let off = self.offset(pa, len)?;
        self.bytes[off..off + len].fill(byte);
        self.dirty.record(pa, len);
        Ok(())
    }

    /// Borrow of the raw range (used by hashing/dump code on hot paths).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn slice(&self, pa: u64, len: usize) -> Result<&[u8], MemError> {
        let off = self.offset(pa, len)?;
        Ok(&self.bytes[off..off + len])
    }

    /// Mutable borrow of the raw range (zero-copy writers; pair with
    /// [`SharedMem::write_guard`]).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn slice_mut(&mut self, pa: u64, len: usize) -> Result<&mut [u8], MemError> {
        let off = self.offset(pa, len)?;
        // Conservative: the whole borrowed range counts as written.
        self.dirty.record(pa, len);
        Ok(&mut self.bytes[off..off + len])
    }
}

/// Cheap-to-clone shared handle to the machine's DRAM.
///
/// Uses a read/write lock: the GPU device model, drivers, recorder, and
/// replayer all hold clones.
#[derive(Debug, Clone)]
pub struct SharedMem {
    inner: Arc<RwLock<PhysMem>>,
}

impl SharedMem {
    /// Wraps `mem` for sharing.
    pub fn new(mem: PhysMem) -> Self {
        SharedMem {
            inner: Arc::new(RwLock::new(mem)),
        }
    }

    /// DRAM base address.
    pub fn base(&self) -> u64 {
        self.inner.read().base()
    }

    /// DRAM size in bytes.
    pub fn size(&self) -> usize {
        self.inner.read().size()
    }

    /// One past the last valid physical address.
    pub fn end(&self) -> u64 {
        self.inner.read().end()
    }

    /// `true` when `[pa, pa+len)` lies inside DRAM.
    pub fn contains(&self, pa: u64, len: usize) -> bool {
        self.inner.read().contains(pa, len)
    }

    /// See [`PhysMem::read`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn read(&self, pa: u64, buf: &mut [u8]) -> Result<(), MemError> {
        self.inner.read().read(pa, buf)
    }

    /// See [`PhysMem::write`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn write(&self, pa: u64, data: &[u8]) -> Result<(), MemError> {
        self.inner.write().write(pa, data)
    }

    /// See [`PhysMem::read_u32`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn read_u32(&self, pa: u64) -> Result<u32, MemError> {
        self.inner.read().read_u32(pa)
    }

    /// See [`PhysMem::write_u32`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn write_u32(&self, pa: u64, val: u32) -> Result<(), MemError> {
        self.inner.write().write_u32(pa, val)
    }

    /// See [`PhysMem::read_u64`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn read_u64(&self, pa: u64) -> Result<u64, MemError> {
        self.inner.read().read_u64(pa)
    }

    /// See [`PhysMem::write_u64`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn write_u64(&self, pa: u64, val: u64) -> Result<(), MemError> {
        self.inner.write().write_u64(pa, val)
    }

    /// See [`PhysMem::fill`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn fill(&self, pa: u64, len: usize, byte: u8) -> Result<(), MemError> {
        self.inner.write().fill(pa, len, byte)
    }

    /// Copies out `[pa, pa+len)` as a fresh vector (dump capture).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn read_vec(&self, pa: u64, len: usize) -> Result<Vec<u8>, MemError> {
        let g = self.inner.read();
        Ok(g.slice(pa, len)?.to_vec())
    }

    /// Runs `f` over the raw bytes of `[pa, pa+len)` without copying.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] when out of bounds.
    pub fn with_slice<R>(
        &self,
        pa: u64,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, MemError> {
        let g = self.inner.read();
        Ok(f(g.slice(pa, len)?))
    }

    /// `true` when both handles refer to the same DRAM.
    pub fn same_memory(&self, other: &SharedMem) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Acquires shared read access held across a whole multi-chunk
    /// transfer, instead of re-taking the lock per chunk.
    ///
    /// Lock-amortization contract: callers must finish all address
    /// translation *before* taking a guard and must not call any other
    /// `SharedMem` method while holding one (the underlying lock is not
    /// reentrant).
    pub fn read_guard(&self) -> MemReadGuard<'_> {
        MemReadGuard {
            guard: self.inner.read(),
        }
    }

    /// Acquires exclusive write access held across a whole multi-chunk
    /// transfer. Same contract as [`SharedMem::read_guard`].
    pub fn write_guard(&self) -> MemWriteGuard<'_> {
        MemWriteGuard {
            guard: self.inner.write(),
        }
    }

    /// A [`DirtyMark`] covering every DRAM write from now on.
    pub fn dirty_mark(&self) -> DirtyMark {
        self.inner.read().dirty().mark()
    }

    /// Current dirty-log epoch (bumped on GPU reset / AS switch).
    pub fn dirty_epoch(&self) -> u64 {
        self.inner.read().dirty().epoch()
    }

    /// Was physical `[pa, pa+len)` written since `mark`? See
    /// [`DirtyVerdict`] for the `Unknown` fallback semantics.
    pub fn dirty_since(&self, mark: DirtyMark, pa: u64, len: usize) -> DirtyVerdict {
        self.inner.read().dirty().dirty_since(mark, pa, len)
    }

    /// The written subranges of physical `[pa, pa+len)` since `mark`
    /// (see [`DirtyLog::dirty_intervals_since`]).
    pub fn dirty_intervals_since(
        &self,
        mark: DirtyMark,
        pa: u64,
        len: usize,
    ) -> Option<Vec<(u64, u64)>> {
        self.inner
            .read()
            .dirty()
            .dirty_intervals_since(mark, pa, len)
    }

    /// Invalidates every outstanding [`DirtyMark`]. The GPU device models
    /// call this on soft reset and address-space switches, alongside their
    /// `SoftTlb` flushes.
    pub fn bump_dirty_epoch(&self) {
        self.inner.write().dirty_mut().bump_epoch();
    }

    /// Bounds the dirty log's retained intervals (tests use a tiny cap to
    /// force the `Unknown` → hash-fallback path).
    pub fn set_dirty_log_cap(&self, cap: usize) {
        self.inner.write().dirty_mut().set_cap(cap);
    }
}

/// Shared access to the DRAM behind a [`SharedMem`], for bulk transfers
/// that would otherwise pay one lock acquisition per 4-KiB chunk.
///
/// Dereferences to [`PhysMem`], so all read accessors are available.
pub struct MemReadGuard<'a> {
    guard: RwLockReadGuard<'a, PhysMem>,
}

impl Deref for MemReadGuard<'_> {
    type Target = PhysMem;

    fn deref(&self) -> &PhysMem {
        &self.guard
    }
}

/// Exclusive access to the DRAM behind a [`SharedMem`], for bulk
/// transfers. Dereferences (mutably) to [`PhysMem`].
pub struct MemWriteGuard<'a> {
    guard: RwLockWriteGuard<'a, PhysMem>,
}

impl Deref for MemWriteGuard<'_> {
    type Target = PhysMem;

    fn deref(&self) -> &PhysMem {
        &self.guard
    }
}

impl DerefMut for MemWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut PhysMem {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip() {
        let mut m = PhysMem::new(0x8000_0000, 4 * PAGE_SIZE);
        m.write(0x8000_0010, b"hello").unwrap();
        let mut buf = [0u8; 5];
        m.read(0x8000_0010, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn scalar_accessors_are_little_endian() {
        let mut m = PhysMem::new(0, PAGE_SIZE);
        m.write_u32(0, 0x0102_0304).unwrap();
        assert_eq!(m.slice(0, 4).unwrap(), &[4, 3, 2, 1]);
        m.write_u64(8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_u64(8).unwrap(), 0x1122_3344_5566_7788);
    }

    #[test]
    fn out_of_range_is_an_error_not_a_panic() {
        let mut m = PhysMem::new(0x1000, PAGE_SIZE);
        assert_eq!(m.read_u32(0xfff), Err(MemError { pa: 0xfff, len: 4 }));
        assert!(m.write(0x1000 + PAGE_SIZE as u64 - 2, &[0; 4]).is_err());
        // Address arithmetic near u64::MAX must not overflow.
        assert!(m.read_u32(u64::MAX - 1).is_err());
    }

    #[test]
    fn fill_and_slice() {
        let mut m = PhysMem::new(0, PAGE_SIZE);
        m.fill(16, 8, 0xAB).unwrap();
        assert_eq!(m.slice(16, 8).unwrap(), &[0xAB; 8]);
        assert_eq!(m.slice(15, 1).unwrap(), &[0]);
    }

    #[test]
    fn shared_handles_alias() {
        let shared = SharedMem::new(PhysMem::new(0x4000, 2 * PAGE_SIZE));
        let clone = shared.clone();
        shared.write_u32(0x4000, 7).unwrap();
        assert_eq!(clone.read_u32(0x4000).unwrap(), 7);
        assert!(shared.same_memory(&clone));
        assert_eq!(shared.read_vec(0x4000, 4).unwrap(), vec![7, 0, 0, 0]);
        let sum = shared
            .with_slice(0x4000, 4, |s| s.iter().map(|&b| u32::from(b)).sum::<u32>())
            .unwrap();
        assert_eq!(sum, 7);
        assert!(shared.contains(0x4000, PAGE_SIZE));
        assert_eq!(shared.end(), 0x4000 + 2 * PAGE_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_size_panics() {
        let _ = PhysMem::new(0, 100);
    }

    #[test]
    fn guards_amortize_locking_across_chunks() {
        let shared = SharedMem::new(PhysMem::new(0, 4 * PAGE_SIZE));
        {
            let mut g = shared.write_guard();
            g.write(0, b"abc").unwrap();
            g.write(PAGE_SIZE as u64, b"def").unwrap();
        }
        let g = shared.read_guard();
        let mut buf = [0u8; 3];
        g.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        g.read(PAGE_SIZE as u64, &mut buf).unwrap();
        assert_eq!(&buf, b"def");
        assert!(g.read(4 * PAGE_SIZE as u64, &mut buf).is_err());
    }
}
