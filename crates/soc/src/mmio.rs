//! The memory-mapped register contract.
//!
//! Everything the CPU knows about a device goes through 32-bit register
//! reads and writes at offsets inside the device's MMIO window — the narrow
//! interface the paper records at. Reads may have side effects (the device
//! model decides), which is why [`Mmio::read32`] takes `&mut self`.

/// 32-bit memory-mapped register access.
///
/// Offsets are byte offsets from the device's MMIO window base and must be
/// 4-byte aligned. Unknown offsets read as `0` and ignore writes, matching
/// how the real buses in these SoCs behave (no aborts for in-window holes).
pub trait Mmio {
    /// Reads the register at byte offset `off`.
    fn read32(&mut self, off: u32) -> u32;

    /// Writes `val` to the register at byte offset `off`.
    fn write32(&mut self, off: u32, val: u32);
}

impl<T: Mmio + ?Sized> Mmio for &mut T {
    fn read32(&mut self, off: u32) -> u32 {
        (**self).read32(off)
    }
    fn write32(&mut self, off: u32, val: u32) {
        (**self).write32(off, val)
    }
}

/// Read-modify-write helper: updates only the bits selected by `mask`.
///
/// This is the semantics of the paper's `RegWrite(r, mask, val)` replay
/// action (Table 2): "`mask` selects the written bits; other bits are
/// unchanged".
pub fn write_masked<M: Mmio + ?Sized>(dev: &mut M, off: u32, mask: u32, val: u32) {
    if mask == u32::MAX {
        dev.write32(off, val);
    } else {
        let old = dev.read32(off);
        dev.write32(off, (old & !mask) | (val & mask));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Scratch {
        regs: [u32; 4],
        reads: u32,
    }

    impl Mmio for Scratch {
        fn read32(&mut self, off: u32) -> u32 {
            self.reads += 1;
            self.regs[(off / 4) as usize]
        }
        fn write32(&mut self, off: u32, val: u32) {
            self.regs[(off / 4) as usize] = val;
        }
    }

    #[test]
    fn masked_write_preserves_unselected_bits() {
        let mut d = Scratch::default();
        d.write32(0, 0xFFFF_0000);
        write_masked(&mut d, 0, 0x0000_00FF, 0x0000_00AB);
        assert_eq!(d.read32(0), 0xFFFF_00AB);
    }

    #[test]
    fn full_mask_skips_the_read() {
        let mut d = Scratch::default();
        write_masked(&mut d, 4, u32::MAX, 7);
        assert_eq!(d.regs[1], 7);
        assert_eq!(d.reads, 0, "full-mask write must not read");
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        let mut d = Scratch::default();
        {
            let mut obj: &mut dyn Mmio = &mut d;
            obj.write32(8, 3);
            // Exercise the blanket `impl Mmio for &mut T` forwarding.
            assert_eq!(Mmio::read32(&mut obj, 8), 3);
        }
        assert_eq!(d.regs[2], 3);
    }
}
