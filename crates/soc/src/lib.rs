//! SoC substrate: the hardware a GPU stack (or the GPUReplay replayer)
//! actually touches.
//!
//! The paper's GPU model (§3.2, Table 1) assumes the CPU/GPU interface is
//! memory-mapped registers, shared DRAM, and interrupts, with GPU page
//! tables living *in* that shared DRAM and power/clocks owned by SoC-level
//! controllers. This crate provides exactly those pieces:
//!
//! * [`PhysMem`] / [`SharedMem`] — byte-addressable simulated DRAM shared by
//!   CPU and GPU;
//! * [`FrameAllocator`] — physical page-frame allocation (the driver's and
//!   the replayer's view of "allocate GPU memory");
//! * [`Mmio`] — the register-access contract devices expose;
//! * [`IrqController`] — level-style interrupt lines;
//! * [`Pmc`] — the power/clock controller the baremetal replayer must
//!   program itself (§6.3);
//! * [`Mailbox`] — a firmware property channel (RaspberryPi-style) that the
//!   kernel driver uses for power, mirroring the paper's v3d experience.
//!
//! # Example
//!
//! ```
//! use gr_soc::{PhysMem, PAGE_SIZE};
//!
//! let mut mem = PhysMem::new(0x8000_0000, 16 * PAGE_SIZE);
//! mem.write_u32(0x8000_0000, 0xdead_beef)?;
//! assert_eq!(mem.read_u32(0x8000_0000)?, 0xdead_beef);
//! # Ok::<(), gr_soc::MemError>(())
//! ```

pub mod dirty;
pub mod frames;
pub mod irq;
pub mod mailbox;
pub mod mem;
pub mod mmio;
pub mod pmc;

pub use dirty::{DirtyLog, DirtyMark, DirtyVerdict};
pub use frames::FrameAllocator;
pub use irq::{IrqController, IrqLine};
pub use mailbox::{Mailbox, MboxRequest, MboxStatus};
pub use mem::{MemError, MemReadGuard, MemWriteGuard, PhysMem, SharedMem, PAGE_SIZE};
pub use mmio::Mmio;
pub use pmc::{Pmc, PmcDomain, SharedPmc};
