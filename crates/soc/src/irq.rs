//! Interrupt lines.
//!
//! Devices raise lines; CPU-side code (driver IRQ handlers, the replayer's
//! `WaitIrq` action) observes and clears them. Lines are level-style with a
//! pending latch, which is all the paper's GPU model requires.

use std::sync::Arc;

use parking_lot::Mutex;

/// Identifier of one interrupt line on the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IrqLine(pub u32);

impl std::fmt::Display for IrqLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "irq{}", self.0)
    }
}

#[derive(Debug, Default)]
struct IrqInner {
    pending: u64,
    raised_total: u64,
}

/// A small interrupt controller with up to 64 lines.
///
/// # Example
///
/// ```
/// use gr_soc::{IrqController, IrqLine};
///
/// let irq = IrqController::new();
/// irq.raise(IrqLine(3));
/// assert!(irq.pending(IrqLine(3)));
/// irq.clear(IrqLine(3));
/// assert!(!irq.any_pending());
/// ```
#[derive(Debug, Clone, Default)]
pub struct IrqController {
    inner: Arc<Mutex<IrqInner>>,
}

impl IrqController {
    /// Creates a controller with all lines idle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latches `line` pending.
    ///
    /// # Panics
    ///
    /// Panics if `line.0 >= 64`.
    pub fn raise(&self, line: IrqLine) {
        assert!(line.0 < 64, "irq line out of range");
        let mut g = self.inner.lock();
        g.pending |= 1 << line.0;
        g.raised_total += 1;
    }

    /// Clears the pending latch of `line`.
    pub fn clear(&self, line: IrqLine) {
        assert!(line.0 < 64, "irq line out of range");
        self.inner.lock().pending &= !(1 << line.0);
    }

    /// `true` when `line` is latched.
    pub fn pending(&self, line: IrqLine) -> bool {
        assert!(line.0 < 64, "irq line out of range");
        self.inner.lock().pending & (1 << line.0) != 0
    }

    /// `true` when any line is latched.
    pub fn any_pending(&self) -> bool {
        self.inner.lock().pending != 0
    }

    /// Bitmask of all latched lines.
    pub fn pending_mask(&self) -> u64 {
        self.inner.lock().pending
    }

    /// Total raise events since creation (validation uses this to compare
    /// interrupt counts across record and replay runs).
    pub fn raised_total(&self) -> u64 {
        self.inner.lock().raised_total
    }

    /// Clears all latches (machine/GPU reset).
    pub fn reset(&self) {
        self.inner.lock().pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_latches_until_cleared() {
        let c = IrqController::new();
        c.raise(IrqLine(0));
        c.raise(IrqLine(5));
        assert!(c.pending(IrqLine(0)));
        assert!(c.pending(IrqLine(5)));
        assert_eq!(c.pending_mask(), 0b100001);
        c.clear(IrqLine(0));
        assert!(!c.pending(IrqLine(0)));
        assert!(c.any_pending());
        c.reset();
        assert!(!c.any_pending());
    }

    #[test]
    fn raise_total_counts_every_event() {
        let c = IrqController::new();
        c.raise(IrqLine(1));
        c.raise(IrqLine(1));
        c.clear(IrqLine(1));
        c.raise(IrqLine(1));
        assert_eq!(c.raised_total(), 3);
    }

    #[test]
    fn clones_share_state() {
        let a = IrqController::new();
        let b = a.clone();
        a.raise(IrqLine(7));
        assert!(b.pending(IrqLine(7)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn line_64_panics() {
        IrqController::new().raise(IrqLine(64));
    }
}
