//! Firmware property mailbox.
//!
//! On the paper's v3d platform (Raspberry Pi 4) the kernel configures GPU
//! power by exchanging property messages with the VideoCore firmware rather
//! than by poking registers directly; the baremetal replayer had to port
//! exactly that exchange (§6.3, citing the RaspberryPi mailbox property
//! interface). This module models such a channel: requests complete after a
//! firmware-processing delay and apply their effect to the [`SharedPmc`].

use std::collections::VecDeque;

use gr_sim::{SimClock, SimDuration, SimTime};

use crate::pmc::{Pmc, PmcDomain, SharedPmc};

/// Firmware processing latency per request. Real mailbox round trips are
/// tens of microseconds.
pub const MBOX_DELAY: SimDuration = SimDuration::from_micros(60);

/// A property request the firmware understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MboxRequest {
    /// Power a domain on or off.
    SetPower {
        /// Target domain.
        domain: PmcDomain,
        /// Desired state.
        on: bool,
    },
    /// Reprogram a domain clock.
    SetClock {
        /// Target domain.
        domain: PmcDomain,
        /// New rate in MHz.
        mhz: u32,
    },
    /// Query a domain clock (response carries MHz).
    GetClock {
        /// Queried domain.
        domain: PmcDomain,
    },
}

/// Completion state of the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MboxStatus {
    /// No request in flight.
    Idle,
    /// Firmware still processing; poll again later.
    Busy,
    /// Response ready; collect with [`Mailbox::take_response`].
    Done,
}

#[derive(Debug)]
struct InFlight {
    req: MboxRequest,
    done_at: SimTime,
}

/// The mailbox channel. Single-request-deep like the hardware FIFO the
/// firmware interface exposes to one client.
#[derive(Debug)]
pub struct Mailbox {
    clock: SimClock,
    pmc: SharedPmc,
    in_flight: VecDeque<InFlight>,
    response: Option<u32>,
}

impl Mailbox {
    /// Creates a mailbox that applies requests to `pmc`.
    pub fn new(clock: SimClock, pmc: SharedPmc) -> Self {
        Mailbox {
            clock,
            pmc,
            in_flight: VecDeque::new(),
            response: None,
        }
    }

    /// Submits `req`; completes [`MBOX_DELAY`] later.
    ///
    /// # Errors
    ///
    /// Returns `Err(req)` when a request is already in flight (callers must
    /// poll to completion first, as the real single-slot channel requires).
    pub fn submit(&mut self, req: MboxRequest) -> Result<(), MboxRequest> {
        if !self.in_flight.is_empty() || self.response.is_some() {
            return Err(req);
        }
        self.in_flight.push_back(InFlight {
            req,
            done_at: self.clock.now() + MBOX_DELAY,
        });
        Ok(())
    }

    /// Polls the channel, applying the request's effect once its firmware
    /// delay has elapsed.
    pub fn status(&mut self) -> MboxStatus {
        if self.response.is_some() {
            return MboxStatus::Done;
        }
        let Some(front) = self.in_flight.front() else {
            return MboxStatus::Idle;
        };
        if self.clock.now() < front.done_at {
            return MboxStatus::Busy;
        }
        let fin = self.in_flight.pop_front().expect("front checked above");
        let resp = self.apply(fin.req);
        self.response = Some(resp);
        MboxStatus::Done
    }

    /// Collects the response word of a completed request.
    pub fn take_response(&mut self) -> Option<u32> {
        self.response.take()
    }

    /// Earliest instant at which a pending request will complete (lets a
    /// polling loop advance virtual time efficiently).
    pub fn next_completion(&self) -> Option<SimTime> {
        self.in_flight.front().map(|f| f.done_at)
    }

    fn apply(&mut self, req: MboxRequest) -> u32 {
        match req {
            MboxRequest::SetPower { domain, on } => {
                self.pmc.write32(Pmc::pwr_ctrl_off(domain), u32::from(on));
                0
            }
            MboxRequest::SetClock { domain, mhz } => {
                self.pmc.write32(Pmc::clk_rate_off(domain), mhz);
                0
            }
            MboxRequest::GetClock { domain } => self.pmc.clock_mhz(domain),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmc::SETTLE_DELAY;

    fn mk() -> (SimClock, SharedPmc, Mailbox) {
        let clock = SimClock::new();
        let pmc = SharedPmc::new(Pmc::new(clock.clone()));
        let mbox = Mailbox::new(clock.clone(), pmc.clone());
        (clock, pmc, mbox)
    }

    #[test]
    fn request_completes_after_delay() {
        let (clock, pmc, mut mbox) = mk();
        mbox.submit(MboxRequest::SetPower {
            domain: PmcDomain::GpuCore,
            on: true,
        })
        .unwrap();
        assert_eq!(mbox.status(), MboxStatus::Busy);
        clock.advance_to(mbox.next_completion().unwrap());
        assert_eq!(mbox.status(), MboxStatus::Done);
        assert_eq!(mbox.take_response(), Some(0));
        clock.advance(SETTLE_DELAY);
        assert!(pmc.is_stable(PmcDomain::GpuCore));
        assert_eq!(mbox.status(), MboxStatus::Idle);
    }

    #[test]
    fn single_slot_rejects_overlap() {
        let (_, _, mut mbox) = mk();
        let req = MboxRequest::GetClock {
            domain: PmcDomain::GpuCore,
        };
        mbox.submit(req).unwrap();
        assert_eq!(mbox.submit(req), Err(req));
    }

    #[test]
    fn get_clock_reports_rate() {
        let (clock, _, mut mbox) = mk();
        mbox.submit(MboxRequest::SetPower {
            domain: PmcDomain::GpuMem,
            on: true,
        })
        .unwrap();
        clock.advance(MBOX_DELAY);
        assert_eq!(mbox.status(), MboxStatus::Done);
        mbox.take_response();

        mbox.submit(MboxRequest::SetClock {
            domain: PmcDomain::GpuMem,
            mhz: 450,
        })
        .unwrap();
        clock.advance(MBOX_DELAY);
        mbox.status();
        mbox.take_response();

        mbox.submit(MboxRequest::GetClock {
            domain: PmcDomain::GpuMem,
        })
        .unwrap();
        clock.advance(MBOX_DELAY);
        assert_eq!(mbox.status(), MboxStatus::Done);
        assert_eq!(mbox.take_response(), Some(450));
    }

    #[test]
    fn response_must_be_collected_before_next_submit() {
        let (clock, _, mut mbox) = mk();
        let req = MboxRequest::GetClock {
            domain: PmcDomain::GpuCore,
        };
        mbox.submit(req).unwrap();
        clock.advance(MBOX_DELAY);
        assert_eq!(mbox.status(), MboxStatus::Done);
        assert_eq!(mbox.submit(req), Err(req), "uncollected response blocks");
        mbox.take_response();
        mbox.submit(req).unwrap();
    }
}
