//! Physical page-frame allocation.
//!
//! Both the full GPU driver and the replayer's nano driver need physical
//! pages to back GPU virtual mappings. The replayer additionally promises
//! (§5.1) that "allocated physical pages contain no sensitive data", so
//! [`FrameAllocator::alloc_zeroed`] scrubs frames through the shared DRAM
//! handle before returning them.

use crate::mem::{MemError, SharedMem, PAGE_SIZE};

/// A bitmap allocator over a contiguous physical frame range.
///
/// # Example
///
/// ```
/// use gr_soc::{FrameAllocator, PAGE_SIZE};
///
/// let mut alloc = FrameAllocator::new(0x8000_0000, 8);
/// let f = alloc.alloc().unwrap();
/// assert_eq!(f, 0x8000_0000);
/// alloc.free(f).unwrap();
/// assert_eq!(alloc.used(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    base: u64,
    used: Vec<bool>,
    in_use: usize,
    cursor: usize,
}

/// Error returned by [`FrameAllocator::free`] for addresses that were not
/// live allocations from this allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameFreeError {
    /// The rejected physical address.
    pub pa: u64,
}

impl std::fmt::Display for FrameFreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid frame free: pa={:#x}", self.pa)
    }
}

impl std::error::Error for FrameFreeError {}

impl FrameAllocator {
    /// Creates an allocator managing `frames` page frames starting at
    /// physical address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned.
    pub fn new(base: u64, frames: usize) -> Self {
        assert!(
            base % PAGE_SIZE as u64 == 0,
            "frame base must be page aligned"
        );
        FrameAllocator {
            base,
            used: vec![false; frames],
            in_use: 0,
            cursor: 0,
        }
    }

    /// Total frames managed.
    pub fn capacity(&self) -> usize {
        self.used.len()
    }

    /// Frames currently allocated.
    pub fn used(&self) -> usize {
        self.in_use
    }

    /// Frames still free.
    pub fn free_count(&self) -> usize {
        self.capacity() - self.in_use
    }

    /// Allocates one frame, returning its physical address.
    ///
    /// Returns `None` when DRAM is exhausted. Uses a rotating cursor so
    /// freed frames are not immediately reused — this catches stale-pointer
    /// bugs in dump loading the same way real allocators shake out
    /// use-after-free.
    pub fn alloc(&mut self) -> Option<u64> {
        let n = self.used.len();
        if self.in_use == n {
            return None;
        }
        for probe in 0..n {
            let idx = (self.cursor + probe) % n;
            if !self.used[idx] {
                self.used[idx] = true;
                self.in_use += 1;
                self.cursor = (idx + 1) % n;
                return Some(self.base + (idx * PAGE_SIZE) as u64);
            }
        }
        None
    }

    /// Allocates `count` *contiguous* frames (needed for multi-page register
    /// save areas and checkpoint buffers), returning the first address.
    pub fn alloc_contig(&mut self, count: usize) -> Option<u64> {
        if count == 0 || count > self.used.len() {
            return None;
        }
        let n = self.used.len();
        let mut run = 0;
        for idx in 0..n {
            if self.used[idx] {
                run = 0;
            } else {
                run += 1;
                if run == count {
                    let start = idx + 1 - count;
                    for i in start..=idx {
                        self.used[i] = true;
                    }
                    self.in_use += count;
                    return Some(self.base + (start * PAGE_SIZE) as u64);
                }
            }
        }
        None
    }

    /// Allocates one frame and zero-fills it through `mem`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the frame lies outside `mem` (a machine
    /// wiring bug).
    pub fn alloc_zeroed(&mut self, mem: &SharedMem) -> Result<Option<u64>, MemError> {
        match self.alloc() {
            Some(pa) => {
                mem.fill(pa, PAGE_SIZE, 0)?;
                Ok(Some(pa))
            }
            None => Ok(None),
        }
    }

    /// Returns a frame to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`FrameFreeError`] if `pa` is unaligned, out of range, or not
    /// currently allocated.
    pub fn free(&mut self, pa: u64) -> Result<(), FrameFreeError> {
        let err = FrameFreeError { pa };
        if pa < self.base || (pa - self.base) % PAGE_SIZE as u64 != 0 {
            return Err(err);
        }
        let idx = ((pa - self.base) / PAGE_SIZE as u64) as usize;
        if idx >= self.used.len() || !self.used[idx] {
            return Err(err);
        }
        self.used[idx] = false;
        self.in_use -= 1;
        Ok(())
    }

    /// `true` if `pa` is a currently-allocated frame of this allocator.
    pub fn is_allocated(&self, pa: u64) -> bool {
        if pa < self.base || (pa - self.base) % PAGE_SIZE as u64 != 0 {
            return false;
        }
        let idx = ((pa - self.base) / PAGE_SIZE as u64) as usize;
        idx < self.used.len() && self.used[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PhysMem;

    #[test]
    fn alloc_free_cycle() {
        let mut a = FrameAllocator::new(0x1000, 4);
        let f0 = a.alloc().unwrap();
        let f1 = a.alloc().unwrap();
        assert_ne!(f0, f1);
        assert_eq!(a.used(), 2);
        assert!(a.is_allocated(f0));
        a.free(f0).unwrap();
        assert!(!a.is_allocated(f0));
        assert_eq!(a.free_count(), 3);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = FrameAllocator::new(0, 2);
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_some());
        assert_eq!(a.alloc(), None);
        assert_eq!(a.alloc_contig(1), None);
    }

    #[test]
    fn contig_runs_are_contiguous() {
        let mut a = FrameAllocator::new(0, 8);
        let first = a.alloc().unwrap(); // occupy frame 0
        let run = a.alloc_contig(3).unwrap();
        assert_eq!(run, first + PAGE_SIZE as u64);
        for i in 0..3 {
            assert!(a.is_allocated(run + (i * PAGE_SIZE) as u64));
        }
        assert_eq!(a.alloc_contig(5), None, "only 4 frames left");
        assert_eq!(a.alloc_contig(0), None);
    }

    #[test]
    fn double_free_and_foreign_free_rejected() {
        let mut a = FrameAllocator::new(0x1000, 2);
        let f = a.alloc().unwrap();
        a.free(f).unwrap();
        assert_eq!(a.free(f), Err(FrameFreeError { pa: f }));
        assert!(a.free(0x500).is_err(), "below base");
        assert!(a.free(0x1001).is_err(), "unaligned");
        assert!(
            a.free(0x1000 + 10 * PAGE_SIZE as u64).is_err(),
            "beyond range"
        );
    }

    #[test]
    fn zeroed_alloc_scrubs_previous_content() {
        let mem = SharedMem::new(PhysMem::new(0, 4 * PAGE_SIZE));
        let mut a = FrameAllocator::new(0, 4);
        let f = a.alloc().unwrap();
        mem.fill(f, PAGE_SIZE, 0xEE).unwrap();
        a.free(f).unwrap();
        // Cursor rotation means we may get a different frame; force reuse by
        // draining the pool.
        let mut got = Vec::new();
        while let Some(pa) = a.alloc_zeroed(&mem).unwrap() {
            got.push(pa);
        }
        assert_eq!(got.len(), 4);
        for pa in got {
            let v = mem.read_vec(pa, PAGE_SIZE).unwrap();
            assert!(v.iter().all(|&b| b == 0), "frame {pa:#x} not scrubbed");
        }
    }

    #[test]
    fn cursor_rotates_so_frees_are_not_immediately_reused() {
        let mut a = FrameAllocator::new(0, 4);
        let f0 = a.alloc().unwrap();
        a.free(f0).unwrap();
        let f1 = a.alloc().unwrap();
        assert_ne!(f0, f1, "rotating cursor should avoid immediate reuse");
    }
}
