//! The SoC power/clock controller (PMC).
//!
//! §6.3 of the paper: "Modern GPUs depend on power/clock domains at the SoC
//! level. [...] the baremetal replayer must configure GPU power and clocks
//! itself", by replaying the register/firmware accesses extracted from the
//! kernel. This module is that controller: a register-programmed block with
//! per-domain power switches (with settle delays) and clock dividers.
//!
//! Register map (domain `d`, stride `0x10`):
//!
//! | offset            | register       | behaviour |
//! |-------------------|----------------|-----------|
//! | `0x00 + d*0x10`   | `PWR_CTRL`     | write 1: begin power-up; write 0: immediate power-down |
//! | `0x04 + d*0x10`   | `PWR_STATUS`   | 0 = off, 1 = settling, 2 = on |
//! | `0x08 + d*0x10`   | `CLK_RATE`     | clock in MHz (read/write; writes while on re-settle briefly) |

use std::sync::Arc;

use gr_sim::{SimClock, SimDuration, SimTime};
use parking_lot::Mutex;

use crate::mmio::Mmio;

/// Power domains the machine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PmcDomain {
    /// GPU shader cores + job/control front-end.
    GpuCore,
    /// GPU MMU/L2 complex.
    GpuMem,
}

impl PmcDomain {
    /// All domains, in register order.
    pub const ALL: [PmcDomain; 2] = [PmcDomain::GpuCore, PmcDomain::GpuMem];

    /// Register-bank index of the domain.
    pub fn index(self) -> usize {
        match self {
            PmcDomain::GpuCore => 0,
            PmcDomain::GpuMem => 1,
        }
    }
}

/// `PWR_STATUS` values.
pub const PWR_STATUS_OFF: u32 = 0;
/// Domain is ramping; not yet usable.
pub const PWR_STATUS_SETTLING: u32 = 1;
/// Domain powered and stable.
pub const PWR_STATUS_ON: u32 = 2;

/// How long a domain takes to stabilize after power-on or a clock change.
/// Real SoCs take tens to hundreds of microseconds; the driver comments the
/// paper cites (`kbase_pm_init_hw`, `gm20b_tegra_unrailgate`) pace exactly
/// this interval.
pub const SETTLE_DELAY: SimDuration = SimDuration::from_micros(200);

#[derive(Debug, Clone, Copy)]
struct DomainState {
    powered: bool,
    settle_until: SimTime,
    clock_mhz: u32,
}

/// The power/clock controller block.
#[derive(Debug)]
pub struct Pmc {
    clock: SimClock,
    domains: [DomainState; 2],
    default_mhz: [u32; 2],
}

impl Pmc {
    /// Creates a PMC with all domains off and default clock plans.
    pub fn new(clock: SimClock) -> Self {
        let default = DomainState {
            powered: false,
            settle_until: SimTime::ZERO,
            clock_mhz: 0,
        };
        Pmc {
            clock,
            domains: [default; 2],
            default_mhz: [600, 800], // core, mem: typical mobile GPU rates
        }
    }

    /// `true` when `domain` is powered and past its settle window.
    pub fn is_stable(&self, domain: PmcDomain) -> bool {
        let d = &self.domains[domain.index()];
        d.powered && self.clock.now() >= d.settle_until
    }

    /// Current clock of `domain` in MHz (0 when off).
    pub fn clock_mhz(&self, domain: PmcDomain) -> u32 {
        let d = &self.domains[domain.index()];
        if d.powered {
            d.clock_mhz
        } else {
            0
        }
    }

    /// Byte offset of `PWR_CTRL` for `domain`.
    pub fn pwr_ctrl_off(domain: PmcDomain) -> u32 {
        (domain.index() as u32) * 0x10
    }

    /// Byte offset of `PWR_STATUS` for `domain`.
    pub fn pwr_status_off(domain: PmcDomain) -> u32 {
        (domain.index() as u32) * 0x10 + 4
    }

    /// Byte offset of `CLK_RATE` for `domain`.
    pub fn clk_rate_off(domain: PmcDomain) -> u32 {
        (domain.index() as u32) * 0x10 + 8
    }

    fn domain_of(off: u32) -> Option<(usize, u32)> {
        let d = (off / 0x10) as usize;
        if d < 2 {
            Some((d, off % 0x10))
        } else {
            None
        }
    }
}

impl Mmio for Pmc {
    fn read32(&mut self, off: u32) -> u32 {
        let Some((d, reg)) = Pmc::domain_of(off) else {
            return 0;
        };
        let now = self.clock.now();
        let st = &self.domains[d];
        match reg {
            0x0 => u32::from(st.powered),
            0x4 => {
                if !st.powered {
                    PWR_STATUS_OFF
                } else if now < st.settle_until {
                    PWR_STATUS_SETTLING
                } else {
                    PWR_STATUS_ON
                }
            }
            0x8 => st.clock_mhz,
            _ => 0,
        }
    }

    fn write32(&mut self, off: u32, val: u32) {
        let Some((d, reg)) = Pmc::domain_of(off) else {
            return;
        };
        let now = self.clock.now();
        let st = &mut self.domains[d];
        match reg {
            0x0 => {
                if val & 1 != 0 {
                    if !st.powered {
                        st.powered = true;
                        st.settle_until = now + SETTLE_DELAY;
                        if st.clock_mhz == 0 {
                            st.clock_mhz = self.default_mhz[d];
                        }
                    }
                } else {
                    st.powered = false;
                    st.clock_mhz = 0;
                }
            }
            0x8 => {
                st.clock_mhz = val;
                if st.powered {
                    st.settle_until = now + SETTLE_DELAY;
                }
            }
            _ => {}
        }
    }
}

/// Shared handle to the PMC; the GPU device model, the kernel drivers, the
/// firmware mailbox, and the baremetal replayer all hold clones.
#[derive(Debug, Clone)]
pub struct SharedPmc {
    inner: Arc<Mutex<Pmc>>,
}

impl SharedPmc {
    /// Wraps a PMC for sharing.
    pub fn new(pmc: Pmc) -> Self {
        SharedPmc {
            inner: Arc::new(Mutex::new(pmc)),
        }
    }

    /// See [`Pmc::is_stable`].
    pub fn is_stable(&self, domain: PmcDomain) -> bool {
        self.inner.lock().is_stable(domain)
    }

    /// See [`Pmc::clock_mhz`].
    pub fn clock_mhz(&self, domain: PmcDomain) -> u32 {
        self.inner.lock().clock_mhz(domain)
    }

    /// Register write through the shared handle.
    pub fn write32(&self, off: u32, val: u32) {
        self.inner.lock().write32(off, val);
    }

    /// Register read through the shared handle.
    pub fn read32(&self, off: u32) -> u32 {
        self.inner.lock().read32(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> (SimClock, Pmc) {
        let clock = SimClock::new();
        let pmc = Pmc::new(clock.clone());
        (clock, pmc)
    }

    #[test]
    fn power_up_requires_settle() {
        let (clock, mut pmc) = mk();
        let ctrl = Pmc::pwr_ctrl_off(PmcDomain::GpuCore);
        let status = Pmc::pwr_status_off(PmcDomain::GpuCore);
        assert_eq!(pmc.read32(status), PWR_STATUS_OFF);
        pmc.write32(ctrl, 1);
        assert_eq!(pmc.read32(status), PWR_STATUS_SETTLING);
        assert!(!pmc.is_stable(PmcDomain::GpuCore));
        clock.advance(SETTLE_DELAY);
        assert_eq!(pmc.read32(status), PWR_STATUS_ON);
        assert!(pmc.is_stable(PmcDomain::GpuCore));
        assert_eq!(pmc.clock_mhz(PmcDomain::GpuCore), 600);
    }

    #[test]
    fn power_down_is_immediate() {
        let (clock, mut pmc) = mk();
        pmc.write32(Pmc::pwr_ctrl_off(PmcDomain::GpuMem), 1);
        clock.advance(SETTLE_DELAY);
        assert!(pmc.is_stable(PmcDomain::GpuMem));
        pmc.write32(Pmc::pwr_ctrl_off(PmcDomain::GpuMem), 0);
        assert!(!pmc.is_stable(PmcDomain::GpuMem));
        assert_eq!(pmc.clock_mhz(PmcDomain::GpuMem), 0);
    }

    #[test]
    fn clock_change_resettles() {
        let (clock, mut pmc) = mk();
        let d = PmcDomain::GpuCore;
        pmc.write32(Pmc::pwr_ctrl_off(d), 1);
        clock.advance(SETTLE_DELAY);
        pmc.write32(Pmc::clk_rate_off(d), 300);
        assert!(!pmc.is_stable(d), "clock change must re-settle");
        clock.advance(SETTLE_DELAY);
        assert!(pmc.is_stable(d));
        assert_eq!(pmc.read32(Pmc::clk_rate_off(d)), 300);
    }

    #[test]
    fn unknown_offsets_are_inert() {
        let (_, mut pmc) = mk();
        pmc.write32(0x1000, 77);
        assert_eq!(pmc.read32(0x1000), 0);
        assert_eq!(pmc.read32(0x0C), 0, "hole inside a domain bank");
    }

    #[test]
    fn shared_handle_aliases() {
        let (clock, pmc) = mk();
        let shared = SharedPmc::new(pmc);
        let other = shared.clone();
        shared.write32(Pmc::pwr_ctrl_off(PmcDomain::GpuCore), 1);
        clock.advance(SETTLE_DELAY);
        assert!(other.is_stable(PmcDomain::GpuCore));
        assert_eq!(
            other.read32(Pmc::pwr_status_off(PmcDomain::GpuCore)),
            PWR_STATUS_ON
        );
    }

    #[test]
    fn redundant_power_on_does_not_restart_settle() {
        let (clock, mut pmc) = mk();
        let d = PmcDomain::GpuCore;
        pmc.write32(Pmc::pwr_ctrl_off(d), 1);
        clock.advance(SETTLE_DELAY);
        pmc.write32(Pmc::pwr_ctrl_off(d), 1);
        assert!(pmc.is_stable(d), "idempotent power-on must stay stable");
    }
}
