//! Executes a decoded [`KernelOp`] against GPU virtual memory.
//!
//! The device models hand this module a [`VaMem`] — an accessor that
//! translates GPU virtual addresses through the device's page tables. A
//! translation failure surfaces as [`ExecError::MemFault`], which the
//! device turns into an MMU fault interrupt (the §7.2 fault-injection
//! experiments corrupt PTEs to trigger exactly this path).
//!
//! The hot path threads an [`ExecScratch`] arena through execution so a
//! replayed job reuses the same tensor staging buffers run after run
//! instead of allocating fresh `Vec`s per access. Buffer reuse never
//! changes values or f32 accumulation order: the kernels in
//! [`super::kernels`] see exactly the slices they saw before (gated by
//! `val72_correctness`).

use std::fmt;

use super::bytecode::{DecodeError, KernelOp};
use super::kernels as k;

/// GPU-virtual-address memory access used by kernel execution.
pub trait VaMem {
    /// Reads `len` bytes at virtual address `va`.
    ///
    /// # Errors
    ///
    /// Returns the faulting VA when translation or a physical access fails.
    fn read_bytes(&mut self, va: u64, len: usize) -> Result<Vec<u8>, u64>;

    /// Writes `data` at virtual address `va`.
    ///
    /// # Errors
    ///
    /// Returns the faulting VA when translation or a physical access fails.
    fn write_bytes(&mut self, va: u64, data: &[u8]) -> Result<(), u64>;

    /// Reads `n` little-endian f32s at `va` into `out` (cleared first).
    ///
    /// The default stages through [`VaMem::read_bytes`];
    /// [`crate::device::TranslatingVaMem`] overrides it with an
    /// allocation-free path.
    ///
    /// # Errors
    ///
    /// Returns the faulting VA when translation or a physical access fails.
    fn read_f32s_into(&mut self, va: u64, n: usize, out: &mut Vec<f32>) -> Result<(), u64> {
        let bytes = self.read_bytes(va, n * 4)?;
        out.clear();
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4"))),
        );
        Ok(())
    }

    /// Writes `vals` as little-endian f32s at `va`.
    ///
    /// # Errors
    ///
    /// Returns the faulting VA when translation or a physical access fails.
    fn write_f32s(&mut self, va: u64, vals: &[f32]) -> Result<(), u64> {
        let mut bytes = Vec::with_capacity(vals.len() * 4);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(va, &bytes)
    }
}

/// Why kernel execution failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A virtual access could not be translated (MMU fault).
    MemFault {
        /// Faulting virtual address.
        va: u64,
    },
    /// The shader blob did not decode.
    BadShader(DecodeError),
    /// Dimensions within the op were inconsistent.
    BadParams(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MemFault { va } => write!(f, "GPU memory fault at va={va:#x}"),
            ExecError::BadShader(e) => write!(f, "bad shader blob: {e}"),
            ExecError::BadParams(msg) => write!(f, "bad kernel parameters: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<DecodeError> for ExecError {
    fn from(e: DecodeError) -> Self {
        ExecError::BadShader(e)
    }
}

/// Reusable tensor staging buffers threaded through [`execute_with`].
///
/// Owned by the device models and kept alive across jobs, so the replay
/// hot loop stops allocating per kernel access. The three slots cover the
/// widest op shape (two operands + bias); kernel *outputs* are produced by
/// the bit-stable kernels themselves and are not pooled, keeping their
/// accumulation order untouched.
#[derive(Debug, Default)]
pub struct ExecScratch {
    a: Vec<f32>,
    b: Vec<f32>,
    c: Vec<f32>,
}

impl ExecScratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ExecScratch::default()
    }
}

fn load<M: VaMem + ?Sized>(
    mem: &mut M,
    va: u64,
    n: usize,
    out: &mut Vec<f32>,
) -> Result<(), ExecError> {
    mem.read_f32s_into(va, n, out)
        .map_err(|va| ExecError::MemFault { va })
}

fn store<M: VaMem + ?Sized>(mem: &mut M, va: u64, vals: &[f32]) -> Result<(), ExecError> {
    mem.write_f32s(va, vals)
        .map_err(|va| ExecError::MemFault { va })
}

/// Loads an optional bias vector (`va == 0` means "no bias") into `buf`.
fn load_opt_bias<'s, M: VaMem + ?Sized>(
    mem: &mut M,
    va: u64,
    n: usize,
    buf: &'s mut Vec<f32>,
) -> Result<Option<&'s [f32]>, ExecError> {
    if va == 0 {
        Ok(None)
    } else {
        load(mem, va, n, buf)?;
        Ok(Some(buf.as_slice()))
    }
}

/// Runs one kernel op to completion against `mem` with a throwaway
/// scratch arena. Prefer [`execute_with`] on hot paths.
///
/// # Errors
///
/// Returns [`ExecError`] on MMU faults or malformed ops. On error, partial
/// output writes may have occurred — the device model treats any error as a
/// job failure and the replayer re-executes from a clean state, so partial
/// writes are never observed by correct runs.
pub fn execute<M: VaMem + ?Sized>(op: &KernelOp, mem: &mut M) -> Result<(), ExecError> {
    execute_with(op, mem, &mut ExecScratch::new())
}

/// Runs one kernel op to completion against `mem`, staging tensors in
/// `scratch` so repeated executions reuse buffers.
///
/// # Errors
///
/// See [`execute`].
#[allow(clippy::too_many_lines)]
pub fn execute_with<M: VaMem + ?Sized>(
    op: &KernelOp,
    mem: &mut M,
    scratch: &mut ExecScratch,
) -> Result<(), ExecError> {
    use KernelOp::*;
    match *op {
        Fill { out, n, value } => {
            scratch.a.clear();
            scratch.a.resize(n as usize, value);
            store(mem, out, &scratch.a)
        }
        CopyBytes { src, dst, len } => {
            let b = mem
                .read_bytes(src, len as usize)
                .map_err(|va| ExecError::MemFault { va })?;
            mem.write_bytes(dst, &b)
                .map_err(|va| ExecError::MemFault { va })
        }
        EltwiseAdd { a, b, out, n, act } => {
            load(mem, a, n as usize, &mut scratch.a)?;
            load(mem, b, n as usize, &mut scratch.b)?;
            k::eltwise_add_act(act, &scratch.a, &scratch.b, &mut scratch.c);
            store(mem, out, &scratch.c)
        }
        Scale { a, out, n, alpha } => {
            load(mem, a, n as usize, &mut scratch.a)?;
            scratch.c.clear();
            scratch.c.extend(scratch.a.iter().map(|&x| x * alpha));
            store(mem, out, &scratch.c)
        }
        MatMul {
            a,
            b,
            out,
            m,
            k: kk,
            n,
        } => {
            load(mem, a, (m * kk) as usize, &mut scratch.a)?;
            load(mem, b, (kk * n) as usize, &mut scratch.b)?;
            let o = k::matmul(&scratch.a, &scratch.b, m as usize, kk as usize, n as usize);
            store(mem, out, &o)
        }
        FullyConnected {
            x,
            w,
            bias,
            out,
            m,
            k: kk,
            n,
            act,
        } => {
            load(mem, x, (m * kk) as usize, &mut scratch.a)?;
            load(mem, w, (kk * n) as usize, &mut scratch.b)?;
            let bv = load_opt_bias(mem, bias, n as usize, &mut scratch.c)?;
            let o = k::fully_connected(
                &scratch.a,
                &scratch.b,
                bv,
                m as usize,
                kk as usize,
                n as usize,
                act,
            );
            store(mem, out, &o)
        }
        Conv2d {
            x,
            w,
            bias,
            out,
            cin,
            h,
            wd,
            cout,
            kh,
            kw,
            stride,
            pad,
            groups,
            act,
        } => {
            if groups == 0 || cin % groups != 0 || cout % groups != 0 || stride == 0 {
                return Err(ExecError::BadParams(format!(
                    "conv2d groups={groups} cin={cin} cout={cout} stride={stride}"
                )));
            }
            load(mem, x, (cin * h * wd) as usize, &mut scratch.a)?;
            load(
                mem,
                w,
                (cout * (cin / groups) * kh * kw) as usize,
                &mut scratch.b,
            )?;
            let bv = load_opt_bias(mem, bias, cout as usize, &mut scratch.c)?;
            let o = k::conv2d(
                &scratch.a,
                &scratch.b,
                bv,
                cin as usize,
                h as usize,
                wd as usize,
                cout as usize,
                kh as usize,
                kw as usize,
                stride as usize,
                pad as usize,
                groups as usize,
                act,
            );
            store(mem, out, &o)
        }
        Pool2d {
            x,
            out,
            c,
            h,
            wd,
            win,
            stride,
            kind,
        } => {
            if stride == 0 || win == 0 || win > h || win > wd {
                return Err(ExecError::BadParams(format!(
                    "pool win={win} stride={stride} h={h} w={wd}"
                )));
            }
            load(mem, x, (c * h * wd) as usize, &mut scratch.a)?;
            let o = k::pool2d(
                &scratch.a,
                c as usize,
                h as usize,
                wd as usize,
                win as usize,
                stride as usize,
                kind,
            );
            store(mem, out, &o)
        }
        Activation { x, out, n, act } => {
            load(mem, x, n as usize, &mut scratch.a)?;
            k::map_act(act, &scratch.a, &mut scratch.c);
            store(mem, out, &scratch.c)
        }
        Softmax { x, out, rows, cols } => {
            load(mem, x, (rows * cols) as usize, &mut scratch.a)?;
            let o = k::softmax(&scratch.a, rows as usize, cols as usize);
            store(mem, out, &o)
        }
        Concat2 { a, na, b, nb, out } => {
            load(mem, a, na as usize, &mut scratch.a)?;
            load(mem, b, nb as usize, &mut scratch.b)?;
            scratch.a.extend_from_slice(&scratch.b);
            store(mem, out, &scratch.a)
        }
        Upsample2x { x, out, c, h, wd } => {
            load(mem, x, (c * h * wd) as usize, &mut scratch.a)?;
            let o = k::upsample2x(&scratch.a, c as usize, h as usize, wd as usize);
            store(mem, out, &o)
        }
        BatchNormInf {
            x,
            out,
            scale,
            shift,
            c,
            hw,
        } => {
            load(mem, x, (c * hw) as usize, &mut scratch.a)?;
            load(mem, scale, c as usize, &mut scratch.b)?;
            load(mem, shift, c as usize, &mut scratch.c)?;
            let o = k::batchnorm_inf(&scratch.a, &scratch.b, &scratch.c, c as usize, hw as usize);
            store(mem, out, &o)
        }
        Im2Col {
            x,
            out,
            cin,
            h,
            wd,
            kh,
            kw,
            stride,
            pad,
        } => {
            if stride == 0 {
                return Err(ExecError::BadParams("im2col stride=0".into()));
            }
            load(mem, x, (cin * h * wd) as usize, &mut scratch.a)?;
            let o = k::im2col(
                &scratch.a,
                cin as usize,
                h as usize,
                wd as usize,
                kh as usize,
                kw as usize,
                stride as usize,
                pad as usize,
            );
            store(mem, out, &o)
        }
        SoftmaxXentGrad {
            probs,
            labels,
            dx,
            rows,
            cols,
        } => {
            load(mem, probs, (rows * cols) as usize, &mut scratch.a)?;
            load(mem, labels, rows as usize, &mut scratch.b)?;
            for &l in &scratch.b {
                // Non-finite labels must be rejected explicitly: NaN
                // compares false everywhere and `NaN as u32` saturates to
                // 0, which would silently train against class 0.
                if !l.is_finite() || l < 0.0 || l as u32 >= cols {
                    return Err(ExecError::BadParams(format!("label {l} out of range")));
                }
            }
            let o = k::softmax_xent_grad(&scratch.a, &scratch.b, rows as usize, cols as usize);
            store(mem, dx, &o)
        }
        MatMulGradW {
            x,
            dy,
            dw,
            m,
            k: kk,
            n,
        } => {
            load(mem, x, (m * kk) as usize, &mut scratch.a)?;
            load(mem, dy, (m * n) as usize, &mut scratch.b)?;
            let o = k::matmul_grad_w(&scratch.a, &scratch.b, m as usize, kk as usize, n as usize);
            store(mem, dw, &o)
        }
        MatMulGradX {
            dy,
            w,
            dx,
            m,
            k: kk,
            n,
        } => {
            load(mem, dy, (m * n) as usize, &mut scratch.a)?;
            load(mem, w, (kk * n) as usize, &mut scratch.b)?;
            let o = k::matmul_grad_x(&scratch.a, &scratch.b, m as usize, kk as usize, n as usize);
            store(mem, dx, &o)
        }
        ReluGrad { x, dy, dx, n } => {
            load(mem, x, n as usize, &mut scratch.a)?;
            load(mem, dy, n as usize, &mut scratch.b)?;
            let o = k::relu_grad(&scratch.a, &scratch.b);
            store(mem, dx, &o)
        }
        BiasGradReduce { dy, db, m, n } => {
            load(mem, dy, (m * n) as usize, &mut scratch.a)?;
            let o = k::bias_grad(&scratch.a, m as usize, n as usize);
            store(mem, db, &o)
        }
        SgdStep { w, g, n, lr } => {
            load(mem, w, n as usize, &mut scratch.a)?;
            load(mem, g, n as usize, &mut scratch.b)?;
            k::sgd_step(&mut scratch.a, &scratch.b, lr);
            store(mem, w, &scratch.a)
        }
        Conv2dGradW {
            x,
            dy,
            dw,
            cin,
            h,
            wd,
            cout,
            kh,
            kw,
            stride,
            pad,
        } => {
            if stride == 0 {
                return Err(ExecError::BadParams("conv_gw stride=0".into()));
            }
            let ho = k::out_dim(h, kh, stride, pad) as usize;
            let wo = k::out_dim(wd, kw, stride, pad) as usize;
            load(mem, x, (cin * h * wd) as usize, &mut scratch.a)?;
            load(mem, dy, cout as usize * ho * wo, &mut scratch.b)?;
            let o = k::conv2d_grad_w(
                &scratch.a,
                &scratch.b,
                cin as usize,
                h as usize,
                wd as usize,
                cout as usize,
                kh as usize,
                kw as usize,
                stride as usize,
                pad as usize,
            );
            store(mem, dw, &o)
        }
        Conv2dGradX {
            dy,
            w,
            dx,
            cin,
            h,
            wd,
            cout,
            kh,
            kw,
            stride,
            pad,
        } => {
            if stride == 0 {
                return Err(ExecError::BadParams("conv_gx stride=0".into()));
            }
            let ho = k::out_dim(h, kh, stride, pad) as usize;
            let wo = k::out_dim(wd, kw, stride, pad) as usize;
            load(mem, dy, cout as usize * ho * wo, &mut scratch.a)?;
            load(mem, w, (cout * cin * kh * kw) as usize, &mut scratch.b)?;
            let o = k::conv2d_grad_x(
                &scratch.a,
                &scratch.b,
                cin as usize,
                h as usize,
                wd as usize,
                cout as usize,
                kh as usize,
                kw as usize,
                stride as usize,
                pad as usize,
            );
            store(mem, dx, &o)
        }
        PoolGrad {
            x,
            dy,
            dx,
            c,
            h,
            wd,
            win,
            stride,
            kind,
        } => {
            if stride == 0 || win == 0 {
                return Err(ExecError::BadParams("pool_g win/stride".into()));
            }
            let ho = k::out_dim(h, win, stride, 0) as usize;
            let wo = k::out_dim(wd, win, stride, 0) as usize;
            load(mem, x, (c * h * wd) as usize, &mut scratch.a)?;
            load(mem, dy, c as usize * ho * wo, &mut scratch.b)?;
            let o = k::pool_grad(
                &scratch.a,
                &scratch.b,
                c as usize,
                h as usize,
                wd as usize,
                win as usize,
                stride as usize,
                kind,
            );
            store(mem, dx, &o)
        }
    }
}

/// Convenience: decode a blob then execute it.
///
/// # Errors
///
/// Returns [`ExecError`] on decode failures, MMU faults, or bad parameters.
pub fn execute_blob<M: VaMem + ?Sized>(blob: &[u8], mem: &mut M) -> Result<(), ExecError> {
    let op = KernelOp::decode(blob)?;
    execute(&op, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::bytecode::ActKind;
    use std::collections::HashMap;

    /// Flat test memory with a configurable "hole" that faults.
    #[derive(Default)]
    struct TestMem {
        pages: HashMap<u64, Vec<u8>>,
        fault_at: Option<u64>,
    }

    const PG: u64 = 4096;

    impl TestMem {
        fn check(&self, va: u64, len: usize) -> Result<(), u64> {
            if let Some(f) = self.fault_at {
                if va <= f && f < va + len as u64 {
                    return Err(f);
                }
            }
            Ok(())
        }
    }

    impl VaMem for TestMem {
        fn read_bytes(&mut self, va: u64, len: usize) -> Result<Vec<u8>, u64> {
            self.check(va, len)?;
            let mut out = vec![0u8; len];
            for (i, b) in out.iter_mut().enumerate() {
                let a = va + i as u64;
                if let Some(p) = self.pages.get(&(a / PG)) {
                    *b = p[(a % PG) as usize];
                }
            }
            Ok(out)
        }
        fn write_bytes(&mut self, va: u64, data: &[u8]) -> Result<(), u64> {
            self.check(va, data.len())?;
            for (i, &b) in data.iter().enumerate() {
                let a = va + i as u64;
                let p = self
                    .pages
                    .entry(a / PG)
                    .or_insert_with(|| vec![0; PG as usize]);
                p[(a % PG) as usize] = b;
            }
            Ok(())
        }
    }

    fn put_f32s(mem: &mut TestMem, va: u64, vals: &[f32]) {
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        mem.write_bytes(va, &bytes).unwrap();
    }

    fn get_f32s(mem: &mut TestMem, va: u64, n: usize) -> Vec<f32> {
        mem.read_bytes(va, n * 4)
            .unwrap()
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn vecadd_end_to_end() {
        let mut mem = TestMem::default();
        put_f32s(&mut mem, 0x1000, &[1., 2., 3.]);
        put_f32s(&mut mem, 0x2000, &[10., 20., 30.]);
        let op = KernelOp::EltwiseAdd {
            a: 0x1000,
            b: 0x2000,
            out: 0x3000,
            n: 3,
            act: ActKind::None,
        };
        execute(&op, &mut mem).unwrap();
        assert_eq!(get_f32s(&mut mem, 0x3000, 3), vec![11., 22., 33.]);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_runs() {
        // Run a mixed op sequence twice: once with a shared arena, once
        // with throwaway scratch; outputs must agree exactly.
        let ops = [
            KernelOp::Fill {
                out: 0x1000,
                n: 8,
                value: 0.125,
            },
            KernelOp::MatMul {
                a: 0x1000,
                b: 0x1000,
                out: 0x2000,
                m: 2,
                k: 2,
                n: 2,
            },
            KernelOp::Concat2 {
                a: 0x1000,
                na: 4,
                b: 0x2000,
                nb: 4,
                out: 0x3000,
            },
            KernelOp::Softmax {
                x: 0x3000,
                out: 0x4000,
                rows: 2,
                cols: 4,
            },
        ];
        let mut pooled = TestMem::default();
        let mut fresh = TestMem::default();
        let mut arena = ExecScratch::new();
        for op in &ops {
            execute_with(op, &mut pooled, &mut arena).unwrap();
            execute(op, &mut fresh).unwrap();
        }
        assert_eq!(
            get_f32s(&mut pooled, 0x4000, 8),
            get_f32s(&mut fresh, 0x4000, 8)
        );
    }

    #[test]
    fn page_crossing_access_works() {
        let mut mem = TestMem::default();
        let va = PG - 8; // straddles the first page boundary
        put_f32s(&mut mem, va, &[5., 6., 7., 8.]);
        let op = KernelOp::Scale {
            a: va,
            out: va,
            n: 4,
            alpha: 2.0,
        };
        execute(&op, &mut mem).unwrap();
        assert_eq!(get_f32s(&mut mem, va, 4), vec![10., 12., 14., 16.]);
    }

    #[test]
    fn mem_fault_propagates() {
        let mut mem = TestMem {
            fault_at: Some(0x2004),
            ..TestMem::default()
        };
        let op = KernelOp::Fill {
            out: 0x2000,
            n: 4,
            value: 1.0,
        };
        assert_eq!(
            execute(&op, &mut mem),
            Err(ExecError::MemFault { va: 0x2004 })
        );
    }

    #[test]
    fn bad_params_rejected() {
        let mut mem = TestMem::default();
        let op = KernelOp::Conv2d {
            x: 0,
            w: 0,
            bias: 0,
            out: 0,
            cin: 3,
            h: 4,
            wd: 4,
            cout: 4,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
            groups: 2,
            act: ActKind::None,
        };
        assert!(matches!(
            execute(&op, &mut mem),
            Err(ExecError::BadParams(_))
        ));
        // An out-of-range label is rejected before any write happens.
        put_f32s(&mut mem, 0, &[9.0]);
        let op2 = KernelOp::SoftmaxXentGrad {
            probs: 0x100,
            labels: 0,
            dx: 0x200,
            rows: 1,
            cols: 2,
        };
        assert!(matches!(
            execute(&op2, &mut mem),
            Err(ExecError::BadParams(_))
        ));
    }

    #[test]
    fn non_finite_labels_rejected() {
        // A NaN label passes `l < 0.0 || l as u32 >= cols` (NaN comparisons
        // are false; `NaN as u32` saturates to 0) — it must be rejected,
        // not silently trained against class 0. Same for infinities.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut mem = TestMem::default();
            put_f32s(&mut mem, 0x100, &[0.5, 0.5]);
            put_f32s(&mut mem, 0x200, &[bad]);
            let op = KernelOp::SoftmaxXentGrad {
                probs: 0x100,
                labels: 0x200,
                dx: 0x300,
                rows: 1,
                cols: 2,
            };
            assert!(
                matches!(execute(&op, &mut mem), Err(ExecError::BadParams(_))),
                "label {bad} must be rejected"
            );
            // Nothing was written to dx.
            assert_eq!(get_f32s(&mut mem, 0x300, 2), vec![0.0, 0.0]);
        }
        // A valid label still works.
        let mut mem = TestMem::default();
        put_f32s(&mut mem, 0x100, &[0.5, 0.5]);
        put_f32s(&mut mem, 0x200, &[1.0]);
        execute(
            &KernelOp::SoftmaxXentGrad {
                probs: 0x100,
                labels: 0x200,
                dx: 0x300,
                rows: 1,
                cols: 2,
            },
            &mut mem,
        )
        .unwrap();
        assert_eq!(get_f32s(&mut mem, 0x300, 2), vec![0.5, -0.5]);
    }

    #[test]
    fn blob_roundtrip_execution() {
        let mut mem = TestMem::default();
        put_f32s(&mut mem, 0x100, &[-3., 4.]);
        let blob = KernelOp::Activation {
            x: 0x100,
            out: 0x200,
            n: 2,
            act: ActKind::Relu,
        }
        .encode();
        execute_blob(&blob, &mut mem).unwrap();
        assert_eq!(get_f32s(&mut mem, 0x200, 2), vec![0., 4.]);
        assert!(matches!(
            execute_blob(&blob[..3], &mut mem),
            Err(ExecError::BadShader(_))
        ));
    }

    #[test]
    fn sgd_updates_in_place() {
        let mut mem = TestMem::default();
        put_f32s(&mut mem, 0x100, &[1.0, 1.0]);
        put_f32s(&mut mem, 0x200, &[0.5, -0.5]);
        execute(
            &KernelOp::SgdStep {
                w: 0x100,
                g: 0x200,
                n: 2,
                lr: 1.0,
            },
            &mut mem,
        )
        .unwrap();
        assert_eq!(get_f32s(&mut mem, 0x100, 2), vec![0.5, 1.5]);
    }
}
