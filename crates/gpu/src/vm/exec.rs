//! Executes a decoded [`KernelOp`] against GPU virtual memory.
//!
//! The device models hand this module a [`VaMem`] — an accessor that
//! translates GPU virtual addresses through the device's page tables. A
//! translation failure surfaces as [`ExecError::MemFault`], which the
//! device turns into an MMU fault interrupt (the §7.2 fault-injection
//! experiments corrupt PTEs to trigger exactly this path).

use std::fmt;

use super::bytecode::{DecodeError, KernelOp};
use super::kernels as k;

/// GPU-virtual-address memory access used by kernel execution.
pub trait VaMem {
    /// Reads `len` bytes at virtual address `va`.
    ///
    /// # Errors
    ///
    /// Returns the faulting VA when translation or a physical access fails.
    fn read_bytes(&mut self, va: u64, len: usize) -> Result<Vec<u8>, u64>;

    /// Writes `data` at virtual address `va`.
    ///
    /// # Errors
    ///
    /// Returns the faulting VA when translation or a physical access fails.
    fn write_bytes(&mut self, va: u64, data: &[u8]) -> Result<(), u64>;
}

/// Why kernel execution failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A virtual access could not be translated (MMU fault).
    MemFault {
        /// Faulting virtual address.
        va: u64,
    },
    /// The shader blob did not decode.
    BadShader(DecodeError),
    /// Dimensions within the op were inconsistent.
    BadParams(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MemFault { va } => write!(f, "GPU memory fault at va={va:#x}"),
            ExecError::BadShader(e) => write!(f, "bad shader blob: {e}"),
            ExecError::BadParams(msg) => write!(f, "bad kernel parameters: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<DecodeError> for ExecError {
    fn from(e: DecodeError) -> Self {
        ExecError::BadShader(e)
    }
}

fn read_f32s<M: VaMem + ?Sized>(mem: &mut M, va: u64, n: usize) -> Result<Vec<f32>, ExecError> {
    let bytes = mem
        .read_bytes(va, n * 4)
        .map_err(|va| ExecError::MemFault { va })?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect())
}

fn write_f32s<M: VaMem + ?Sized>(mem: &mut M, va: u64, vals: &[f32]) -> Result<(), ExecError> {
    let mut bytes = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    mem.write_bytes(va, &bytes)
        .map_err(|va| ExecError::MemFault { va })
}

fn opt_bias<M: VaMem + ?Sized>(
    mem: &mut M,
    va: u64,
    n: usize,
) -> Result<Option<Vec<f32>>, ExecError> {
    if va == 0 {
        Ok(None)
    } else {
        Ok(Some(read_f32s(mem, va, n)?))
    }
}

/// Runs one kernel op to completion against `mem`.
///
/// # Errors
///
/// Returns [`ExecError`] on MMU faults or malformed ops. On error, partial
/// output writes may have occurred — the device model treats any error as a
/// job failure and the replayer re-executes from a clean state, so partial
/// writes are never observed by correct runs.
pub fn execute<M: VaMem + ?Sized>(op: &KernelOp, mem: &mut M) -> Result<(), ExecError> {
    use KernelOp::*;
    match *op {
        Fill { out, n, value } => write_f32s(mem, out, &vec![value; n as usize]),
        CopyBytes { src, dst, len } => {
            let b = mem
                .read_bytes(src, len as usize)
                .map_err(|va| ExecError::MemFault { va })?;
            mem.write_bytes(dst, &b)
                .map_err(|va| ExecError::MemFault { va })
        }
        EltwiseAdd { a, b, out, n, act } => {
            let av = read_f32s(mem, a, n as usize)?;
            let bv = read_f32s(mem, b, n as usize)?;
            let sum: Vec<f32> = av
                .iter()
                .zip(&bv)
                .map(|(&x, &y)| k::apply_act(act, x + y))
                .collect();
            write_f32s(mem, out, &sum)
        }
        Scale { a, out, n, alpha } => {
            let av = read_f32s(mem, a, n as usize)?;
            let sv: Vec<f32> = av.iter().map(|&x| x * alpha).collect();
            write_f32s(mem, out, &sv)
        }
        MatMul {
            a,
            b,
            out,
            m,
            k: kk,
            n,
        } => {
            let av = read_f32s(mem, a, (m * kk) as usize)?;
            let bv = read_f32s(mem, b, (kk * n) as usize)?;
            let o = k::matmul(&av, &bv, m as usize, kk as usize, n as usize);
            write_f32s(mem, out, &o)
        }
        FullyConnected {
            x,
            w,
            bias,
            out,
            m,
            k: kk,
            n,
            act,
        } => {
            let xv = read_f32s(mem, x, (m * kk) as usize)?;
            let wv = read_f32s(mem, w, (kk * n) as usize)?;
            let bv = opt_bias(mem, bias, n as usize)?;
            let o = k::fully_connected(
                &xv,
                &wv,
                bv.as_deref(),
                m as usize,
                kk as usize,
                n as usize,
                act,
            );
            write_f32s(mem, out, &o)
        }
        Conv2d {
            x,
            w,
            bias,
            out,
            cin,
            h,
            wd,
            cout,
            kh,
            kw,
            stride,
            pad,
            groups,
            act,
        } => {
            if groups == 0 || cin % groups != 0 || cout % groups != 0 || stride == 0 {
                return Err(ExecError::BadParams(format!(
                    "conv2d groups={groups} cin={cin} cout={cout} stride={stride}"
                )));
            }
            let xv = read_f32s(mem, x, (cin * h * wd) as usize)?;
            let wv = read_f32s(mem, w, (cout * (cin / groups) * kh * kw) as usize)?;
            let bv = opt_bias(mem, bias, cout as usize)?;
            let o = k::conv2d(
                &xv,
                &wv,
                bv.as_deref(),
                cin as usize,
                h as usize,
                wd as usize,
                cout as usize,
                kh as usize,
                kw as usize,
                stride as usize,
                pad as usize,
                groups as usize,
                act,
            );
            write_f32s(mem, out, &o)
        }
        Pool2d {
            x,
            out,
            c,
            h,
            wd,
            win,
            stride,
            kind,
        } => {
            if stride == 0 || win == 0 || win > h || win > wd {
                return Err(ExecError::BadParams(format!(
                    "pool win={win} stride={stride} h={h} w={wd}"
                )));
            }
            let xv = read_f32s(mem, x, (c * h * wd) as usize)?;
            let o = k::pool2d(
                &xv,
                c as usize,
                h as usize,
                wd as usize,
                win as usize,
                stride as usize,
                kind,
            );
            write_f32s(mem, out, &o)
        }
        Activation { x, out, n, act } => {
            let xv = read_f32s(mem, x, n as usize)?;
            let o: Vec<f32> = xv.iter().map(|&v| k::apply_act(act, v)).collect();
            write_f32s(mem, out, &o)
        }
        Softmax { x, out, rows, cols } => {
            let xv = read_f32s(mem, x, (rows * cols) as usize)?;
            let o = k::softmax(&xv, rows as usize, cols as usize);
            write_f32s(mem, out, &o)
        }
        Concat2 { a, na, b, nb, out } => {
            let mut av = read_f32s(mem, a, na as usize)?;
            let bv = read_f32s(mem, b, nb as usize)?;
            av.extend_from_slice(&bv);
            write_f32s(mem, out, &av)
        }
        Upsample2x { x, out, c, h, wd } => {
            let xv = read_f32s(mem, x, (c * h * wd) as usize)?;
            let o = k::upsample2x(&xv, c as usize, h as usize, wd as usize);
            write_f32s(mem, out, &o)
        }
        BatchNormInf {
            x,
            out,
            scale,
            shift,
            c,
            hw,
        } => {
            let xv = read_f32s(mem, x, (c * hw) as usize)?;
            let sv = read_f32s(mem, scale, c as usize)?;
            let hv = read_f32s(mem, shift, c as usize)?;
            let o = k::batchnorm_inf(&xv, &sv, &hv, c as usize, hw as usize);
            write_f32s(mem, out, &o)
        }
        Im2Col {
            x,
            out,
            cin,
            h,
            wd,
            kh,
            kw,
            stride,
            pad,
        } => {
            if stride == 0 {
                return Err(ExecError::BadParams("im2col stride=0".into()));
            }
            let xv = read_f32s(mem, x, (cin * h * wd) as usize)?;
            let o = k::im2col(
                &xv,
                cin as usize,
                h as usize,
                wd as usize,
                kh as usize,
                kw as usize,
                stride as usize,
                pad as usize,
            );
            write_f32s(mem, out, &o)
        }
        SoftmaxXentGrad {
            probs,
            labels,
            dx,
            rows,
            cols,
        } => {
            let pv = read_f32s(mem, probs, (rows * cols) as usize)?;
            let lv = read_f32s(mem, labels, rows as usize)?;
            for &l in &lv {
                if l < 0.0 || l as u32 >= cols {
                    return Err(ExecError::BadParams(format!("label {l} out of range")));
                }
            }
            let o = k::softmax_xent_grad(&pv, &lv, rows as usize, cols as usize);
            write_f32s(mem, dx, &o)
        }
        MatMulGradW {
            x,
            dy,
            dw,
            m,
            k: kk,
            n,
        } => {
            let xv = read_f32s(mem, x, (m * kk) as usize)?;
            let dv = read_f32s(mem, dy, (m * n) as usize)?;
            let o = k::matmul_grad_w(&xv, &dv, m as usize, kk as usize, n as usize);
            write_f32s(mem, dw, &o)
        }
        MatMulGradX {
            dy,
            w,
            dx,
            m,
            k: kk,
            n,
        } => {
            let dv = read_f32s(mem, dy, (m * n) as usize)?;
            let wv = read_f32s(mem, w, (kk * n) as usize)?;
            let o = k::matmul_grad_x(&dv, &wv, m as usize, kk as usize, n as usize);
            write_f32s(mem, dx, &o)
        }
        ReluGrad { x, dy, dx, n } => {
            let xv = read_f32s(mem, x, n as usize)?;
            let dv = read_f32s(mem, dy, n as usize)?;
            let o = k::relu_grad(&xv, &dv);
            write_f32s(mem, dx, &o)
        }
        BiasGradReduce { dy, db, m, n } => {
            let dv = read_f32s(mem, dy, (m * n) as usize)?;
            let o = k::bias_grad(&dv, m as usize, n as usize);
            write_f32s(mem, db, &o)
        }
        SgdStep { w, g, n, lr } => {
            let mut wv = read_f32s(mem, w, n as usize)?;
            let gv = read_f32s(mem, g, n as usize)?;
            k::sgd_step(&mut wv, &gv, lr);
            write_f32s(mem, w, &wv)
        }
        Conv2dGradW {
            x,
            dy,
            dw,
            cin,
            h,
            wd,
            cout,
            kh,
            kw,
            stride,
            pad,
        } => {
            if stride == 0 {
                return Err(ExecError::BadParams("conv_gw stride=0".into()));
            }
            let ho = k::out_dim(h, kh, stride, pad) as usize;
            let wo = k::out_dim(wd, kw, stride, pad) as usize;
            let xv = read_f32s(mem, x, (cin * h * wd) as usize)?;
            let dv = read_f32s(mem, dy, cout as usize * ho * wo)?;
            let o = k::conv2d_grad_w(
                &xv,
                &dv,
                cin as usize,
                h as usize,
                wd as usize,
                cout as usize,
                kh as usize,
                kw as usize,
                stride as usize,
                pad as usize,
            );
            write_f32s(mem, dw, &o)
        }
        Conv2dGradX {
            dy,
            w,
            dx,
            cin,
            h,
            wd,
            cout,
            kh,
            kw,
            stride,
            pad,
        } => {
            if stride == 0 {
                return Err(ExecError::BadParams("conv_gx stride=0".into()));
            }
            let ho = k::out_dim(h, kh, stride, pad) as usize;
            let wo = k::out_dim(wd, kw, stride, pad) as usize;
            let dv = read_f32s(mem, dy, cout as usize * ho * wo)?;
            let wv = read_f32s(mem, w, (cout * cin * kh * kw) as usize)?;
            let o = k::conv2d_grad_x(
                &dv,
                &wv,
                cin as usize,
                h as usize,
                wd as usize,
                cout as usize,
                kh as usize,
                kw as usize,
                stride as usize,
                pad as usize,
            );
            write_f32s(mem, dx, &o)
        }
        PoolGrad {
            x,
            dy,
            dx,
            c,
            h,
            wd,
            win,
            stride,
            kind,
        } => {
            if stride == 0 || win == 0 {
                return Err(ExecError::BadParams("pool_g win/stride".into()));
            }
            let ho = k::out_dim(h, win, stride, 0) as usize;
            let wo = k::out_dim(wd, win, stride, 0) as usize;
            let xv = read_f32s(mem, x, (c * h * wd) as usize)?;
            let dv = read_f32s(mem, dy, c as usize * ho * wo)?;
            let o = k::pool_grad(
                &xv,
                &dv,
                c as usize,
                h as usize,
                wd as usize,
                win as usize,
                stride as usize,
                kind,
            );
            write_f32s(mem, dx, &o)
        }
    }
}

/// Convenience: decode a blob then execute it.
///
/// # Errors
///
/// Returns [`ExecError`] on decode failures, MMU faults, or bad parameters.
pub fn execute_blob<M: VaMem + ?Sized>(blob: &[u8], mem: &mut M) -> Result<(), ExecError> {
    let op = KernelOp::decode(blob)?;
    execute(&op, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::bytecode::ActKind;
    use std::collections::HashMap;

    /// Flat test memory with a configurable "hole" that faults.
    #[derive(Default)]
    struct TestMem {
        pages: HashMap<u64, Vec<u8>>,
        fault_at: Option<u64>,
    }

    const PG: u64 = 4096;

    impl TestMem {
        fn check(&self, va: u64, len: usize) -> Result<(), u64> {
            if let Some(f) = self.fault_at {
                if va <= f && f < va + len as u64 {
                    return Err(f);
                }
            }
            Ok(())
        }
    }

    impl VaMem for TestMem {
        fn read_bytes(&mut self, va: u64, len: usize) -> Result<Vec<u8>, u64> {
            self.check(va, len)?;
            let mut out = vec![0u8; len];
            for (i, b) in out.iter_mut().enumerate() {
                let a = va + i as u64;
                if let Some(p) = self.pages.get(&(a / PG)) {
                    *b = p[(a % PG) as usize];
                }
            }
            Ok(out)
        }
        fn write_bytes(&mut self, va: u64, data: &[u8]) -> Result<(), u64> {
            self.check(va, data.len())?;
            for (i, &b) in data.iter().enumerate() {
                let a = va + i as u64;
                let p = self
                    .pages
                    .entry(a / PG)
                    .or_insert_with(|| vec![0; PG as usize]);
                p[(a % PG) as usize] = b;
            }
            Ok(())
        }
    }

    fn put_f32s(mem: &mut TestMem, va: u64, vals: &[f32]) {
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        mem.write_bytes(va, &bytes).unwrap();
    }

    fn get_f32s(mem: &mut TestMem, va: u64, n: usize) -> Vec<f32> {
        mem.read_bytes(va, n * 4)
            .unwrap()
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn vecadd_end_to_end() {
        let mut mem = TestMem::default();
        put_f32s(&mut mem, 0x1000, &[1., 2., 3.]);
        put_f32s(&mut mem, 0x2000, &[10., 20., 30.]);
        let op = KernelOp::EltwiseAdd {
            a: 0x1000,
            b: 0x2000,
            out: 0x3000,
            n: 3,
            act: ActKind::None,
        };
        execute(&op, &mut mem).unwrap();
        assert_eq!(get_f32s(&mut mem, 0x3000, 3), vec![11., 22., 33.]);
    }

    #[test]
    fn page_crossing_access_works() {
        let mut mem = TestMem::default();
        let va = PG - 8; // straddles the first page boundary
        put_f32s(&mut mem, va, &[5., 6., 7., 8.]);
        let op = KernelOp::Scale {
            a: va,
            out: va,
            n: 4,
            alpha: 2.0,
        };
        execute(&op, &mut mem).unwrap();
        assert_eq!(get_f32s(&mut mem, va, 4), vec![10., 12., 14., 16.]);
    }

    #[test]
    fn mem_fault_propagates() {
        let mut mem = TestMem {
            fault_at: Some(0x2004),
            ..TestMem::default()
        };
        let op = KernelOp::Fill {
            out: 0x2000,
            n: 4,
            value: 1.0,
        };
        assert_eq!(
            execute(&op, &mut mem),
            Err(ExecError::MemFault { va: 0x2004 })
        );
    }

    #[test]
    fn bad_params_rejected() {
        let mut mem = TestMem::default();
        let op = KernelOp::Conv2d {
            x: 0,
            w: 0,
            bias: 0,
            out: 0,
            cin: 3,
            h: 4,
            wd: 4,
            cout: 4,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
            groups: 2,
            act: ActKind::None,
        };
        assert!(matches!(
            execute(&op, &mut mem),
            Err(ExecError::BadParams(_))
        ));
        // An out-of-range label is rejected before any write happens.
        put_f32s(&mut mem, 0, &[9.0]);
        let op2 = KernelOp::SoftmaxXentGrad {
            probs: 0x100,
            labels: 0,
            dx: 0x200,
            rows: 1,
            cols: 2,
        };
        assert!(matches!(
            execute(&op2, &mut mem),
            Err(ExecError::BadParams(_))
        ));
    }

    #[test]
    fn blob_roundtrip_execution() {
        let mut mem = TestMem::default();
        put_f32s(&mut mem, 0x100, &[-3., 4.]);
        let blob = KernelOp::Activation {
            x: 0x100,
            out: 0x200,
            n: 2,
            act: ActKind::Relu,
        }
        .encode();
        execute_blob(&blob, &mut mem).unwrap();
        assert_eq!(get_f32s(&mut mem, 0x200, 2), vec![0., 4.]);
        assert!(matches!(
            execute_blob(&blob[..3], &mut mem),
            Err(ExecError::BadShader(_))
        ));
    }

    #[test]
    fn sgd_updates_in_place() {
        let mut mem = TestMem::default();
        put_f32s(&mut mem, 0x100, &[1.0, 1.0]);
        put_f32s(&mut mem, 0x200, &[0.5, -0.5]);
        execute(
            &KernelOp::SgdStep {
                w: 0x100,
                g: 0x200,
                n: 2,
                lr: 1.0,
            },
            &mut mem,
        )
        .unwrap();
        assert_eq!(get_f32s(&mut mem, 0x100, 2), vec![0.5, 1.5]);
    }
}
