//! Shader blob encoding.
//!
//! A shader blob is a little-endian serialization of one [`KernelOp`]. All
//! buffer references are GPU *virtual* addresses — the blobs are deeply
//! linked against the GPU VA space, which is why GPUReplay must restore
//! memory dumps at their original virtual addresses (§4.3).

use std::fmt;

/// Activation fused into (or applied by) a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ActKind {
    /// Identity.
    None = 0,
    /// max(0, x)
    Relu = 1,
    /// min(max(0, x), 6)
    Relu6 = 2,
    /// x > 0 ? x : 0.1x (YOLO-style)
    LeakyRelu = 3,
    /// Logistic.
    Sigmoid = 4,
    /// Hyperbolic tangent.
    Tanh = 5,
}

impl ActKind {
    /// Decodes from the wire tag.
    pub fn from_u32(v: u32) -> Option<ActKind> {
        Some(match v {
            0 => ActKind::None,
            1 => ActKind::Relu,
            2 => ActKind::Relu6,
            3 => ActKind::LeakyRelu,
            4 => ActKind::Sigmoid,
            5 => ActKind::Tanh,
            _ => return None,
        })
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum PoolKind {
    /// Window maximum.
    Max = 0,
    /// Window average.
    Avg = 1,
}

impl PoolKind {
    /// Decodes from the wire tag.
    pub fn from_u32(v: u32) -> Option<PoolKind> {
        match v {
            0 => Some(PoolKind::Max),
            1 => Some(PoolKind::Avg),
            _ => None,
        }
    }
}

/// One GPU compute kernel, as encoded in a shader blob.
///
/// Tensors are dense f32, NCHW with batch folded into rows where relevant.
/// Fields named `*_va` are GPU virtual addresses.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelOp {
    /// `out[0..n] = value`
    Fill {
        /// Output VA.
        out: u64,
        /// Element count.
        n: u32,
        /// Fill value.
        value: f32,
    },
    /// Raw byte move of `len` bytes.
    CopyBytes {
        /// Source VA.
        src: u64,
        /// Destination VA.
        dst: u64,
        /// Byte count.
        len: u32,
    },
    /// `out = a + b` elementwise, then `act`.
    EltwiseAdd {
        /// Left input VA.
        a: u64,
        /// Right input VA.
        b: u64,
        /// Output VA.
        out: u64,
        /// Element count.
        n: u32,
        /// Fused activation.
        act: ActKind,
    },
    /// `out = alpha * a`
    Scale {
        /// Input VA.
        a: u64,
        /// Output VA.
        out: u64,
        /// Element count.
        n: u32,
        /// Scale factor.
        alpha: f32,
    },
    /// Plain GEMM: `out[m×n] = a[m×k] · b[k×n]`.
    MatMul {
        /// Left matrix VA.
        a: u64,
        /// Right matrix VA.
        b: u64,
        /// Output VA.
        out: u64,
        /// Rows of `a`.
        m: u32,
        /// Inner dimension.
        k: u32,
        /// Columns of `b`.
        n: u32,
    },
    /// Fully connected with optional bias and fused activation:
    /// `out[m×n] = act(x[m×k] · w[k×n] + bias[n])`.
    FullyConnected {
        /// Input VA.
        x: u64,
        /// Weight VA.
        w: u64,
        /// Bias VA (0 = no bias).
        bias: u64,
        /// Output VA.
        out: u64,
        /// Batch rows.
        m: u32,
        /// Input features.
        k: u32,
        /// Output features.
        n: u32,
        /// Fused activation.
        act: ActKind,
    },
    /// Grouped 2-D convolution (groups == cin gives depthwise), NCHW,
    /// square stride/pad, fused bias + activation.
    Conv2d {
        /// Input VA (`cin×h×w`).
        x: u64,
        /// Weights VA (`cout×(cin/groups)×kh×kw`).
        w: u64,
        /// Bias VA (0 = none, else `cout`).
        bias: u64,
        /// Output VA (`cout×ho×wo`).
        out: u64,
        /// Input channels.
        cin: u32,
        /// Input height.
        h: u32,
        /// Input width.
        wd: u32,
        /// Output channels.
        cout: u32,
        /// Kernel height.
        kh: u32,
        /// Kernel width.
        kw: u32,
        /// Stride (both axes).
        stride: u32,
        /// Zero padding (both axes).
        pad: u32,
        /// Group count.
        groups: u32,
        /// Fused activation.
        act: ActKind,
    },
    /// 2-D pooling, NCHW, square window/stride, no padding.
    Pool2d {
        /// Input VA.
        x: u64,
        /// Output VA.
        out: u64,
        /// Channels.
        c: u32,
        /// Input height.
        h: u32,
        /// Input width.
        wd: u32,
        /// Window edge.
        win: u32,
        /// Stride.
        stride: u32,
        /// Max or average.
        kind: PoolKind,
    },
    /// Standalone activation.
    Activation {
        /// Input VA.
        x: u64,
        /// Output VA.
        out: u64,
        /// Element count.
        n: u32,
        /// Which activation.
        act: ActKind,
    },
    /// Row-wise softmax over a `rows×cols` matrix.
    Softmax {
        /// Input VA.
        x: u64,
        /// Output VA.
        out: u64,
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
    /// Channel concatenation of two flattened blocks.
    Concat2 {
        /// First block VA.
        a: u64,
        /// First block element count.
        na: u32,
        /// Second block VA.
        b: u64,
        /// Second block element count.
        nb: u32,
        /// Output VA (`na+nb` elements).
        out: u64,
    },
    /// Nearest-neighbour 2× upsample, NCHW.
    Upsample2x {
        /// Input VA.
        x: u64,
        /// Output VA.
        out: u64,
        /// Channels.
        c: u32,
        /// Input height.
        h: u32,
        /// Input width.
        wd: u32,
    },
    /// Inference-time batch-norm as per-channel scale/shift:
    /// `out[c,i] = x[c,i] * scale[c] + shift[c]`.
    BatchNormInf {
        /// Input VA.
        x: u64,
        /// Output VA.
        out: u64,
        /// Per-channel scale VA.
        scale: u64,
        /// Per-channel shift VA.
        shift: u64,
        /// Channels.
        c: u32,
        /// Spatial size per channel.
        hw: u32,
    },
    /// ACL-style im2col: unfolds convolution patches into a
    /// `(ho*wo) × (cin*kh*kw)` matrix.
    Im2Col {
        /// Input VA.
        x: u64,
        /// Output VA.
        out: u64,
        /// Input channels.
        cin: u32,
        /// Input height.
        h: u32,
        /// Input width.
        wd: u32,
        /// Kernel height.
        kh: u32,
        /// Kernel width.
        kw: u32,
        /// Stride.
        stride: u32,
        /// Padding.
        pad: u32,
    },
    /// Softmax + cross-entropy backward: `dx = (probs - onehot(labels))/rows`.
    SoftmaxXentGrad {
        /// Probabilities VA (`rows×cols`).
        probs: u64,
        /// Labels VA (`rows` f32-encoded class ids).
        labels: u64,
        /// Gradient output VA.
        dx: u64,
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
    /// GEMM weight gradient: `dw[k×n] = xᵀ[k×m] · dy[m×n]`.
    MatMulGradW {
        /// Forward input VA.
        x: u64,
        /// Upstream gradient VA.
        dy: u64,
        /// Weight gradient VA.
        dw: u64,
        /// Batch rows.
        m: u32,
        /// Input features.
        k: u32,
        /// Output features.
        n: u32,
    },
    /// GEMM input gradient: `dx[m×k] = dy[m×n] · wᵀ[n×k]`.
    MatMulGradX {
        /// Upstream gradient VA.
        dy: u64,
        /// Weights VA.
        w: u64,
        /// Input gradient VA.
        dx: u64,
        /// Batch rows.
        m: u32,
        /// Input features.
        k: u32,
        /// Output features.
        n: u32,
    },
    /// ReLU backward: `dx = x > 0 ? dy : 0`.
    ReluGrad {
        /// Forward input VA.
        x: u64,
        /// Upstream gradient VA.
        dy: u64,
        /// Input gradient VA.
        dx: u64,
        /// Element count.
        n: u32,
    },
    /// Bias gradient: column sums of `dy[m×n]` into `db[n]`.
    BiasGradReduce {
        /// Upstream gradient VA.
        dy: u64,
        /// Bias gradient VA.
        db: u64,
        /// Rows.
        m: u32,
        /// Columns.
        n: u32,
    },
    /// SGD update: `w -= lr * g`.
    SgdStep {
        /// Weights VA (updated in place).
        w: u64,
        /// Gradient VA.
        g: u64,
        /// Element count.
        n: u32,
        /// Learning rate.
        lr: f32,
    },
    /// Convolution weight gradient (stride/pad as forward).
    Conv2dGradW {
        /// Forward input VA.
        x: u64,
        /// Upstream gradient VA (`cout×ho×wo`).
        dy: u64,
        /// Weight gradient VA.
        dw: u64,
        /// Input channels.
        cin: u32,
        /// Input height.
        h: u32,
        /// Input width.
        wd: u32,
        /// Output channels.
        cout: u32,
        /// Kernel height.
        kh: u32,
        /// Kernel width.
        kw: u32,
        /// Stride.
        stride: u32,
        /// Padding.
        pad: u32,
    },
    /// Convolution input gradient.
    Conv2dGradX {
        /// Upstream gradient VA.
        dy: u64,
        /// Weights VA.
        w: u64,
        /// Input gradient VA.
        dx: u64,
        /// Input channels.
        cin: u32,
        /// Input height.
        h: u32,
        /// Input width.
        wd: u32,
        /// Output channels.
        cout: u32,
        /// Kernel height.
        kh: u32,
        /// Kernel width.
        kw: u32,
        /// Stride.
        stride: u32,
        /// Padding.
        pad: u32,
    },
    /// Max-pool backward (routes gradient to window argmax; avg splits
    /// evenly).
    PoolGrad {
        /// Forward input VA.
        x: u64,
        /// Upstream gradient VA.
        dy: u64,
        /// Input gradient VA.
        dx: u64,
        /// Channels.
        c: u32,
        /// Input height.
        h: u32,
        /// Input width.
        wd: u32,
        /// Window edge.
        win: u32,
        /// Stride.
        stride: u32,
        /// Pool kind.
        kind: PoolKind,
    },
}

/// Error decoding a shader blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Blob ended mid-field.
    Truncated,
    /// Unknown opcode tag.
    BadOpcode(u32),
    /// Unknown enum tag inside an op.
    BadEnum(u32),
    /// Trailing bytes after a complete op.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "shader blob truncated"),
            DecodeError::BadOpcode(t) => write!(f, "unknown shader opcode {t:#x}"),
            DecodeError::BadEnum(t) => write!(f, "unknown enum tag {t:#x}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes in shader blob"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(tag: u32) -> Self {
        let mut w = Writer {
            buf: Vec::with_capacity(64),
        };
        w.u32(tag);
        w
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Result<u32, DecodeError> {
        let end = self.pos.checked_add(4).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let v = u32::from_le_bytes(self.buf[self.pos..end].try_into().expect("len checked"));
        self.pos = end;
        Ok(v)
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        let end = self.pos.checked_add(8).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let v = u64::from_le_bytes(self.buf[self.pos..end].try_into().expect("len checked"));
        self.pos = end;
        Ok(v)
    }
    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn act(&mut self) -> Result<ActKind, DecodeError> {
        let t = self.u32()?;
        ActKind::from_u32(t).ok_or(DecodeError::BadEnum(t))
    }
    fn pool(&mut self) -> Result<PoolKind, DecodeError> {
        let t = self.u32()?;
        PoolKind::from_u32(t).ok_or(DecodeError::BadEnum(t))
    }
}

const OP_FILL: u32 = 0x01;
const OP_COPY: u32 = 0x02;
const OP_ELTADD: u32 = 0x03;
const OP_SCALE: u32 = 0x04;
const OP_MATMUL: u32 = 0x05;
const OP_FC: u32 = 0x06;
const OP_CONV2D: u32 = 0x07;
const OP_POOL2D: u32 = 0x08;
const OP_ACT: u32 = 0x09;
const OP_SOFTMAX: u32 = 0x0A;
const OP_CONCAT2: u32 = 0x0B;
const OP_UPSAMPLE: u32 = 0x0C;
const OP_BNORM: u32 = 0x0D;
const OP_IM2COL: u32 = 0x0E;
const OP_SMXENTG: u32 = 0x10;
const OP_MMGRADW: u32 = 0x11;
const OP_MMGRADX: u32 = 0x12;
const OP_RELUGRAD: u32 = 0x13;
const OP_BIASGRAD: u32 = 0x14;
const OP_SGD: u32 = 0x15;
const OP_CONVGRADW: u32 = 0x16;
const OP_CONVGRADX: u32 = 0x17;
const OP_POOLGRAD: u32 = 0x18;

impl KernelOp {
    /// Serializes the op into a shader blob.
    pub fn encode(&self) -> Vec<u8> {
        use KernelOp::*;
        let w = match self {
            Fill { out, n, value } => {
                let mut w = Writer::new(OP_FILL);
                w.u64(*out);
                w.u32(*n);
                w.f32(*value);
                w
            }
            CopyBytes { src, dst, len } => {
                let mut w = Writer::new(OP_COPY);
                w.u64(*src);
                w.u64(*dst);
                w.u32(*len);
                w
            }
            EltwiseAdd { a, b, out, n, act } => {
                let mut w = Writer::new(OP_ELTADD);
                w.u64(*a);
                w.u64(*b);
                w.u64(*out);
                w.u32(*n);
                w.u32(*act as u32);
                w
            }
            Scale { a, out, n, alpha } => {
                let mut w = Writer::new(OP_SCALE);
                w.u64(*a);
                w.u64(*out);
                w.u32(*n);
                w.f32(*alpha);
                w
            }
            MatMul { a, b, out, m, k, n } => {
                let mut w = Writer::new(OP_MATMUL);
                w.u64(*a);
                w.u64(*b);
                w.u64(*out);
                w.u32(*m);
                w.u32(*k);
                w.u32(*n);
                w
            }
            FullyConnected {
                x,
                w: wt,
                bias,
                out,
                m,
                k,
                n,
                act,
            } => {
                let mut w = Writer::new(OP_FC);
                w.u64(*x);
                w.u64(*wt);
                w.u64(*bias);
                w.u64(*out);
                w.u32(*m);
                w.u32(*k);
                w.u32(*n);
                w.u32(*act as u32);
                w
            }
            Conv2d {
                x,
                w: wt,
                bias,
                out,
                cin,
                h,
                wd,
                cout,
                kh,
                kw,
                stride,
                pad,
                groups,
                act,
            } => {
                let mut w = Writer::new(OP_CONV2D);
                w.u64(*x);
                w.u64(*wt);
                w.u64(*bias);
                w.u64(*out);
                for v in [cin, h, wd, cout, kh, kw, stride, pad, groups] {
                    w.u32(*v);
                }
                w.u32(*act as u32);
                w
            }
            Pool2d {
                x,
                out,
                c,
                h,
                wd,
                win,
                stride,
                kind,
            } => {
                let mut w = Writer::new(OP_POOL2D);
                w.u64(*x);
                w.u64(*out);
                for v in [c, h, wd, win, stride] {
                    w.u32(*v);
                }
                w.u32(*kind as u32);
                w
            }
            Activation { x, out, n, act } => {
                let mut w = Writer::new(OP_ACT);
                w.u64(*x);
                w.u64(*out);
                w.u32(*n);
                w.u32(*act as u32);
                w
            }
            Softmax { x, out, rows, cols } => {
                let mut w = Writer::new(OP_SOFTMAX);
                w.u64(*x);
                w.u64(*out);
                w.u32(*rows);
                w.u32(*cols);
                w
            }
            Concat2 { a, na, b, nb, out } => {
                let mut w = Writer::new(OP_CONCAT2);
                w.u64(*a);
                w.u32(*na);
                w.u64(*b);
                w.u32(*nb);
                w.u64(*out);
                w
            }
            Upsample2x { x, out, c, h, wd } => {
                let mut w = Writer::new(OP_UPSAMPLE);
                w.u64(*x);
                w.u64(*out);
                w.u32(*c);
                w.u32(*h);
                w.u32(*wd);
                w
            }
            BatchNormInf {
                x,
                out,
                scale,
                shift,
                c,
                hw,
            } => {
                let mut w = Writer::new(OP_BNORM);
                w.u64(*x);
                w.u64(*out);
                w.u64(*scale);
                w.u64(*shift);
                w.u32(*c);
                w.u32(*hw);
                w
            }
            Im2Col {
                x,
                out,
                cin,
                h,
                wd,
                kh,
                kw,
                stride,
                pad,
            } => {
                let mut w = Writer::new(OP_IM2COL);
                w.u64(*x);
                w.u64(*out);
                for v in [cin, h, wd, kh, kw, stride, pad] {
                    w.u32(*v);
                }
                w
            }
            SoftmaxXentGrad {
                probs,
                labels,
                dx,
                rows,
                cols,
            } => {
                let mut w = Writer::new(OP_SMXENTG);
                w.u64(*probs);
                w.u64(*labels);
                w.u64(*dx);
                w.u32(*rows);
                w.u32(*cols);
                w
            }
            MatMulGradW { x, dy, dw, m, k, n } => {
                let mut w = Writer::new(OP_MMGRADW);
                w.u64(*x);
                w.u64(*dy);
                w.u64(*dw);
                w.u32(*m);
                w.u32(*k);
                w.u32(*n);
                w
            }
            MatMulGradX {
                dy,
                w: wt,
                dx,
                m,
                k,
                n,
            } => {
                let mut w = Writer::new(OP_MMGRADX);
                w.u64(*dy);
                w.u64(*wt);
                w.u64(*dx);
                w.u32(*m);
                w.u32(*k);
                w.u32(*n);
                w
            }
            ReluGrad { x, dy, dx, n } => {
                let mut w = Writer::new(OP_RELUGRAD);
                w.u64(*x);
                w.u64(*dy);
                w.u64(*dx);
                w.u32(*n);
                w
            }
            BiasGradReduce { dy, db, m, n } => {
                let mut w = Writer::new(OP_BIASGRAD);
                w.u64(*dy);
                w.u64(*db);
                w.u32(*m);
                w.u32(*n);
                w
            }
            SgdStep { w: wt, g, n, lr } => {
                let mut w = Writer::new(OP_SGD);
                w.u64(*wt);
                w.u64(*g);
                w.u32(*n);
                w.f32(*lr);
                w
            }
            Conv2dGradW {
                x,
                dy,
                dw,
                cin,
                h,
                wd,
                cout,
                kh,
                kw,
                stride,
                pad,
            } => {
                let mut w = Writer::new(OP_CONVGRADW);
                w.u64(*x);
                w.u64(*dy);
                w.u64(*dw);
                for v in [cin, h, wd, cout, kh, kw, stride, pad] {
                    w.u32(*v);
                }
                w
            }
            Conv2dGradX {
                dy,
                w: wt,
                dx,
                cin,
                h,
                wd,
                cout,
                kh,
                kw,
                stride,
                pad,
            } => {
                let mut w = Writer::new(OP_CONVGRADX);
                w.u64(*dy);
                w.u64(*wt);
                w.u64(*dx);
                for v in [cin, h, wd, cout, kh, kw, stride, pad] {
                    w.u32(*v);
                }
                w
            }
            PoolGrad {
                x,
                dy,
                dx,
                c,
                h,
                wd,
                win,
                stride,
                kind,
            } => {
                let mut w = Writer::new(OP_POOLGRAD);
                w.u64(*x);
                w.u64(*dy);
                w.u64(*dx);
                for v in [c, h, wd, win, stride] {
                    w.u32(*v);
                }
                w.u32(*kind as u32);
                w
            }
        };
        w.buf
    }

    /// Decodes a shader blob.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for truncated blobs, unknown opcodes/enums,
    /// or trailing bytes.
    pub fn decode(blob: &[u8]) -> Result<KernelOp, DecodeError> {
        let mut r = Reader { buf: blob, pos: 0 };
        let tag = r.u32()?;
        let op = match tag {
            OP_FILL => KernelOp::Fill {
                out: r.u64()?,
                n: r.u32()?,
                value: r.f32()?,
            },
            OP_COPY => KernelOp::CopyBytes {
                src: r.u64()?,
                dst: r.u64()?,
                len: r.u32()?,
            },
            OP_ELTADD => KernelOp::EltwiseAdd {
                a: r.u64()?,
                b: r.u64()?,
                out: r.u64()?,
                n: r.u32()?,
                act: r.act()?,
            },
            OP_SCALE => KernelOp::Scale {
                a: r.u64()?,
                out: r.u64()?,
                n: r.u32()?,
                alpha: r.f32()?,
            },
            OP_MATMUL => KernelOp::MatMul {
                a: r.u64()?,
                b: r.u64()?,
                out: r.u64()?,
                m: r.u32()?,
                k: r.u32()?,
                n: r.u32()?,
            },
            OP_FC => KernelOp::FullyConnected {
                x: r.u64()?,
                w: r.u64()?,
                bias: r.u64()?,
                out: r.u64()?,
                m: r.u32()?,
                k: r.u32()?,
                n: r.u32()?,
                act: r.act()?,
            },
            OP_CONV2D => KernelOp::Conv2d {
                x: r.u64()?,
                w: r.u64()?,
                bias: r.u64()?,
                out: r.u64()?,
                cin: r.u32()?,
                h: r.u32()?,
                wd: r.u32()?,
                cout: r.u32()?,
                kh: r.u32()?,
                kw: r.u32()?,
                stride: r.u32()?,
                pad: r.u32()?,
                groups: r.u32()?,
                act: r.act()?,
            },
            OP_POOL2D => KernelOp::Pool2d {
                x: r.u64()?,
                out: r.u64()?,
                c: r.u32()?,
                h: r.u32()?,
                wd: r.u32()?,
                win: r.u32()?,
                stride: r.u32()?,
                kind: r.pool()?,
            },
            OP_ACT => KernelOp::Activation {
                x: r.u64()?,
                out: r.u64()?,
                n: r.u32()?,
                act: r.act()?,
            },
            OP_SOFTMAX => KernelOp::Softmax {
                x: r.u64()?,
                out: r.u64()?,
                rows: r.u32()?,
                cols: r.u32()?,
            },
            OP_CONCAT2 => KernelOp::Concat2 {
                a: r.u64()?,
                na: r.u32()?,
                b: r.u64()?,
                nb: r.u32()?,
                out: r.u64()?,
            },
            OP_UPSAMPLE => KernelOp::Upsample2x {
                x: r.u64()?,
                out: r.u64()?,
                c: r.u32()?,
                h: r.u32()?,
                wd: r.u32()?,
            },
            OP_BNORM => KernelOp::BatchNormInf {
                x: r.u64()?,
                out: r.u64()?,
                scale: r.u64()?,
                shift: r.u64()?,
                c: r.u32()?,
                hw: r.u32()?,
            },
            OP_IM2COL => KernelOp::Im2Col {
                x: r.u64()?,
                out: r.u64()?,
                cin: r.u32()?,
                h: r.u32()?,
                wd: r.u32()?,
                kh: r.u32()?,
                kw: r.u32()?,
                stride: r.u32()?,
                pad: r.u32()?,
            },
            OP_SMXENTG => KernelOp::SoftmaxXentGrad {
                probs: r.u64()?,
                labels: r.u64()?,
                dx: r.u64()?,
                rows: r.u32()?,
                cols: r.u32()?,
            },
            OP_MMGRADW => KernelOp::MatMulGradW {
                x: r.u64()?,
                dy: r.u64()?,
                dw: r.u64()?,
                m: r.u32()?,
                k: r.u32()?,
                n: r.u32()?,
            },
            OP_MMGRADX => KernelOp::MatMulGradX {
                dy: r.u64()?,
                w: r.u64()?,
                dx: r.u64()?,
                m: r.u32()?,
                k: r.u32()?,
                n: r.u32()?,
            },
            OP_RELUGRAD => KernelOp::ReluGrad {
                x: r.u64()?,
                dy: r.u64()?,
                dx: r.u64()?,
                n: r.u32()?,
            },
            OP_BIASGRAD => KernelOp::BiasGradReduce {
                dy: r.u64()?,
                db: r.u64()?,
                m: r.u32()?,
                n: r.u32()?,
            },
            OP_SGD => KernelOp::SgdStep {
                w: r.u64()?,
                g: r.u64()?,
                n: r.u32()?,
                lr: r.f32()?,
            },
            OP_CONVGRADW => KernelOp::Conv2dGradW {
                x: r.u64()?,
                dy: r.u64()?,
                dw: r.u64()?,
                cin: r.u32()?,
                h: r.u32()?,
                wd: r.u32()?,
                cout: r.u32()?,
                kh: r.u32()?,
                kw: r.u32()?,
                stride: r.u32()?,
                pad: r.u32()?,
            },
            OP_CONVGRADX => KernelOp::Conv2dGradX {
                dy: r.u64()?,
                w: r.u64()?,
                dx: r.u64()?,
                cin: r.u32()?,
                h: r.u32()?,
                wd: r.u32()?,
                cout: r.u32()?,
                kh: r.u32()?,
                kw: r.u32()?,
                stride: r.u32()?,
                pad: r.u32()?,
            },
            OP_POOLGRAD => KernelOp::PoolGrad {
                x: r.u64()?,
                dy: r.u64()?,
                dx: r.u64()?,
                c: r.u32()?,
                h: r.u32()?,
                wd: r.u32()?,
                win: r.u32()?,
                stride: r.u32()?,
                kind: r.pool()?,
            },
            other => return Err(DecodeError::BadOpcode(other)),
        };
        if r.pos != blob.len() {
            return Err(DecodeError::TrailingBytes(blob.len() - r.pos));
        }
        Ok(op)
    }

    /// Short mnemonic for logging and job labels.
    pub fn mnemonic(&self) -> &'static str {
        use KernelOp::*;
        match self {
            Fill { .. } => "fill",
            CopyBytes { .. } => "copy",
            EltwiseAdd { .. } => "eltadd",
            Scale { .. } => "scale",
            MatMul { .. } => "matmul",
            FullyConnected { .. } => "fc",
            Conv2d { .. } => "conv2d",
            Pool2d { .. } => "pool2d",
            Activation { .. } => "act",
            Softmax { .. } => "softmax",
            Concat2 { .. } => "concat",
            Upsample2x { .. } => "upsample",
            BatchNormInf { .. } => "bnorm",
            Im2Col { .. } => "im2col",
            SoftmaxXentGrad { .. } => "smxent_g",
            MatMulGradW { .. } => "mm_gw",
            MatMulGradX { .. } => "mm_gx",
            ReluGrad { .. } => "relu_g",
            BiasGradReduce { .. } => "bias_g",
            SgdStep { .. } => "sgd",
            Conv2dGradW { .. } => "conv_gw",
            Conv2dGradX { .. } => "conv_gx",
            PoolGrad { .. } => "pool_g",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<KernelOp> {
        use KernelOp::*;
        vec![
            Fill {
                out: 0x1000,
                n: 16,
                value: 1.5,
            },
            CopyBytes {
                src: 0x1000,
                dst: 0x2000,
                len: 64,
            },
            EltwiseAdd {
                a: 1,
                b: 2,
                out: 3,
                n: 4,
                act: ActKind::Relu,
            },
            Scale {
                a: 1,
                out: 2,
                n: 8,
                alpha: -0.5,
            },
            MatMul {
                a: 1,
                b: 2,
                out: 3,
                m: 4,
                k: 5,
                n: 6,
            },
            FullyConnected {
                x: 1,
                w: 2,
                bias: 0,
                out: 4,
                m: 1,
                k: 8,
                n: 10,
                act: ActKind::None,
            },
            Conv2d {
                x: 1,
                w: 2,
                bias: 3,
                out: 4,
                cin: 3,
                h: 8,
                wd: 8,
                cout: 16,
                kh: 3,
                kw: 3,
                stride: 1,
                pad: 1,
                groups: 1,
                act: ActKind::Relu6,
            },
            Pool2d {
                x: 1,
                out: 2,
                c: 4,
                h: 8,
                wd: 8,
                win: 2,
                stride: 2,
                kind: PoolKind::Max,
            },
            Activation {
                x: 1,
                out: 2,
                n: 7,
                act: ActKind::LeakyRelu,
            },
            Softmax {
                x: 1,
                out: 2,
                rows: 1,
                cols: 10,
            },
            Concat2 {
                a: 1,
                na: 5,
                b: 2,
                nb: 6,
                out: 3,
            },
            Upsample2x {
                x: 1,
                out: 2,
                c: 2,
                h: 4,
                wd: 4,
            },
            BatchNormInf {
                x: 1,
                out: 2,
                scale: 3,
                shift: 4,
                c: 8,
                hw: 16,
            },
            Im2Col {
                x: 1,
                out: 2,
                cin: 3,
                h: 8,
                wd: 8,
                kh: 3,
                kw: 3,
                stride: 1,
                pad: 1,
            },
            SoftmaxXentGrad {
                probs: 1,
                labels: 2,
                dx: 3,
                rows: 4,
                cols: 10,
            },
            MatMulGradW {
                x: 1,
                dy: 2,
                dw: 3,
                m: 4,
                k: 5,
                n: 6,
            },
            MatMulGradX {
                dy: 1,
                w: 2,
                dx: 3,
                m: 4,
                k: 5,
                n: 6,
            },
            ReluGrad {
                x: 1,
                dy: 2,
                dx: 3,
                n: 9,
            },
            BiasGradReduce {
                dy: 1,
                db: 2,
                m: 3,
                n: 4,
            },
            SgdStep {
                w: 1,
                g: 2,
                n: 10,
                lr: 0.01,
            },
            Conv2dGradW {
                x: 1,
                dy: 2,
                dw: 3,
                cin: 1,
                h: 8,
                wd: 8,
                cout: 4,
                kh: 3,
                kw: 3,
                stride: 1,
                pad: 1,
            },
            Conv2dGradX {
                dy: 1,
                w: 2,
                dx: 3,
                cin: 1,
                h: 8,
                wd: 8,
                cout: 4,
                kh: 3,
                kw: 3,
                stride: 1,
                pad: 1,
            },
            PoolGrad {
                x: 1,
                dy: 2,
                dx: 3,
                c: 2,
                h: 4,
                wd: 4,
                win: 2,
                stride: 2,
                kind: PoolKind::Avg,
            },
        ]
    }

    #[test]
    fn every_op_roundtrips() {
        for op in samples() {
            let blob = op.encode();
            let back = KernelOp::decode(&blob).unwrap_or_else(|e| panic!("{op:?}: {e}"));
            assert_eq!(back, op);
            assert!(!op.mnemonic().is_empty());
        }
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let blob = samples()[6].encode(); // conv2d, longest fixed layout
        for cut in 0..blob.len() {
            let err = KernelOp::decode(&blob[..cut]).unwrap_err();
            assert_eq!(err, DecodeError::Truncated, "cut={cut}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut blob = samples()[0].encode();
        blob.push(0);
        assert_eq!(KernelOp::decode(&blob), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn bad_opcode_and_enum_detected() {
        let blob = 0xFFFF_FFFFu32.to_le_bytes().to_vec();
        assert_eq!(
            KernelOp::decode(&blob),
            Err(DecodeError::BadOpcode(0xFFFF_FFFF))
        );

        // Activation with an invalid act tag.
        let mut blob = KernelOp::Activation {
            x: 1,
            out: 2,
            n: 3,
            act: ActKind::Relu,
        }
        .encode();
        let len = blob.len();
        blob[len - 4..].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(KernelOp::decode(&blob), Err(DecodeError::BadEnum(99)));
    }

    #[test]
    fn enum_tags_roundtrip() {
        for k in [
            ActKind::None,
            ActKind::Relu,
            ActKind::Relu6,
            ActKind::LeakyRelu,
            ActKind::Sigmoid,
            ActKind::Tanh,
        ] {
            assert_eq!(ActKind::from_u32(k as u32), Some(k));
        }
        assert_eq!(ActKind::from_u32(42), None);
        for k in [PoolKind::Max, PoolKind::Avg] {
            assert_eq!(PoolKind::from_u32(k as u32), Some(k));
        }
        assert_eq!(PoolKind::from_u32(9), None);
    }
}
