//! The f32 math behind each [`super::bytecode::KernelOp`].
//!
//! These are straightforward reference implementations: the simulated GPU
//! is not trying to be fast, it is trying to be *bit-stable* so the §7.2
//! validation can compare replayed outputs against the CPU reference
//! executor exactly.

use super::bytecode::{ActKind, PoolKind};

/// Applies an activation to a single value.
pub fn apply_act(act: ActKind, v: f32) -> f32 {
    match act {
        ActKind::None => v,
        ActKind::Relu => v.max(0.0),
        // Not `clamp`: max-then-min squashes NaN to 0.0, and replayed
        // buffers may carry arbitrary user bytes (including NaN patterns).
        #[allow(clippy::manual_clamp)]
        ActKind::Relu6 => v.max(0.0).min(6.0),
        ActKind::LeakyRelu => {
            if v > 0.0 {
                v
            } else {
                0.1 * v
            }
        }
        ActKind::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        ActKind::Tanh => v.tanh(),
    }
}

/// Elementwise `act(a + b)` into `out` (cleared first). The activation
/// dispatch is hoisted out of the loop so the common None/Relu cases
/// vectorize; per-element values are identical to calling [`apply_act`].
pub fn eltwise_add_act(act: ActKind, a: &[f32], b: &[f32], out: &mut Vec<f32>) {
    out.clear();
    match act {
        ActKind::None => out.extend(a.iter().zip(b).map(|(&x, &y)| x + y)),
        ActKind::Relu => out.extend(a.iter().zip(b).map(|(&x, &y)| (x + y).max(0.0))),
        _ => out.extend(a.iter().zip(b).map(|(&x, &y)| apply_act(act, x + y))),
    }
}

/// Elementwise `act(x)` into `out` (cleared first), dispatch hoisted.
pub fn map_act(act: ActKind, x: &[f32], out: &mut Vec<f32>) {
    out.clear();
    match act {
        ActKind::None => out.extend_from_slice(x),
        ActKind::Relu => out.extend(x.iter().map(|&v| v.max(0.0))),
        _ => out.extend(x.iter().map(|&v| apply_act(act, v))),
    }
}

/// Output spatial size of a conv/pool axis (0 when the kernel does not fit
/// or the dimensions overflow `u32`).
pub fn out_dim(input: u32, kernel: u32, stride: u32, pad: u32) -> u32 {
    debug_assert!(stride > 0, "stride must be positive");
    // `input + 2 * pad` can overflow u32 for hostile recorded dimensions;
    // widen to u64 and treat any result outside u32 as "does not fit".
    let padded = u64::from(input) + 2 * u64::from(pad);
    if padded < u64::from(kernel) {
        return 0;
    }
    u32::try_from((padded - u64::from(kernel)) / u64::from(stride) + 1).unwrap_or(0)
}

/// Dense GEMM: `out[m×n] = a[m×k] · b[k×n]`.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "lhs size");
    assert_eq!(b.len(), k * n, "rhs size");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Fully connected: `act(x[m×k] · w[k×n] + bias[n])`.
pub fn fully_connected(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    m: usize,
    k: usize,
    n: usize,
    act: ActKind,
) -> Vec<f32> {
    let mut out = matmul(x, w, m, k, n);
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "bias size");
        for row in out.chunks_mut(n) {
            for (o, &bv) in row.iter_mut().zip(b) {
                *o += bv;
            }
        }
    }
    for o in &mut out {
        *o = apply_act(act, *o);
    }
    out
}

/// Grouped 2-D convolution over NCHW (batch 1) with fused bias/activation.
///
/// Weights are laid out `cout × (cin/groups) × kh × kw`.
///
/// Dispatches between the original reference loop nest and a bit-exact
/// restructured fast loop (see [`conv2d_fast`]); both accumulate every
/// output element in the identical `(ic, ky, kx)` order, so replayed
/// outputs stay bit-stable either way (`conv_fast_matches_reference`
/// proves it).
///
/// # Panics
///
/// Panics if the channel counts are not divisible by `groups` or buffer
/// sizes disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    cin: usize,
    h: usize,
    wd: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    act: ActKind,
) -> Vec<f32> {
    let wo = out_dim(wd as u32, kw as u32, stride as u32, pad as u32) as usize;
    // The row-vectorized loop nest only pays off when output rows are wide
    // enough to amortize its per-row setup; narrow outputs keep the
    // register-accumulating reference nest. Both are bit-identical.
    if crate::fastpath::enabled() && stride == 1 && wo >= 16 {
        conv2d_fast(
            x, w, bias, cin, h, wd, cout, kh, kw, stride, pad, groups, act,
        )
    } else {
        conv2d_reference(
            x, w, bias, cin, h, wd, cout, kh, kw, stride, pad, groups, act,
        )
    }
}

/// The original per-output-pixel loop nest (the pre-fast-path baseline).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_reference(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    cin: usize,
    h: usize,
    wd: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    act: ActKind,
) -> Vec<f32> {
    assert!(
        groups > 0 && cin % groups == 0 && cout % groups == 0,
        "bad groups"
    );
    let cing = cin / groups;
    let coutg = cout / groups;
    assert_eq!(x.len(), cin * h * wd, "input size");
    assert_eq!(w.len(), cout * cing * kh * kw, "weight size");
    let ho = out_dim(h as u32, kh as u32, stride as u32, pad as u32) as usize;
    let wo = out_dim(wd as u32, kw as u32, stride as u32, pad as u32) as usize;
    let mut out = vec![0.0f32; cout * ho * wo];
    for g in 0..groups {
        for ocg in 0..coutg {
            let oc = g * coutg + ocg;
            let b = bias.map_or(0.0, |b| b[oc]);
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = b;
                    for icg in 0..cing {
                        let ic = g * cing + icg;
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                let xv = x[ic * h * wd + iy as usize * wd + ix as usize];
                                let wv = w[((oc * cing + icg) * kh + ky) * kw + kx];
                                acc += xv * wv;
                            }
                        }
                    }
                    out[oc * ho * wo + oy * wo + ox] = apply_act(act, acc);
                }
            }
        }
    }
    out
}

/// Restructured direct convolution: output-x is the innermost loop, so
/// every `out[oc, oy, ox]` is an *independent* accumulator and the inner
/// loop is branch-free (the valid `ox` range is hoisted out).
///
/// Bit-exactness: each output element still accumulates its products in
/// exactly the reference order — bias first, then `(icg, ky, kx)` in the
/// same nesting — because those loops stay outside `ox` and out-of-bounds
/// taps contribute nothing in both versions. Only the *interleaving
/// across different outputs* changes, which f32 cannot observe.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_fast(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    cin: usize,
    h: usize,
    wd: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    act: ActKind,
) -> Vec<f32> {
    assert!(
        groups > 0 && cin % groups == 0 && cout % groups == 0,
        "bad groups"
    );
    let cing = cin / groups;
    let coutg = cout / groups;
    assert_eq!(x.len(), cin * h * wd, "input size");
    assert_eq!(w.len(), cout * cing * kh * kw, "weight size");
    let ho = out_dim(h as u32, kh as u32, stride as u32, pad as u32) as usize;
    let wo = out_dim(wd as u32, kw as u32, stride as u32, pad as u32) as usize;
    let mut out = vec![0.0f32; cout * ho * wo];
    for g in 0..groups {
        for ocg in 0..coutg {
            let oc = g * coutg + ocg;
            let b = bias.map_or(0.0, |b| b[oc]);
            out[oc * ho * wo..(oc + 1) * ho * wo].fill(b);
            for icg in 0..cing {
                let ic = g * cing + icg;
                let xplane = &x[ic * h * wd..(ic + 1) * h * wd];
                for ky in 0..kh {
                    for kx in 0..kw {
                        let wv = w[((oc * cing + icg) * kh + ky) * kw + kx];
                        // Valid output ranges: iy = oy*stride + ky - pad in
                        // [0, h) and likewise for ix — hoisted from the
                        // reference version's per-tap bounds checks.
                        let oy_lo = pad.saturating_sub(ky).div_ceil(stride);
                        let oy_hi = ho.min((h + pad).saturating_sub(ky).div_ceil(stride));
                        let ox_lo = pad.saturating_sub(kx).div_ceil(stride);
                        let ox_hi = wo.min((wd + pad).saturating_sub(kx).div_ceil(stride));
                        if ox_lo >= ox_hi {
                            continue;
                        }
                        for oy in oy_lo..oy_hi {
                            let iy = oy * stride + ky - pad;
                            let xrow = &xplane[iy * wd..(iy + 1) * wd];
                            let orow = &mut out[oc * ho * wo + oy * wo..][..wo];
                            if stride == 1 {
                                let xoff = kx - pad.min(kx); // == ox_lo + kx - pad
                                let n = ox_hi - ox_lo;
                                // Branch-free saxpy; each out lane is its
                                // own accumulator, so this vectorizes
                                // without reassociating any single output.
                                for (o, &xv) in
                                    orow[ox_lo..ox_hi].iter_mut().zip(&xrow[xoff..xoff + n])
                                {
                                    *o += xv * wv;
                                }
                            } else {
                                for ox in ox_lo..ox_hi {
                                    orow[ox] += xrow[ox * stride + kx - pad] * wv;
                                }
                            }
                        }
                    }
                }
            }
            for v in &mut out[oc * ho * wo..(oc + 1) * ho * wo] {
                *v = apply_act(act, *v);
            }
        }
    }
    out
}

/// 2-D pooling over NCHW, no padding.
pub fn pool2d(
    x: &[f32],
    c: usize,
    h: usize,
    wd: usize,
    win: usize,
    stride: usize,
    kind: PoolKind,
) -> Vec<f32> {
    assert_eq!(x.len(), c * h * wd, "input size");
    let ho = out_dim(h as u32, win as u32, stride as u32, 0) as usize;
    let wo = out_dim(wd as u32, win as u32, stride as u32, 0) as usize;
    let mut out = vec![0.0f32; c * ho * wo];
    // The kind dispatch is hoisted out of the window loop; each branch
    // performs exactly the reduction the combined loop used to select.
    for ch in 0..c {
        for oy in 0..ho {
            for ox in 0..wo {
                out[ch * ho * wo + oy * wo + ox] = match kind {
                    PoolKind::Max => {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..win {
                            for kx in 0..win {
                                best = best.max(
                                    x[ch * h * wd + (oy * stride + ky) * wd + (ox * stride + kx)],
                                );
                            }
                        }
                        best
                    }
                    PoolKind::Avg => {
                        let mut sum = 0.0f32;
                        for ky in 0..win {
                            for kx in 0..win {
                                sum +=
                                    x[ch * h * wd + (oy * stride + ky) * wd + (ox * stride + kx)];
                            }
                        }
                        sum / (win * win) as f32
                    }
                };
            }
        }
    }
    out
}

/// Row-wise numerically-stable softmax.
pub fn softmax(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(x.len(), rows * cols, "input size");
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (i, &v) in row.iter().enumerate() {
            let e = (v - mx).exp();
            out[r * cols + i] = e;
            denom += e;
        }
        for v in &mut out[r * cols..(r + 1) * cols] {
            *v /= denom;
        }
    }
    out
}

/// Nearest-neighbour 2× upsample over NCHW.
pub fn upsample2x(x: &[f32], c: usize, h: usize, wd: usize) -> Vec<f32> {
    assert_eq!(x.len(), c * h * wd, "input size");
    let mut out = vec![0.0f32; c * h * 2 * wd * 2];
    for ch in 0..c {
        for y in 0..h * 2 {
            for xx in 0..wd * 2 {
                out[ch * h * 2 * wd * 2 + y * wd * 2 + xx] = x[ch * h * wd + (y / 2) * wd + xx / 2];
            }
        }
    }
    out
}

/// Inference batch-norm folded into per-channel scale/shift.
pub fn batchnorm_inf(x: &[f32], scale: &[f32], shift: &[f32], c: usize, hw: usize) -> Vec<f32> {
    assert_eq!(x.len(), c * hw, "input size");
    assert_eq!(scale.len(), c, "scale size");
    assert_eq!(shift.len(), c, "shift size");
    let mut out = vec![0.0f32; c * hw];
    for ch in 0..c {
        for i in 0..hw {
            out[ch * hw + i] = x[ch * hw + i] * scale[ch] + shift[ch];
        }
    }
    out
}

/// ACL-style im2col producing a `(ho*wo) × (cin*kh*kw)` patch matrix.
///
/// Pure data movement (no float arithmetic), so the fast variant below is
/// trivially value-identical; the reference loop is kept as the measured
/// pre-fast-path baseline.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    x: &[f32],
    cin: usize,
    h: usize,
    wd: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    if crate::fastpath::enabled() {
        im2col_fast(x, cin, h, wd, kh, kw, stride, pad)
    } else {
        im2col_reference(x, cin, h, wd, kh, kw, stride, pad)
    }
}

/// Slice-copy im2col: each contiguous run of valid taps is one
/// `copy_from_slice`; the zero padding is already in place from the
/// allocation. Value-identical to [`im2col_reference`].
#[allow(clippy::too_many_arguments)]
pub fn im2col_fast(
    x: &[f32],
    cin: usize,
    h: usize,
    wd: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    assert_eq!(x.len(), cin * h * wd, "input size");
    let ho = out_dim(h as u32, kh as u32, stride as u32, pad as u32) as usize;
    let wo = out_dim(wd as u32, kw as u32, stride as u32, pad as u32) as usize;
    let cols = cin * kh * kw;
    let mut out = vec![0.0f32; ho * wo * cols];
    for oy in 0..ho {
        for ox in 0..wo {
            let row = oy * wo + ox;
            let ix_base = ox * stride;
            for ic in 0..cin {
                for ky in 0..kh {
                    let iy = oy * stride + ky;
                    if iy < pad || iy - pad >= h {
                        continue;
                    }
                    let kx_lo = pad.saturating_sub(ix_base).min(kw);
                    let kx_hi = (wd + pad).saturating_sub(ix_base).min(kw);
                    if kx_lo >= kx_hi {
                        continue;
                    }
                    let n = kx_hi - kx_lo;
                    let src = &x[ic * h * wd + (iy - pad) * wd + ix_base + kx_lo - pad..][..n];
                    let dst = &mut out[row * cols + (ic * kh + ky) * kw + kx_lo..][..n];
                    dst.copy_from_slice(src);
                }
            }
        }
    }
    out
}

/// The original per-tap im2col loop (the pre-fast-path baseline).
#[allow(clippy::too_many_arguments)]
pub fn im2col_reference(
    x: &[f32],
    cin: usize,
    h: usize,
    wd: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    assert_eq!(x.len(), cin * h * wd, "input size");
    let ho = out_dim(h as u32, kh as u32, stride as u32, pad as u32) as usize;
    let wo = out_dim(wd as u32, kw as u32, stride as u32, pad as u32) as usize;
    let cols = cin * kh * kw;
    let mut out = vec![0.0f32; ho * wo * cols];
    for oy in 0..ho {
        for ox in 0..wo {
            let row = oy * wo + ox;
            for ic in 0..cin {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        let v = if iy < 0 || iy >= h as isize || ix < 0 || ix >= wd as isize {
                            0.0
                        } else {
                            x[ic * h * wd + iy as usize * wd + ix as usize]
                        };
                        out[row * cols + (ic * kh + ky) * kw + kx] = v;
                    }
                }
            }
        }
    }
    out
}

/// Softmax + cross-entropy gradient: `(probs - onehot(labels)) / rows`.
pub fn softmax_xent_grad(probs: &[f32], labels: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(probs.len(), rows * cols, "probs size");
    assert_eq!(labels.len(), rows, "labels size");
    let mut dx = probs.to_vec();
    let inv = 1.0 / rows as f32;
    for r in 0..rows {
        let cls = labels[r] as usize;
        assert!(cls < cols, "label out of range");
        dx[r * cols + cls] -= 1.0;
        for v in &mut dx[r * cols..(r + 1) * cols] {
            *v *= inv;
        }
    }
    dx
}

/// `dw[k×n] = xᵀ · dy` for a forward `x[m×k] · w[k×n]`.
pub fn matmul_grad_w(x: &[f32], dy: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(x.len(), m * k, "x size");
    assert_eq!(dy.len(), m * n, "dy size");
    let mut dw = vec![0.0f32; k * n];
    for i in 0..m {
        for p in 0..k {
            let xv = x[i * k + p];
            if xv == 0.0 {
                continue;
            }
            for j in 0..n {
                dw[p * n + j] += xv * dy[i * n + j];
            }
        }
    }
    dw
}

/// `dx[m×k] = dy · wᵀ` for a forward `x[m×k] · w[k×n]`.
pub fn matmul_grad_x(dy: &[f32], w: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(dy.len(), m * n, "dy size");
    assert_eq!(w.len(), k * n, "w size");
    let mut dx = vec![0.0f32; m * k];
    for i in 0..m {
        for j in 0..n {
            let dv = dy[i * n + j];
            if dv == 0.0 {
                continue;
            }
            for p in 0..k {
                dx[i * k + p] += dv * w[p * n + j];
            }
        }
    }
    dx
}

/// ReLU backward.
pub fn relu_grad(x: &[f32], dy: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), dy.len(), "size mismatch");
    x.iter()
        .zip(dy)
        .map(|(&xv, &dv)| if xv > 0.0 { dv } else { 0.0 })
        .collect()
}

/// Column sums of `dy[m×n]` (bias gradient).
pub fn bias_grad(dy: &[f32], m: usize, n: usize) -> Vec<f32> {
    assert_eq!(dy.len(), m * n, "dy size");
    let mut db = vec![0.0f32; n];
    for row in dy.chunks(n) {
        for (d, &v) in db.iter_mut().zip(row) {
            *d += v;
        }
    }
    db
}

/// In-place SGD step: `w -= lr * g`.
pub fn sgd_step(w: &mut [f32], g: &[f32], lr: f32) {
    assert_eq!(w.len(), g.len(), "size mismatch");
    for (wv, &gv) in w.iter_mut().zip(g) {
        *wv -= lr * gv;
    }
}

/// Convolution weight gradient (groups = 1).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_grad_w(
    x: &[f32],
    dy: &[f32],
    cin: usize,
    h: usize,
    wd: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let ho = out_dim(h as u32, kh as u32, stride as u32, pad as u32) as usize;
    let wo = out_dim(wd as u32, kw as u32, stride as u32, pad as u32) as usize;
    assert_eq!(x.len(), cin * h * wd, "x size");
    assert_eq!(dy.len(), cout * ho * wo, "dy size");
    let mut dw = vec![0.0f32; cout * cin * kh * kw];
    for oc in 0..cout {
        for ic in 0..cin {
            for ky in 0..kh {
                for kx in 0..kw {
                    let mut acc = 0.0f32;
                    for oy in 0..ho {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..wo {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= wd as isize {
                                continue;
                            }
                            acc += x[ic * h * wd + iy as usize * wd + ix as usize]
                                * dy[oc * ho * wo + oy * wo + ox];
                        }
                    }
                    dw[((oc * cin + ic) * kh + ky) * kw + kx] = acc;
                }
            }
        }
    }
    dw
}

/// Convolution input gradient (groups = 1).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_grad_x(
    dy: &[f32],
    w: &[f32],
    cin: usize,
    h: usize,
    wd: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let ho = out_dim(h as u32, kh as u32, stride as u32, pad as u32) as usize;
    let wo = out_dim(wd as u32, kw as u32, stride as u32, pad as u32) as usize;
    assert_eq!(dy.len(), cout * ho * wo, "dy size");
    assert_eq!(w.len(), cout * cin * kh * kw, "w size");
    let mut dx = vec![0.0f32; cin * h * wd];
    for oc in 0..cout {
        for oy in 0..ho {
            for ox in 0..wo {
                let dv = dy[oc * ho * wo + oy * wo + ox];
                if dv == 0.0 {
                    continue;
                }
                for ic in 0..cin {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= wd as isize {
                                continue;
                            }
                            dx[ic * h * wd + iy as usize * wd + ix as usize] +=
                                dv * w[((oc * cin + ic) * kh + ky) * kw + kx];
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Pooling backward.
#[allow(clippy::too_many_arguments)]
pub fn pool_grad(
    x: &[f32],
    dy: &[f32],
    c: usize,
    h: usize,
    wd: usize,
    win: usize,
    stride: usize,
    kind: PoolKind,
) -> Vec<f32> {
    let ho = out_dim(h as u32, win as u32, stride as u32, 0) as usize;
    let wo = out_dim(wd as u32, win as u32, stride as u32, 0) as usize;
    assert_eq!(x.len(), c * h * wd, "x size");
    assert_eq!(dy.len(), c * ho * wo, "dy size");
    let mut dx = vec![0.0f32; c * h * wd];
    for ch in 0..c {
        for oy in 0..ho {
            for ox in 0..wo {
                let dv = dy[ch * ho * wo + oy * wo + ox];
                match kind {
                    PoolKind::Max => {
                        let mut best = f32::NEG_INFINITY;
                        let mut arg = (0, 0);
                        for ky in 0..win {
                            for kx in 0..win {
                                let v =
                                    x[ch * h * wd + (oy * stride + ky) * wd + (ox * stride + kx)];
                                if v > best {
                                    best = v;
                                    arg = (oy * stride + ky, ox * stride + kx);
                                }
                            }
                        }
                        dx[ch * h * wd + arg.0 * wd + arg.1] += dv;
                    }
                    PoolKind::Avg => {
                        let share = dv / (win * win) as f32;
                        for ky in 0..win {
                            for kx in 0..win {
                                dx[ch * h * wd + (oy * stride + ky) * wd + (ox * stride + kx)] +=
                                    share;
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn activations() {
        assert_eq!(apply_act(ActKind::Relu, -2.0), 0.0);
        assert_eq!(apply_act(ActKind::Relu, 2.0), 2.0);
        assert_eq!(apply_act(ActKind::Relu6, 9.0), 6.0);
        assert!((apply_act(ActKind::LeakyRelu, -1.0) + 0.1).abs() < 1e-6);
        assert!((apply_act(ActKind::Sigmoid, 0.0) - 0.5).abs() < 1e-6);
        assert!((apply_act(ActKind::Tanh, 0.0)).abs() < 1e-6);
        assert_eq!(apply_act(ActKind::None, 3.5), 3.5);
    }

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let out = matmul(&[1., 2., 3., 4.], &[5., 6., 7., 8.], 2, 2, 2);
        assert_eq!(out, vec![19., 22., 43., 50.]);
    }

    #[test]
    fn fc_bias_and_act() {
        let out = fully_connected(
            &[1., -1.],
            &[1., 0., 0., 1.],
            Some(&[0.5, -10.0]),
            1,
            2,
            2,
            ActKind::Relu,
        );
        assert_eq!(out, vec![1.5, 0.0]);
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x3x3 input, 1x1x1x1 kernel of weight 2 => doubled input.
        let x: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let out = conv2d(&x, &[2.0], None, 1, 3, 3, 1, 1, 1, 1, 0, 1, ActKind::None);
        assert_close(&out, &x.iter().map(|v| v * 2.0).collect::<Vec<_>>(), 1e-6);
    }

    #[test]
    fn conv_padding_and_stride() {
        // 1x2x2 input, 2x2 kernel of ones, stride 2, pad 1 -> 4 outputs,
        // each seeing exactly one input element.
        let out = conv2d(
            &[1., 2., 3., 4.],
            &[1., 1., 1., 1.],
            None,
            1,
            2,
            2,
            1,
            2,
            2,
            2,
            1,
            1,
            ActKind::None,
        );
        assert_eq!(out, vec![1., 2., 3., 4.]);
    }

    #[test]
    fn depthwise_conv_groups() {
        // 2 channels, each with its own 1x1 kernel: [x1*10, x2*100].
        let out = conv2d(
            &[1., 2., 3., 4., 5., 6., 7., 8.],
            &[10., 100.],
            None,
            2,
            2,
            2,
            2,
            1,
            1,
            1,
            0,
            2,
            ActKind::None,
        );
        assert_eq!(out, vec![10., 20., 30., 40., 500., 600., 700., 800.]);
    }

    #[test]
    fn conv_equals_im2col_matmul() {
        // The ACL lowering identity the Mali path relies on:
        // conv(x, w) == im2col(x) · reshape(w).
        let x: Vec<f32> = (0..3 * 5 * 5).map(|v| (v as f32 * 0.37).sin()).collect();
        let w: Vec<f32> = (0..4 * 3 * 3 * 3)
            .map(|v| (v as f32 * 0.11).cos())
            .collect();
        let direct = conv2d(&x, &w, None, 3, 5, 5, 4, 3, 3, 1, 1, 1, ActKind::None);

        let cols = im2col(&x, 3, 5, 5, 3, 3, 1, 1);
        // cols is (ho*wo) x (cin*kh*kw); w as (cout) x (cin*kh*kw).
        // direct[oc, pix] = dot(w[oc], cols[pix]) = (cols · wᵀ)[pix, oc].
        let howo = 25;
        let ckk = 27;
        let mut wt = vec![0.0f32; ckk * 4];
        for oc in 0..4 {
            for i in 0..ckk {
                wt[i * 4 + oc] = w[oc * ckk + i];
            }
        }
        let viagemm = matmul(&cols, &wt, howo, ckk, 4);
        // viagemm is pix-major; transpose to channel-major to compare.
        let mut t = vec![0.0f32; howo * 4];
        for pix in 0..howo {
            for oc in 0..4 {
                t[oc * howo + pix] = viagemm[pix * 4 + oc];
            }
        }
        assert_close(&t, &direct, 1e-4);
    }

    #[test]
    fn conv_fast_matches_reference_bit_exactly() {
        // The fast loop nest must be indistinguishable from the reference
        // down to the last ulp: same taps, same per-output accumulation
        // order. Sweep shapes that exercise padding, stride, groups,
        // non-square kernels, and kernels larger than the input.
        let cases = [
            // (cin, h, wd, cout, kh, kw, stride, pad, groups)
            (3, 5, 5, 4, 3, 3, 1, 1, 1),
            (1, 28, 28, 8, 5, 5, 1, 2, 1),
            (2, 9, 7, 6, 3, 5, 2, 2, 2),
            (4, 4, 4, 4, 1, 1, 1, 0, 4),
            (2, 3, 3, 2, 7, 7, 1, 3, 1),
            (3, 11, 13, 5, 4, 2, 3, 1, 1),
            (2, 2, 2, 2, 8, 8, 2, 4, 2),
        ];
        for (cin, h, wd, cout, kh, kw, stride, pad, groups) in cases {
            let x: Vec<f32> = (0..cin * h * wd)
                .map(|v| ((v as f32) * 0.731).sin() * 3.0)
                .collect();
            let w: Vec<f32> = (0..cout * (cin / groups) * kh * kw)
                .map(|v| ((v as f32) * 0.377).cos() * 0.5)
                .collect();
            let b: Vec<f32> = (0..cout).map(|v| v as f32 * 0.1 - 0.2).collect();
            for (bias, act) in [(None, ActKind::None), (Some(&b[..]), ActKind::Relu)] {
                let fast = conv2d_fast(
                    &x, &w, bias, cin, h, wd, cout, kh, kw, stride, pad, groups, act,
                );
                let reference = conv2d_reference(
                    &x, &w, bias, cin, h, wd, cout, kh, kw, stride, pad, groups, act,
                );
                assert_eq!(
                    fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "shape cin={cin} h={h} wd={wd} cout={cout} kh={kh} kw={kw} \
                     stride={stride} pad={pad} groups={groups}"
                );
            }
        }
    }

    #[test]
    fn im2col_fast_matches_reference_bit_exactly() {
        for (cin, h, wd, kh, kw, stride, pad) in [
            (3, 5, 5, 3, 3, 1, 1),
            (1, 28, 28, 5, 5, 1, 2),
            (2, 7, 9, 4, 6, 2, 3),
            (2, 3, 3, 7, 7, 1, 3),
            (1, 4, 4, 2, 2, 3, 0),
        ] {
            let x: Vec<f32> = (0..cin * h * wd)
                .map(|v| ((v as f32) * 0.913).sin())
                .collect();
            let fast = im2col_fast(&x, cin, h, wd, kh, kw, stride, pad);
            let slow = im2col_reference(&x, cin, h, wd, kh, kw, stride, pad);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "shape cin={cin} h={h} wd={wd} kh={kh} kw={kw} stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn pooling_max_and_avg() {
        let x = vec![1., 2., 3., 4.];
        assert_eq!(pool2d(&x, 1, 2, 2, 2, 2, PoolKind::Max), vec![4.]);
        assert_eq!(pool2d(&x, 1, 2, 2, 2, 2, PoolKind::Avg), vec![2.5]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let out = softmax(&[1., 2., 3., 1., 1., 1.], 2, 3);
        for r in 0..2 {
            let s: f32 = out[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(out[2] > out[1] && out[1] > out[0]);
        assert_close(&out[3..6], &[1.0 / 3.0; 3], 1e-6);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let out = softmax(&[1000.0, 1001.0], 1, 2);
        assert!(out.iter().all(|v| v.is_finite()));
        assert!((out[0] + out[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn upsample_and_batchnorm() {
        let up = upsample2x(&[1., 2., 3., 4.], 1, 2, 2);
        assert_eq!(
            up,
            vec![1., 1., 2., 2., 1., 1., 2., 2., 3., 3., 4., 4., 3., 3., 4., 4.]
        );
        let bn = batchnorm_inf(&[1., 2., 3., 4.], &[2., 10.], &[0.5, -1.0], 2, 2);
        assert_eq!(bn, vec![2.5, 4.5, 29.0, 39.0]);
    }

    #[test]
    fn xent_grad_matches_definition() {
        let probs = vec![0.7, 0.2, 0.1, 0.1, 0.8, 0.1];
        let g = softmax_xent_grad(&probs, &[0.0, 1.0], 2, 3);
        assert_close(&g, &[-0.15, 0.1, 0.05, 0.05, -0.1, 0.05], 1e-6);
    }

    #[test]
    fn matmul_grads_match_finite_difference() {
        let m = 2;
        let k = 3;
        let n = 2;
        let x: Vec<f32> = (0..m * k).map(|v| 0.3 * v as f32 - 0.4).collect();
        let w: Vec<f32> = (0..k * n).map(|v| 0.2 * v as f32 + 0.1).collect();
        // Loss = sum(out). Then dy = ones, dW = xᵀ·1, dX = 1·wᵀ.
        let dy = vec![1.0f32; m * n];
        let dw = matmul_grad_w(&x, &dy, m, k, n);
        let dx = matmul_grad_x(&dy, &w, m, k, n);
        let loss = |x: &[f32], w: &[f32]| -> f32 { matmul(x, w, m, k, n).iter().sum() };
        let eps = 1e-2f32;
        for i in 0..k * n {
            let mut wp = w.clone();
            wp[i] += eps;
            let mut wm = w.clone();
            wm[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - dw[i]).abs() < 1e-2, "dw[{i}]: {num} vs {}", dw[i]);
        }
        for i in 0..m * k {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-2, "dx[{i}]: {num} vs {}", dx[i]);
        }
    }

    #[test]
    fn conv_grads_match_finite_difference() {
        let (cin, h, wd, cout, kh, kw, stride, pad) = (2, 4, 4, 2, 3, 3, 1, 1);
        let x: Vec<f32> = (0..cin * h * wd)
            .map(|v| ((v * 7 % 13) as f32 - 6.0) * 0.1)
            .collect();
        let w: Vec<f32> = (0..cout * cin * kh * kw)
            .map(|v| ((v * 5 % 11) as f32 - 5.0) * 0.05)
            .collect();
        let ho = out_dim(h as u32, kh as u32, stride as u32, pad as u32) as usize;
        let wo = out_dim(wd as u32, kw as u32, stride as u32, pad as u32) as usize;
        let dy = vec![1.0f32; cout * ho * wo];
        let dw = conv2d_grad_w(&x, &dy, cin, h, wd, cout, kh, kw, stride, pad);
        let dx = conv2d_grad_x(&dy, &w, cin, h, wd, cout, kh, kw, stride, pad);
        let loss = |x: &[f32], w: &[f32]| -> f32 {
            conv2d(
                x,
                w,
                None,
                cin,
                h,
                wd,
                cout,
                kh,
                kw,
                stride,
                pad,
                1,
                ActKind::None,
            )
            .iter()
            .sum()
        };
        let eps = 1e-2f32;
        for i in (0..dw.len()).step_by(7) {
            let mut wp = w.clone();
            wp[i] += eps;
            let mut wm = w.clone();
            wm[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - dw[i]).abs() < 2e-2, "dw[{i}]: {num} vs {}", dw[i]);
        }
        for i in (0..dx.len()).step_by(5) {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 2e-2, "dx[{i}]: {num} vs {}", dx[i]);
        }
    }

    #[test]
    fn pool_grad_routes_to_argmax() {
        let x = vec![1., 5., 2., 3.];
        let dx = pool_grad(&x, &[10.0], 1, 2, 2, 2, 2, PoolKind::Max);
        assert_eq!(dx, vec![0., 10., 0., 0.]);
        let dxa = pool_grad(&x, &[8.0], 1, 2, 2, 2, 2, PoolKind::Avg);
        assert_eq!(dxa, vec![2., 2., 2., 2.]);
    }

    #[test]
    fn misc_grads_and_sgd() {
        assert_eq!(relu_grad(&[1., -1.], &[5., 5.]), vec![5., 0.]);
        assert_eq!(bias_grad(&[1., 2., 3., 4.], 2, 2), vec![4., 6.]);
        let mut w = vec![1.0f32, 2.0];
        sgd_step(&mut w, &[10.0, -10.0], 0.1);
        assert_close(&w, &[0.0, 3.0], 1e-6);
    }

    #[test]
    fn out_dim_formula() {
        assert_eq!(out_dim(224, 11, 4, 2), 55); // AlexNet conv1
        assert_eq!(out_dim(28, 5, 1, 2), 28); // MNIST conv same-pad
        assert_eq!(out_dim(4, 5, 1, 0), 0); // kernel larger than input
    }

    #[test]
    fn out_dim_survives_u32_overflow() {
        // `input + 2 * pad` overflows u32: must not wrap to a tiny padded
        // size (which used to make large kernels spuriously "not fit" or,
        // worse, produce a bogus small output dim).
        assert_eq!(out_dim(u32::MAX, 1, 1, 1), 0, "result exceeds u32");
        assert_eq!(out_dim(u32::MAX, 3, u32::MAX, u32::MAX), 3);
        // Padded size wraps in u32 arithmetic (10 + 2^32 ≡ 10, which is
        // below the kernel and used to yield 0); the true result fits.
        assert_eq!(out_dim(10, u32::MAX, 1, 1 << 31), 12);
        // Large-but-valid dimensions keep the exact formula.
        assert_eq!(out_dim(1 << 30, 1, 1 << 20, 0), 1 << 10);
    }
}
