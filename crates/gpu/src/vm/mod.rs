//! The GPU's compute engine.
//!
//! Job binaries reference *shader blobs*: bytecode only the GPU (this
//! module) understands. The software stack emits them through the blackbox
//! runtime; the recorder and replayer treat them as opaque bytes inside
//! memory dumps — exactly the paper's proprietary-shader situation.
//!
//! * [`bytecode`] — the blob encoding ([`KernelOp`] ⇄ bytes);
//! * [`kernels`] — the f32 math (convolutions, GEMM, pooling, activations,
//!   training gradients);
//! * [`exec`] — runs a decoded op against GPU virtual memory.

pub mod bytecode;
pub mod exec;
pub mod kernels;

pub use bytecode::{ActKind, KernelOp, PoolKind};
pub use exec::{execute, ExecError, VaMem};
