//! Per-batch GPU access-set tracking for cross-batch warm residency.
//!
//! The replayer arms the log at the start of a warm batch's suffix; the
//! device models then note every GPU-side memory access (control-list /
//! job-chain parses, shader-blob fetches, kernel tensor loads and
//! stores), and the replayer notes its own CPU-side suffix IO (input
//! copies, suffix dump uploads, output readbacks). At batch end the
//! replayer snapshots two interval sets over GPU VAs:
//!
//! * **first reads** — bytes the suffix read before any suffix write
//!   reached them: their pre-suffix content is observable, so a resident
//!   batch must restore them when dirty;
//! * **written** — bytes some suffix write fully re-established: a dirty
//!   byte that is written and *not* first-read can skip restoration —
//!   the suffix overwrites it before anything can observe it, and the
//!   post-batch memory image still matches a cold replay bit for bit.
//!
//! The access *ranges* are replay-static: every byte that influences
//! decoding (lists, chains, blobs) is itself in the read set, so if the
//! resident batch restores all first-read bytes, execution — and with it
//! the access pattern — is identical to the previous batch's. Kernel
//! addressing is shape-driven, never data-driven, which keeps the range
//! sets independent of input values.
//!
//! The log is bounded: overflowing [`MAX_INTERVALS`] marks the batch
//! incomplete and [`AccessLog::snapshot`] returns `None`, so consumers
//! degrade to restoring every dirty range (conservative, never unsound).

use std::sync::Arc;

use parking_lot::Mutex;

/// Retained-interval bound per set; overflow poisons the snapshot.
pub const MAX_INTERVALS: usize = 1024;

/// A sorted, coalesced set of half-open `[start, end)` intervals.
#[derive(Debug, Default, Clone)]
pub struct IntervalSet {
    ivs: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> IntervalSet {
        IntervalSet::default()
    }

    /// The retained intervals (sorted, disjoint, non-adjacent).
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.ivs
    }

    /// Number of retained intervals.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Inserts `[start, end)`, merging overlapping/adjacent intervals.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let lo = self.ivs.partition_point(|&(_, e)| e < start);
        let hi = self.ivs.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.ivs.insert(lo, (start, end));
            return;
        }
        let new_s = start.min(self.ivs[lo].0);
        let new_e = end.max(self.ivs[hi - 1].1);
        self.ivs.drain(lo..hi);
        self.ivs.insert(lo, (new_s, new_e));
    }

    /// `true` when `[start, end)` overlaps any interval.
    pub fn intersects(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let lo = self.ivs.partition_point(|&(_, e)| e <= start);
        self.ivs.get(lo).is_some_and(|&(s, _)| s < end)
    }

    /// `true` when `[start, end)` lies entirely inside one interval.
    pub fn covers(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        let lo = self.ivs.partition_point(|&(_, e)| e <= start);
        self.ivs
            .get(lo)
            .is_some_and(|&(s, e)| s <= start && end <= e)
    }

    /// The parts of `[start, end)` covered by the set (the complement of
    /// [`IntervalSet::subtract_from`]).
    pub fn clip(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for &(s, e) in &self.ivs {
            if e <= start {
                continue;
            }
            if s >= end {
                break;
            }
            out.push((s.max(start), e.min(end)));
        }
        out
    }

    /// The parts of `[start, end)` **not** covered by the set.
    pub fn subtract_from(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cur = start;
        for &(s, e) in &self.ivs {
            if e <= cur {
                continue;
            }
            if s >= end {
                break;
            }
            if s > cur {
                out.push((cur, s.min(end)));
            }
            cur = cur.max(e);
            if cur >= end {
                break;
            }
        }
        if cur < end {
            out.push((cur, end));
        }
        out
    }

    fn clear(&mut self) {
        self.ivs.clear();
    }
}

/// Consistent view of one batch's suffix accesses.
#[derive(Debug, Clone)]
pub struct AccessSnapshot {
    /// Bytes read before any suffix write reached them.
    pub first_reads: IntervalSet,
    /// Bytes some suffix write re-established.
    pub written: IntervalSet,
}

/// The mutable per-batch log. One per machine, shared by the device
/// model and the replayer (see module docs).
#[derive(Debug, Default)]
pub struct AccessLog {
    armed: bool,
    complete: bool,
    first_reads: IntervalSet,
    written: IntervalSet,
}

impl AccessLog {
    /// Clears and arms the log: subsequent notes are recorded.
    pub fn arm(&mut self) {
        self.armed = true;
        self.complete = true;
        self.first_reads.clear();
        self.written.clear();
    }

    /// Notes a read of `[va, va+len)`: the parts not already written
    /// this batch become first reads.
    pub fn note_read(&mut self, va: u64, len: u64) {
        if !self.armed || !self.complete {
            return;
        }
        for (s, e) in self.written.subtract_from(va, va.saturating_add(len)) {
            self.first_reads.insert(s, e);
        }
        self.check_bounds();
    }

    /// Notes a write of `[va, va+len)`.
    pub fn note_write(&mut self, va: u64, len: u64) {
        if !self.armed || !self.complete {
            return;
        }
        self.written.insert(va, va.saturating_add(len));
        self.check_bounds();
    }

    fn check_bounds(&mut self) {
        if self.first_reads.len() > MAX_INTERVALS || self.written.len() > MAX_INTERVALS {
            self.complete = false;
        }
    }

    /// The batch's access sets, or `None` when the log was never armed
    /// or overflowed (consumers must then restore every dirty range).
    pub fn snapshot(&self) -> Option<AccessSnapshot> {
        (self.armed && self.complete).then(|| AccessSnapshot {
            first_reads: self.first_reads.clone(),
            written: self.written.clone(),
        })
    }
}

/// Cheap-to-clone shared handle; the machine hands one to its device and
/// keeps one for the replayer-facing API.
#[derive(Debug, Clone, Default)]
pub struct SharedAccessLog {
    inner: Arc<Mutex<AccessLog>>,
}

impl SharedAccessLog {
    /// A fresh, disarmed log.
    pub fn new() -> SharedAccessLog {
        SharedAccessLog::default()
    }

    /// See [`AccessLog::arm`].
    pub fn arm(&self) {
        self.inner.lock().arm();
    }

    /// See [`AccessLog::note_read`].
    pub fn note_read(&self, va: u64, len: u64) {
        self.inner.lock().note_read(va, len);
    }

    /// See [`AccessLog::note_write`].
    pub fn note_write(&self, va: u64, len: u64) {
        self.inner.lock().note_write(va, len);
    }

    /// See [`AccessLog::snapshot`].
    pub fn snapshot(&self) -> Option<AccessSnapshot> {
        self.inner.lock().snapshot()
    }
}

/// [`VaMem`](crate::vm::exec::VaMem) adapter that notes every access into
/// a [`SharedAccessLog`] before delegating. Writes are noted only on
/// success, so a faulting partial store never over-claims coverage.
pub struct LoggingVaMem<'a, M> {
    /// The real accessor.
    pub inner: &'a mut M,
    /// Where accesses are noted.
    pub log: &'a SharedAccessLog,
}

impl<M: crate::vm::exec::VaMem> crate::vm::exec::VaMem for LoggingVaMem<'_, M> {
    fn read_bytes(&mut self, va: u64, len: usize) -> Result<Vec<u8>, u64> {
        self.log.note_read(va, len as u64);
        self.inner.read_bytes(va, len)
    }

    fn write_bytes(&mut self, va: u64, data: &[u8]) -> Result<(), u64> {
        self.inner.write_bytes(va, data)?;
        self.log.note_write(va, data.len() as u64);
        Ok(())
    }

    fn read_f32s_into(&mut self, va: u64, n: usize, out: &mut Vec<f32>) -> Result<(), u64> {
        self.log.note_read(va, (n * 4) as u64);
        self.inner.read_f32s_into(va, n, out)
    }

    fn write_f32s(&mut self, va: u64, vals: &[f32]) -> Result<(), u64> {
        self.inner.write_f32s(va, vals)?;
        self.log.note_write(va, (vals.len() * 4) as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_set_inserts_merge_and_query() {
        let mut s = IntervalSet::new();
        s.insert(0x100, 0x200);
        s.insert(0x300, 0x400);
        s.insert(0x180, 0x320); // bridges both
        assert_eq!(s.intervals(), &[(0x100, 0x400)]);
        s.insert(0x400, 0x500); // adjacent merges
        assert_eq!(s.intervals(), &[(0x100, 0x500)]);
        assert!(s.intersects(0x4FF, 0x600));
        assert!(!s.intersects(0x500, 0x600));
        assert!(s.covers(0x100, 0x500));
        assert!(!s.covers(0x100, 0x501));
        assert_eq!(
            s.subtract_from(0x0, 0x600),
            vec![(0x0, 0x100), (0x500, 0x600)]
        );
        assert_eq!(s.subtract_from(0x200, 0x300), vec![]);
        assert_eq!(s.clip(0x0, 0x600), vec![(0x100, 0x500)]);
        assert_eq!(s.clip(0x500, 0x600), vec![]);
    }

    #[test]
    fn first_reads_exclude_prior_writes() {
        let mut log = AccessLog::default();
        log.arm();
        log.note_write(0x1000, 0x100);
        // Read straddling the written range: only the tail is a first read.
        log.note_read(0x1080, 0x100);
        // Read entirely after a write: no first read at all.
        log.note_read(0x1000, 0x80);
        let snap = log.snapshot().unwrap();
        assert_eq!(snap.first_reads.intervals(), &[(0x1100, 0x1180)]);
        assert!(snap.written.covers(0x1000, 0x1100));
    }

    #[test]
    fn read_then_write_stays_a_first_read() {
        let mut log = AccessLog::default();
        log.arm();
        log.note_read(0x2000, 0x40);
        log.note_write(0x2000, 0x40);
        let snap = log.snapshot().unwrap();
        assert!(snap.first_reads.intersects(0x2000, 0x2040));
    }

    #[test]
    fn disarmed_or_overflowed_logs_snapshot_none() {
        let log = AccessLog::default();
        assert!(log.snapshot().is_none(), "never armed");
        let mut log = AccessLog::default();
        log.arm();
        for i in 0..(MAX_INTERVALS as u64 + 2) {
            log.note_write(i * 0x100, 1); // disjoint: no merging
        }
        assert!(log.snapshot().is_none(), "overflow poisons the snapshot");
        // Re-arming recovers.
        log.arm();
        log.note_write(0, 1);
        assert!(log.snapshot().is_some());
    }

    #[test]
    fn shared_handle_aliases() {
        let a = SharedAccessLog::new();
        let b = a.clone();
        a.arm();
        b.note_read(0x10, 0x10);
        let snap = a.snapshot().unwrap();
        assert_eq!(snap.first_reads.intervals(), &[(0x10, 0x20)]);
    }
}
