//! Simulated integrated GPUs for the GPUReplay reproduction.
//!
//! The paper's hardware targets (Arm Mali G31/G52/G71 and Broadcom v3d)
//! are not available here, so this crate provides register-level device
//! models that expose the same CPU-visible contract the paper's GPU model
//! (§3.2, Table 1) relies on:
//!
//! * memory-mapped registers with family-specific maps and protocols,
//! * GPU page tables stored in shared DRAM (two Mali PTE layouts plus the
//!   v3d flat format — the §6.4 cross-SKU differences),
//! * interrupts, cache-flush/reset/power-up delays,
//! * opaque job binaries (job chains / control lists referencing shader
//!   bytecode) that the devices *really execute* over f32 tensors,
//! * timing driven by modeled FLOPs/bytes with run-to-run jitter, and
//! * fault injection (core offlining, PTE corruption) for the §7.2
//!   recovery experiments.
//!
//! Assemble a [`Machine`] to get DRAM + power controller + IRQ controller
//! + GPU wired together on one virtual clock.
//!
//! # Example
//!
//! ```
//! use gr_gpu::{Machine, sku};
//!
//! let machine = Machine::new(&sku::MALI_G71, 42);
//! assert_eq!(machine.gpu_read32(gr_gpu::mali::regs::GPU_ID), sku::MALI_G71.gpu_id);
//! ```

pub mod access;
pub mod device;
pub mod fastpath;
pub mod faults;
pub mod machine;
pub mod mali;
pub mod sku;
pub mod timing;
pub mod v3d;
pub mod vm;

pub use access::{AccessLog, AccessSnapshot, IntervalSet, LoggingVaMem, SharedAccessLog};
pub use device::{GpuDev, SoftTlb, TranslatingVaMem};
pub use faults::FaultKind;
pub use machine::{Machine, WaitOutcome, DEFAULT_DRAM_SIZE, DRAM_BASE};
pub use sku::{GpuFamilyKind, GpuSku, PteFormat};
pub use timing::JobCost;
