//! A whole simulated machine: DRAM + PMC + IRQ controller + one GPU.
//!
//! [`Machine`] is the substrate both the full GPU stack and the GPUReplay
//! replayer run against. It is cheap to clone (everything inside is
//! shared), so the driver, the recorder, an interactive app, and the
//! replayer can all hold handles to the *same* hardware — which is exactly
//! the GPU-handoff situation §5.3 studies.

use std::sync::Arc;

use gr_sim::{SimClock, SimDuration, SimRng, SimTime, TraceBus, TraceEvent};
use gr_soc::pmc::Pmc;
use gr_soc::{
    FrameAllocator, IrqController, IrqLine, Mailbox, PhysMem, SharedMem, SharedPmc, PAGE_SIZE,
};
use parking_lot::Mutex;

use crate::device::GpuDev;
use crate::faults::FaultKind;
use crate::mali::device::MaliGpu;
use crate::sku::{GpuFamilyKind, GpuSku};
use crate::v3d::device::V3dGpu;

/// Default DRAM size (128 MiB — plenty for the scaled workloads).
pub const DEFAULT_DRAM_SIZE: usize = 128 * 1024 * 1024;

/// DRAM physical base address.
pub const DRAM_BASE: u64 = 0x8000_0000;

/// Result of waiting for an interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The line is pending.
    Irq,
    /// The deadline passed with no interrupt.
    Timeout,
}

/// The assembled machine.
#[derive(Clone)]
pub struct Machine {
    clock: SimClock,
    mem: SharedMem,
    irq: IrqController,
    pmc: SharedPmc,
    mbox: Arc<Mutex<Mailbox>>,
    gpu: Arc<Mutex<Box<dyn GpuDev>>>,
    access: crate::access::SharedAccessLog,
    frames: Arc<Mutex<FrameAllocator>>,
    trace: TraceBus,
    sku: &'static GpuSku,
    seed: u64,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("sku", &self.sku.name)
            .field("dram", &self.mem.size())
            .finish()
    }
}

impl Machine {
    /// Builds a machine around the given SKU with [`DEFAULT_DRAM_SIZE`].
    pub fn new(sku: &'static GpuSku, seed: u64) -> Self {
        Self::with_dram(sku, seed, DEFAULT_DRAM_SIZE)
    }

    /// Builds a machine with a custom DRAM size (page-aligned).
    pub fn with_dram(sku: &'static GpuSku, seed: u64, dram_size: usize) -> Self {
        let clock = SimClock::new();
        let mem = SharedMem::new(PhysMem::new(DRAM_BASE, dram_size));
        let irq = IrqController::new();
        let pmc = SharedPmc::new(Pmc::new(clock.clone()));
        let mbox = Arc::new(Mutex::new(Mailbox::new(clock.clone(), pmc.clone())));
        let rng = SimRng::seed_from(seed).fork("gpu-device");
        let gpu: Box<dyn GpuDev> = match sku.family {
            GpuFamilyKind::Mali => Box::new(MaliGpu::new(
                sku,
                clock.clone(),
                mem.clone(),
                irq.clone(),
                pmc.clone(),
                rng,
            )),
            GpuFamilyKind::V3d => Box::new(V3dGpu::new(
                sku,
                clock.clone(),
                mem.clone(),
                irq.clone(),
                pmc.clone(),
                rng,
            )),
        };
        let frames = FrameAllocator::new(DRAM_BASE, dram_size / PAGE_SIZE);
        let access = gpu.access_log();
        Machine {
            clock,
            mem,
            irq,
            pmc,
            mbox,
            gpu: Arc::new(Mutex::new(gpu)),
            access,
            frames: Arc::new(Mutex::new(frames)),
            trace: TraceBus::new(),
            sku,
            seed,
        }
    }

    /// The machine's SKU.
    pub fn sku(&self) -> &'static GpuSku {
        self.sku
    }

    /// The experiment seed the machine was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Virtual clock handle.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advances virtual time (models CPU work between device interactions).
    pub fn advance(&self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// Shared DRAM handle.
    pub fn mem(&self) -> &SharedMem {
        &self.mem
    }

    /// Interrupt controller handle.
    pub fn irq(&self) -> &IrqController {
        &self.irq
    }

    /// Power/clock controller handle.
    pub fn pmc(&self) -> &SharedPmc {
        &self.pmc
    }

    /// Firmware mailbox handle.
    pub fn mailbox(&self) -> &Arc<Mutex<Mailbox>> {
        &self.mbox
    }

    /// Physical frame allocator shared by whoever owns the GPU.
    pub fn frames(&self) -> &Arc<Mutex<FrameAllocator>> {
        &self.frames
    }

    /// The CPU/GPU interaction trace (validation harnesses enable it).
    pub fn trace(&self) -> &TraceBus {
        &self.trace
    }

    /// Reads a GPU register, publishing the interaction to the trace.
    pub fn gpu_read32(&self, off: u32) -> u32 {
        let val = self.gpu.lock().read32(off);
        self.trace.publish(
            self.clock.now(),
            TraceEvent::RegRead {
                reg: off,
                val,
                side_effect: false,
            },
        );
        val
    }

    /// Writes a GPU register, publishing the interaction to the trace.
    pub fn gpu_write32(&self, off: u32, val: u32) {
        self.trace
            .publish(self.clock.now(), TraceEvent::RegWrite { reg: off, val });
        self.gpu.lock().write32(off, val);
    }

    /// Lets the device process any events due at the current time.
    pub fn tick_gpu(&self) {
        self.gpu.lock().tick();
    }

    /// Next scheduled device event, if any.
    pub fn next_gpu_event(&self) -> Option<SimTime> {
        self.gpu.lock().next_event_time()
    }

    /// `true` while the GPU is executing/resetting/flushing.
    pub fn gpu_busy(&self) -> bool {
        self.gpu.lock().busy()
    }

    /// Successfully completed jobs since machine creation.
    pub fn gpu_jobs_completed(&self) -> u64 {
        self.gpu.lock().jobs_completed()
    }

    /// The GPU's per-batch access log (armed by the replayer around warm
    /// batch suffixes; see [`crate::access`]).
    pub fn gpu_access(&self) -> &crate::access::SharedAccessLog {
        &self.access
    }

    /// Injects a hardware fault (§7.2 experiments).
    pub fn inject_fault(&self, fault: FaultKind) {
        self.gpu.lock().inject_fault(fault);
    }

    /// Blocks (in virtual time) until `line` is pending or `timeout`
    /// elapses, advancing the clock to device events as needed.
    ///
    /// Publishes an [`TraceEvent::Irq`] when the interrupt arrives.
    pub fn wait_irq(&self, line: IrqLine, timeout: SimDuration) -> WaitOutcome {
        let deadline = self.clock.now() + timeout;
        loop {
            self.tick_gpu();
            if self.irq.pending(line) {
                self.trace
                    .publish(self.clock.now(), TraceEvent::Irq { line: line.0 });
                return WaitOutcome::Irq;
            }
            match self.next_gpu_event() {
                Some(t) if t <= deadline => {
                    self.clock.advance_to(t);
                }
                _ => {
                    self.clock.advance_to(deadline);
                    self.tick_gpu();
                    return if self.irq.pending(line) {
                        self.trace
                            .publish(self.clock.now(), TraceEvent::Irq { line: line.0 });
                        WaitOutcome::Irq
                    } else {
                        WaitOutcome::Timeout
                    };
                }
            }
        }
    }

    /// Polls register `off` every `interval` until `(value & mask) == want`
    /// or `timeout` elapses. Returns `(final_value, polls)`; the poll count
    /// is nondeterministic across runs — exactly the behaviour the
    /// recorder summarizes into a `RegReadWait` action.
    pub fn poll_reg(
        &self,
        off: u32,
        mask: u32,
        want: u32,
        interval: SimDuration,
        timeout: SimDuration,
    ) -> (u32, u32) {
        let deadline = self.clock.now() + timeout;
        let mut polls = 0u32;
        loop {
            let v = self.gpu_read32(off);
            polls += 1;
            if v & mask == want {
                return (v, polls);
            }
            if self.clock.now() >= deadline {
                return (v, polls);
            }
            // Sleep until the next device event if it lands inside the
            // polling interval — mirrors cpu_relax-style waiting.
            let next = self.clock.now() + interval;
            self.clock.advance_to(next.min(deadline));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sku::{MALI_G71, V3D_RPI4};
    use gr_soc::pmc::{PmcDomain, SETTLE_DELAY};

    #[test]
    fn machine_clones_share_hardware() {
        let m = Machine::new(&MALI_G71, 42);
        let m2 = m.clone();
        m.pmc().write32(Pmc::pwr_ctrl_off(PmcDomain::GpuCore), 1);
        m.advance(SETTLE_DELAY);
        assert!(m2.pmc().is_stable(PmcDomain::GpuCore));
        assert_eq!(m.sku().name, "G71");
        assert_eq!(m2.seed(), 42);
    }

    #[test]
    fn gpu_id_is_readable_on_both_families() {
        let mali = Machine::new(&MALI_G71, 1);
        assert_eq!(mali.gpu_read32(crate::mali::regs::GPU_ID), MALI_G71.gpu_id);
        let v3d = Machine::new(&V3D_RPI4, 1);
        assert_eq!(v3d.gpu_read32(crate::v3d::regs::IDENT), V3D_RPI4.gpu_id);
    }

    #[test]
    fn wait_irq_times_out_without_events() {
        let m = Machine::new(&MALI_G71, 1);
        let t0 = m.now();
        let out = m.wait_irq(IrqLine(0), SimDuration::from_millis(5));
        assert_eq!(out, WaitOutcome::Timeout);
        assert_eq!(m.now() - t0, SimDuration::from_millis(5));
    }

    #[test]
    fn poll_reg_counts_polls() {
        let m = Machine::new(&MALI_G71, 1);
        // Poll GPU_ID for an impossible value: exhausts the timeout.
        let (v, polls) = m.poll_reg(
            crate::mali::regs::GPU_ID,
            u32::MAX,
            0,
            SimDuration::from_micros(10),
            SimDuration::from_micros(95),
        );
        assert_eq!(v, MALI_G71.gpu_id);
        assert!(polls >= 9, "polled {polls} times");
        // Poll for the actual value: single read.
        let (_, polls) = m.poll_reg(
            crate::mali::regs::GPU_ID,
            u32::MAX,
            MALI_G71.gpu_id,
            SimDuration::from_micros(10),
            SimDuration::from_micros(100),
        );
        assert_eq!(polls, 1);
    }

    #[test]
    fn trace_captures_interactions_when_enabled() {
        let m = Machine::new(&MALI_G71, 1);
        m.trace().enable();
        m.gpu_read32(crate::mali::regs::GPU_ID);
        m.gpu_write32(crate::mali::regs::GPU_IRQ_MASK, 0xFF);
        let snap = m.trace().snapshot();
        assert_eq!(snap.len(), 2);
        assert!(matches!(snap[0].event, TraceEvent::RegRead { reg, .. } if reg == 0));
    }

    #[test]
    fn frames_are_machine_wide() {
        let m = Machine::new(&MALI_G71, 1);
        let pa = m.frames().lock().alloc().unwrap();
        assert!(pa >= DRAM_BASE);
        let m2 = m.clone();
        assert_eq!(m2.frames().lock().used(), 1);
        m2.frames().lock().free(pa).unwrap();
    }
}
