//! Mali-family GPU page tables.
//!
//! Two-level tables over a 30-bit GPU virtual address space with 4 KiB
//! pages, stored *in shared DRAM* like the real hardware — which is what
//! lets the recorder capture them and the replayer rebuild/patch them.
//!
//! Level-1 index: `va[29:21]` (512 entries), level-2 index: `va[20:12]`
//! (512 entries); each table occupies exactly one page of u64 entries.
//!
//! Two flag encodings exist in the family (the §6.4 cross-SKU difference):
//!
//! | bit | `MaliStandard` (G71) | `MaliLpae` (G31/G52) |
//! |-----|----------------------|----------------------|
//! | 0   | VALID                | VALID                |
//! | 1   | WRITE                | EXEC                 |
//! | 2   | EXEC                 | CPU_MAPPED           |
//! | 3   | CPU_MAPPED           | WRITE                |

use gr_soc::{FrameAllocator, MemError, SharedMem, PAGE_SIZE};

use crate::sku::PteFormat;

/// Size of the Mali GPU virtual address space (30 bits = 1 GiB).
pub const VA_SPACE_BITS: u32 = 30;
/// Highest valid VA + 1.
pub const VA_SPACE_SIZE: u64 = 1 << VA_SPACE_BITS;

const L1_SHIFT: u32 = 21;
const L2_SHIFT: u32 = 12;
const IDX_MASK: u64 = 0x1FF;
const PA_MASK: u64 = 0x0000_FFFF_FFFF_F000;

/// Decoded page permissions/attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PteFlags {
    /// Mapping present.
    pub valid: bool,
    /// GPU may write.
    pub write: bool,
    /// GPU may fetch job/shader binary from the page (the bit the Mali
    /// recorder's dump heuristic keys on, §6.1).
    pub exec: bool,
    /// Software bit: page is also mapped into a CPU address space.
    pub cpu_mapped: bool,
}

impl PteFlags {
    /// Read-write data page visible to the CPU.
    pub fn rw_cpu() -> Self {
        PteFlags {
            valid: true,
            write: true,
            exec: false,
            cpu_mapped: true,
        }
    }

    /// Executable page (job binaries / shaders).
    pub fn exec_cpu() -> Self {
        PteFlags {
            valid: true,
            write: true,
            exec: true,
            cpu_mapped: true,
        }
    }

    /// GPU-internal buffer: not executable, never mapped to CPU.
    pub fn internal() -> Self {
        PteFlags {
            valid: true,
            write: true,
            exec: false,
            cpu_mapped: false,
        }
    }
}

/// Encodes flags into the low PTE bits for `fmt`.
pub fn encode_flags(fmt: PteFormat, f: PteFlags) -> u64 {
    let mut bits = 0u64;
    match fmt {
        PteFormat::MaliStandard => {
            bits |= u64::from(f.valid);
            bits |= u64::from(f.write) << 1;
            bits |= u64::from(f.exec) << 2;
            bits |= u64::from(f.cpu_mapped) << 3;
        }
        PteFormat::MaliLpae => {
            bits |= u64::from(f.valid);
            bits |= u64::from(f.exec) << 1;
            bits |= u64::from(f.cpu_mapped) << 2;
            bits |= u64::from(f.write) << 3;
        }
        PteFormat::V3dFlat => {
            bits |= u64::from(f.valid);
            bits |= u64::from(f.write) << 1;
        }
    }
    bits
}

/// Decodes the low PTE bits of `fmt`.
pub fn decode_flags(fmt: PteFormat, bits: u64) -> PteFlags {
    match fmt {
        PteFormat::MaliStandard => PteFlags {
            valid: bits & 1 != 0,
            write: bits & 2 != 0,
            exec: bits & 4 != 0,
            cpu_mapped: bits & 8 != 0,
        },
        PteFormat::MaliLpae => PteFlags {
            valid: bits & 1 != 0,
            exec: bits & 2 != 0,
            cpu_mapped: bits & 4 != 0,
            write: bits & 8 != 0,
        },
        PteFormat::V3dFlat => PteFlags {
            valid: bits & 1 != 0,
            write: bits & 2 != 0,
            exec: false,
            cpu_mapped: false,
        },
    }
}

/// Re-encodes raw PTE flag bits from one format to another — the §6.4
/// "re-arranging the permission bits" patch.
pub fn convert_flag_bits(from: PteFormat, to: PteFormat, bits: u64) -> u64 {
    encode_flags(to, decode_flags(from, bits))
}

/// Builds a PTE from a physical address and flags.
pub fn encode_pte(fmt: PteFormat, pa: u64, flags: PteFlags) -> u64 {
    debug_assert_eq!(pa % PAGE_SIZE as u64, 0, "unaligned page PA");
    (pa & PA_MASK) | encode_flags(fmt, flags)
}

/// Splits a PTE into physical address and flags. Returns `None` when the
/// valid bit (common to all formats) is clear.
pub fn decode_pte(fmt: PteFormat, pte: u64) -> Option<(u64, PteFlags)> {
    let flags = decode_flags(fmt, pte);
    if flags.valid {
        Some((pte & PA_MASK, flags))
    } else {
        None
    }
}

/// Errors from page-table manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PgtableError {
    /// A table access fell outside DRAM.
    Mem(MemError),
    /// Physical frames exhausted while building tables.
    OutOfFrames,
    /// VA outside the GPU address space.
    BadVa(u64),
    /// Mapping already exists at the VA.
    AlreadyMapped(u64),
}

impl std::fmt::Display for PgtableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PgtableError::Mem(e) => write!(f, "page table memory error: {e}"),
            PgtableError::OutOfFrames => write!(f, "out of physical frames for page tables"),
            PgtableError::BadVa(va) => write!(f, "va {va:#x} outside GPU address space"),
            PgtableError::AlreadyMapped(va) => write!(f, "va {va:#x} already mapped"),
        }
    }
}

impl std::error::Error for PgtableError {}

impl From<MemError> for PgtableError {
    fn from(e: MemError) -> Self {
        PgtableError::Mem(e)
    }
}

fn check_va(va: u64) -> Result<(), PgtableError> {
    if va >= VA_SPACE_SIZE || va % PAGE_SIZE as u64 != 0 {
        Err(PgtableError::BadVa(va))
    } else {
        Ok(())
    }
}

/// Allocates an empty (zeroed) root (L1) table, returning its PA.
///
/// # Errors
///
/// Returns [`PgtableError::OutOfFrames`] when allocation fails.
pub fn alloc_root(mem: &SharedMem, alloc: &mut FrameAllocator) -> Result<u64, PgtableError> {
    alloc.alloc_zeroed(mem)?.ok_or(PgtableError::OutOfFrames)
}

/// Maps one 4 KiB page `va → pa` with `flags` under `root_pa`, allocating
/// the L2 table on demand.
///
/// # Errors
///
/// Fails on bad VA, exhausted frames, or an existing mapping.
pub fn map_page(
    mem: &SharedMem,
    alloc: &mut FrameAllocator,
    fmt: PteFormat,
    root_pa: u64,
    va: u64,
    pa: u64,
    flags: PteFlags,
) -> Result<(), PgtableError> {
    check_va(va)?;
    let l1_idx = (va >> L1_SHIFT) & IDX_MASK;
    let l1_entry_pa = root_pa + l1_idx * 8;
    let l1 = mem.read_u64(l1_entry_pa)?;
    let l2_pa = if l1 & 1 != 0 {
        l1 & PA_MASK
    } else {
        let l2 = alloc.alloc_zeroed(mem)?.ok_or(PgtableError::OutOfFrames)?;
        mem.write_u64(l1_entry_pa, (l2 & PA_MASK) | 1)?;
        l2
    };
    let l2_idx = (va >> L2_SHIFT) & IDX_MASK;
    let pte_pa = l2_pa + l2_idx * 8;
    let existing = mem.read_u64(pte_pa)?;
    if existing & 1 != 0 {
        return Err(PgtableError::AlreadyMapped(va));
    }
    mem.write_u64(pte_pa, encode_pte(fmt, pa, flags))?;
    Ok(())
}

/// Removes the mapping at `va`, returning the PA it pointed to.
///
/// # Errors
///
/// Fails on bad VA; returns `Ok(None)` when nothing was mapped.
pub fn unmap_page(
    mem: &SharedMem,
    fmt: PteFormat,
    root_pa: u64,
    va: u64,
) -> Result<Option<u64>, PgtableError> {
    check_va(va)?;
    let l1_idx = (va >> L1_SHIFT) & IDX_MASK;
    let l1 = mem.read_u64(root_pa + l1_idx * 8)?;
    if l1 & 1 == 0 {
        return Ok(None);
    }
    let l2_pa = l1 & PA_MASK;
    let pte_pa = l2_pa + ((va >> L2_SHIFT) & IDX_MASK) * 8;
    let pte = mem.read_u64(pte_pa)?;
    match decode_pte(fmt, pte) {
        Some((pa, _)) => {
            mem.write_u64(pte_pa, 0)?;
            Ok(Some(pa))
        }
        None => Ok(None),
    }
}

/// Translates `va` (any alignment) to `(pa, flags)` by walking the tables.
/// Returns `None` for unmapped or invalid addresses.
pub fn translate(
    mem: &SharedMem,
    fmt: PteFormat,
    root_pa: u64,
    va: u64,
) -> Option<(u64, PteFlags)> {
    if va >= VA_SPACE_SIZE {
        return None;
    }
    let l1_idx = (va >> L1_SHIFT) & IDX_MASK;
    let l1 = mem.read_u64(root_pa + l1_idx * 8).ok()?;
    if l1 & 1 == 0 {
        return None;
    }
    let l2_pa = l1 & PA_MASK;
    let pte = mem
        .read_u64(l2_pa + ((va >> L2_SHIFT) & IDX_MASK) * 8)
        .ok()?;
    let (page_pa, flags) = decode_pte(fmt, pte)?;
    Some((page_pa + (va & (PAGE_SIZE as u64 - 1)), flags))
}

/// Physical address of the PTE (not the page) that maps `va`, if the L2
/// table exists — used by fault injection to corrupt entries in place.
pub fn pte_address(mem: &SharedMem, root_pa: u64, va: u64) -> Option<u64> {
    if va >= VA_SPACE_SIZE {
        return None;
    }
    let l1 = mem
        .read_u64(root_pa + ((va >> L1_SHIFT) & IDX_MASK) * 8)
        .ok()?;
    if l1 & 1 == 0 {
        return None;
    }
    Some((l1 & PA_MASK) + ((va >> L2_SHIFT) & IDX_MASK) * 8)
}

/// Walks the whole table, invoking `f(va, pa, flags)` for every valid
/// mapping in VA order — the recorder's view of the GPU address space.
pub fn walk(mem: &SharedMem, fmt: PteFormat, root_pa: u64, mut f: impl FnMut(u64, u64, PteFlags)) {
    for l1_idx in 0..512u64 {
        let Ok(l1) = mem.read_u64(root_pa + l1_idx * 8) else {
            continue;
        };
        if l1 & 1 == 0 {
            continue;
        }
        let l2_pa = l1 & PA_MASK;
        for l2_idx in 0..512u64 {
            let Ok(pte) = mem.read_u64(l2_pa + l2_idx * 8) else {
                continue;
            };
            if let Some((pa, flags)) = decode_pte(fmt, pte) {
                let va = (l1_idx << L1_SHIFT) | (l2_idx << L2_SHIFT);
                f(va, pa, flags);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_soc::PhysMem;

    fn mk() -> (SharedMem, FrameAllocator) {
        let mem = SharedMem::new(PhysMem::new(0x8000_0000, 256 * PAGE_SIZE));
        let alloc = FrameAllocator::new(0x8000_0000, 256);
        (mem, alloc)
    }

    #[test]
    fn map_translate_unmap_roundtrip() {
        let (mem, mut alloc) = mk();
        let root = alloc_root(&mem, &mut alloc).unwrap();
        let data_pa = alloc.alloc().unwrap();
        let va = 0x0040_0000u64;
        map_page(
            &mem,
            &mut alloc,
            PteFormat::MaliStandard,
            root,
            va,
            data_pa,
            PteFlags::rw_cpu(),
        )
        .unwrap();
        let (pa, flags) = translate(&mem, PteFormat::MaliStandard, root, va + 0x123).unwrap();
        assert_eq!(pa, data_pa + 0x123);
        assert!(flags.valid && flags.write && !flags.exec && flags.cpu_mapped);
        assert_eq!(
            unmap_page(&mem, PteFormat::MaliStandard, root, va).unwrap(),
            Some(data_pa)
        );
        assert!(translate(&mem, PteFormat::MaliStandard, root, va).is_none());
        assert_eq!(
            unmap_page(&mem, PteFormat::MaliStandard, root, va).unwrap(),
            None
        );
    }

    #[test]
    fn double_map_rejected() {
        let (mem, mut alloc) = mk();
        let root = alloc_root(&mem, &mut alloc).unwrap();
        let pa = alloc.alloc().unwrap();
        map_page(
            &mem,
            &mut alloc,
            PteFormat::MaliStandard,
            root,
            0,
            pa,
            PteFlags::rw_cpu(),
        )
        .unwrap();
        assert_eq!(
            map_page(
                &mem,
                &mut alloc,
                PteFormat::MaliStandard,
                root,
                0,
                pa,
                PteFlags::rw_cpu()
            ),
            Err(PgtableError::AlreadyMapped(0))
        );
    }

    #[test]
    fn bad_va_rejected() {
        let (mem, mut alloc) = mk();
        let root = alloc_root(&mem, &mut alloc).unwrap();
        assert!(matches!(
            map_page(
                &mem,
                &mut alloc,
                PteFormat::MaliStandard,
                root,
                VA_SPACE_SIZE,
                0,
                PteFlags::rw_cpu()
            ),
            Err(PgtableError::BadVa(_))
        ));
        assert!(
            matches!(
                map_page(
                    &mem,
                    &mut alloc,
                    PteFormat::MaliStandard,
                    root,
                    0x10,
                    0,
                    PteFlags::rw_cpu()
                ),
                Err(PgtableError::BadVa(_)),
            ),
            "unaligned va"
        );
        assert!(translate(&mem, PteFormat::MaliStandard, root, VA_SPACE_SIZE + 5).is_none());
    }

    #[test]
    fn lpae_and_standard_bit_layouts_differ() {
        let f = PteFlags {
            valid: true,
            write: true,
            exec: false,
            cpu_mapped: false,
        };
        let std_bits = encode_flags(PteFormat::MaliStandard, f);
        let lpae_bits = encode_flags(PteFormat::MaliLpae, f);
        assert_eq!(std_bits, 0b0011);
        assert_eq!(lpae_bits, 0b1001);
        assert_ne!(std_bits, lpae_bits);
        // Round-trip via decode.
        assert_eq!(decode_flags(PteFormat::MaliLpae, lpae_bits), f);
        // Conversion is the §6.4 patch.
        assert_eq!(
            convert_flag_bits(PteFormat::MaliLpae, PteFormat::MaliStandard, lpae_bits),
            std_bits
        );
    }

    #[test]
    fn misdecoding_lpae_as_standard_breaks_permissions() {
        // This is exactly why an unpatched G31 recording fails on G71: a
        // read-write data page in LPAE layout decodes as *non-writable* (and
        // spuriously executable) in the standard layout, so the first GPU
        // write through it faults. (Binary pages with every bit set happen
        // to coincide across layouts; data pages are what diverge.)
        let rw_lpae = encode_flags(PteFormat::MaliLpae, PteFlags::rw_cpu());
        let wrong = decode_flags(PteFormat::MaliStandard, rw_lpae);
        assert!(!wrong.write, "write permission must be lost");
        assert!(wrong.exec, "exec bit spuriously set");
    }

    #[test]
    fn walk_enumerates_mappings_in_order() {
        let (mem, mut alloc) = mk();
        let root = alloc_root(&mem, &mut alloc).unwrap();
        let mut pas = Vec::new();
        for i in [5u64, 1, 3] {
            let pa = alloc.alloc().unwrap();
            pas.push((i * PAGE_SIZE as u64, pa));
            map_page(
                &mem,
                &mut alloc,
                PteFormat::MaliLpae,
                root,
                i * PAGE_SIZE as u64,
                pa,
                PteFlags::internal(),
            )
            .unwrap();
        }
        let mut seen = Vec::new();
        walk(&mem, PteFormat::MaliLpae, root, |va, pa, fl| {
            assert!(fl.valid && fl.write && !fl.cpu_mapped);
            seen.push((va, pa));
        });
        pas.sort();
        assert_eq!(seen, pas);
    }

    #[test]
    fn pte_address_allows_in_place_corruption() {
        let (mem, mut alloc) = mk();
        let root = alloc_root(&mem, &mut alloc).unwrap();
        let pa = alloc.alloc().unwrap();
        let va = 0x0020_0000u64;
        map_page(
            &mem,
            &mut alloc,
            PteFormat::MaliStandard,
            root,
            va,
            pa,
            PteFlags::rw_cpu(),
        )
        .unwrap();
        let pte_pa = pte_address(&mem, root, va).unwrap();
        mem.write_u64(pte_pa, 0xFFFF_FFFF_FFFF_FFFE).unwrap(); // valid bit clear
        assert!(translate(&mem, PteFormat::MaliStandard, root, va).is_none());
        assert_eq!(pte_address(&mem, root, VA_SPACE_SIZE), None);
    }

    #[test]
    fn spans_l1_boundaries() {
        let (mem, mut alloc) = mk();
        let root = alloc_root(&mem, &mut alloc).unwrap();
        // Two VAs in different L1 slots.
        for va in [0u64, 1 << L1_SHIFT] {
            let pa = alloc.alloc().unwrap();
            map_page(
                &mem,
                &mut alloc,
                PteFormat::MaliStandard,
                root,
                va,
                pa,
                PteFlags::rw_cpu(),
            )
            .unwrap();
            assert!(translate(&mem, PteFormat::MaliStandard, root, va).is_some());
        }
    }
}
