//! Mali job-chain binary layout.
//!
//! A submitted "GPU job" is a chain of sub-jobs linked through GPU virtual
//! addresses (§2.2: "a job (called a 'job chain') encloses multiple sub
//! jobs and the dependencies of sub jobs as a chain"). Each sub-job header
//! points at a shader blob and carries its modeled cost. The *driver* (and
//! therefore the recorder/replayer) never parses this layout — only the
//! runtime emits it and only the GPU consumes it.
//!
//! Header layout (48 bytes, little-endian):
//!
//! | offset | field        |
//! |--------|--------------|
//! | 0x00   | magic `JCHA` |
//! | 0x04   | flags        |
//! | 0x08   | next sub-job VA (0 = end of chain) |
//! | 0x10   | shader blob VA |
//! | 0x18   | shader blob length |
//! | 0x1C   | reserved     |
//! | 0x20   | modeled FLOPs |
//! | 0x28   | modeled bytes moved |

use crate::timing::JobCost;

/// Magic value identifying a sub-job header ("JCHA").
pub const JOB_MAGIC: u32 = 0x4A43_4841;

/// Size of one sub-job header in bytes.
pub const JOB_HEADER_SIZE: usize = 48;

/// Maximum sub-jobs a chain may link (hardware sanity bound; prevents
/// cycles from hanging the device model).
pub const MAX_CHAIN_LEN: usize = 64;

/// One decoded sub-job header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobHeader {
    /// VA of the next sub-job header (0 terminates the chain).
    pub next_va: u64,
    /// VA of the shader blob.
    pub shader_va: u64,
    /// Shader blob length in bytes.
    pub shader_len: u32,
    /// Modeled work.
    pub cost: JobCost,
}

impl JobHeader {
    /// Serializes the header.
    pub fn encode(&self) -> [u8; JOB_HEADER_SIZE] {
        let mut b = [0u8; JOB_HEADER_SIZE];
        b[0x00..0x04].copy_from_slice(&JOB_MAGIC.to_le_bytes());
        // 0x04: flags, reserved as zero.
        b[0x08..0x10].copy_from_slice(&self.next_va.to_le_bytes());
        b[0x10..0x18].copy_from_slice(&self.shader_va.to_le_bytes());
        b[0x18..0x1C].copy_from_slice(&self.shader_len.to_le_bytes());
        b[0x20..0x28].copy_from_slice(&self.cost.flops.to_le_bytes());
        b[0x28..0x30].copy_from_slice(&self.cost.bytes.to_le_bytes());
        b
    }

    /// Parses a header from raw bytes.
    ///
    /// Returns `None` when the magic does not match or the buffer is short.
    pub fn decode(b: &[u8]) -> Option<JobHeader> {
        if b.len() < JOB_HEADER_SIZE {
            return None;
        }
        let magic = u32::from_le_bytes(b[0x00..0x04].try_into().expect("len checked"));
        if magic != JOB_MAGIC {
            return None;
        }
        Some(JobHeader {
            next_va: u64::from_le_bytes(b[0x08..0x10].try_into().expect("len checked")),
            shader_va: u64::from_le_bytes(b[0x10..0x18].try_into().expect("len checked")),
            shader_len: u32::from_le_bytes(b[0x18..0x1C].try_into().expect("len checked")),
            cost: JobCost {
                flops: u64::from_le_bytes(b[0x20..0x28].try_into().expect("len checked")),
                bytes: u64::from_le_bytes(b[0x28..0x30].try_into().expect("len checked")),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = JobHeader {
            next_va: 0x1234_5000,
            shader_va: 0xABCD_E000,
            shader_len: 100,
            cost: JobCost {
                flops: 1_000_000,
                bytes: 2_000,
            },
        };
        let enc = h.encode();
        assert_eq!(JobHeader::decode(&enc), Some(h));
    }

    #[test]
    fn bad_magic_rejected() {
        let h = JobHeader {
            next_va: 0,
            shader_va: 0,
            shader_len: 0,
            cost: JobCost::default(),
        };
        let mut enc = h.encode();
        enc[0] ^= 0xFF;
        assert_eq!(JobHeader::decode(&enc), None);
        assert_eq!(JobHeader::decode(&enc[..10]), None, "short buffer");
    }
}
