//! Mali-family register map.
//!
//! Offsets are bytes from the GPU MMIO window base. The layout mirrors the
//! structure of the real Mali Bifrost map the paper instruments: a GPU
//! control block, an MMU/address-space block, and a job-slot block, each
//! with RAWSTAT/CLEAR/MASK/STATUS interrupt registers.

/// Size of the Mali MMIO window in bytes.
pub const MMIO_SIZE: u32 = 0x3000;

// --- GPU control block ---
/// GPU identity (read-only; drivers probe it, recordings assert it).
pub const GPU_ID: u32 = 0x0000;
/// Bit 0: a job is active. Bit 1: reset/flush in progress.
pub const GPU_STATUS: u32 = 0x0004;
/// Raw (unmasked) GPU interrupt status.
pub const GPU_IRQ_RAWSTAT: u32 = 0x0008;
/// Write-1-to-clear GPU interrupt bits.
pub const GPU_IRQ_CLEAR: u32 = 0x000C;
/// GPU interrupt enable mask.
pub const GPU_IRQ_MASK: u32 = 0x0010;
/// `RAWSTAT & MASK`.
pub const GPU_IRQ_STATUS: u32 = 0x0014;
/// Command register (see `GPU_CMD_*`).
pub const GPU_COMMAND: u32 = 0x0018;
/// Last protocol/power fault code (see `GPU_FAULT_*`).
pub const GPU_FAULTSTATUS: u32 = 0x001C;
/// Bitmask of physically present shader cores.
pub const SHADER_PRESENT: u32 = 0x0020;
/// Bitmask of cores powered and ready.
pub const SHADER_READY: u32 = 0x0024;
/// Write: power cores on.
pub const SHADER_PWRON: u32 = 0x0028;
/// Write: power cores off.
pub const SHADER_PWROFF: u32 = 0x002C;

/// GPU_COMMAND: soft reset (preserves nothing; settles after
/// [`crate::timing::SOFT_RESET_DELAY`]).
pub const GPU_CMD_SOFT_RESET: u32 = 1;
/// GPU_COMMAND: hard reset.
pub const GPU_CMD_HARD_RESET: u32 = 2;
/// GPU_COMMAND: clean (flush) caches.
pub const GPU_CMD_CLEAN_CACHES: u32 = 4;
/// GPU_COMMAND: clean and invalidate caches.
pub const GPU_CMD_CLEAN_INV_CACHES: u32 = 8;

/// GPU_IRQ bit: reset completed.
pub const GPU_IRQ_RESET_COMPLETED: u32 = 0x0100;
/// GPU_IRQ bit: cache clean completed.
pub const GPU_IRQ_CLEAN_CACHES_COMPLETED: u32 = 0x2_0000;

/// GPU_FAULTSTATUS: no fault.
pub const GPU_FAULT_NONE: u32 = 0;
/// GPU_FAULTSTATUS: operation attempted without stable power/clocks.
pub const GPU_FAULT_POWER: u32 = 1;
/// GPU_FAULTSTATUS: protocol violation (e.g. START while busy).
pub const GPU_FAULT_BUSY: u32 = 2;

// --- MMU block ---
/// Raw MMU interrupt status (bit 0: AS0 fault).
pub const MMU_IRQ_RAWSTAT: u32 = 0x1000;
/// Write-1-to-clear MMU interrupt bits.
pub const MMU_IRQ_CLEAR: u32 = 0x1004;
/// MMU interrupt enable mask.
pub const MMU_IRQ_MASK: u32 = 0x1008;
/// `RAWSTAT & MASK`.
pub const MMU_IRQ_STATUS: u32 = 0x100C;
/// Page table base, low half (staged until `AS_CMD_UPDATE`).
pub const AS0_TRANSTAB_LO: u32 = 0x1010;
/// Page table base, high half.
pub const AS0_TRANSTAB_HI: u32 = 0x1014;
/// Translation config (see `TRANSCFG_*`).
pub const AS0_TRANSCFG: u32 = 0x1018;
/// Address-space command (see `AS_CMD_*`).
pub const AS0_COMMAND: u32 = 0x101C;
/// Address-space status (0 = idle).
pub const AS0_STATUS: u32 = 0x1020;
/// Last MMU fault code.
pub const AS0_FAULTSTATUS: u32 = 0x1024;
/// Faulting VA, low half.
pub const AS0_FAULTADDR_LO: u32 = 0x1028;
/// Faulting VA, high half.
pub const AS0_FAULTADDR_HI: u32 = 0x102C;

/// TRANSCFG bit 0: address space enabled.
pub const TRANSCFG_ENABLE: u32 = 1;
/// TRANSCFG bit 1: read-allocate caching (G71 requires it set, G31/G52
/// require it clear — the §6.4 "MMU configuration" patch target).
pub const TRANSCFG_RD_ALLOC: u32 = 2;

/// AS0_COMMAND: latch staged TRANSTAB/TRANSCFG into the live MMU.
pub const AS_CMD_UPDATE: u32 = 1;
/// AS0_COMMAND: TLB flush (modeled as instantaneous).
pub const AS_CMD_FLUSH: u32 = 2;

/// AS0_FAULTSTATUS: translation fault (unmapped / invalid PTE).
pub const AS_FAULT_TRANSLATION: u32 = 0xC1;
/// AS0_FAULTSTATUS: permission fault (exec/write violation).
pub const AS_FAULT_PERMISSION: u32 = 0xC2;
/// AS0_FAULTSTATUS: MMU configuration rejected by this SKU.
pub const AS_FAULT_BAD_CONFIG: u32 = 0xC3;

// --- Job slot block ---
/// Raw job interrupt status (bit 0: slot 0 done; bit 16: slot 0 failed).
pub const JOB_IRQ_RAWSTAT: u32 = 0x2000;
/// Write-1-to-clear job interrupt bits.
pub const JOB_IRQ_CLEAR: u32 = 0x2004;
/// Job interrupt enable mask.
pub const JOB_IRQ_MASK: u32 = 0x2008;
/// `RAWSTAT & MASK`.
pub const JOB_IRQ_STATUS: u32 = 0x200C;
/// Job-chain head VA, low half.
pub const JS0_HEAD_LO: u32 = 0x2010;
/// Job-chain head VA, high half.
pub const JS0_HEAD_HI: u32 = 0x2014;
/// Shader-core affinity mask for the job (the §6.4 per-job patch target).
pub const JS0_AFFINITY: u32 = 0x2018;
/// Job configuration (opaque to the recorder).
pub const JS0_CONFIG: u32 = 0x201C;
/// Job command (see `JS_CMD_*`).
pub const JS0_COMMAND: u32 = 0x2020;
/// Job status (see `JS_STATUS_*`).
pub const JS0_STATUS: u32 = 0x2024;
/// Next-job head VA (async double-buffering), low half.
pub const JS0_HEAD_NEXT_LO: u32 = 0x2030;
/// Next-job head VA, high half.
pub const JS0_HEAD_NEXT_HI: u32 = 0x2034;
/// Next-job affinity.
pub const JS0_AFFINITY_NEXT: u32 = 0x2038;
/// Next-job command (START queues behind the running job).
pub const JS0_COMMAND_NEXT: u32 = 0x203C;

/// JS command: start the job.
pub const JS_CMD_START: u32 = 1;
/// JS command: stop at the next sub-job boundary.
pub const JS_CMD_SOFT_STOP: u32 = 2;
/// JS command: stop immediately (preemption path).
pub const JS_CMD_HARD_STOP: u32 = 3;

/// JS status: slot idle.
pub const JS_STATUS_IDLE: u32 = 0;
/// JS status: job running.
pub const JS_STATUS_ACTIVE: u32 = 1;
/// JS status: job finished successfully.
pub const JS_STATUS_COMPLETED: u32 = 2;
/// JS status: job failed.
pub const JS_STATUS_FAULT: u32 = 3;

/// JOB_IRQ bit: slot 0 completed.
pub const JOB_IRQ_DONE0: u32 = 1;
/// JOB_IRQ bit: slot 0 failed.
pub const JOB_IRQ_FAIL0: u32 = 1 << 16;

/// IRQ line numbers on the machine's interrupt controller.
pub mod irq_lines {
    use gr_soc::IrqLine;
    /// Job completion/failure interrupts.
    pub const JOB: IrqLine = IrqLine(0);
    /// MMU fault interrupts.
    pub const MMU: IrqLine = IrqLine(1);
    /// GPU control interrupts (reset, cache flush).
    pub const GPU: IrqLine = IrqLine(2);
}

/// All architecturally-defined register offsets (the replayer's verifier
/// whitelist: a recording touching anything else is rejected).
pub const KNOWN_REGS: [u32; 35] = [
    GPU_ID,
    GPU_STATUS,
    GPU_IRQ_RAWSTAT,
    GPU_IRQ_CLEAR,
    GPU_IRQ_MASK,
    GPU_IRQ_STATUS,
    GPU_COMMAND,
    GPU_FAULTSTATUS,
    SHADER_PRESENT,
    SHADER_READY,
    SHADER_PWRON,
    SHADER_PWROFF,
    MMU_IRQ_RAWSTAT,
    MMU_IRQ_CLEAR,
    MMU_IRQ_MASK,
    MMU_IRQ_STATUS,
    AS0_TRANSTAB_LO,
    AS0_TRANSTAB_HI,
    AS0_TRANSCFG,
    AS0_COMMAND,
    AS0_STATUS,
    AS0_FAULTSTATUS,
    AS0_FAULTADDR_LO,
    AS0_FAULTADDR_HI,
    JOB_IRQ_RAWSTAT,
    JOB_IRQ_CLEAR,
    JOB_IRQ_MASK,
    JOB_IRQ_STATUS,
    JS0_HEAD_LO,
    JS0_HEAD_HI,
    JS0_AFFINITY,
    JS0_CONFIG,
    JS0_COMMAND,
    JS0_STATUS,
    JS0_HEAD_NEXT_LO,
];

/// `true` when `off` names an architecturally-defined Mali register.
pub fn is_known_reg(off: u32) -> bool {
    KNOWN_REGS.contains(&off)
        || matches!(off, JS0_HEAD_NEXT_HI | JS0_AFFINITY_NEXT | JS0_COMMAND_NEXT)
}

/// Human-readable register name for diagnostics and replay error reports.
pub fn reg_name(off: u32) -> &'static str {
    match off {
        GPU_ID => "GPU_ID",
        GPU_STATUS => "GPU_STATUS",
        GPU_IRQ_RAWSTAT => "GPU_IRQ_RAWSTAT",
        GPU_IRQ_CLEAR => "GPU_IRQ_CLEAR",
        GPU_IRQ_MASK => "GPU_IRQ_MASK",
        GPU_IRQ_STATUS => "GPU_IRQ_STATUS",
        GPU_COMMAND => "GPU_COMMAND",
        GPU_FAULTSTATUS => "GPU_FAULTSTATUS",
        SHADER_PRESENT => "SHADER_PRESENT",
        SHADER_READY => "SHADER_READY",
        SHADER_PWRON => "SHADER_PWRON",
        SHADER_PWROFF => "SHADER_PWROFF",
        MMU_IRQ_RAWSTAT => "MMU_IRQ_RAWSTAT",
        MMU_IRQ_CLEAR => "MMU_IRQ_CLEAR",
        MMU_IRQ_MASK => "MMU_IRQ_MASK",
        MMU_IRQ_STATUS => "MMU_IRQ_STATUS",
        AS0_TRANSTAB_LO => "AS0_TRANSTAB_LO",
        AS0_TRANSTAB_HI => "AS0_TRANSTAB_HI",
        AS0_TRANSCFG => "AS0_TRANSCFG",
        AS0_COMMAND => "AS0_COMMAND",
        AS0_STATUS => "AS0_STATUS",
        AS0_FAULTSTATUS => "AS0_FAULTSTATUS",
        AS0_FAULTADDR_LO => "AS0_FAULTADDR_LO",
        AS0_FAULTADDR_HI => "AS0_FAULTADDR_HI",
        JOB_IRQ_RAWSTAT => "JOB_IRQ_RAWSTAT",
        JOB_IRQ_CLEAR => "JOB_IRQ_CLEAR",
        JOB_IRQ_MASK => "JOB_IRQ_MASK",
        JOB_IRQ_STATUS => "JOB_IRQ_STATUS",
        JS0_HEAD_LO => "JS0_HEAD_LO",
        JS0_HEAD_HI => "JS0_HEAD_HI",
        JS0_AFFINITY => "JS0_AFFINITY",
        JS0_CONFIG => "JS0_CONFIG",
        JS0_COMMAND => "JS0_COMMAND",
        JS0_STATUS => "JS0_STATUS",
        JS0_HEAD_NEXT_LO => "JS0_HEAD_NEXT_LO",
        JS0_HEAD_NEXT_HI => "JS0_HEAD_NEXT_HI",
        JS0_AFFINITY_NEXT => "JS0_AFFINITY_NEXT",
        JS0_COMMAND_NEXT => "JS0_COMMAND_NEXT",
        _ => "UNKNOWN",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_regs_have_names() {
        for &r in &KNOWN_REGS {
            assert_ne!(reg_name(r), "UNKNOWN", "reg {r:#x}");
            assert!(is_known_reg(r));
        }
        assert!(is_known_reg(JS0_COMMAND_NEXT));
        assert!(!is_known_reg(0x2FF0));
        assert_eq!(reg_name(0x2FF0), "UNKNOWN");
    }

    #[test]
    fn blocks_do_not_overlap() {
        for &r in &KNOWN_REGS {
            assert!(r < MMIO_SIZE);
            assert_eq!(r % 4, 0, "registers are word aligned");
        }
    }
}
