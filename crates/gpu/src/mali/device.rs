//! The Mali-like GPU device model.
//!
//! Implements the family protocol the paper's Table 1 knowledge captures:
//! job start via `JS0_HEAD`/`JS0_COMMAND`, page tables behind
//! `AS0_TRANSTAB`/`AS0_COMMAND`, soft reset via `GPU_COMMAND`, three IRQ
//! lines (job / MMU / GPU), and a double-buffered job slot (`*_NEXT`
//! registers) giving the depth-2 queue the paper disables for record
//! determinism.

use gr_sim::{EventQueue, SimClock, SimRng, SimTime};
use gr_soc::{IrqController, SharedMem, SharedPmc};

use crate::device::{GpuDev, SoftTlb, TranslatingVaMem};
use crate::fastpath;
use crate::faults::FaultKind;
use crate::mali::jobs::{JobHeader, JOB_HEADER_SIZE, MAX_CHAIN_LEN};
use crate::mali::pgtable;
use crate::mali::regs::{self as r, irq_lines};
use crate::sku::GpuSku;
use crate::timing::{self, JobCost};
use crate::vm::bytecode::KernelOp;
use crate::vm::exec::{execute_with, ExecError, ExecScratch};
use gr_soc::pmc::PmcDomain;

/// Completion events on the device timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Reset,
    Flush,
    Job,
}

#[derive(Debug, Clone, Copy)]
struct RunningJob {
    head_va: u64,
    affinity: u32,
}

#[derive(Debug, Clone, Copy)]
struct QueuedJob {
    head_va: u64,
    affinity: u32,
}

/// Chain parsed and shaders decoded at submit time, so completion does
/// not re-fetch and re-decode the same (hardware-owned) job memory.
struct CachedChain {
    head_va: u64,
    ops: Vec<KernelOp>,
}

/// The Mali-like device. One job slot (double-buffered), one address space.
pub struct MaliGpu {
    sku: &'static GpuSku,
    clock: SimClock,
    mem: SharedMem,
    irq: IrqController,
    pmc: SharedPmc,
    rng: SimRng,

    access: crate::access::SharedAccessLog,

    gpu_rawstat: u32,
    gpu_mask: u32,
    job_rawstat: u32,
    job_mask: u32,
    mmu_rawstat: u32,
    mmu_mask: u32,
    gpu_faultstatus: u32,

    shader_pwron: u32,
    shader_ready_at: SimTime,

    transtab_staged: u64,
    transcfg_staged: u32,
    transtab_active: u64,
    transcfg_active: u32,

    as_faultstatus: u32,
    as_faultaddr: u64,

    js_head: u64,
    js_affinity: u32,
    js_config: u32,
    js_status: u32,
    js_head_next: u64,
    js_affinity_next: u32,
    queued: Option<QueuedJob>,

    running: Option<RunningJob>,
    events: EventQueue<Event>,
    resetting: bool,
    flushing: u32,

    offline_mask: u32,
    job_fault_pending: bool,
    glitch_armed: bool,
    jobs_completed: u64,

    tlb: SoftTlb,
    scratch: ExecScratch,
    cached_chain: Option<CachedChain>,
}

impl std::fmt::Debug for MaliGpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaliGpu")
            .field("sku", &self.sku.name)
            .field("busy", &self.running.is_some())
            .field("jobs_completed", &self.jobs_completed)
            .finish()
    }
}

enum ChainFault {
    Mmu { va: u64, code: u32 },
    BadJob,
}

impl MaliGpu {
    /// Creates a powered-off device.
    pub fn new(
        sku: &'static GpuSku,
        clock: SimClock,
        mem: SharedMem,
        irq: IrqController,
        pmc: SharedPmc,
        rng: SimRng,
    ) -> Self {
        MaliGpu {
            sku,
            clock,
            mem,
            irq,
            pmc,
            rng,
            access: crate::access::SharedAccessLog::new(),
            gpu_rawstat: 0,
            gpu_mask: 0,
            job_rawstat: 0,
            job_mask: 0,
            mmu_rawstat: 0,
            mmu_mask: 0,
            gpu_faultstatus: 0,
            shader_pwron: 0,
            shader_ready_at: SimTime::ZERO,
            transtab_staged: 0,
            transcfg_staged: 0,
            transtab_active: 0,
            transcfg_active: 0,
            as_faultstatus: 0,
            as_faultaddr: 0,
            js_head: 0,
            js_affinity: 0,
            js_config: 0,
            js_status: r::JS_STATUS_IDLE,
            js_head_next: 0,
            js_affinity_next: 0,
            queued: None,
            running: None,
            events: EventQueue::new(),
            resetting: false,
            flushing: 0,
            offline_mask: 0,
            job_fault_pending: false,
            glitch_armed: false,
            jobs_completed: 0,
            tlb: SoftTlb::new(),
            scratch: ExecScratch::new(),
            cached_chain: None,
        }
    }

    fn present_mask(&self) -> u32 {
        (1u32 << self.sku.cores) - 1
    }

    fn power_stable(&self) -> bool {
        self.pmc.is_stable(PmcDomain::GpuCore) && self.pmc.is_stable(PmcDomain::GpuMem)
    }

    fn update_irq_lines(&self) {
        let pairs = [
            (self.job_rawstat & self.job_mask, irq_lines::JOB),
            (self.mmu_rawstat & self.mmu_mask, irq_lines::MMU),
            (self.gpu_rawstat & self.gpu_mask, irq_lines::GPU),
        ];
        for (pending, line) in pairs {
            if pending != 0 {
                self.irq.raise(line);
            } else {
                self.irq.clear(line);
            }
        }
    }

    fn mmu_enabled(&self) -> bool {
        self.transcfg_active & r::TRANSCFG_ENABLE != 0
    }

    /// Page-wise translation honoring this SKU's PTE format. Fetching
    /// binaries additionally requires the exec permission; see
    /// [`MaliGpu::fetch_binary`].
    fn translate_page(&self, page_va: u64) -> Option<(u64, pgtable::PteFlags)> {
        if !self.mmu_enabled() {
            return None;
        }
        pgtable::translate(
            &self.mem,
            self.sku.pte_format,
            self.transtab_active,
            page_va,
        )
    }

    fn fetch_binary(&self, va: u64, len: usize) -> Result<Vec<u8>, ChainFault> {
        // Binaries (job headers, shader blobs) must come from pages mapped
        // executable — this is the hardware behaviour behind the paper's
        // §6.1 dump heuristic.
        self.access.note_read(va, len as u64);
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let cur = va + done as u64;
            let page_va = cur & !(gr_soc::PAGE_SIZE as u64 - 1);
            let (pa_page, flags) = self.translate_page(page_va).ok_or(ChainFault::Mmu {
                va: cur,
                code: r::AS_FAULT_TRANSLATION,
            })?;
            if !flags.exec {
                return Err(ChainFault::Mmu {
                    va: cur,
                    code: r::AS_FAULT_PERMISSION,
                });
            }
            let in_page = (gr_soc::PAGE_SIZE as u64 - (cur - page_va)) as usize;
            let chunk = in_page.min(len - done);
            self.mem
                .read(pa_page + (cur - page_va), &mut out[done..done + chunk])
                .map_err(|_| ChainFault::Mmu {
                    va: cur,
                    code: r::AS_FAULT_TRANSLATION,
                })?;
            done += chunk;
        }
        Ok(out)
    }

    fn parse_chain(&self, head_va: u64) -> Result<Vec<JobHeader>, ChainFault> {
        let mut headers = Vec::new();
        let mut va = head_va;
        while va != 0 {
            if headers.len() >= MAX_CHAIN_LEN {
                return Err(ChainFault::BadJob);
            }
            let bytes = self.fetch_binary(va, JOB_HEADER_SIZE)?;
            let h = JobHeader::decode(&bytes).ok_or(ChainFault::BadJob)?;
            va = h.next_va;
            headers.push(h);
        }
        Ok(headers)
    }

    fn chain_duration(&mut self, headers: &[JobHeader], affinity: u32) -> gr_sim::SimDuration {
        let total = headers
            .iter()
            .fold(JobCost::default(), |acc, h| acc + h.cost);
        let active = (affinity & self.present_mask() & !self.offline_mask).count_ones();
        let mhz = self.pmc.clock_mhz(PmcDomain::GpuCore);
        let d = timing::job_duration(total, headers.len() as u32, active, mhz, self.sku);
        timing::jittered(d, &mut self.rng) + timing::IRQ_LATENCY
    }

    fn raise_job_fault(&mut self) {
        self.job_rawstat |= r::JOB_IRQ_FAIL0;
        self.js_status = r::JS_STATUS_FAULT;
        self.running = None;
        self.queued = None;
        self.update_irq_lines();
    }

    fn raise_mmu_fault(&mut self, va: u64, code: u32) {
        self.mmu_rawstat |= 1;
        self.as_faultaddr = va;
        self.as_faultstatus = code;
        self.raise_job_fault();
    }

    fn start_job(&mut self, head_va: u64, affinity: u32) {
        if !self.power_stable() {
            self.gpu_faultstatus = r::GPU_FAULT_POWER;
            return;
        }
        if self.glitch_armed {
            // A transient core glitch (fault injection): the next started
            // job fails; the glitch then clears, so re-execution succeeds.
            self.glitch_armed = false;
            self.raise_job_fault();
            return;
        }
        if self.resetting || self.running.is_some() {
            self.gpu_faultstatus = r::GPU_FAULT_BUSY;
            return;
        }
        // SKU-specific MMU configuration expectations (§6.4): G71 requires
        // read-allocate caching; G31/G52 reject it.
        let rd_alloc = self.transcfg_active & r::TRANSCFG_RD_ALLOC != 0;
        if rd_alloc != self.sku.requires_rd_alloc {
            self.raise_mmu_fault(0, r::AS_FAULT_BAD_CONFIG);
            return;
        }
        let headers = match self.parse_chain(head_va) {
            Ok(h) => h,
            Err(ChainFault::Mmu { va, code }) => {
                self.raise_mmu_fault(va, code);
                return;
            }
            Err(ChainFault::BadJob) => {
                self.raise_job_fault();
                return;
            }
        };
        let ready = self.shader_ready();
        if affinity & ready == 0 {
            // No powered core can run the job.
            self.raise_job_fault();
            return;
        }
        let dur = self.chain_duration(&headers, affinity);
        if dur == gr_sim::SimDuration::MAX {
            self.raise_job_fault();
            return;
        }
        // Fast path: fetch + decode every shader once at submit. Completion
        // reuses the decoded ops instead of re-walking job memory. On any
        // fetch/decode problem fall back to the completion-time path so
        // fault timing is unchanged.
        self.cached_chain = None;
        if fastpath::enabled() {
            let ops: Option<Vec<KernelOp>> = headers
                .iter()
                .map(|h| {
                    let blob = self.fetch_binary(h.shader_va, h.shader_len as usize).ok()?;
                    KernelOp::decode(&blob).ok()
                })
                .collect();
            if let Some(ops) = ops {
                self.cached_chain = Some(CachedChain { head_va, ops });
            }
        }
        self.running = Some(RunningJob { head_va, affinity });
        self.js_status = r::JS_STATUS_ACTIVE;
        let done_at = self.clock.now() + dur;
        self.events.schedule(done_at, Event::Job);
    }

    fn execute_chain_now(&mut self, head_va: u64) -> Result<(), ChainFault> {
        fn to_fault(e: ExecError) -> ChainFault {
            match e {
                ExecError::MemFault { va } => ChainFault::Mmu {
                    va,
                    code: r::AS_FAULT_TRANSLATION,
                },
                _ => ChainFault::BadJob,
            }
        }
        let transtab = self.transtab_active;
        let fmt = self.sku.pte_format;
        let enabled = self.mmu_enabled();
        let mem = self.mem.clone();
        let translate = |page_va: u64| {
            if !enabled {
                return None;
            }
            pgtable::translate(&mem, fmt, transtab, page_va).map(|(pa, fl)| (pa, fl.write))
        };
        // Decoded ops cached at submit (one per sub-job). The cache is
        // only populated when every blob decoded, so using it cannot skip
        // a fetch/decode fault the slow path would have raised.
        if let Some(c) = self.cached_chain.take() {
            if c.head_va == head_va && fastpath::enabled() {
                let mut vamem = TranslatingVaMem::with_tlb(&mem, translate, &mut self.tlb);
                let mut vamem = crate::access::LoggingVaMem {
                    inner: &mut vamem,
                    log: &self.access,
                };
                for op in &c.ops {
                    execute_with(op, &mut vamem, &mut self.scratch).map_err(to_fault)?;
                }
                return Ok(());
            }
        }
        // Slow path: fetch/decode/execute one sub-job at a time, exactly
        // like the pre-fast-path code, so partial execution and fault
        // ordering for mixed-validity chains are unchanged.
        let headers = self.parse_chain(head_va)?;
        for h in headers {
            let blob = self.fetch_binary(h.shader_va, h.shader_len as usize)?;
            let op = KernelOp::decode(&blob).map_err(|_| ChainFault::BadJob)?;
            let mut vamem = if fastpath::enabled() {
                TranslatingVaMem::with_tlb(&mem, translate, &mut self.tlb)
            } else {
                TranslatingVaMem::legacy(&mem, translate)
            };
            let mut vamem = crate::access::LoggingVaMem {
                inner: &mut vamem,
                log: &self.access,
            };
            execute_with(&op, &mut vamem, &mut self.scratch).map_err(to_fault)?;
        }
        Ok(())
    }

    fn complete_job(&mut self) {
        let Some(job) = self.running.take() else {
            return;
        };
        if self.job_fault_pending || job.affinity & !self.offline_mask & self.present_mask() == 0 {
            // Cores went away mid-flight (§7.2 fault injection).
            self.job_fault_pending = false;
            self.raise_job_fault();
            return;
        }
        match self.execute_chain_now(job.head_va) {
            Ok(()) => {
                self.jobs_completed += 1;
                self.job_rawstat |= r::JOB_IRQ_DONE0;
                self.js_status = r::JS_STATUS_COMPLETED;
                self.update_irq_lines();
                // Promote the double-buffered next job with no CPU round
                // trip — the async pipelining Fig. 3 measures.
                if let Some(q) = self.queued.take() {
                    self.js_head = q.head_va;
                    self.js_affinity = q.affinity;
                    self.start_job(q.head_va, q.affinity);
                }
            }
            Err(ChainFault::Mmu { va, code }) => self.raise_mmu_fault(va, code),
            Err(ChainFault::BadJob) => self.raise_job_fault(),
        }
    }

    fn shader_ready(&self) -> u32 {
        if self.clock.now() >= self.shader_ready_at {
            self.shader_pwron & !self.offline_mask
        } else {
            0
        }
    }

    fn soft_reset(&mut self) {
        self.events.clear();
        self.running = None;
        self.queued = None;
        self.job_fault_pending = false;
        self.offline_mask = 0;
        self.gpu_rawstat = 0;
        self.job_rawstat = 0;
        self.mmu_rawstat = 0;
        self.gpu_faultstatus = 0;
        self.as_faultstatus = 0;
        self.as_faultaddr = 0;
        self.js_status = r::JS_STATUS_IDLE;
        self.js_head = 0;
        self.js_head_next = 0;
        self.transtab_active = 0;
        self.transcfg_active = 0;
        self.transtab_staged = 0;
        self.transcfg_staged = 0;
        self.shader_pwron = 0;
        self.flushing = 0;
        self.tlb.flush();
        // Reset invalidates every outstanding warm-residency mark, the
        // same way it invalidates cached translations.
        self.mem.bump_dirty_epoch();
        self.cached_chain = None;
        self.resetting = true;
        self.update_irq_lines();
        self.events
            .schedule(self.clock.now() + timing::SOFT_RESET_DELAY, Event::Reset);
    }
}

impl GpuDev for MaliGpu {
    fn read32(&mut self, off: u32) -> u32 {
        self.tick();
        match off {
            r::GPU_ID => self.sku.gpu_id,
            r::GPU_STATUS => {
                let mut v = 0;
                if self.running.is_some() {
                    v |= 1;
                }
                if self.resetting || self.flushing > 0 {
                    v |= 2;
                }
                v
            }
            r::GPU_IRQ_RAWSTAT => self.gpu_rawstat,
            r::GPU_IRQ_MASK => self.gpu_mask,
            r::GPU_IRQ_STATUS => self.gpu_rawstat & self.gpu_mask,
            r::GPU_FAULTSTATUS => self.gpu_faultstatus,
            r::SHADER_PRESENT => self.present_mask(),
            r::SHADER_READY => self.shader_ready(),
            r::MMU_IRQ_RAWSTAT => self.mmu_rawstat,
            r::MMU_IRQ_MASK => self.mmu_mask,
            r::MMU_IRQ_STATUS => self.mmu_rawstat & self.mmu_mask,
            r::AS0_TRANSTAB_LO => self.transtab_staged as u32,
            r::AS0_TRANSTAB_HI => (self.transtab_staged >> 32) as u32,
            r::AS0_TRANSCFG => self.transcfg_staged,
            r::AS0_STATUS => 0,
            r::AS0_FAULTSTATUS => self.as_faultstatus,
            r::AS0_FAULTADDR_LO => self.as_faultaddr as u32,
            r::AS0_FAULTADDR_HI => (self.as_faultaddr >> 32) as u32,
            r::JOB_IRQ_RAWSTAT => self.job_rawstat,
            r::JOB_IRQ_MASK => self.job_mask,
            r::JOB_IRQ_STATUS => self.job_rawstat & self.job_mask,
            r::JS0_HEAD_LO => self.js_head as u32,
            r::JS0_HEAD_HI => (self.js_head >> 32) as u32,
            r::JS0_AFFINITY => self.js_affinity,
            r::JS0_CONFIG => self.js_config,
            r::JS0_STATUS => self.js_status,
            r::JS0_HEAD_NEXT_LO => self.js_head_next as u32,
            r::JS0_HEAD_NEXT_HI => (self.js_head_next >> 32) as u32,
            r::JS0_AFFINITY_NEXT => self.js_affinity_next,
            _ => 0,
        }
    }

    fn write32(&mut self, off: u32, val: u32) {
        self.tick();
        match off {
            r::GPU_IRQ_CLEAR => {
                self.gpu_rawstat &= !val;
                self.update_irq_lines();
            }
            r::GPU_IRQ_MASK => {
                self.gpu_mask = val;
                self.update_irq_lines();
            }
            r::GPU_COMMAND => match val {
                r::GPU_CMD_SOFT_RESET | r::GPU_CMD_HARD_RESET => {
                    if self.power_stable() {
                        self.soft_reset();
                    } else {
                        self.gpu_faultstatus = r::GPU_FAULT_POWER;
                    }
                }
                r::GPU_CMD_CLEAN_CACHES | r::GPU_CMD_CLEAN_INV_CACHES => {
                    let d = timing::flush_delay(&mut self.rng);
                    self.flushing += 1;
                    self.events.schedule(self.clock.now() + d, Event::Flush);
                }
                _ => {}
            },
            r::SHADER_PWRON => {
                self.shader_pwron |= val & self.present_mask();
                self.shader_ready_at = self.clock.now() + timing::CORE_POWERUP_DELAY;
            }
            r::SHADER_PWROFF => {
                self.shader_pwron &= !val;
            }
            r::MMU_IRQ_CLEAR => {
                self.mmu_rawstat &= !val;
                self.update_irq_lines();
            }
            r::MMU_IRQ_MASK => {
                self.mmu_mask = val;
                self.update_irq_lines();
            }
            r::AS0_TRANSTAB_LO => {
                self.transtab_staged = (self.transtab_staged & !0xFFFF_FFFF) | u64::from(val);
            }
            r::AS0_TRANSTAB_HI => {
                self.transtab_staged =
                    (self.transtab_staged & 0xFFFF_FFFF) | (u64::from(val) << 32);
            }
            r::AS0_TRANSCFG => self.transcfg_staged = val,
            r::AS0_COMMAND if val == r::AS_CMD_UPDATE => {
                self.transtab_active = self.transtab_staged;
                self.transcfg_active = self.transcfg_staged;
                // Address-space switch: cached translations and shaders
                // decoded under the old translation are both stale, and so
                // is any warm-residency mark taken under the old space.
                self.tlb.flush();
                self.mem.bump_dirty_epoch();
                self.cached_chain = None;
            }
            // AS_CMD_FLUSH: TLB shootdown, instantaneous in the model.
            // Issued on unmap, where the freed frames may be recycled —
            // outstanding residency marks are no longer trustworthy.
            r::AS0_COMMAND if val == r::AS_CMD_FLUSH => {
                self.tlb.flush();
                self.mem.bump_dirty_epoch();
                self.cached_chain = None;
            }
            r::JOB_IRQ_CLEAR => {
                self.job_rawstat &= !val;
                self.update_irq_lines();
            }
            r::JOB_IRQ_MASK => {
                self.job_mask = val;
                self.update_irq_lines();
            }
            r::JS0_HEAD_LO => self.js_head = (self.js_head & !0xFFFF_FFFF) | u64::from(val),
            r::JS0_HEAD_HI => self.js_head = (self.js_head & 0xFFFF_FFFF) | (u64::from(val) << 32),
            r::JS0_AFFINITY => self.js_affinity = val,
            r::JS0_CONFIG => self.js_config = val,
            r::JS0_COMMAND => match val {
                r::JS_CMD_START => self.start_job(self.js_head, self.js_affinity),
                r::JS_CMD_SOFT_STOP | r::JS_CMD_HARD_STOP => {
                    // Preemption: abandon the running job without completion.
                    self.events.clear();
                    self.running = None;
                    self.queued = None;
                    self.cached_chain = None;
                    self.js_status = r::JS_STATUS_IDLE;
                }
                _ => {}
            },
            r::JS0_HEAD_NEXT_LO => {
                self.js_head_next = (self.js_head_next & !0xFFFF_FFFF) | u64::from(val)
            }
            r::JS0_HEAD_NEXT_HI => {
                self.js_head_next = (self.js_head_next & 0xFFFF_FFFF) | (u64::from(val) << 32)
            }
            r::JS0_AFFINITY_NEXT => self.js_affinity_next = val,
            r::JS0_COMMAND_NEXT if val == r::JS_CMD_START => {
                if self.running.is_none() {
                    self.js_head = self.js_head_next;
                    self.js_affinity = self.js_affinity_next;
                    self.start_job(self.js_head_next, self.js_affinity_next);
                } else if self.queued.is_none() {
                    self.queued = Some(QueuedJob {
                        head_va: self.js_head_next,
                        affinity: self.js_affinity_next,
                    });
                } else {
                    self.gpu_faultstatus = r::GPU_FAULT_BUSY;
                }
            }
            _ => {}
        }
    }

    fn tick(&mut self) {
        let now = self.clock.now();
        while let Some(ev) = self.events.pop_due(now) {
            match ev {
                Event::Reset => {
                    self.resetting = false;
                    self.gpu_rawstat |= r::GPU_IRQ_RESET_COMPLETED;
                    self.update_irq_lines();
                }
                Event::Flush => {
                    self.flushing = self.flushing.saturating_sub(1);
                    self.gpu_rawstat |= r::GPU_IRQ_CLEAN_CACHES_COMPLETED;
                    self.update_irq_lines();
                }
                Event::Job => self.complete_job(),
            }
        }
    }

    fn next_event_time(&self) -> Option<SimTime> {
        self.events.next_time()
    }

    fn sku(&self) -> &'static GpuSku {
        self.sku
    }

    fn inject_fault(&mut self, fault: FaultKind) {
        match fault {
            FaultKind::OfflineCores { mask } => {
                if let Some(run) = self.running {
                    self.offline_mask |= mask;
                    if run.affinity & mask != 0 {
                        self.job_fault_pending = true;
                    }
                } else {
                    // Armed glitch: survives resets until a job consumes it.
                    self.glitch_armed = true;
                }
            }
            FaultKind::CorruptPte { va } => {
                if let Some(pte_pa) = pgtable::pte_address(&self.mem, self.transtab_active, va) {
                    if let Ok(pte) = self.mem.read_u64(pte_pa) {
                        // Clear the valid bit: deterministic, detectable.
                        let _ = self.mem.write_u64(pte_pa, pte & !1);
                    }
                }
                // The corruption must be observed even if the translation
                // (or the decoded job touching it) was already cached.
                self.tlb.invalidate_page(va);
                self.cached_chain = None;
            }
        }
    }

    fn busy(&self) -> bool {
        self.running.is_some() || self.resetting || self.flushing > 0
    }

    fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    fn access_log(&self) -> crate::access::SharedAccessLog {
        self.access.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mali::pgtable::{alloc_root, map_page, PteFlags};
    use crate::sku::{MALI_G31, MALI_G71};
    use crate::vm::bytecode::{ActKind, KernelOp};
    use gr_sim::SimDuration;
    use gr_soc::pmc::{Pmc, SETTLE_DELAY};
    use gr_soc::{FrameAllocator, PhysMem, PAGE_SIZE};

    struct Rig {
        clock: SimClock,
        mem: SharedMem,
        irq: IrqController,
        gpu: MaliGpu,
        alloc: FrameAllocator,
        root: u64,
    }

    fn rig(sku: &'static GpuSku) -> Rig {
        let clock = SimClock::new();
        let mem = SharedMem::new(PhysMem::new(0x8000_0000, 512 * PAGE_SIZE));
        let irq = IrqController::new();
        let pmc = SharedPmc::new(Pmc::new(clock.clone()));
        // Power both domains and settle.
        pmc.write32(Pmc::pwr_ctrl_off(PmcDomain::GpuCore), 1);
        pmc.write32(Pmc::pwr_ctrl_off(PmcDomain::GpuMem), 1);
        clock.advance(SETTLE_DELAY);
        let gpu = MaliGpu::new(
            sku,
            clock.clone(),
            mem.clone(),
            irq.clone(),
            pmc,
            SimRng::seed_from(7),
        );
        let mut alloc = FrameAllocator::new(0x8000_0000, 512);
        let root = alloc_root(&mem, &mut alloc).unwrap();
        Rig {
            clock,
            mem,
            irq,
            gpu,
            alloc,
            root,
        }
    }

    /// Reset, power cores, enable MMU with `root`, returning the ready rig.
    fn bring_up(rig: &mut Rig) {
        let g = &mut rig.gpu;
        g.write32(r::GPU_COMMAND, r::GPU_CMD_SOFT_RESET);
        rig.clock.advance(timing::SOFT_RESET_DELAY);
        g.tick();
        assert_eq!(
            g.read32(r::GPU_IRQ_RAWSTAT) & r::GPU_IRQ_RESET_COMPLETED,
            r::GPU_IRQ_RESET_COMPLETED
        );
        g.write32(r::GPU_IRQ_CLEAR, r::GPU_IRQ_RESET_COMPLETED);
        g.write32(r::JOB_IRQ_MASK, 0xFFFF_FFFF);
        g.write32(r::MMU_IRQ_MASK, 0xFFFF_FFFF);
        let present = g.read32(r::SHADER_PRESENT);
        g.write32(r::SHADER_PWRON, present);
        rig.clock.advance(timing::CORE_POWERUP_DELAY);
        assert_eq!(g.read32(r::SHADER_READY), present);
        g.write32(r::AS0_TRANSTAB_LO, rig.root as u32);
        g.write32(r::AS0_TRANSTAB_HI, (rig.root >> 32) as u32);
        let mut cfg = r::TRANSCFG_ENABLE;
        if g.sku().requires_rd_alloc {
            cfg |= r::TRANSCFG_RD_ALLOC;
        }
        g.write32(r::AS0_TRANSCFG, cfg);
        g.write32(r::AS0_COMMAND, r::AS_CMD_UPDATE);
    }

    /// Maps `n` pages at `va` with `flags`, returning backing PAs.
    fn map_pages(rig: &mut Rig, va: u64, n: usize, flags: PteFlags) -> Vec<u64> {
        let fmt = rig.gpu.sku().pte_format;
        (0..n)
            .map(|i| {
                let pa = rig.alloc.alloc_zeroed(&rig.mem).unwrap().unwrap();
                map_page(
                    &rig.mem,
                    &mut rig.alloc,
                    fmt,
                    rig.root,
                    va + (i * PAGE_SIZE) as u64,
                    pa,
                    flags,
                )
                .unwrap();
                pa
            })
            .collect()
    }

    /// Writes `data` into GPU memory at `va` through the page tables.
    fn poke(rig: &Rig, va: u64, data: &[u8]) {
        let fmt = rig.gpu.sku().pte_format;
        let mut done = 0;
        while done < data.len() {
            let cur = va + done as u64;
            let page = cur & !(PAGE_SIZE as u64 - 1);
            let (pa, _) = pgtable::translate(&rig.mem, fmt, rig.root, page).unwrap();
            let chunk = ((PAGE_SIZE as u64 - (cur - page)) as usize).min(data.len() - done);
            rig.mem
                .write(pa + (cur - page), &data[done..done + chunk])
                .unwrap();
            done += chunk;
        }
    }

    fn peek_f32s(rig: &Rig, va: u64, n: usize) -> Vec<f32> {
        let fmt = rig.gpu.sku().pte_format;
        let mut out = Vec::new();
        for i in 0..n {
            let cur = va + (i * 4) as u64;
            let page = cur & !(PAGE_SIZE as u64 - 1);
            let (pa, _) = pgtable::translate(&rig.mem, fmt, rig.root, page).unwrap();
            let mut b = [0u8; 4];
            rig.mem.read(pa + (cur - page), &mut b).unwrap();
            out.push(f32::from_le_bytes(b));
        }
        out
    }

    /// Builds a single-sub-job chain at `chain_va` whose shader is `op`.
    fn emit_job(rig: &Rig, chain_va: u64, op: &KernelOp, cost: JobCost) {
        let blob = op.encode();
        let shader_va = chain_va + 0x100;
        let h = JobHeader {
            next_va: 0,
            shader_va,
            shader_len: blob.len() as u32,
            cost,
        };
        poke(rig, chain_va, &h.encode());
        poke(rig, shader_va, &blob);
    }

    const CHAIN_VA: u64 = 0x0010_0000;
    const DATA_VA: u64 = 0x0020_0000;

    fn submit_and_wait(rig: &mut Rig) -> u32 {
        let g = &mut rig.gpu;
        g.write32(r::JS0_HEAD_LO, CHAIN_VA as u32);
        g.write32(r::JS0_HEAD_HI, (CHAIN_VA >> 32) as u32);
        let present = g.read32(r::SHADER_PRESENT);
        g.write32(r::JS0_AFFINITY, present);
        g.write32(r::JS0_COMMAND, r::JS_CMD_START);
        // Wait for the completion event.
        let t = rig.gpu.next_event_time().expect("job scheduled");
        rig.clock.advance_to(t);
        rig.gpu.tick();
        rig.gpu.read32(r::JOB_IRQ_RAWSTAT)
    }

    fn vecadd_setup(rig: &mut Rig) {
        bring_up(rig);
        map_pages(rig, CHAIN_VA, 1, PteFlags::exec_cpu());
        map_pages(rig, DATA_VA, 1, PteFlags::rw_cpu());
        let mut bytes = Vec::new();
        for v in [1.0f32, 2.0, 3.0, 10.0, 20.0, 30.0] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        poke(rig, DATA_VA, &bytes);
        emit_job(
            rig,
            CHAIN_VA,
            &KernelOp::EltwiseAdd {
                a: DATA_VA,
                b: DATA_VA + 12,
                out: DATA_VA + 24,
                n: 3,
                act: ActKind::None,
            },
            JobCost {
                flops: 3,
                bytes: 24,
            },
        );
    }

    #[test]
    fn vecadd_job_completes_and_computes() {
        let mut rg = rig(&MALI_G71);
        vecadd_setup(&mut rg);
        let rawstat = submit_and_wait(&mut rg);
        assert_eq!(rawstat & r::JOB_IRQ_DONE0, r::JOB_IRQ_DONE0);
        assert_eq!(rg.gpu.read32(r::JS0_STATUS), r::JS_STATUS_COMPLETED);
        assert!(rg.irq.pending(irq_lines::JOB));
        assert_eq!(peek_f32s(&rg, DATA_VA + 24, 3), vec![11.0, 22.0, 33.0]);
        assert_eq!(rg.gpu.jobs_completed(), 1);
        rg.gpu.write32(r::JOB_IRQ_CLEAR, r::JOB_IRQ_DONE0);
        assert!(!rg.irq.pending(irq_lines::JOB));
    }

    #[test]
    fn job_without_power_faults() {
        let clock = SimClock::new();
        let mem = SharedMem::new(PhysMem::new(0x8000_0000, 64 * PAGE_SIZE));
        let pmc = SharedPmc::new(Pmc::new(clock.clone())); // never powered
        let mut gpu = MaliGpu::new(
            &MALI_G71,
            clock,
            mem,
            IrqController::new(),
            pmc,
            SimRng::seed_from(1),
        );
        gpu.write32(r::JS0_COMMAND, r::JS_CMD_START);
        assert_eq!(gpu.read32(r::GPU_FAULTSTATUS), r::GPU_FAULT_POWER);
        gpu.write32(r::GPU_COMMAND, r::GPU_CMD_SOFT_RESET);
        assert_eq!(gpu.read32(r::GPU_FAULTSTATUS), r::GPU_FAULT_POWER);
    }

    #[test]
    fn nonexec_chain_page_raises_permission_fault() {
        let mut rg = rig(&MALI_G71);
        bring_up(&mut rg);
        map_pages(&mut rg, CHAIN_VA, 1, PteFlags::rw_cpu()); // no exec!
        map_pages(&mut rg, DATA_VA, 1, PteFlags::rw_cpu());
        emit_job(
            &rg,
            CHAIN_VA,
            &KernelOp::Fill {
                out: DATA_VA,
                n: 1,
                value: 0.0,
            },
            JobCost::default(),
        );
        rg.gpu.write32(r::JS0_HEAD_LO, CHAIN_VA as u32);
        rg.gpu.write32(r::JS0_AFFINITY, 0xFF);
        rg.gpu.write32(r::JS0_COMMAND, r::JS_CMD_START);
        assert_eq!(rg.gpu.read32(r::JS0_STATUS), r::JS_STATUS_FAULT);
        assert_eq!(rg.gpu.read32(r::AS0_FAULTSTATUS), r::AS_FAULT_PERMISSION);
        assert!(rg.irq.pending(irq_lines::MMU));
    }

    #[test]
    fn wrong_transcfg_for_sku_faults() {
        let mut rg = rig(&MALI_G71);
        bring_up(&mut rg);
        // Drop the RD_ALLOC bit G71 requires — mimics replaying an
        // unpatched G31 recording.
        rg.gpu.write32(r::AS0_TRANSCFG, r::TRANSCFG_ENABLE);
        rg.gpu.write32(r::AS0_COMMAND, r::AS_CMD_UPDATE);
        map_pages(&mut rg, CHAIN_VA, 1, PteFlags::exec_cpu());
        rg.gpu.write32(r::JS0_HEAD_LO, CHAIN_VA as u32);
        rg.gpu.write32(r::JS0_AFFINITY, 0xFF);
        rg.gpu.write32(r::JS0_COMMAND, r::JS_CMD_START);
        assert_eq!(rg.gpu.read32(r::AS0_FAULTSTATUS), r::AS_FAULT_BAD_CONFIG);
    }

    #[test]
    fn affinity_controls_duration() {
        // Same job on 1 core vs 8 cores: 8-core run completes sooner.
        let durations: Vec<u64> = [0x01u32, 0xFF]
            .into_iter()
            .map(|aff| {
                let mut rg = rig(&MALI_G71);
                vecadd_setup(&mut rg);
                // Replace cost with something compute-heavy.
                emit_job(
                    &rg,
                    CHAIN_VA,
                    &KernelOp::Fill {
                        out: DATA_VA,
                        n: 4,
                        value: 1.0,
                    },
                    JobCost {
                        flops: 500_000_000,
                        bytes: 0,
                    },
                );
                let start = rg.clock.now();
                rg.gpu.write32(r::JS0_HEAD_LO, CHAIN_VA as u32);
                rg.gpu.write32(r::JS0_AFFINITY, aff);
                rg.gpu.write32(r::JS0_COMMAND, r::JS_CMD_START);
                let t = rg.gpu.next_event_time().unwrap();
                rg.clock.advance_to(t);
                rg.gpu.tick();
                assert_eq!(
                    rg.gpu.read32(r::JS0_STATUS),
                    r::JS_STATUS_COMPLETED,
                    "aff={aff:#x}"
                );
                (rg.clock.now() - start).as_nanos()
            })
            .collect();
        assert!(
            durations[0] > 4 * durations[1],
            "1-core {} vs 8-core {}",
            durations[0],
            durations[1]
        );
    }

    #[test]
    fn next_slot_pipelines_two_jobs() {
        let mut rg = rig(&MALI_G71);
        vecadd_setup(&mut rg);
        // Queue the same chain twice via the NEXT registers.
        let g = &mut rg.gpu;
        g.write32(r::JS0_HEAD_NEXT_LO, CHAIN_VA as u32);
        g.write32(r::JS0_AFFINITY_NEXT, 0xFF);
        g.write32(r::JS0_COMMAND_NEXT, r::JS_CMD_START); // starts immediately
        g.write32(r::JS0_HEAD_NEXT_LO, CHAIN_VA as u32);
        g.write32(r::JS0_COMMAND_NEXT, r::JS_CMD_START); // queues
                                                         // Drain both completions.
        for _ in 0..2 {
            let t = rg.gpu.next_event_time().expect("pending job");
            rg.clock.advance_to(t);
            rg.gpu.tick();
        }
        assert_eq!(rg.gpu.jobs_completed(), 2);
        assert!(rg.gpu.next_event_time().is_none());
    }

    #[test]
    fn start_while_busy_is_a_protocol_fault() {
        let mut rg = rig(&MALI_G71);
        vecadd_setup(&mut rg);
        rg.gpu.write32(r::JS0_HEAD_LO, CHAIN_VA as u32);
        rg.gpu.write32(r::JS0_AFFINITY, 0xFF);
        rg.gpu.write32(r::JS0_COMMAND, r::JS_CMD_START);
        rg.gpu.write32(r::JS0_COMMAND, r::JS_CMD_START);
        assert_eq!(rg.gpu.read32(r::GPU_FAULTSTATUS), r::GPU_FAULT_BUSY);
    }

    #[test]
    fn offline_cores_fault_the_running_job() {
        let mut rg = rig(&MALI_G71);
        vecadd_setup(&mut rg);
        rg.gpu.write32(r::JS0_HEAD_LO, CHAIN_VA as u32);
        rg.gpu.write32(r::JS0_AFFINITY, 0xFF);
        rg.gpu.write32(r::JS0_COMMAND, r::JS_CMD_START);
        rg.gpu.inject_fault(FaultKind::OfflineCores { mask: 0xFF });
        let t = rg.gpu.next_event_time().unwrap();
        rg.clock.advance_to(t);
        rg.gpu.tick();
        assert_eq!(
            rg.gpu.read32(r::JOB_IRQ_RAWSTAT) & r::JOB_IRQ_FAIL0,
            r::JOB_IRQ_FAIL0
        );
        assert_eq!(rg.gpu.read32(r::JS0_STATUS), r::JS_STATUS_FAULT);
        // Soft reset clears the injected fault; the job then succeeds.
        bring_up(&mut rg);
        // Remap is unnecessary — tables live in DRAM untouched by reset;
        // re-point the MMU at them.
        let raw = submit_and_wait(&mut rg);
        assert_eq!(raw & r::JOB_IRQ_DONE0, r::JOB_IRQ_DONE0);
    }

    #[test]
    fn corrupt_pte_raises_mmu_fault_and_rebuild_recovers() {
        let mut rg = rig(&MALI_G71);
        vecadd_setup(&mut rg);
        rg.gpu.write32(r::JS0_HEAD_LO, CHAIN_VA as u32);
        rg.gpu.write32(r::JS0_AFFINITY, 0xFF);
        rg.gpu.write32(r::JS0_COMMAND, r::JS_CMD_START);
        rg.gpu.inject_fault(FaultKind::CorruptPte { va: DATA_VA });
        let t = rg.gpu.next_event_time().unwrap();
        rg.clock.advance_to(t);
        rg.gpu.tick();
        assert_eq!(
            rg.gpu.read32(r::JOB_IRQ_RAWSTAT) & r::JOB_IRQ_FAIL0,
            r::JOB_IRQ_FAIL0
        );
        assert_eq!(rg.gpu.read32(r::AS0_FAULTSTATUS), r::AS_FAULT_TRANSLATION);
        let fault_va = u64::from(rg.gpu.read32(r::AS0_FAULTADDR_LO));
        assert_eq!(fault_va & !(PAGE_SIZE as u64 - 1), DATA_VA);
        // Recovery: re-populate the PTE (what the replayer's re-execution
        // does), reset, resubmit.
        let fmt = rg.gpu.sku().pte_format;
        let pa = rg.alloc.alloc_zeroed(&rg.mem).unwrap().unwrap();
        // unmap leaves the slot invalid already (corruption cleared valid);
        // write a fresh PTE directly.
        let pte_pa = pgtable::pte_address(&rg.mem, rg.root, DATA_VA).unwrap();
        rg.mem
            .write_u64(pte_pa, pgtable::encode_pte(fmt, pa, PteFlags::rw_cpu()))
            .unwrap();
        let mut bytes = Vec::new();
        for v in [1.0f32, 2.0, 3.0, 10.0, 20.0, 30.0] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        poke(&rg, DATA_VA, &bytes);
        bring_up(&mut rg);
        let raw = submit_and_wait(&mut rg);
        assert_eq!(raw & r::JOB_IRQ_DONE0, r::JOB_IRQ_DONE0);
        assert_eq!(peek_f32s(&rg, DATA_VA + 24, 3), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn corrupt_pte_still_observed_after_tlb_warmup() {
        let mut rg = rig(&MALI_G71);
        vecadd_setup(&mut rg);
        // Warm-up: one successful run caches DATA_VA's translation in the
        // device TLB (and the decoded chain at the next submit).
        let raw = submit_and_wait(&mut rg);
        assert_eq!(raw & r::JOB_IRQ_DONE0, r::JOB_IRQ_DONE0);
        rg.gpu.write32(r::JOB_IRQ_CLEAR, 0xFFFF_FFFF);
        // Resubmit the same chain, then corrupt the PTE mid-flight: the
        // cached translation must not mask the fault.
        rg.gpu.write32(r::JS0_HEAD_LO, CHAIN_VA as u32);
        rg.gpu.write32(r::JS0_AFFINITY, 0xFF);
        rg.gpu.write32(r::JS0_COMMAND, r::JS_CMD_START);
        rg.gpu.inject_fault(FaultKind::CorruptPte { va: DATA_VA });
        let t = rg.gpu.next_event_time().unwrap();
        rg.clock.advance_to(t);
        rg.gpu.tick();
        assert_eq!(
            rg.gpu.read32(r::JOB_IRQ_RAWSTAT) & r::JOB_IRQ_FAIL0,
            r::JOB_IRQ_FAIL0,
            "warm TLB must not hide a corrupted PTE"
        );
        assert_eq!(rg.gpu.read32(r::AS0_FAULTSTATUS), r::AS_FAULT_TRANSLATION);
        let fault_va = u64::from(rg.gpu.read32(r::AS0_FAULTADDR_LO));
        assert_eq!(fault_va & !(PAGE_SIZE as u64 - 1), DATA_VA);
    }

    #[test]
    fn hard_stop_preempts_without_completion() {
        let mut rg = rig(&MALI_G71);
        vecadd_setup(&mut rg);
        emit_job(
            &rg,
            CHAIN_VA,
            &KernelOp::Fill {
                out: DATA_VA,
                n: 1,
                value: 9.0,
            },
            JobCost {
                flops: 1_000_000_000,
                bytes: 0,
            },
        );
        rg.gpu.write32(r::JS0_HEAD_LO, CHAIN_VA as u32);
        rg.gpu.write32(r::JS0_AFFINITY, 0xFF);
        rg.gpu.write32(r::JS0_COMMAND, r::JS_CMD_START);
        assert!(rg.gpu.busy());
        rg.gpu.write32(r::JS0_COMMAND, r::JS_CMD_HARD_STOP);
        assert!(!rg.gpu.busy());
        assert_eq!(rg.gpu.jobs_completed(), 0);
        // The fill never executed (execution happens at completion).
        rg.clock.advance(SimDuration::from_secs(2));
        rg.gpu.tick();
        assert_eq!(rg.gpu.jobs_completed(), 0);
    }

    #[test]
    fn lpae_sku_runs_with_lpae_tables() {
        let mut rg = rig(&MALI_G31);
        vecadd_setup(&mut rg);
        let g = &mut rg.gpu;
        g.write32(r::JS0_HEAD_LO, CHAIN_VA as u32);
        g.write32(r::JS0_AFFINITY, 0x1);
        g.write32(r::JS0_COMMAND, r::JS_CMD_START);
        let t = rg.gpu.next_event_time().unwrap();
        rg.clock.advance_to(t);
        rg.gpu.tick();
        assert_eq!(rg.gpu.read32(r::JS0_STATUS), r::JS_STATUS_COMPLETED);
        assert_eq!(peek_f32s(&rg, DATA_VA + 24, 3), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn cache_flush_completes_after_delay() {
        let mut rg = rig(&MALI_G71);
        bring_up(&mut rg);
        rg.gpu.write32(r::GPU_COMMAND, r::GPU_CMD_CLEAN_CACHES);
        assert_eq!(
            rg.gpu.read32(r::GPU_IRQ_RAWSTAT) & r::GPU_IRQ_CLEAN_CACHES_COMPLETED,
            0
        );
        assert!(rg.gpu.busy());
        let t = rg.gpu.next_event_time().unwrap();
        rg.clock.advance_to(t);
        assert_eq!(
            rg.gpu.read32(r::GPU_IRQ_RAWSTAT) & r::GPU_IRQ_CLEAN_CACHES_COMPLETED,
            r::GPU_IRQ_CLEAN_CACHES_COMPLETED
        );
        assert!(!rg.gpu.busy());
    }
}
