//! The Mali-like GPU family: job-chain submission, two-level page tables
//! with an executable bit, three interrupt lines, double-buffered job slot.

pub mod device;
pub mod jobs;
pub mod pgtable;
pub mod regs;

pub use device::MaliGpu;
