//! Global switch for the zero-copy replay fast path.
//!
//! The fast path (software TLB, per-submit decoded-job caching) is on by
//! default; benchmarks and differential tests turn it off to reproduce the
//! translate-every-access / decode-every-run baseline. The switch only
//! affects *host wall-clock* work — virtual-time results and replayed
//! outputs are bit-identical either way (gated by `val72_correctness` and
//! the TLB differential tests).

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// `true` when the fast path is active (the default).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables the fast path process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Runs `f` with the fast path forced to `on`, restoring the previous
/// setting afterwards (benchmark/test helper).
pub fn with_fastpath<R>(on: bool, f: impl FnOnce() -> R) -> R {
    let prev = enabled();
    set_enabled(on);
    let r = f();
    set_enabled(prev);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_fastpath_passes_through_result() {
        // Deliberately only toggles *towards* the default (enabled): other
        // tests in this binary (warm-TLB regression tests) rely on the
        // fast path staying on, and tests run in parallel threads. The
        // disabled path is exercised end-to-end by the `bench_exec`
        // binary and by explicit `TranslatingVaMem::legacy` tests.
        assert_eq!(with_fastpath(true, || 7), 7);
        assert!(enabled());
    }
}
