//! The v3d-like GPU device model.
//!
//! Submission: write `CT0CA` (list start VA) then `CT0EA` (end VA), which
//! kicks execution. One interrupt line; depth-1 queue (submitting while
//! busy is an error — the paper notes v3d allows max one outstanding job).
//! No exec bit in the page table; binaries fetch from any valid mapping.

use gr_sim::{EventQueue, SimClock, SimDuration, SimRng, SimTime};
use gr_soc::pmc::PmcDomain;
use gr_soc::{IrqController, SharedMem, SharedPmc};

use crate::device::{GpuDev, SoftTlb, TranslatingVaMem};
use crate::fastpath;
use crate::faults::FaultKind;
use crate::sku::GpuSku;
use crate::timing::{self, JobCost};
use crate::v3d::cl::{self, ClPacket, MAX_BRANCH_DEPTH};
use crate::v3d::pgtable;
use crate::v3d::regs::{self as r, irq_lines};
use crate::vm::bytecode::KernelOp;
use crate::vm::exec::{execute_blob, execute_with, ExecError, ExecScratch};

/// Completion events on the device timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Reset,
    Flush,
    List,
}

enum ListFault {
    Mmu { va: u64 },
    BadList,
}

/// Control list walked and shaders decoded at submit time, reused at
/// completion instead of re-fetching the same (hardware-owned) memory.
struct CachedList {
    ca: u64,
    ea: u64,
    ops: Vec<KernelOp>,
}

/// The v3d-like device.
pub struct V3dGpu {
    sku: &'static GpuSku,
    clock: SimClock,
    mem: SharedMem,
    irq: IrqController,
    pmc: SharedPmc,
    rng: SimRng,

    int_sts: u32,
    int_msk: u32,
    ct0ca: u64,
    ct0ea: u64,
    err_stat: u32,
    mmu_pt_base: u64,
    mmu_ctrl: u32,
    mmu_addr: u32,

    running: bool,
    access: crate::access::SharedAccessLog,

    resetting: bool,
    flushing: bool,
    flush_done_at: SimTime,

    events: EventQueue<Event>,
    offline_fault_pending: bool,
    glitch_armed: bool,
    jobs_completed: u64,

    tlb: SoftTlb,
    scratch: ExecScratch,
    cached_list: Option<CachedList>,
}

impl std::fmt::Debug for V3dGpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("V3dGpu")
            .field("sku", &self.sku.name)
            .field("busy", &self.running)
            .field("jobs_completed", &self.jobs_completed)
            .finish()
    }
}

impl V3dGpu {
    /// Creates a powered-off device.
    pub fn new(
        sku: &'static GpuSku,
        clock: SimClock,
        mem: SharedMem,
        irq: IrqController,
        pmc: SharedPmc,
        rng: SimRng,
    ) -> Self {
        V3dGpu {
            sku,
            clock,
            mem,
            irq,
            pmc,
            rng,
            int_sts: 0,
            int_msk: 0,
            ct0ca: 0,
            ct0ea: 0,
            err_stat: 0,
            mmu_pt_base: 0,
            mmu_ctrl: 0,
            mmu_addr: 0,
            running: false,
            access: crate::access::SharedAccessLog::new(),
            resetting: false,
            flushing: false,
            flush_done_at: SimTime::ZERO,
            events: EventQueue::new(),
            offline_fault_pending: false,
            glitch_armed: false,
            jobs_completed: 0,
            tlb: SoftTlb::new(),
            scratch: ExecScratch::new(),
            cached_list: None,
        }
    }

    fn power_stable(&self) -> bool {
        self.pmc.is_stable(PmcDomain::GpuCore) && self.pmc.is_stable(PmcDomain::GpuMem)
    }

    fn update_irq_line(&self) {
        if self.int_sts & self.int_msk != 0 {
            self.irq.raise(irq_lines::V3D);
        } else {
            self.irq.clear(irq_lines::V3D);
        }
    }

    fn translate_page(&self, page_va: u64) -> Option<(u64, pgtable::V3dPteFlags)> {
        if self.mmu_ctrl & 1 == 0 {
            return None;
        }
        pgtable::translate(&self.mem, self.mmu_pt_base, page_va)
    }

    fn fetch(&self, va: u64, len: usize) -> Result<Vec<u8>, ListFault> {
        self.access.note_read(va, len as u64);
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let cur = va + done as u64;
            let page = cur & !(gr_soc::PAGE_SIZE as u64 - 1);
            let (pa, _) = self
                .translate_page(page)
                .ok_or(ListFault::Mmu { va: cur })?;
            let chunk = ((gr_soc::PAGE_SIZE as u64 - (cur - page)) as usize).min(len - done);
            self.mem
                .read(pa + (cur - page), &mut out[done..done + chunk])
                .map_err(|_| ListFault::Mmu { va: cur })?;
            done += chunk;
        }
        Ok(out)
    }

    /// Recursively collects every RUN_SHADER packet reachable from the
    /// list at `[va, va+len)`.
    fn collect_shaders(
        &self,
        va: u64,
        len: u32,
        depth: usize,
        out: &mut Vec<(u64, u32, JobCost)>,
    ) -> Result<(), ListFault> {
        if depth > MAX_BRANCH_DEPTH {
            return Err(ListFault::BadList);
        }
        let bytes = self.fetch(va, len as usize)?;
        let packets = cl::parse_list(&bytes).map_err(|_| ListFault::BadList)?;
        for p in packets {
            match p {
                ClPacket::RunShader { va, len, cost } => out.push((va, len, cost)),
                ClPacket::Branch { va, len } => {
                    self.collect_shaders(va, len, depth + 1, out)?;
                }
                ClPacket::Nop | ClPacket::Halt => {}
            }
        }
        Ok(())
    }

    fn raise_error(&mut self, err: u32) {
        self.err_stat = err;
        self.running = false;
        self.update_irq_line();
    }

    fn raise_mmu_fault(&mut self, va: u64) {
        self.mmu_addr = va as u32;
        self.int_sts |= r::INT_MMU_FAULT;
        self.raise_error(r::ERR_BAD_CL);
    }

    fn submit(&mut self) {
        if !self.power_stable() {
            self.err_stat = r::ERR_POWER;
            return;
        }
        if self.running || self.resetting {
            // Depth-1 queue: this is exactly why the paper's GPU model can
            // treat v3d submission as naturally synchronous.
            self.err_stat = r::ERR_BUSY;
            return;
        }
        if self.glitch_armed {
            self.glitch_armed = false;
            self.raise_error(r::ERR_POWER);
            self.int_sts |= r::INT_MMU_FAULT;
            self.update_irq_line();
            return;
        }
        let len = self.ct0ea.saturating_sub(self.ct0ca);
        if len == 0 || len > (1 << 20) {
            self.raise_error(r::ERR_BAD_CL);
            return;
        }
        let mut shaders = Vec::new();
        match self.collect_shaders(self.ct0ca, len as u32, 0, &mut shaders) {
            Ok(()) => {}
            Err(ListFault::Mmu { va }) => {
                self.raise_mmu_fault(va);
                return;
            }
            Err(ListFault::BadList) => {
                self.raise_error(r::ERR_BAD_CL);
                return;
            }
        }
        let total = shaders
            .iter()
            .fold(JobCost::default(), |acc, (_, _, c)| acc + *c);
        let mhz = self.pmc.clock_mhz(PmcDomain::GpuCore);
        let d = timing::job_duration(total, shaders.len() as u32, self.sku.cores, mhz, self.sku);
        if d == SimDuration::MAX {
            self.raise_error(r::ERR_POWER);
            return;
        }
        let d = timing::jittered(d, &mut self.rng) + timing::IRQ_LATENCY;
        // Fast path: decode every shader once at submit; completion reuses
        // the decoded ops. Any fetch/decode problem falls back to the
        // completion-time path so fault timing is unchanged.
        self.cached_list = None;
        if fastpath::enabled() {
            let ops: Option<Vec<KernelOp>> = shaders
                .iter()
                .map(|&(va, len, _)| {
                    let blob = self.fetch(va, len as usize).ok()?;
                    KernelOp::decode(&blob).ok()
                })
                .collect();
            if let Some(ops) = ops {
                self.cached_list = Some(CachedList {
                    ca: self.ct0ca,
                    ea: self.ct0ea,
                    ops,
                });
            }
        }
        self.running = true;
        self.err_stat = r::ERR_NONE;
        self.events.schedule(self.clock.now() + d, Event::List);
    }

    fn complete_list(&mut self) {
        if !self.running {
            return;
        }
        self.running = false;
        if self.offline_fault_pending {
            self.offline_fault_pending = false;
            self.raise_error(r::ERR_POWER);
            self.int_sts |= r::INT_MMU_FAULT;
            self.update_irq_line();
            return;
        }
        // Decoded ops cached at submit (only populated when every blob
        // decoded), or the slow per-shader path below.
        let cached: Option<Vec<KernelOp>> = match self.cached_list.take() {
            Some(c) if c.ca == self.ct0ca && c.ea == self.ct0ea && fastpath::enabled() => {
                Some(c.ops)
            }
            _ => None,
        };
        let pt = self.mmu_pt_base;
        let enabled = self.mmu_ctrl & 1 != 0;
        let mem = self.mem.clone();
        let translate = |page_va: u64| {
            if !enabled {
                return None;
            }
            pgtable::translate(&mem, pt, page_va).map(|(pa, fl)| (pa, fl.write))
        };
        if let Some(ops) = cached {
            let mut failure = None;
            {
                let mut vamem = TranslatingVaMem::with_tlb(&mem, translate, &mut self.tlb);
                let mut vamem = crate::access::LoggingVaMem {
                    inner: &mut vamem,
                    log: &self.access,
                };
                for op in &ops {
                    match execute_with(op, &mut vamem, &mut self.scratch) {
                        Ok(()) => {}
                        Err(ExecError::MemFault { va }) => {
                            failure = Some(Ok(va));
                            break;
                        }
                        Err(_) => {
                            failure = Some(Err(()));
                            break;
                        }
                    }
                }
            }
            match failure {
                Some(Ok(va)) => {
                    self.raise_mmu_fault(va);
                    return;
                }
                Some(Err(())) => {
                    self.raise_error(r::ERR_BAD_CL);
                    return;
                }
                None => {}
            }
        } else {
            // Slow path: re-collect, then fetch/decode/execute one shader
            // at a time — identical partial-execution and fault ordering
            // to the pre-fast-path code.
            let len = self.ct0ea.saturating_sub(self.ct0ca) as u32;
            let mut shaders = Vec::new();
            match self.collect_shaders(self.ct0ca, len, 0, &mut shaders) {
                Ok(()) => {}
                Err(ListFault::Mmu { va }) => {
                    self.raise_mmu_fault(va);
                    return;
                }
                Err(ListFault::BadList) => {
                    self.raise_error(r::ERR_BAD_CL);
                    return;
                }
            }
            for (va, len, _cost) in shaders {
                let blob = match self.fetch(va, len as usize) {
                    Ok(b) => b,
                    Err(ListFault::Mmu { va }) => {
                        self.raise_mmu_fault(va);
                        return;
                    }
                    Err(ListFault::BadList) => {
                        self.raise_error(r::ERR_BAD_CL);
                        return;
                    }
                };
                let failure = {
                    let mut vamem = if fastpath::enabled() {
                        TranslatingVaMem::with_tlb(&mem, translate, &mut self.tlb)
                    } else {
                        TranslatingVaMem::legacy(&mem, translate)
                    };
                    let mut vamem = crate::access::LoggingVaMem {
                        inner: &mut vamem,
                        log: &self.access,
                    };
                    match execute_blob(&blob, &mut vamem) {
                        Ok(()) => None,
                        Err(ExecError::MemFault { va }) => Some(Ok(va)),
                        Err(_) => Some(Err(())),
                    }
                };
                match failure {
                    Some(Ok(va)) => {
                        self.raise_mmu_fault(va);
                        return;
                    }
                    Some(Err(())) => {
                        self.raise_error(r::ERR_BAD_CL);
                        return;
                    }
                    None => {}
                }
            }
        }
        self.jobs_completed += 1;
        self.ct0ca = self.ct0ea; // CA advances to EA on completion
        self.int_sts |= r::INT_DONE;
        self.update_irq_line();
    }

    fn soft_reset(&mut self) {
        self.events.clear();
        self.running = false;
        self.resetting = true;
        self.flushing = false;
        self.int_sts = 0;
        self.err_stat = 0;
        self.mmu_ctrl = 0;
        self.mmu_pt_base = 0;
        self.mmu_addr = 0;
        self.ct0ca = 0;
        self.ct0ea = 0;
        self.offline_fault_pending = false;
        self.tlb.flush();
        // Reset invalidates warm-residency marks like cached translations.
        self.mem.bump_dirty_epoch();
        self.cached_list = None;
        self.update_irq_line();
        self.events
            .schedule(self.clock.now() + timing::SOFT_RESET_DELAY, Event::Reset);
    }
}

impl GpuDev for V3dGpu {
    fn read32(&mut self, off: u32) -> u32 {
        self.tick();
        match off {
            r::IDENT => self.sku.gpu_id,
            r::INT_STS => self.int_sts,
            r::INT_MSK => self.int_msk,
            r::CT0CA_LO => self.ct0ca as u32,
            r::CT0CA_HI => (self.ct0ca >> 32) as u32,
            r::CT0EA_LO => self.ct0ea as u32,
            r::CT0EA_HI => (self.ct0ea >> 32) as u32,
            r::CT0CS => {
                let mut v = 0;
                if self.running {
                    v |= r::CS_BUSY;
                }
                if self.resetting {
                    v |= r::CS_RESETTING;
                }
                if self.err_stat != 0 {
                    v |= r::CS_ERROR;
                }
                v
            }
            r::MMU_PT_BASE_LO => self.mmu_pt_base as u32,
            r::MMU_PT_BASE_HI => (self.mmu_pt_base >> 32) as u32,
            r::MMU_CTRL => self.mmu_ctrl,
            r::MMU_ADDR => self.mmu_addr,
            r::ERR_STAT => self.err_stat,
            r::CACHE_CLEAN => u32::from(self.flushing),
            _ => 0,
        }
    }

    fn write32(&mut self, off: u32, val: u32) {
        self.tick();
        match off {
            r::INT_CLR => {
                self.int_sts &= !val;
                self.update_irq_line();
            }
            r::INT_MSK => {
                self.int_msk = val;
                self.update_irq_line();
            }
            r::CT0CA_LO => self.ct0ca = (self.ct0ca & !0xFFFF_FFFF) | u64::from(val),
            r::CT0CA_HI => self.ct0ca = (self.ct0ca & 0xFFFF_FFFF) | (u64::from(val) << 32),
            r::CT0EA_LO => {
                self.ct0ea = (self.ct0ea & !0xFFFF_FFFF) | u64::from(val);
                self.submit();
            }
            r::CT0EA_HI => self.ct0ea = (self.ct0ea & 0xFFFF_FFFF) | (u64::from(val) << 32),
            r::MMU_PT_BASE_LO => {
                self.mmu_pt_base = (self.mmu_pt_base & !0xFFFF_FFFF) | u64::from(val);
                self.tlb.flush();
                self.mem.bump_dirty_epoch();
                self.cached_list = None;
            }
            r::MMU_PT_BASE_HI => {
                self.mmu_pt_base = (self.mmu_pt_base & 0xFFFF_FFFF) | (u64::from(val) << 32);
                self.tlb.flush();
                self.mem.bump_dirty_epoch();
                self.cached_list = None;
            }
            r::MMU_CTRL => {
                // Enable/disable or reconfigure acts as a TLB shootdown;
                // shaders decoded under the old translation are stale too,
                // as are warm-residency marks taken under the old config.
                // The TLB_CLEAR command bit is self-clearing: it forces the
                // flush but is never stored.
                self.mmu_ctrl = val & !r::MMU_CTRL_TLB_CLEAR;
                self.tlb.flush();
                self.mem.bump_dirty_epoch();
                self.cached_list = None;
            }
            r::CTL_RESET if val & 1 != 0 => {
                if self.power_stable() {
                    self.soft_reset();
                } else {
                    self.err_stat = r::ERR_POWER;
                }
            }
            r::CACHE_CLEAN if val & 1 != 0 && !self.flushing => {
                self.flushing = true;
                let d = timing::flush_delay(&mut self.rng);
                self.flush_done_at = self.clock.now() + d;
                self.events.schedule(self.flush_done_at, Event::Flush);
            }
            _ => {}
        }
    }

    fn tick(&mut self) {
        let now = self.clock.now();
        while let Some(ev) = self.events.pop_due(now) {
            match ev {
                Event::Reset => self.resetting = false,
                Event::Flush => self.flushing = false,
                Event::List => self.complete_list(),
            }
        }
    }

    fn next_event_time(&self) -> Option<SimTime> {
        self.events.next_time()
    }

    fn sku(&self) -> &'static GpuSku {
        self.sku
    }

    fn inject_fault(&mut self, fault: FaultKind) {
        match fault {
            FaultKind::OfflineCores { .. } => {
                if self.running {
                    self.offline_fault_pending = true;
                } else {
                    self.glitch_armed = true;
                }
            }
            FaultKind::CorruptPte { va } => {
                if let Some(pte_pa) = pgtable::pte_address(self.mmu_pt_base, va) {
                    if let Ok(pte) = self.mem.read_u32(pte_pa) {
                        let _ = self.mem.write_u32(pte_pa, pte & !1);
                    }
                }
                // The corruption must be observed even if the translation
                // (or the decoded list touching it) was already cached.
                self.tlb.invalidate_page(va);
                self.cached_list = None;
            }
        }
    }

    fn busy(&self) -> bool {
        self.running || self.resetting || self.flushing
    }

    fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    fn access_log(&self) -> crate::access::SharedAccessLog {
        self.access.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sku::V3D_RPI4;
    use crate::v3d::cl::ClWriter;
    use crate::v3d::pgtable::{alloc_table, map_page, V3dPteFlags};
    use crate::vm::bytecode::KernelOp;
    use gr_soc::pmc::{Pmc, SETTLE_DELAY};
    use gr_soc::{FrameAllocator, PhysMem, PAGE_SIZE};

    struct Rig {
        clock: SimClock,
        mem: SharedMem,
        irq: IrqController,
        gpu: V3dGpu,
        alloc: FrameAllocator,
        table: u64,
    }

    fn rig() -> Rig {
        let clock = SimClock::new();
        let mem = SharedMem::new(PhysMem::new(0x8000_0000, 512 * PAGE_SIZE));
        let irq = IrqController::new();
        let pmc = SharedPmc::new(Pmc::new(clock.clone()));
        pmc.write32(Pmc::pwr_ctrl_off(PmcDomain::GpuCore), 1);
        pmc.write32(Pmc::pwr_ctrl_off(PmcDomain::GpuMem), 1);
        clock.advance(SETTLE_DELAY);
        let mut gpu = V3dGpu::new(
            &V3D_RPI4,
            clock.clone(),
            mem.clone(),
            irq.clone(),
            pmc,
            SimRng::seed_from(9),
        );
        let mut alloc = FrameAllocator::new(0x8000_0000, 512);
        // Reset + wait.
        gpu.write32(r::CTL_RESET, 1);
        clock.advance(timing::SOFT_RESET_DELAY);
        gpu.tick();
        assert_eq!(gpu.read32(r::CT0CS) & r::CS_RESETTING, 0);
        let table = alloc_table(&mem, &mut alloc).unwrap();
        gpu.write32(r::MMU_PT_BASE_LO, table as u32);
        gpu.write32(r::MMU_PT_BASE_HI, (table >> 32) as u32);
        gpu.write32(r::MMU_CTRL, 1);
        gpu.write32(r::INT_MSK, 0xFFFF_FFFF);
        Rig {
            clock,
            mem,
            irq,
            gpu,
            alloc,
            table,
        }
    }

    const CL_VA: u64 = 0x0010_0000;
    const SH_VA: u64 = 0x0011_0000;
    const DATA_VA: u64 = 0x0020_0000;

    fn map(rig: &mut Rig, va: u64, n: usize) {
        for i in 0..n {
            let pa = rig.alloc.alloc_zeroed(&rig.mem).unwrap().unwrap();
            map_page(
                &rig.mem,
                rig.table,
                va + (i * PAGE_SIZE) as u64,
                pa,
                V3dPteFlags::rw(),
            )
            .unwrap();
        }
    }

    fn poke(rig: &Rig, va: u64, data: &[u8]) {
        let mut done = 0;
        while done < data.len() {
            let cur = va + done as u64;
            let page = cur & !(PAGE_SIZE as u64 - 1);
            let (pa, _) = pgtable::translate(&rig.mem, rig.table, page).unwrap();
            let chunk = ((PAGE_SIZE as u64 - (cur - page)) as usize).min(data.len() - done);
            rig.mem
                .write(pa + (cur - page), &data[done..done + chunk])
                .unwrap();
            done += chunk;
        }
    }

    fn peek_f32s(rig: &Rig, va: u64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let cur = va + (i * 4) as u64;
                let page = cur & !(PAGE_SIZE as u64 - 1);
                let (pa, _) = pgtable::translate(&rig.mem, rig.table, page).unwrap();
                let mut b = [0u8; 4];
                rig.mem.read(pa + (cur - page), &mut b).unwrap();
                f32::from_le_bytes(b)
            })
            .collect()
    }

    fn submit_and_wait(rig: &mut Rig, cl_len: usize) -> u32 {
        rig.gpu.write32(r::CT0CA_LO, CL_VA as u32);
        rig.gpu.write32(r::CT0CA_HI, 0);
        rig.gpu.write32(r::CT0EA_HI, 0);
        rig.gpu
            .write32(r::CT0EA_LO, (CL_VA as usize + cl_len) as u32);
        if let Some(t) = rig.gpu.next_event_time() {
            rig.clock.advance_to(t);
            rig.gpu.tick();
        }
        rig.gpu.read32(r::INT_STS)
    }

    #[test]
    fn control_list_executes_shader() {
        let mut rg = rig();
        map(&mut rg, CL_VA, 1);
        map(&mut rg, SH_VA, 1);
        map(&mut rg, DATA_VA, 1);
        let mut b = Vec::new();
        for v in [1.0f32, 2.0, 3.0] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        poke(&rg, DATA_VA, &b);
        let blob = KernelOp::Scale {
            a: DATA_VA,
            out: DATA_VA + 256,
            n: 3,
            alpha: 3.0,
        }
        .encode();
        poke(&rg, SH_VA, &blob);
        let mut w = ClWriter::new();
        w.run_shader(
            SH_VA,
            blob.len() as u32,
            JobCost {
                flops: 3,
                bytes: 24,
            },
        );
        let cl = w.finish();
        poke(&rg, CL_VA, &cl);
        let sts = submit_and_wait(&mut rg, cl.len());
        assert_eq!(sts & r::INT_DONE, r::INT_DONE);
        assert!(rg.irq.pending(irq_lines::V3D));
        assert_eq!(peek_f32s(&rg, DATA_VA + 256, 3), vec![3.0, 6.0, 9.0]);
        assert_eq!(rg.gpu.jobs_completed(), 1);
        rg.gpu.write32(r::INT_CLR, r::INT_DONE);
        assert!(!rg.irq.pending(irq_lines::V3D));
    }

    #[test]
    fn branch_to_sublist_works() {
        let mut rg = rig();
        map(&mut rg, CL_VA, 2);
        map(&mut rg, SH_VA, 1);
        map(&mut rg, DATA_VA, 1);
        let blob = KernelOp::Fill {
            out: DATA_VA,
            n: 2,
            value: 7.0,
        }
        .encode();
        poke(&rg, SH_VA, &blob);
        let mut sub = ClWriter::new();
        sub.run_shader(SH_VA, blob.len() as u32, JobCost::default());
        let sub_bytes = sub.finish();
        let sub_va = CL_VA + 0x800;
        poke(&rg, sub_va, &sub_bytes);
        let mut main = ClWriter::new();
        main.nop().branch(sub_va, sub_bytes.len() as u32);
        let main_bytes = main.finish();
        poke(&rg, CL_VA, &main_bytes);
        let sts = submit_and_wait(&mut rg, main_bytes.len());
        assert_eq!(sts & r::INT_DONE, r::INT_DONE);
        assert_eq!(peek_f32s(&rg, DATA_VA, 2), vec![7.0, 7.0]);
    }

    #[test]
    fn submit_while_busy_is_error() {
        let mut rg = rig();
        map(&mut rg, CL_VA, 1);
        map(&mut rg, SH_VA, 1);
        map(&mut rg, DATA_VA, 1);
        let blob = KernelOp::Fill {
            out: DATA_VA,
            n: 1,
            value: 1.0,
        }
        .encode();
        poke(&rg, SH_VA, &blob);
        let mut w = ClWriter::new();
        w.run_shader(
            SH_VA,
            blob.len() as u32,
            JobCost {
                flops: 1_000_000,
                bytes: 0,
            },
        );
        let cl = w.finish();
        poke(&rg, CL_VA, &cl);
        rg.gpu.write32(r::CT0CA_LO, CL_VA as u32);
        rg.gpu
            .write32(r::CT0EA_LO, (CL_VA as usize + cl.len()) as u32);
        assert_eq!(rg.gpu.read32(r::CT0CS) & r::CS_BUSY, r::CS_BUSY);
        rg.gpu
            .write32(r::CT0EA_LO, (CL_VA as usize + cl.len()) as u32);
        assert_eq!(rg.gpu.read32(r::ERR_STAT), r::ERR_BUSY);
    }

    #[test]
    fn unmapped_list_raises_mmu_fault() {
        let mut rg = rig();
        // CL_VA left unmapped.
        rg.gpu.write32(r::CT0CA_LO, CL_VA as u32);
        rg.gpu.write32(r::CT0EA_LO, (CL_VA + 16) as u32);
        let sts = rg.gpu.read32(r::INT_STS);
        assert_eq!(sts & r::INT_MMU_FAULT, r::INT_MMU_FAULT);
        assert_eq!(u64::from(rg.gpu.read32(r::MMU_ADDR)), CL_VA);
        assert_eq!(rg.gpu.read32(r::CT0CS) & r::CS_ERROR, r::CS_ERROR);
    }

    #[test]
    fn cache_clean_is_polled_not_irq() {
        let mut rg = rig();
        rg.gpu.write32(r::CACHE_CLEAN, 1);
        assert_eq!(rg.gpu.read32(r::CACHE_CLEAN), 1, "busy while cleaning");
        let t = rg.gpu.next_event_time().unwrap();
        rg.clock.advance_to(t);
        assert_eq!(rg.gpu.read32(r::CACHE_CLEAN), 0);
        assert_eq!(rg.gpu.read32(r::INT_STS), 0, "no interrupt for clean");
    }

    #[test]
    fn corrupt_pte_still_observed_after_tlb_warmup() {
        let mut rg = rig();
        map(&mut rg, CL_VA, 1);
        map(&mut rg, SH_VA, 1);
        map(&mut rg, DATA_VA, 1);
        let blob = KernelOp::Fill {
            out: DATA_VA,
            n: 1,
            value: 2.0,
        }
        .encode();
        poke(&rg, SH_VA, &blob);
        let mut w = ClWriter::new();
        w.run_shader(
            SH_VA,
            blob.len() as u32,
            JobCost {
                flops: 100,
                bytes: 4,
            },
        );
        let cl = w.finish();
        poke(&rg, CL_VA, &cl);
        // Warm-up run caches DATA_VA's translation.
        let sts = submit_and_wait(&mut rg, cl.len());
        assert_eq!(sts & r::INT_DONE, r::INT_DONE);
        assert_eq!(peek_f32s(&rg, DATA_VA, 1), vec![2.0]);
        rg.gpu.write32(r::INT_CLR, 0xFFFF_FFFF);
        // Resubmit, corrupt mid-flight: the fault must still surface.
        rg.gpu.write32(r::CT0CA_LO, CL_VA as u32);
        rg.gpu
            .write32(r::CT0EA_LO, (CL_VA as usize + cl.len()) as u32);
        rg.gpu.inject_fault(FaultKind::CorruptPte { va: DATA_VA });
        let t = rg.gpu.next_event_time().unwrap();
        rg.clock.advance_to(t);
        rg.gpu.tick();
        assert_eq!(
            rg.gpu.read32(r::INT_STS) & r::INT_MMU_FAULT,
            r::INT_MMU_FAULT,
            "warm TLB must not hide a corrupted PTE"
        );
        assert_eq!(u64::from(rg.gpu.read32(r::MMU_ADDR)), DATA_VA);
    }

    #[test]
    fn corrupt_pte_faults_then_rebuild_recovers() {
        let mut rg = rig();
        map(&mut rg, CL_VA, 1);
        map(&mut rg, SH_VA, 1);
        map(&mut rg, DATA_VA, 1);
        let blob = KernelOp::Fill {
            out: DATA_VA,
            n: 1,
            value: 5.0,
        }
        .encode();
        poke(&rg, SH_VA, &blob);
        let mut w = ClWriter::new();
        w.run_shader(
            SH_VA,
            blob.len() as u32,
            JobCost {
                flops: 100,
                bytes: 0,
            },
        );
        let cl = w.finish();
        poke(&rg, CL_VA, &cl);
        rg.gpu.write32(r::CT0CA_LO, CL_VA as u32);
        rg.gpu
            .write32(r::CT0EA_LO, (CL_VA as usize + cl.len()) as u32);
        rg.gpu.inject_fault(FaultKind::CorruptPte { va: DATA_VA });
        let t = rg.gpu.next_event_time().unwrap();
        rg.clock.advance_to(t);
        rg.gpu.tick();
        assert_eq!(
            rg.gpu.read32(r::INT_STS) & r::INT_MMU_FAULT,
            r::INT_MMU_FAULT
        );
        // Rebuild the PTE and retry after reset.
        let pa = rg.alloc.alloc_zeroed(&rg.mem).unwrap().unwrap();
        let pte_pa = pgtable::pte_address(rg.table, DATA_VA).unwrap();
        rg.mem
            .write_u32(pte_pa, pgtable::encode_pte(pa, V3dPteFlags::rw()))
            .unwrap();
        rg.gpu.write32(r::CTL_RESET, 1);
        rg.clock.advance(timing::SOFT_RESET_DELAY);
        rg.gpu.tick();
        rg.gpu.write32(r::MMU_PT_BASE_LO, rg.table as u32);
        rg.gpu.write32(r::MMU_CTRL, 1);
        rg.gpu.write32(r::INT_MSK, 0xFFFF_FFFF);
        let sts = submit_and_wait(&mut rg, cl.len());
        assert_eq!(sts & r::INT_DONE, r::INT_DONE);
        assert_eq!(peek_f32s(&rg, DATA_VA, 1), vec![5.0]);
    }
}
