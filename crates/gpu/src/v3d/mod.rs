//! The v3d-like GPU family: control-list submission, flat page table with
//! no executable bit, single interrupt line, depth-1 queue.

pub mod cl;
pub mod device;
pub mod pgtable;
pub mod regs;

pub use device::V3dGpu;
