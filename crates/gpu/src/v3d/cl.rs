//! v3d control lists.
//!
//! A v3d submission is a *control list*: a packet stream in GPU memory
//! between `CT0CA` and `CT0EA`. Packets may branch to sub-lists and
//! reference shader blobs by VA. Unlike Mali job chains, the control-list
//! *structure* is part of the open driver contract (drm/v3d parses it), so
//! the paper's v3d recorder walks it to find every region a job references
//! (§6.2: "the recorder follows v3d's registers pointing to shaders and
//! control lists [and] handles the cases where lists/shaders may contain
//! pointers to other lists/shaders").
//!
//! Packet wire format (little-endian):
//!
//! | opcode | payload |
//! |--------|---------|
//! | `0x00` HALT   | — |
//! | `0x01` NOP    | — |
//! | `0x02` BRANCH | sub-list VA (u64), sub-list length (u32) |
//! | `0x20` RUN_SHADER | shader VA (u64), length (u32), modeled FLOPs (u64), modeled bytes (u64) |

use crate::timing::JobCost;

/// Opcode byte for HALT.
pub const OP_HALT: u8 = 0x00;
/// Opcode byte for NOP.
pub const OP_NOP: u8 = 0x01;
/// Opcode byte for BRANCH.
pub const OP_BRANCH: u8 = 0x02;
/// Opcode byte for RUN_SHADER.
pub const OP_RUN_SHADER: u8 = 0x20;

/// Maximum BRANCH nesting the hardware follows.
pub const MAX_BRANCH_DEPTH: usize = 8;

/// One decoded control-list packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClPacket {
    /// End of list.
    Halt,
    /// Padding.
    Nop,
    /// Execute a sub-list then continue.
    Branch {
        /// Sub-list VA.
        va: u64,
        /// Sub-list byte length.
        len: u32,
    },
    /// Run a shader blob.
    RunShader {
        /// Shader blob VA.
        va: u64,
        /// Blob byte length.
        len: u32,
        /// Modeled work of the shader.
        cost: JobCost,
    },
}

/// Error parsing a control list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClError {
    /// List ended mid-packet.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// List does not end with HALT.
    MissingHalt,
}

impl std::fmt::Display for ClError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClError::Truncated => write!(f, "control list truncated"),
            ClError::BadOpcode(op) => write!(f, "unknown control-list opcode {op:#x}"),
            ClError::MissingHalt => write!(f, "control list missing HALT"),
        }
    }
}

impl std::error::Error for ClError {}

/// Incrementally builds a control list.
#[derive(Debug, Default)]
pub struct ClWriter {
    buf: Vec<u8>,
}

impl ClWriter {
    /// Starts an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a NOP.
    pub fn nop(&mut self) -> &mut Self {
        self.buf.push(OP_NOP);
        self
    }

    /// Appends a BRANCH to `va` of `len` bytes.
    pub fn branch(&mut self, va: u64, len: u32) -> &mut Self {
        self.buf.push(OP_BRANCH);
        self.buf.extend_from_slice(&va.to_le_bytes());
        self.buf.extend_from_slice(&len.to_le_bytes());
        self
    }

    /// Appends a RUN_SHADER.
    pub fn run_shader(&mut self, va: u64, len: u32, cost: JobCost) -> &mut Self {
        self.buf.push(OP_RUN_SHADER);
        self.buf.extend_from_slice(&va.to_le_bytes());
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(&cost.flops.to_le_bytes());
        self.buf.extend_from_slice(&cost.bytes.to_le_bytes());
        self
    }

    /// Terminates with HALT and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf.push(OP_HALT);
        self.buf
    }
}

/// Parses a flat (single-level) list into packets, including the final
/// [`ClPacket::Halt`].
///
/// # Errors
///
/// Returns [`ClError`] for truncation, unknown opcodes, or a missing HALT.
pub fn parse_list(bytes: &[u8]) -> Result<Vec<ClPacket>, ClError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        let Some(&op) = bytes.get(pos) else {
            return Err(ClError::MissingHalt);
        };
        pos += 1;
        match op {
            OP_HALT => {
                out.push(ClPacket::Halt);
                return Ok(out);
            }
            OP_NOP => out.push(ClPacket::Nop),
            OP_BRANCH => {
                if pos + 12 > bytes.len() {
                    return Err(ClError::Truncated);
                }
                let va = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("len checked"));
                let len =
                    u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("len checked"));
                pos += 12;
                out.push(ClPacket::Branch { va, len });
            }
            OP_RUN_SHADER => {
                if pos + 28 > bytes.len() {
                    return Err(ClError::Truncated);
                }
                let va = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("len checked"));
                let len =
                    u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("len checked"));
                let flops =
                    u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().expect("len checked"));
                let b =
                    u64::from_le_bytes(bytes[pos + 20..pos + 28].try_into().expect("len checked"));
                pos += 28;
                out.push(ClPacket::RunShader {
                    va,
                    len,
                    cost: JobCost { flops, bytes: b },
                });
            }
            other => return Err(ClError::BadOpcode(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_parser_roundtrip() {
        let mut w = ClWriter::new();
        w.nop()
            .run_shader(
                0x2000,
                36,
                JobCost {
                    flops: 10,
                    bytes: 20,
                },
            )
            .branch(0x9000, 100);
        let bytes = w.finish();
        let pkts = parse_list(&bytes).unwrap();
        assert_eq!(
            pkts,
            vec![
                ClPacket::Nop,
                ClPacket::RunShader {
                    va: 0x2000,
                    len: 36,
                    cost: JobCost {
                        flops: 10,
                        bytes: 20
                    }
                },
                ClPacket::Branch {
                    va: 0x9000,
                    len: 100
                },
                ClPacket::Halt,
            ]
        );
    }

    #[test]
    fn truncation_and_bad_opcode() {
        let mut w = ClWriter::new();
        w.run_shader(1, 2, JobCost::default());
        let bytes = w.finish();
        assert_eq!(parse_list(&bytes[..5]), Err(ClError::Truncated));
        assert_eq!(parse_list(&[0x01, 0x01]), Err(ClError::MissingHalt));
        assert_eq!(parse_list(&[0x77]), Err(ClError::BadOpcode(0x77)));
        assert_eq!(parse_list(&[]), Err(ClError::MissingHalt));
    }

    #[test]
    fn empty_list_is_just_halt() {
        let bytes = ClWriter::new().finish();
        assert_eq!(parse_list(&bytes).unwrap(), vec![ClPacket::Halt]);
    }
}
