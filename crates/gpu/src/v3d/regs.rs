//! v3d-family register map.
//!
//! Broadcom-style: a single interrupt line, control-list submission via
//! CT0CA/CT0EA (writing the end address kicks the list), a flat MMU page
//! table, and a cache-clean register the driver polls — the protocol shape
//! of drm/v3d that the paper's second recorder targets.

/// Size of the v3d MMIO window in bytes.
pub const MMIO_SIZE: u32 = 0x100;

/// Device identity.
pub const IDENT: u32 = 0x000;
/// Raw interrupt status (see `INT_*`).
pub const INT_STS: u32 = 0x004;
/// Write-1-to-clear interrupt bits.
pub const INT_CLR: u32 = 0x008;
/// Interrupt enable mask.
pub const INT_MSK: u32 = 0x00C;
/// Control-list current address, low half.
pub const CT0CA_LO: u32 = 0x010;
/// Control-list current address, high half.
pub const CT0CA_HI: u32 = 0x014;
/// Control-list end address, low half — writing this register submits.
pub const CT0EA_LO: u32 = 0x018;
/// Control-list end address, high half.
pub const CT0EA_HI: u32 = 0x01C;
/// Control-thread status (bit 0 busy, bit 1 resetting, bit 5 error).
pub const CT0CS: u32 = 0x020;
/// Flat page-table base, low half.
pub const MMU_PT_BASE_LO: u32 = 0x028;
/// Flat page-table base, high half.
pub const MMU_PT_BASE_HI: u32 = 0x02C;
/// MMU control (bit 0 enable; bit 2 self-clearing TLB clear).
pub const MMU_CTRL: u32 = 0x030;
/// MMU_CTRL bit: architectural TLB shootdown. Self-clearing command bit —
/// writes with it set flush every cached translation; reads never observe
/// it. Drivers set it on unmap so freed VAs/frames can be recycled.
pub const MMU_CTRL_TLB_CLEAR: u32 = 1 << 2;
/// Faulting VA of the last MMU fault.
pub const MMU_ADDR: u32 = 0x034;
/// Error detail for CT0CS error bit (see `ERR_*`).
pub const ERR_STAT: u32 = 0x038;
/// Write 1: soft reset (poll CT0CS bit 1 until clear).
pub const CTL_RESET: u32 = 0x03C;
/// Write 1: start cache clean; read bit 0: clean in progress (polled).
pub const CACHE_CLEAN: u32 = 0x040;

/// INT_STS bit: control list completed.
pub const INT_DONE: u32 = 1;
/// INT_STS bit: MMU fault.
pub const INT_MMU_FAULT: u32 = 2;

/// CT0CS bit: list executing.
pub const CS_BUSY: u32 = 1;
/// CT0CS bit: reset in progress.
pub const CS_RESETTING: u32 = 2;
/// CT0CS bit: error (see [`ERR_STAT`]).
pub const CS_ERROR: u32 = 1 << 5;

/// ERR_STAT: no error.
pub const ERR_NONE: u32 = 0;
/// ERR_STAT: submit while busy (v3d queues are depth 1).
pub const ERR_BUSY: u32 = 1;
/// ERR_STAT: malformed control list.
pub const ERR_BAD_CL: u32 = 2;
/// ERR_STAT: operation without stable power.
pub const ERR_POWER: u32 = 3;

/// The single v3d interrupt line.
pub mod irq_lines {
    use gr_soc::IrqLine;
    /// All v3d interrupts share one line.
    pub const V3D: IrqLine = IrqLine(0);
}

/// All architecturally-defined register offsets (verifier whitelist).
pub const KNOWN_REGS: [u32; 16] = [
    IDENT,
    INT_STS,
    INT_CLR,
    INT_MSK,
    CT0CA_LO,
    CT0CA_HI,
    CT0EA_LO,
    CT0EA_HI,
    CT0CS,
    MMU_PT_BASE_LO,
    MMU_PT_BASE_HI,
    MMU_CTRL,
    MMU_ADDR,
    ERR_STAT,
    CTL_RESET,
    CACHE_CLEAN,
];

/// `true` when `off` names an architecturally-defined v3d register.
pub fn is_known_reg(off: u32) -> bool {
    KNOWN_REGS.contains(&off)
}

/// Human-readable register name for diagnostics.
pub fn reg_name(off: u32) -> &'static str {
    match off {
        IDENT => "IDENT",
        INT_STS => "INT_STS",
        INT_CLR => "INT_CLR",
        INT_MSK => "INT_MSK",
        CT0CA_LO => "CT0CA_LO",
        CT0CA_HI => "CT0CA_HI",
        CT0EA_LO => "CT0EA_LO",
        CT0EA_HI => "CT0EA_HI",
        CT0CS => "CT0CS",
        MMU_PT_BASE_LO => "MMU_PT_BASE_LO",
        MMU_PT_BASE_HI => "MMU_PT_BASE_HI",
        MMU_CTRL => "MMU_CTRL",
        MMU_ADDR => "MMU_ADDR",
        ERR_STAT => "ERR_STAT",
        CTL_RESET => "CTL_RESET",
        CACHE_CLEAN => "CACHE_CLEAN",
        _ => "UNKNOWN",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_regs_have_names() {
        for &r in &KNOWN_REGS {
            assert_ne!(reg_name(r), "UNKNOWN");
            assert!(is_known_reg(r));
            assert!(r < MMIO_SIZE);
            assert_eq!(r % 4, 0);
        }
        assert!(!is_known_reg(0xF0));
    }
}
