//! v3d flat page table.
//!
//! A single-level array of 32-bit PTEs covering a 28-bit (256 MiB) GPU
//! virtual address space with 4 KiB pages: 65 536 entries = 64 contiguous
//! physical pages. Unlike Mali there is **no executable bit** — which is
//! why the paper's v3d recorder must conservatively dump more pages and
//! follow control-list pointers instead (§6.2).
//!
//! PTE layout: bits `[31:4]` = page frame number (PA ≫ 12), bit 1 = WRITE,
//! bit 0 = VALID.

use gr_soc::{FrameAllocator, MemError, SharedMem, PAGE_SIZE};

/// v3d GPU virtual address bits.
pub const VA_SPACE_BITS: u32 = 28;
/// Highest valid VA + 1 (256 MiB).
pub const VA_SPACE_SIZE: u64 = 1 << VA_SPACE_BITS;
/// Entries in the flat table.
pub const PT_ENTRIES: usize = (VA_SPACE_SIZE as usize) / PAGE_SIZE;
/// Pages occupied by the table itself (contiguous).
pub const PT_PAGES: usize = PT_ENTRIES * 4 / PAGE_SIZE;

/// Decoded v3d page attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct V3dPteFlags {
    /// Mapping present.
    pub valid: bool,
    /// GPU may write.
    pub write: bool,
}

impl V3dPteFlags {
    /// Read-write mapping.
    pub fn rw() -> Self {
        V3dPteFlags {
            valid: true,
            write: true,
        }
    }

    /// Read-only mapping.
    pub fn ro() -> Self {
        V3dPteFlags {
            valid: true,
            write: false,
        }
    }
}

/// Builds a PTE word.
pub fn encode_pte(pa: u64, flags: V3dPteFlags) -> u32 {
    debug_assert_eq!(pa % PAGE_SIZE as u64, 0);
    let pfn = (pa >> 12) as u32;
    (pfn << 4) | (u32::from(flags.write) << 1) | u32::from(flags.valid)
}

/// Splits a PTE word; `None` when invalid.
pub fn decode_pte(pte: u32) -> Option<(u64, V3dPteFlags)> {
    if pte & 1 == 0 {
        return None;
    }
    let pa = u64::from(pte >> 4) << 12;
    Some((
        pa,
        V3dPteFlags {
            valid: true,
            write: pte & 2 != 0,
        },
    ))
}

/// Errors from flat-table manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum V3dPgtableError {
    /// Table access outside DRAM.
    Mem(MemError),
    /// Could not allocate the contiguous table.
    OutOfFrames,
    /// VA outside the 28-bit space or unaligned.
    BadVa(u64),
    /// Mapping already present.
    AlreadyMapped(u64),
}

impl std::fmt::Display for V3dPgtableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            V3dPgtableError::Mem(e) => write!(f, "v3d page table memory error: {e}"),
            V3dPgtableError::OutOfFrames => write!(f, "no contiguous frames for v3d page table"),
            V3dPgtableError::BadVa(va) => write!(f, "va {va:#x} outside v3d address space"),
            V3dPgtableError::AlreadyMapped(va) => write!(f, "va {va:#x} already mapped"),
        }
    }
}

impl std::error::Error for V3dPgtableError {}

impl From<MemError> for V3dPgtableError {
    fn from(e: MemError) -> Self {
        V3dPgtableError::Mem(e)
    }
}

fn check_va(va: u64) -> Result<(), V3dPgtableError> {
    if va >= VA_SPACE_SIZE || va % PAGE_SIZE as u64 != 0 {
        Err(V3dPgtableError::BadVa(va))
    } else {
        Ok(())
    }
}

/// Allocates and zeroes the flat table, returning its base PA.
///
/// # Errors
///
/// Fails when a contiguous run of [`PT_PAGES`] frames is unavailable.
pub fn alloc_table(mem: &SharedMem, alloc: &mut FrameAllocator) -> Result<u64, V3dPgtableError> {
    let base = alloc
        .alloc_contig(PT_PAGES)
        .ok_or(V3dPgtableError::OutOfFrames)?;
    for i in 0..PT_PAGES {
        mem.fill(base + (i * PAGE_SIZE) as u64, PAGE_SIZE, 0)?;
    }
    Ok(base)
}

/// Maps `va → pa` with `flags`.
///
/// # Errors
///
/// Fails on bad VA or an existing mapping.
pub fn map_page(
    mem: &SharedMem,
    table_pa: u64,
    va: u64,
    pa: u64,
    flags: V3dPteFlags,
) -> Result<(), V3dPgtableError> {
    check_va(va)?;
    let entry_pa = table_pa + (va >> 12) * 4;
    if mem.read_u32(entry_pa)? & 1 != 0 {
        return Err(V3dPgtableError::AlreadyMapped(va));
    }
    mem.write_u32(entry_pa, encode_pte(pa, flags))?;
    Ok(())
}

/// Clears the mapping at `va`, returning its old PA.
///
/// # Errors
///
/// Fails on bad VA.
pub fn unmap_page(mem: &SharedMem, table_pa: u64, va: u64) -> Result<Option<u64>, V3dPgtableError> {
    check_va(va)?;
    let entry_pa = table_pa + (va >> 12) * 4;
    let pte = mem.read_u32(entry_pa)?;
    match decode_pte(pte) {
        Some((pa, _)) => {
            mem.write_u32(entry_pa, 0)?;
            Ok(Some(pa))
        }
        None => Ok(None),
    }
}

/// Translates `va` (any alignment).
pub fn translate(mem: &SharedMem, table_pa: u64, va: u64) -> Option<(u64, V3dPteFlags)> {
    if va >= VA_SPACE_SIZE {
        return None;
    }
    let pte = mem.read_u32(table_pa + (va >> 12) * 4).ok()?;
    let (page_pa, flags) = decode_pte(pte)?;
    Some((page_pa + (va & (PAGE_SIZE as u64 - 1)), flags))
}

/// Physical address of the PTE word mapping `va` (for fault injection).
pub fn pte_address(table_pa: u64, va: u64) -> Option<u64> {
    if va >= VA_SPACE_SIZE {
        return None;
    }
    Some(table_pa + (va >> 12) * 4)
}

/// Invokes `f(va, pa, flags)` for every valid mapping.
pub fn walk(mem: &SharedMem, table_pa: u64, mut f: impl FnMut(u64, u64, V3dPteFlags)) {
    for idx in 0..PT_ENTRIES as u64 {
        let Ok(pte) = mem.read_u32(table_pa + idx * 4) else {
            continue;
        };
        if let Some((pa, flags)) = decode_pte(pte) {
            f(idx << 12, pa, flags);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_soc::PhysMem;

    fn mk() -> (SharedMem, FrameAllocator) {
        let mem = SharedMem::new(PhysMem::new(0x8000_0000, 256 * PAGE_SIZE));
        let alloc = FrameAllocator::new(0x8000_0000, 256);
        (mem, alloc)
    }

    #[test]
    fn table_is_contiguous_and_sized() {
        assert_eq!(PT_ENTRIES, 65536);
        assert_eq!(PT_PAGES, 64);
        let (mem, mut alloc) = mk();
        let base = alloc_table(&mem, &mut alloc).unwrap();
        assert_eq!(alloc.used(), PT_PAGES);
        // Entire table zeroed.
        assert_eq!(mem.read_u32(base).unwrap(), 0);
        assert_eq!(
            mem.read_u32(base + (PT_PAGES * PAGE_SIZE) as u64 - 4)
                .unwrap(),
            0
        );
    }

    #[test]
    fn map_translate_unmap() {
        let (mem, mut alloc) = mk();
        let table = alloc_table(&mem, &mut alloc).unwrap();
        let pa = alloc.alloc().unwrap();
        let va = 0x0080_0000u64;
        map_page(&mem, table, va, pa, V3dPteFlags::rw()).unwrap();
        let (got, flags) = translate(&mem, table, va + 7).unwrap();
        assert_eq!(got, pa + 7);
        assert!(flags.write);
        assert_eq!(
            map_page(&mem, table, va, pa, V3dPteFlags::rw()),
            Err(V3dPgtableError::AlreadyMapped(va))
        );
        assert_eq!(unmap_page(&mem, table, va).unwrap(), Some(pa));
        assert!(translate(&mem, table, va).is_none());
    }

    #[test]
    fn readonly_flag_roundtrips() {
        let pte = encode_pte(0x1234_5000, V3dPteFlags::ro());
        let (pa, flags) = decode_pte(pte).unwrap();
        assert_eq!(pa, 0x1234_5000);
        assert!(!flags.write);
        assert_eq!(decode_pte(0), None);
    }

    #[test]
    fn bad_va_rejected() {
        let (mem, mut alloc) = mk();
        let table = alloc_table(&mem, &mut alloc).unwrap();
        assert!(matches!(
            map_page(&mem, table, VA_SPACE_SIZE, 0, V3dPteFlags::rw()),
            Err(V3dPgtableError::BadVa(_))
        ));
        assert!(translate(&mem, table, VA_SPACE_SIZE + 1).is_none());
        assert_eq!(pte_address(table, VA_SPACE_SIZE), None);
    }

    #[test]
    fn walk_and_corruption() {
        let (mem, mut alloc) = mk();
        let table = alloc_table(&mem, &mut alloc).unwrap();
        let pa = alloc.alloc().unwrap();
        map_page(&mem, table, 0x1000, pa, V3dPteFlags::rw()).unwrap();
        let mut count = 0;
        walk(&mem, table, |va, p, _| {
            assert_eq!(va, 0x1000);
            assert_eq!(p, pa);
            count += 1;
        });
        assert_eq!(count, 1);
        let pte_pa = pte_address(table, 0x1000).unwrap();
        let pte = mem.read_u32(pte_pa).unwrap();
        mem.write_u32(pte_pa, pte & !1).unwrap();
        assert!(translate(&mem, table, 0x1000).is_none());
    }
}
