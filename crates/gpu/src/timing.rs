//! The GPU job timing model.
//!
//! Job binaries carry *modeled* work (FLOPs and bytes moved, computed by
//! the runtime from the full-size network dimensions). The device converts
//! work into virtual time using the SKU's throughput, the count of shader
//! cores the job's affinity actually engages, and the current PMC clock —
//! plus multiplicative jitter, because real job delays vary run to run
//! (§3.2's timing nondeterminism).

use gr_sim::{SimDuration, SimRng};

use crate::sku::GpuSku;

/// Modeled work of one job (chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobCost {
    /// Floating-point operations the full-size job performs.
    pub flops: u64,
    /// Bytes moved to/from DRAM.
    pub bytes: u64,
}

impl std::ops::Add for JobCost {
    type Output = JobCost;

    /// Sums two costs (chains accumulate sub-job work).
    fn add(self, other: JobCost) -> JobCost {
        JobCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// Fixed front-end cost of parsing and dispatching one job chain.
pub const JOB_DISPATCH_OVERHEAD: SimDuration = SimDuration::from_micros(18);

/// Per-sub-job scheduling cost inside a chain.
pub const SUBJOB_OVERHEAD: SimDuration = SimDuration::from_micros(4);

/// Default jitter (±percent) applied to job durations.
pub const JOB_JITTER_PCT: f64 = 2.0;

/// Latency from job completion to the IRQ becoming visible to the CPU.
pub const IRQ_LATENCY: SimDuration = SimDuration::from_micros(3);

/// Cache-flush time (mean); polled by the driver until complete.
pub const CACHE_FLUSH_MEAN: SimDuration = SimDuration::from_micros(12);

/// Soft-reset settle time.
pub const SOFT_RESET_DELAY: SimDuration = SimDuration::from_micros(110);

/// Shader-core power-up time.
pub const CORE_POWERUP_DELAY: SimDuration = SimDuration::from_micros(55);

/// Computes the execution time of a job with `cost`, running on
/// `active_cores` shader cores at `clock_mhz`.
///
/// Zero active cores or a zero clock yields [`SimDuration::MAX`] — such a
/// job never completes, which the device reports as a timeout/fault.
pub fn job_duration(
    cost: JobCost,
    sub_jobs: u32,
    active_cores: u32,
    clock_mhz: u32,
    sku: &GpuSku,
) -> SimDuration {
    if active_cores == 0 || clock_mhz == 0 {
        return SimDuration::MAX;
    }
    let clock_scale = f64::from(clock_mhz) / f64::from(sku.nominal_mhz);
    let flops_rate = sku.gflops_per_core * 1e9 * f64::from(active_cores) * clock_scale;
    let compute_s = cost.flops as f64 / flops_rate;
    // Memory bandwidth is shared, not per-core; it scales only mildly with
    // clock (DRAM is on its own domain), so leave it clock-independent.
    let mem_s = cost.bytes as f64 / (sku.mem_bw_gbps * 1e9);
    // A job is bound by the slower of its compute and memory phases, with
    // partial overlap: take max + 20% of min (double-buffering hides most).
    let (hi, lo) = if compute_s >= mem_s {
        (compute_s, mem_s)
    } else {
        (mem_s, compute_s)
    };
    let busy = SimDuration::from_secs_f64(hi + 0.2 * lo);
    JOB_DISPATCH_OVERHEAD + SUBJOB_OVERHEAD * u64::from(sub_jobs) + busy
}

/// Applies the standard job jitter.
pub fn jittered(d: SimDuration, rng: &mut SimRng) -> SimDuration {
    if d == SimDuration::MAX {
        return d;
    }
    rng.jitter(d, JOB_JITTER_PCT)
}

/// Cache flush delay for this run (nondeterministic; the driver polls,
/// which the recorder summarizes as `RegReadWait`).
pub fn flush_delay(rng: &mut SimRng) -> SimDuration {
    rng.jitter(CACHE_FLUSH_MEAN, 40.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sku::{MALI_G31, MALI_G71};

    #[test]
    fn more_cores_is_faster() {
        let cost = JobCost {
            flops: 100_000_000,
            bytes: 1_000_000,
        };
        let d1 = job_duration(cost, 1, 1, 600, &MALI_G71);
        let d8 = job_duration(cost, 1, 8, 600, &MALI_G71);
        assert!(d8 < d1, "{d8} !< {d1}");
        // Compute-bound job on 8x cores approaches 8x faster (minus fixed
        // overheads and the memory floor).
        assert!(d1.as_nanos() > 4 * d8.as_nanos());
    }

    #[test]
    fn underclocking_slows_jobs() {
        let cost = JobCost {
            flops: 50_000_000,
            bytes: 0,
        };
        let full = job_duration(cost, 1, 8, 600, &MALI_G71);
        let half = job_duration(cost, 1, 8, 300, &MALI_G71);
        assert!(half > full);
    }

    #[test]
    fn zero_cores_never_completes() {
        let cost = JobCost { flops: 1, bytes: 1 };
        assert_eq!(job_duration(cost, 1, 0, 600, &MALI_G71), SimDuration::MAX);
        assert_eq!(job_duration(cost, 1, 1, 0, &MALI_G71), SimDuration::MAX);
    }

    #[test]
    fn memory_bound_jobs_ignore_core_count() {
        let cost = JobCost {
            flops: 0,
            bytes: 100_000_000,
        };
        let d1 = job_duration(cost, 1, 1, 600, &MALI_G71);
        let d8 = job_duration(cost, 1, 8, 600, &MALI_G71);
        assert_eq!(d1, d8);
    }

    #[test]
    fn g31_is_slower_than_g71() {
        let cost = JobCost {
            flops: 200_000_000,
            bytes: 4_000_000,
        };
        let g71 = job_duration(cost, 1, 8, 600, &MALI_G71);
        let g31 = job_duration(cost, 1, 1, 650, &MALI_G31);
        assert!(g31.as_nanos() > 4 * g71.as_nanos(), "{g31} vs {g71}");
    }

    #[test]
    fn cost_addition() {
        let a = JobCost { flops: 1, bytes: 2 };
        let b = JobCost {
            flops: 10,
            bytes: 20,
        };
        assert_eq!(
            a + b,
            JobCost {
                flops: 11,
                bytes: 22
            }
        );
    }

    #[test]
    fn jitter_preserves_max() {
        let mut rng = gr_sim::SimRng::seed_from(1);
        assert_eq!(jittered(SimDuration::MAX, &mut rng), SimDuration::MAX);
        let base = SimDuration::from_micros(100);
        let j = jittered(base, &mut rng);
        assert!(j.as_nanos() >= 98_000 && j.as_nanos() <= 102_000);
        let f = flush_delay(&mut rng);
        assert!(f.as_nanos() > 0);
    }
}
