//! The device-model contract shared by both GPU families, plus the
//! VA-translating memory accessor their execution engines use.

use std::collections::HashMap;

use gr_sim::SimTime;
use gr_soc::{SharedMem, PAGE_SIZE};

use crate::faults::FaultKind;
use crate::sku::GpuSku;
use crate::vm::exec::VaMem;

/// A simulated GPU as seen by the machine: registers, event-driven
/// execution, and fault-injection hooks.
///
/// Reads and writes have side effects; implementations tick their internal
/// event queue before servicing accesses so register state is always
/// current with the virtual clock.
pub trait GpuDev: Send {
    /// Register read (with device side effects).
    fn read32(&mut self, off: u32) -> u32;

    /// Register write.
    fn write32(&mut self, off: u32, val: u32);

    /// Processes all events due at the current virtual time.
    fn tick(&mut self);

    /// Instant of the next scheduled internal event, if any (lets waiters
    /// advance the clock efficiently).
    fn next_event_time(&self) -> Option<SimTime>;

    /// Static SKU description.
    fn sku(&self) -> &'static GpuSku;

    /// Injects a hardware fault (§7.2 validation experiments).
    fn inject_fault(&mut self, fault: FaultKind);

    /// `true` while a job/reset/flush is in flight.
    fn busy(&self) -> bool;

    /// Monotonic count of successfully completed jobs.
    fn jobs_completed(&self) -> u64;

    /// Handle to the device's per-batch access log (see
    /// [`crate::access`]); the replayer arms it around warm-batch
    /// suffixes to learn the suffix's first-read/write sets.
    fn access_log(&self) -> crate::access::SharedAccessLog {
        crate::access::SharedAccessLog::new()
    }
}

/// Software TLB: caches `page_va → (page_pa, writable)` so the execution
/// engine walks the in-DRAM page tables once per page instead of once per
/// access.
///
/// Lifetime/invalidation rules (wired into both device models):
///
/// * flushed on soft reset and on MMU enable/disable or address-space
///   switch (`AS0_COMMAND UPDATE` on Mali, `MMU_CTRL`/`MMU_PT_BASE` writes
///   on v3d),
/// * flushed on explicit TLB-shootdown commands (Mali `AS_CMD_FLUSH`),
/// * the affected page is invalidated when fault injection corrupts a PTE
///   in place, so §7.2 experiments still observe the fault even after the
///   translation was cached.
#[derive(Debug, Default)]
pub struct SoftTlb {
    entries: HashMap<u64, (u64, bool)>,
    hits: u64,
    misses: u64,
}

impl SoftTlb {
    /// Creates an empty TLB.
    pub fn new() -> Self {
        SoftTlb::default()
    }

    /// Cached translation for `page_va`, counting hit/miss.
    pub fn lookup(&mut self, page_va: u64) -> Option<(u64, bool)> {
        match self.entries.get(&page_va) {
            Some(&e) => {
                self.hits += 1;
                Some(e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches `page_va → (page_pa, writable)`.
    pub fn insert(&mut self, page_va: u64, page_pa: u64, writable: bool) {
        self.entries.insert(page_va, (page_pa, writable));
    }

    /// Drops the entry covering `va` (any alignment).
    pub fn invalidate_page(&mut self, va: u64) {
        self.entries.remove(&(va & !(PAGE_SIZE as u64 - 1)));
    }

    /// Drops every entry (MMU flush / address-space switch / reset).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to walk the page tables.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// One physically-contiguous piece of a virtually-contiguous transfer.
#[derive(Clone, Copy)]
struct Segment {
    pa: u64,
    off: usize,
    len: usize,
}

fn resolve<F>(
    tlb: &mut Option<&mut SoftTlb>,
    translate: &mut F,
    page_va: u64,
) -> Option<(u64, bool)>
where
    F: FnMut(u64) -> Option<(u64, bool)>,
{
    if let Some(t) = tlb.as_deref_mut() {
        if let Some(e) = t.lookup(page_va) {
            return Some(e);
        }
    }
    let (page_pa, writable) = translate(page_va)?;
    if let Some(t) = tlb.as_deref_mut() {
        t.insert(page_va, page_pa, writable);
    }
    Some((page_pa, writable))
}

/// [`VaMem`] implementation that routes byte accesses through a page-wise
/// translation function.
///
/// `translate(page_va) -> Option<(page_pa, writable)>`; `None` faults.
///
/// The accessor translates the whole span first (served from the
/// [`SoftTlb`] when one is attached), then performs the copy under a
/// single [`SharedMem`] guard instead of re-locking per 4-KiB chunk.
pub struct TranslatingVaMem<'a, F> {
    mem: &'a SharedMem,
    translate: F,
    tlb: Option<&'a mut SoftTlb>,
    legacy: bool,
    segs: Vec<Segment>,
}

impl<'a, F> TranslatingVaMem<'a, F>
where
    F: FnMut(u64) -> Option<(u64, bool)>,
{
    /// Creates an accessor over `mem` using `translate` on every page
    /// (no TLB; transfers still lock-amortized).
    pub fn new(mem: &'a SharedMem, translate: F) -> Self {
        TranslatingVaMem {
            mem,
            translate,
            tlb: None,
            legacy: false,
            segs: Vec::new(),
        }
    }

    /// Creates an accessor whose page translations are cached in `tlb`.
    pub fn with_tlb(mem: &'a SharedMem, translate: F, tlb: &'a mut SoftTlb) -> Self {
        TranslatingVaMem {
            mem,
            translate,
            tlb: Some(tlb),
            legacy: false,
            segs: Vec::new(),
        }
    }

    /// Creates an accessor that reproduces the pre-fast-path behaviour
    /// exactly: translate every page on every access and take the DRAM
    /// lock per 4-KiB chunk. Used as the measured baseline by
    /// `bench_exec` when [`crate::fastpath`] is disabled.
    pub fn legacy(mem: &'a SharedMem, translate: F) -> Self {
        TranslatingVaMem {
            mem,
            translate,
            tlb: None,
            legacy: true,
            segs: Vec::new(),
        }
    }

    /// Translates `[va, va+len)` into `self.segs`. `for_write` additionally
    /// demands the writable permission. Returns the faulting VA on error.
    fn plan(&mut self, va: u64, len: usize, for_write: bool) -> Result<(), u64> {
        self.segs.clear();
        let mut done = 0usize;
        while done < len {
            let cur_va = va + done as u64;
            let page_va = cur_va & !(PAGE_SIZE as u64 - 1);
            let in_page = (PAGE_SIZE as u64 - (cur_va - page_va)) as usize;
            let chunk = in_page.min(len - done);
            let (page_pa, writable) =
                resolve(&mut self.tlb, &mut self.translate, page_va).ok_or(cur_va)?;
            if for_write && !writable {
                return Err(cur_va);
            }
            self.segs.push(Segment {
                pa: page_pa + (cur_va - page_va),
                off: done,
                len: chunk,
            });
            done += chunk;
        }
        Ok(())
    }

    /// Reads `out.len()` bytes at `va` without allocating.
    fn read_into(&mut self, va: u64, out: &mut [u8]) -> Result<(), u64> {
        if self.legacy {
            return self.legacy_read_into(va, out);
        }
        self.plan(va, out.len(), false)?;
        let g = self.mem.read_guard();
        for s in &self.segs {
            g.read(s.pa, &mut out[s.off..s.off + s.len])
                .map_err(|_| va + s.off as u64)?;
        }
        Ok(())
    }

    /// Writes `data` at `va` without allocating.
    fn write_from(&mut self, va: u64, data: &[u8]) -> Result<(), u64> {
        if self.legacy {
            return self.legacy_write_from(va, data);
        }
        self.plan(va, data.len(), true)?;
        let mut g = self.mem.write_guard();
        for s in &self.segs {
            g.write(s.pa, &data[s.off..s.off + s.len])
                .map_err(|_| va + s.off as u64)?;
        }
        Ok(())
    }

    /// The original chunk-at-a-time path: walk, lock, copy, repeat.
    fn legacy_read_into(&mut self, va: u64, out: &mut [u8]) -> Result<(), u64> {
        let len = out.len();
        let mut done = 0usize;
        while done < len {
            let cur_va = va + done as u64;
            let page_va = cur_va & !(PAGE_SIZE as u64 - 1);
            let in_page = (PAGE_SIZE as u64 - (cur_va - page_va)) as usize;
            let chunk = in_page.min(len - done);
            let (page_pa, _w) = (self.translate)(page_va).ok_or(cur_va)?;
            let pa = page_pa + (cur_va - page_va);
            self.mem
                .read(pa, &mut out[done..done + chunk])
                .map_err(|_| cur_va)?;
            done += chunk;
        }
        Ok(())
    }

    fn legacy_write_from(&mut self, va: u64, data: &[u8]) -> Result<(), u64> {
        let mut done = 0usize;
        while done < data.len() {
            let cur_va = va + done as u64;
            let page_va = cur_va & !(PAGE_SIZE as u64 - 1);
            let in_page = (PAGE_SIZE as u64 - (cur_va - page_va)) as usize;
            let chunk = in_page.min(data.len() - done);
            let (page_pa, writable) = (self.translate)(page_va).ok_or(cur_va)?;
            if !writable {
                return Err(cur_va);
            }
            let pa = page_pa + (cur_va - page_va);
            self.mem
                .write(pa, &data[done..done + chunk])
                .map_err(|_| cur_va)?;
            done += chunk;
        }
        Ok(())
    }
}

impl<F> VaMem for TranslatingVaMem<'_, F>
where
    F: FnMut(u64) -> Option<(u64, bool)>,
{
    fn read_bytes(&mut self, va: u64, len: usize) -> Result<Vec<u8>, u64> {
        let mut out = vec![0u8; len];
        self.read_into(va, &mut out)?;
        Ok(out)
    }

    fn write_bytes(&mut self, va: u64, data: &[u8]) -> Result<(), u64> {
        self.write_from(va, data)
    }

    fn read_f32s_into(&mut self, va: u64, n: usize, out: &mut Vec<f32>) -> Result<(), u64> {
        if self.legacy {
            // Pre-fast-path behaviour: allocate a fresh staging vector.
            let bytes = self.read_bytes(va, n * 4)?;
            out.clear();
            out.extend(
                bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4"))),
            );
            return Ok(());
        }
        // Zero-copy: decode straight out of guarded DRAM into the caller's
        // f32 buffer — no byte staging pass at all. f32s that straddle a
        // page boundary are stitched through a 4-byte carry.
        self.plan(va, n * 4, false)?;
        let g = self.mem.read_guard();
        out.clear();
        out.reserve(n);
        let mut carry = [0u8; 4];
        let mut carry_len = 0usize;
        for s in &self.segs {
            let mut sl = g.slice(s.pa, s.len).map_err(|_| va + s.off as u64)?;
            if carry_len > 0 {
                // Segments after the first are page-sized and the total is
                // n*4, so the carry always fills to a whole f32 here.
                let take = 4 - carry_len;
                carry[carry_len..].copy_from_slice(&sl[..take]);
                out.push(f32::from_le_bytes(carry));
                sl = &sl[take..];
            }
            let whole = sl.len() & !3;
            out.extend(
                sl[..whole]
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4"))),
            );
            let rem = &sl[whole..];
            carry[..rem.len()].copy_from_slice(rem);
            carry_len = rem.len();
        }
        assert_eq!(carry_len, 0, "n*4 bytes always drain the carry");
        Ok(())
    }

    fn write_f32s(&mut self, va: u64, vals: &[f32]) -> Result<(), u64> {
        if self.legacy {
            let mut bytes = Vec::with_capacity(vals.len() * 4);
            for v in vals {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            return self.write_bytes(va, &bytes);
        }
        // Zero-copy: encode straight into guarded DRAM.
        self.plan(va, vals.len() * 4, true)?;
        let mut g = self.mem.write_guard();
        for s in &self.segs {
            let dst = g.slice_mut(s.pa, s.len).map_err(|_| va + s.off as u64)?;
            if s.off % 4 == 0 && s.len % 4 == 0 {
                for (c, v) in dst.chunks_exact_mut(4).zip(&vals[s.off / 4..]) {
                    c.copy_from_slice(&v.to_le_bytes());
                }
            } else {
                // An f32 straddles this segment's edge: byte-wise fallback.
                for (i, b) in dst.iter_mut().enumerate() {
                    let byte = s.off + i;
                    *b = vals[byte / 4].to_le_bytes()[byte % 4];
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_soc::PhysMem;

    #[test]
    fn translating_accessor_crosses_pages() {
        let mem = SharedMem::new(PhysMem::new(0, 8 * PAGE_SIZE));
        // Identity translation but remap page 1 -> phys page 4.
        let mut vm = TranslatingVaMem::new(&mem, |page_va| {
            if page_va == PAGE_SIZE as u64 {
                Some((4 * PAGE_SIZE as u64, true))
            } else {
                Some((page_va, true))
            }
        });
        let data: Vec<u8> = (0..100).collect();
        let va = PAGE_SIZE as u64 - 50;
        vm.write_bytes(va, &data).unwrap();
        assert_eq!(vm.read_bytes(va, 100).unwrap(), data);
        // The second half physically landed in page 4.
        assert_eq!(
            mem.read_vec(4 * PAGE_SIZE as u64, 50).unwrap(),
            data[50..].to_vec()
        );
    }

    #[test]
    fn unmapped_page_faults_with_exact_va() {
        let mem = SharedMem::new(PhysMem::new(0, 4 * PAGE_SIZE));
        let mut vm = TranslatingVaMem::new(
            &mem,
            |page_va| {
                if page_va == 0 {
                    Some((0, true))
                } else {
                    None
                }
            },
        );
        let err = vm.read_bytes(PAGE_SIZE as u64 - 2, 8).unwrap_err();
        assert_eq!(
            err, PAGE_SIZE as u64,
            "fault at first byte of unmapped page"
        );
    }

    #[test]
    fn readonly_page_rejects_writes() {
        let mem = SharedMem::new(PhysMem::new(0, 4 * PAGE_SIZE));
        let mut vm = TranslatingVaMem::new(&mem, |page_va| Some((page_va, false)));
        assert_eq!(vm.write_bytes(16, &[1, 2, 3]), Err(16));
        assert!(vm.read_bytes(16, 3).is_ok(), "reads still allowed");
    }

    #[test]
    fn tlb_caches_translations_and_counts() {
        let mem = SharedMem::new(PhysMem::new(0, 8 * PAGE_SIZE));
        let mut tlb = SoftTlb::new();
        let mut walks = 0usize;
        {
            let mut vm = TranslatingVaMem::with_tlb(
                &mem,
                |page_va| {
                    walks += 1;
                    Some((page_va, true))
                },
                &mut tlb,
            );
            for _ in 0..10 {
                vm.write_bytes(100, &[1, 2, 3]).unwrap();
                assert_eq!(vm.read_bytes(100, 3).unwrap(), vec![1, 2, 3]);
            }
        }
        assert_eq!(walks, 1, "page 0 walked exactly once");
        assert_eq!(tlb.misses(), 1);
        assert_eq!(tlb.hits(), 19);
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn tlb_invalidation_forces_rewalk() {
        let mem = SharedMem::new(PhysMem::new(0, 8 * PAGE_SIZE));
        let mut tlb = SoftTlb::new();
        // Remappable translation: page 0 goes wherever `target` points.
        let target = std::cell::Cell::new(PAGE_SIZE as u64);
        {
            let mut vm =
                TranslatingVaMem::with_tlb(&mem, |page_va| Some((target.get() + page_va, true)), {
                    &mut tlb
                });
            vm.write_bytes(0, &[7]).unwrap();
        }
        assert_eq!(mem.read_vec(PAGE_SIZE as u64, 1).unwrap(), vec![7]);
        // Remap without invalidating: the stale entry still wins.
        target.set(2 * PAGE_SIZE as u64);
        {
            let mut vm = TranslatingVaMem::with_tlb(
                &mem,
                |page_va| Some((target.get() + page_va, true)),
                &mut tlb,
            );
            vm.write_bytes(0, &[8]).unwrap();
        }
        assert_eq!(mem.read_vec(PAGE_SIZE as u64, 1).unwrap(), vec![8]);
        // Invalidate: the next access walks and sees the new target.
        tlb.invalidate_page(5);
        {
            let mut vm = TranslatingVaMem::with_tlb(
                &mem,
                |page_va| Some((target.get() + page_va, true)),
                &mut tlb,
            );
            vm.write_bytes(0, &[9]).unwrap();
        }
        assert_eq!(mem.read_vec(2 * PAGE_SIZE as u64, 1).unwrap(), vec![9]);
        tlb.flush();
        assert!(tlb.is_empty());
    }

    #[test]
    fn f32_helpers_round_trip_without_alloc_paths() {
        let mem = SharedMem::new(PhysMem::new(0, 8 * PAGE_SIZE));
        let mut vm = TranslatingVaMem::new(&mem, |page_va| Some((page_va, true)));
        let vals = [1.5f32, -2.25, 1e-8, f32::MAX];
        // Straddle a page boundary on purpose.
        let va = PAGE_SIZE as u64 - 6;
        vm.write_f32s(va, &vals).unwrap();
        let mut back = Vec::new();
        vm.read_f32s_into(va, vals.len(), &mut back).unwrap();
        assert_eq!(back, vals);
    }
}
