//! The device-model contract shared by both GPU families, plus the
//! VA-translating memory accessor their execution engines use.

use gr_sim::SimTime;
use gr_soc::{SharedMem, PAGE_SIZE};

use crate::faults::FaultKind;
use crate::sku::GpuSku;
use crate::vm::exec::VaMem;

/// A simulated GPU as seen by the machine: registers, event-driven
/// execution, and fault-injection hooks.
///
/// Reads and writes have side effects; implementations tick their internal
/// event queue before servicing accesses so register state is always
/// current with the virtual clock.
pub trait GpuDev: Send {
    /// Register read (with device side effects).
    fn read32(&mut self, off: u32) -> u32;

    /// Register write.
    fn write32(&mut self, off: u32, val: u32);

    /// Processes all events due at the current virtual time.
    fn tick(&mut self);

    /// Instant of the next scheduled internal event, if any (lets waiters
    /// advance the clock efficiently).
    fn next_event_time(&self) -> Option<SimTime>;

    /// Static SKU description.
    fn sku(&self) -> &'static GpuSku;

    /// Injects a hardware fault (§7.2 validation experiments).
    fn inject_fault(&mut self, fault: FaultKind);

    /// `true` while a job/reset/flush is in flight.
    fn busy(&self) -> bool;

    /// Monotonic count of successfully completed jobs.
    fn jobs_completed(&self) -> u64;
}

/// [`VaMem`] implementation that routes byte accesses through a page-wise
/// translation function.
///
/// `translate(page_va) -> Option<(page_pa, writable)>`; `None` faults.
pub struct TranslatingVaMem<'a, F> {
    mem: &'a SharedMem,
    translate: F,
}

impl<'a, F> TranslatingVaMem<'a, F>
where
    F: FnMut(u64) -> Option<(u64, bool)>,
{
    /// Creates an accessor over `mem` using `translate`.
    pub fn new(mem: &'a SharedMem, translate: F) -> Self {
        TranslatingVaMem { mem, translate }
    }
}

impl<F> VaMem for TranslatingVaMem<'_, F>
where
    F: FnMut(u64) -> Option<(u64, bool)>,
{
    fn read_bytes(&mut self, va: u64, len: usize) -> Result<Vec<u8>, u64> {
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let cur_va = va + done as u64;
            let page_va = cur_va & !(PAGE_SIZE as u64 - 1);
            let in_page = (PAGE_SIZE as u64 - (cur_va - page_va)) as usize;
            let chunk = in_page.min(len - done);
            let (page_pa, _w) = (self.translate)(page_va).ok_or(cur_va)?;
            let pa = page_pa + (cur_va - page_va);
            self.mem
                .read(pa, &mut out[done..done + chunk])
                .map_err(|_| cur_va)?;
            done += chunk;
        }
        Ok(out)
    }

    fn write_bytes(&mut self, va: u64, data: &[u8]) -> Result<(), u64> {
        let mut done = 0usize;
        while done < data.len() {
            let cur_va = va + done as u64;
            let page_va = cur_va & !(PAGE_SIZE as u64 - 1);
            let in_page = (PAGE_SIZE as u64 - (cur_va - page_va)) as usize;
            let chunk = in_page.min(data.len() - done);
            let (page_pa, writable) = (self.translate)(page_va).ok_or(cur_va)?;
            if !writable {
                return Err(cur_va);
            }
            let pa = page_pa + (cur_va - page_va);
            self.mem
                .write(pa, &data[done..done + chunk])
                .map_err(|_| cur_va)?;
            done += chunk;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_soc::PhysMem;

    #[test]
    fn translating_accessor_crosses_pages() {
        let mem = SharedMem::new(PhysMem::new(0, 8 * PAGE_SIZE));
        // Identity translation but remap page 1 -> phys page 4.
        let mut vm = TranslatingVaMem::new(&mem, |page_va| {
            if page_va == PAGE_SIZE as u64 {
                Some((4 * PAGE_SIZE as u64, true))
            } else {
                Some((page_va, true))
            }
        });
        let data: Vec<u8> = (0..100).collect();
        let va = PAGE_SIZE as u64 - 50;
        vm.write_bytes(va, &data).unwrap();
        assert_eq!(vm.read_bytes(va, 100).unwrap(), data);
        // The second half physically landed in page 4.
        assert_eq!(
            mem.read_vec(4 * PAGE_SIZE as u64, 50).unwrap(),
            data[50..].to_vec()
        );
    }

    #[test]
    fn unmapped_page_faults_with_exact_va() {
        let mem = SharedMem::new(PhysMem::new(0, 4 * PAGE_SIZE));
        let mut vm = TranslatingVaMem::new(
            &mem,
            |page_va| {
                if page_va == 0 {
                    Some((0, true))
                } else {
                    None
                }
            },
        );
        let err = vm.read_bytes(PAGE_SIZE as u64 - 2, 8).unwrap_err();
        assert_eq!(
            err, PAGE_SIZE as u64,
            "fault at first byte of unmapped page"
        );
    }

    #[test]
    fn readonly_page_rejects_writes() {
        let mem = SharedMem::new(PhysMem::new(0, 4 * PAGE_SIZE));
        let mut vm = TranslatingVaMem::new(&mem, |page_va| Some((page_va, false)));
        assert_eq!(vm.write_bytes(16, &[1, 2, 3]), Err(16));
        assert!(vm.read_bytes(16, 3).is_ok(), "reads still allowed");
    }
}
