//! Fault injection.
//!
//! §7.2 of the paper validates failure detection and recovery by
//! "(1) offlining GPU cores forcibly and (2) corrupting GPU page table
//! entries" during replay, plus running the GPU at different clock rates.
//! These knobs reproduce those experiments against the device models.

/// A fault to inject into a running GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Forcibly power off the cores in `mask`. A job in flight (or the next
    /// job started) whose affinity intersects the mask fails with a job
    /// fault. Cleared by GPU soft reset — i.e. transient, recoverable by
    /// re-execution.
    OfflineCores {
        /// Bitmask of cores to take offline.
        mask: u32,
    },
    /// Corrupt the page-table entry mapping `va` (bit-flips the PTE in
    /// DRAM). The next GPU access through that mapping raises an MMU fault.
    /// Recovered when the replayer re-populates page tables.
    CorruptPte {
        /// Virtual address whose translation to corrupt.
        va: u64,
    },
}
