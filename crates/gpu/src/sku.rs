//! The GPU SKU catalog.
//!
//! The paper records/replays across Arm Mali G31 (low end, 1 shader core),
//! G52 (mainstream, 2 cores), G71 (high end, 8 cores) and Broadcom v3d
//! (Raspberry Pi 4). We model the same line-up. SKUs of the same family
//! share register maps and job formats but differ in core counts, IDs,
//! page-table flag layouts (G31/G52 use an LPAE-style bit order), and MMU
//! configuration expectations (G71 wants read-allocate caching enabled) —
//! the exact differences §6.4's cross-SKU patching has to bridge.

/// GPU family: selects register map, submission protocol, and dump policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuFamilyKind {
    /// Mali-like: job-chain submission, exec-bit page tables, 3 IRQ lines.
    Mali,
    /// v3d-like: control-list submission, flat no-exec-bit page table,
    /// 1 IRQ line.
    V3d,
}

impl std::fmt::Display for GpuFamilyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuFamilyKind::Mali => write!(f, "mali"),
            GpuFamilyKind::V3d => write!(f, "v3d"),
        }
    }
}

/// Page-table entry encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PteFormat {
    /// G71-style: VALID=bit0, WRITE=bit1, EXEC=bit2, CPU_MAPPED=bit3.
    MaliStandard,
    /// G31/G52 LPAE-style: VALID=bit0, EXEC=bit1, CPU_MAPPED=bit2,
    /// WRITE=bit3 (permission bits in a different order — §6.4).
    MaliLpae,
    /// v3d flat table: 32-bit PTEs, VALID=bit0, WRITE=bit1, no exec bit.
    V3dFlat,
}

/// Static description of one GPU SKU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSku {
    /// Marketing name ("G71").
    pub name: &'static str,
    /// Family the SKU belongs to.
    pub family: GpuFamilyKind,
    /// Value of the ID register (distinct per SKU; drivers probe it).
    pub gpu_id: u32,
    /// Shader core count (affects job duration and the affinity patch).
    pub cores: u32,
    /// Nominal core clock in MHz; the PMC may run the GPU slower.
    pub nominal_mhz: u32,
    /// Per-core throughput in GFLOP/s at nominal clock.
    pub gflops_per_core: f64,
    /// Shared-DRAM bandwidth the GPU sees, GB/s.
    pub mem_bw_gbps: f64,
    /// Page-table entry encoding.
    pub pte_format: PteFormat,
    /// Whether the MMU requires the read-allocate bit in `TRANSCFG`
    /// (G71 expects it set; G31/G52 expect it clear).
    pub requires_rd_alloc: bool,
}

/// Arm Mali G71 (Hikey960): 8 cores, the paper's main record+replay target.
pub const MALI_G71: GpuSku = GpuSku {
    name: "G71",
    family: GpuFamilyKind::Mali,
    gpu_id: 0x6956_0010,
    cores: 8,
    nominal_mhz: 600,
    gflops_per_core: 30.0,
    mem_bw_gbps: 14.9,
    pte_format: PteFormat::MaliStandard,
    requires_rd_alloc: true,
};

/// Arm Mali G52 (Odroid N2): 2 cores, mainstream.
pub const MALI_G52: GpuSku = GpuSku {
    name: "G52",
    family: GpuFamilyKind::Mali,
    gpu_id: 0x7212_0020,
    cores: 2,
    nominal_mhz: 650,
    gflops_per_core: 40.8,
    mem_bw_gbps: 8.5,
    pte_format: PteFormat::MaliLpae,
    requires_rd_alloc: false,
};

/// Arm Mali G31 (Odroid C4): 1 core, low end.
pub const MALI_G31: GpuSku = GpuSku {
    name: "G31",
    family: GpuFamilyKind::Mali,
    gpu_id: 0x7093_0030,
    cores: 1,
    nominal_mhz: 650,
    gflops_per_core: 20.8,
    mem_bw_gbps: 6.4,
    pte_format: PteFormat::MaliLpae,
    requires_rd_alloc: false,
};

/// Broadcom v3d (Raspberry Pi 4).
pub const V3D_RPI4: GpuSku = GpuSku {
    name: "v3d",
    family: GpuFamilyKind::V3d,
    gpu_id: 0x0042_7634,
    cores: 1,
    nominal_mhz: 500,
    gflops_per_core: 32.0,
    mem_bw_gbps: 6.0,
    pte_format: PteFormat::V3dFlat,
    requires_rd_alloc: false,
};

/// All modeled SKUs.
pub const ALL_SKUS: [&GpuSku; 4] = [&MALI_G71, &MALI_G52, &MALI_G31, &V3D_RPI4];

/// Looks up a SKU by its ID register value.
pub fn sku_by_id(gpu_id: u32) -> Option<&'static GpuSku> {
    ALL_SKUS.iter().copied().find(|s| s.gpu_id == gpu_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sku_ids_are_unique() {
        for (i, a) in ALL_SKUS.iter().enumerate() {
            for b in &ALL_SKUS[i + 1..] {
                assert_ne!(a.gpu_id, b.gpu_id, "{} vs {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(sku_by_id(MALI_G71.gpu_id).unwrap().name, "G71");
        assert_eq!(sku_by_id(0xDEAD_BEEF), None);
    }

    #[test]
    fn paper_core_counts() {
        assert_eq!(MALI_G71.cores, 8);
        assert_eq!(MALI_G52.cores, 2);
        assert_eq!(MALI_G31.cores, 1);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberately pins static SKU config
    fn lpae_family_layout_matches_paper() {
        // G31/G52 share the LPAE-style layout, G71 the standard one: this is
        // the asymmetry the §6.4 patch bridges.
        assert_eq!(MALI_G31.pte_format, PteFormat::MaliLpae);
        assert_eq!(MALI_G52.pte_format, PteFormat::MaliLpae);
        assert_eq!(MALI_G71.pte_format, PteFormat::MaliStandard);
        assert!(MALI_G71.requires_rd_alloc);
        assert!(!MALI_G31.requires_rd_alloc);
    }

    #[test]
    fn family_display() {
        assert_eq!(GpuFamilyKind::Mali.to_string(), "mali");
        assert_eq!(GpuFamilyKind::V3d.to_string(), "v3d");
    }
}
