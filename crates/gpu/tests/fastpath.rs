//! Differential tests for the zero-copy replay fast path.
//!
//! The software TLB must be *invisible*: a [`TranslatingVaMem`] with a
//! warm [`SoftTlb`] has to be byte-identical to one that walks the page
//! tables on every access — across random page mappings (including
//! aliasing and read-only and unmapped pages), accesses that straddle
//! page boundaries, and mid-job remapping with explicit invalidation.

use gr_gpu::device::{SoftTlb, TranslatingVaMem};
use gr_gpu::vm::exec::VaMem;
use gr_soc::{PhysMem, SharedMem, PAGE_SIZE};
use proptest::prelude::*;

/// Virtual pages covered by the random mappings.
const VA_PAGES: usize = 16;
/// Physical frames in the tiny DRAM (frame 0 plays "unmapped").
const FRAMES: usize = 24;

/// One random access: `(write?, va, len, fill_byte)`.
type Access = ((bool, u64), (usize, u8));

fn make_translate(mapping: Vec<(u64, bool)>) -> impl FnMut(u64) -> Option<(u64, bool)> + Clone {
    move |page_va: u64| {
        let idx = (page_va / PAGE_SIZE as u64) as usize;
        let &(frame, writable) = mapping.get(idx)?;
        // Frame 0 is reserved: mapping onto it means "unmapped".
        if frame == 0 {
            return None;
        }
        Some((frame * PAGE_SIZE as u64, writable))
    }
}

/// Applies one access through `m`, returning a comparable outcome.
fn apply<M: VaMem>(m: &mut M, acc: &Access) -> Result<Vec<u8>, u64> {
    let ((write, raw_va), (raw_len, byte)) = *acc;
    let space = (VA_PAGES * PAGE_SIZE) as u64;
    let va = raw_va % (space - 1);
    let len = 1 + raw_len % (2 * PAGE_SIZE).min((space - va) as usize);
    if write {
        if byte % 2 == 0 {
            // Exercise the pooled f32 path on even bytes.
            let vals = vec![f32::from_le_bytes([byte, byte, 0, 0]); len.div_ceil(4)];
            m.write_f32s(va, &vals).map(|()| Vec::new())
        } else {
            m.write_bytes(va, &vec![byte; len]).map(|()| Vec::new())
        }
    } else if byte % 2 == 0 {
        let mut out = Vec::new();
        m.read_f32s_into(va, len.div_ceil(4), &mut out)
            .map(|()| out.iter().flat_map(|v| v.to_le_bytes()).collect())
    } else {
        m.read_bytes(va, len)
    }
}

fn dram() -> SharedMem {
    SharedMem::new(PhysMem::new(0, FRAMES * PAGE_SIZE))
}

proptest! {
    #[test]
    fn tlb_is_byte_identical_to_translate_every_access(
        mapping in proptest::collection::vec((1u64..FRAMES as u64, any::<bool>()), VA_PAGES..VA_PAGES + 1),
        accesses in proptest::collection::vec(((any::<bool>(), any::<u64>()), (any::<usize>(), any::<u8>())), 1..24),
        remap in ((0u64..VA_PAGES as u64, 1u64..FRAMES as u64), any::<bool>()),
    ) {
        // Two identical DRAMs: one accessed through a persistent TLB, one
        // walking the mapping on every access.
        let mem_tlb = dram();
        let mem_walk = dram();
        let mut tlb = SoftTlb::new();
        let mut mapping = mapping;
        let half = accesses.len() / 2;

        {
            let translate = make_translate(mapping.clone());
            let mut with_tlb = TranslatingVaMem::with_tlb(&mem_tlb, translate.clone(), &mut tlb);
            let mut walk = TranslatingVaMem::new(&mem_walk, translate);
            for acc in &accesses[..half] {
                assert_eq!(apply(&mut with_tlb, acc), apply(&mut walk, acc));
            }
        }

        // Mid-job remap (the "PTE rewrite" case): point one page at a
        // different frame and invalidate exactly that TLB entry. The
        // walking accessor sees the new mapping immediately; the TLB
        // accessor must behave identically after invalidation.
        let ((page, new_frame), writable) = remap;
        mapping[page as usize] = (new_frame, writable);
        tlb.invalidate_page(page * PAGE_SIZE as u64 + 7);

        {
            let translate = make_translate(mapping.clone());
            let mut with_tlb = TranslatingVaMem::with_tlb(&mem_tlb, translate.clone(), &mut tlb);
            let mut walk = TranslatingVaMem::new(&mem_walk, translate);
            for acc in &accesses[half..] {
                assert_eq!(apply(&mut with_tlb, acc), apply(&mut walk, acc));
            }
        }

        // Both DRAMs must end bit-identical.
        assert_eq!(
            mem_tlb.read_vec(0, FRAMES * PAGE_SIZE).unwrap(),
            mem_walk.read_vec(0, FRAMES * PAGE_SIZE).unwrap()
        );
    }
}

#[test]
fn boundary_straddling_reads_hit_every_page_once() {
    let mem = dram();
    let mut tlb = SoftTlb::new();
    let mapping: Vec<(u64, bool)> = (0..VA_PAGES as u64).map(|i| (i + 2, true)).collect();
    let mut vm = TranslatingVaMem::with_tlb(&mem, make_translate(mapping), &mut tlb);
    // A write spanning three pages, twice; translations are cached after
    // the first pass.
    let va = PAGE_SIZE as u64 - 100;
    let data: Vec<u8> = (0..(2 * PAGE_SIZE + 50) as u32).map(|v| v as u8).collect();
    vm.write_bytes(va, &data).unwrap();
    assert_eq!(vm.read_bytes(va, data.len()).unwrap(), data);
    vm.write_bytes(va, &data).unwrap();
    assert_eq!(vm.read_bytes(va, data.len()).unwrap(), data);
    drop(vm);
    assert_eq!(tlb.misses(), 3, "three pages, each walked once");
    assert_eq!(tlb.hits(), 9, "remaining lookups served by the TLB");
}
