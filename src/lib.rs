//! GPUReplay: a record-and-replay GPU stack for client ML.
//!
//! Facade crate re-exporting the whole reproduction: the simulated SoC and
//! GPUs, the full GPU software stack, the ML frameworks, and — the paper's
//! contribution — the recorder and the tiny replayer that substitutes the
//! stack at run time.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured results. Run `cargo run -p gr-bench --bin
//! all_experiments --release` to regenerate every table and figure.
//!
//! # Quickstart
//!
//! ```no_run
//! use gpureplay::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Development machine: record MNIST on the full stack.
//! let dev = Machine::new(&sku::MALI_G71, 42);
//! let mut harness = RecordHarness::new(dev)?;
//! let recs = harness.record_inference(&models::mnist(), Granularity::WholeNn, 7)?;
//! let bytes = recs.recordings[0].to_bytes();
//! harness.finish();
//!
//! // Target machine: replay on new input, no GPU stack anywhere.
//! let target = Machine::new(&sku::MALI_G71, 43);
//! let env = Environment::new(EnvKind::UserLevel, target)?;
//! let mut replayer = Replayer::new(env);
//! let id = replayer.load_bytes(&bytes)?;
//! let mut io = ReplayIo::for_recording(replayer.recording(id));
//! io.set_input_f32(0, &vec![0.5; 784])?;
//! replayer.replay(id, &mut io)?;
//! println!("logits: {:?}", io.output_f32(0)?);
//! # Ok(()) }
//! ```

pub use gr_gpu as gpu;
pub use gr_mlfw as mlfw;
pub use gr_recorder as recorder;
pub use gr_recording as recording;
pub use gr_replayer as replayer;
pub use gr_service as service;
pub use gr_sim as sim;
pub use gr_soc as soc;
pub use gr_stack as stack;

/// The names most applications need.
pub mod prelude {
    pub use gr_gpu::{sku, Machine};
    pub use gr_mlfw::fusion::Granularity;
    pub use gr_mlfw::models;
    pub use gr_recorder::RecordHarness;
    pub use gr_recording::Recording;
    pub use gr_replayer::{
        patch_recording, BatchReport, EnvKind, Environment, IsolatedBatchReport, PatchOptions,
        ReplayIo, Replayer,
    };
    pub use gr_service::{ReplayRequest, ReplayService, ServiceError, ServiceStats, ShardSpec};
}
