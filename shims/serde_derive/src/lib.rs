//! Offline shim for `serde_derive`.
//!
//! Emits marker-trait impls for the `serde` shim's `Serialize`/`Deserialize`
//! traits. Supports plain (non-generic) structs and enums, which is all the
//! workspace derives on.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name: the identifier following the `struct`/`enum` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive shim: could not find type name in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}
