//! Offline shim for the `criterion` crate.
//!
//! Provides the API surface `benches/micro.rs` uses — `Criterion`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — as a plain wall-clock harness. No statistics,
//! no HTML reports: each benchmark runs `sample_size` samples and prints the
//! per-iteration median, which is enough to eyeball hot-path regressions
//! when the real crate is unavailable offline.

use std::hint::black_box;
use std::time::Instant;

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `f` over this sample's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Benchmark driver configured by `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its median per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // One untimed warm-up sample, then `sample_size` timed samples of a
        // single iteration each (criterion's calibration is overkill here).
        let mut b = Bencher {
            iters: 1,
            elapsed_ns: 0,
        };
        f(&mut b);
        let mut samples: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut b);
            samples.push(b.elapsed_ns);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "bench {name:<40} median {:>12.3} us/iter",
            median as f64 / 1e3
        );
        self
    }
}

/// Declares a group function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
