//! Offline shim for the `rand` crate (0.8-style API subset).
//!
//! The build environment has no crates.io access, so this crate provides the
//! pieces the workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and the `Rng`/`RngCore` traits with `gen`, `gen_range`, `gen_bool`, and
//! `fill_bytes`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — *not* the same
//! stream as upstream `StdRng` (ChaCha12), but fully deterministic per seed,
//! which is the only property the workspace relies on (see
//! `gr_sim::SimRng`).

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator by expanding a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Distribution sampled by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range form accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for simulation jitter purposes.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        // Clamp below end so the half-open contract holds despite rounding.
        (self.start + unit * (self.end - self.start)).min(f64::from_bits(self.end.to_bits() - 1))
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f32::sample(rng);
        (self.start + unit * (self.end - self.start)).min(f32::from_bits(self.end.to_bits() - 1))
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore> Rng for T {}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256++ in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn unit_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let v = rng.gen_range(5u64..10);
            assert!((5..10).contains(&v));
            let g = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&g));
        }
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
