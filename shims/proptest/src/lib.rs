//! Offline shim for the `proptest` crate.
//!
//! Supports the subset `gr-recording`'s codec tests use: the `proptest!`
//! macro, `any::<T>()`, `proptest::collection::vec`, and ranges/tuples as
//! strategies. Instead of upstream's shrinking search, each property runs a
//! fixed number of cases from a generator seeded by the test name, so runs
//! are deterministic and failures reproduce.

use std::ops::Range;

/// Number of cases each `proptest!` property executes.
pub const CASES: u32 = 256;

/// Deterministic generator backing the shim (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from a half-open range.
    pub fn in_range(&mut self, range: &Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty strategy range");
        range.start + self.next_u64() % (range.end - range.start)
    }
}

/// A value generator, analogous to `proptest::strategy::Strategy`.
pub trait Strategy {
    /// Type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`, as in `any::<u8>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(&(self.start as u64..self.end as u64)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

/// Collection strategies, analogous to `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors of `elem`-generated values, as in
    /// `proptest::collection::vec(any::<u8>(), 0..4096)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.in_range(&(self.len.start as u64..self.len.end as u64)) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Names a `proptest!` body usually imports.
pub mod prelude {
    pub use crate::{any, proptest, Arbitrary, Strategy};
}

/// Declares property tests: each `pat in strategy` binding is drawn
/// [`CASES`] times per test from a name-seeded deterministic generator.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            #[test]
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _ in 0..$crate::CASES {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 1..16)) {
            assert!((1..16).contains(&v.len()));
        }

        #[test]
        fn tuples_compose(pair in (any::<u8>(), 1usize..4)) {
            assert!((1..4).contains(&pair.1));
        }
    }
}
