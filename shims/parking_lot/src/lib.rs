//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of the `parking_lot` API the workspace uses (`Mutex::lock`,
//! `RwLock::read`/`write`, all non-poisoning) on top of `std::sync`.
//! Poisoned locks are recovered instead of panicking, matching
//! `parking_lot`'s no-poisoning semantics closely enough for this workspace.

use std::fmt;
use std::sync::{self, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
