//! Offline shim for the `serde` crate.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (on `gr_sim` time
//! newtypes) and never serializes through serde — the recording container has
//! its own hand-rolled codec. This shim therefore provides the two names as
//! marker traits plus a derive that emits empty impls, keeping the seed
//! sources unchanged while building offline.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
///
/// Lifetime-free (unlike upstream's `Deserialize<'de>`): nothing in the
/// workspace names the trait with its lifetime parameter.
pub trait Deserialize {}
