//! Serving scenario: an inference fleet front-end built on the
//! `gr-service` scheduler — bounded admission, per-request deadlines,
//! and dynamic batching over warm machines.
//!
//! A burst of single-image MNIST requests lands on a paused one-worker
//! shard; the worker then drains them as one warm batch (prologue paid
//! once), while an over-cap request is shed with `QueueFull` and a
//! stale request is rejected the moment its deadline passes — without
//! ever touching the warm machine.
//!
//! Run with: `cargo run --example replay_service --release`

use gpureplay::prelude::*;
use gpureplay::service::ServiceError;
use gr_sim::{SimDuration, SimRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record once on the development machine.
    let dev = Machine::new(&sku::MALI_G71, 7);
    let mut harness = RecordHarness::new(dev)?;
    let recs = harness.record_inference(&models::mnist(), Granularity::WholeNn, 7)?;
    let blob = recs.recordings[0].to_bytes();
    let input_len = recs.net.input_len();
    harness.finish();

    // The serving fleet: one warm shard, bounded queue, 8-way batching.
    let service = ReplayService::builder()
        .shard(
            ShardSpec::new(&sku::MALI_G71, EnvKind::UserLevel, vec![blob.clone()])
                .queue_cap(8)
                .max_batch(8),
        )
        .spawn()?;
    let clock = service.clock();
    clock.advance(SimDuration::from_millis(1));

    let mut rng = SimRng::seed_from(99);
    let mut make_request = || {
        let pixels: Vec<f32> = (0..input_len).map(|_| rng.unit_f64() as f32).collect();
        let rec = Recording::from_bytes(&blob).unwrap();
        let mut io = ReplayIo::for_recording(&rec);
        io.set_input_f32(0, &pixels).unwrap();
        ReplayRequest::single(0, io)
    };

    // Build up a burst while the workers are paused (a traffic spike).
    service.pause();
    let mut tickets = Vec::new();
    for _ in 0..7 {
        let deadline = clock.now() + SimDuration::from_millis(100);
        tickets.push(service.submit_request("G71", make_request().deadline(deadline))?);
    }
    // One request with a deadline too tight to survive the queue...
    let doomed = service.submit_request(
        "G71",
        make_request().deadline(clock.now() + SimDuration::from_micros(10)),
    )?;
    // ...and one past the queue bound: shed at admission.
    match service.submit_request("G71", make_request()) {
        Err(ServiceError::QueueFull { sku, cap }) => {
            println!("backpressure: shard '{sku}' full at cap {cap}, request shed");
        }
        other => println!("unexpected admission result: {other:?}"),
    }

    // Time passes; the spike is drained as one dynamically formed batch.
    clock.advance(SimDuration::from_millis(1));
    service.resume();
    service.quiesce();
    match doomed.wait() {
        Err(ServiceError::DeadlineExceeded) => {
            println!("stale request rejected at dequeue, no warm machine touched");
        }
        other => println!("unexpected outcome: {other:?}"),
    }
    for (k, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.wait()?;
        let logits = outcome.ios[0].output_f32(0)?;
        let digit = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(d, _)| d)
            .unwrap_or(0);
        println!(
            "request {k}: digit {digit}, rode a {}-element warm batch ({} retries)",
            outcome.report.elements, outcome.report.retries
        );
    }

    let stats = service.stats();
    let shard = stats.shard("G71").expect("shard exists");
    println!(
        "shard G71: {} submitted, {} completed, {} shed (queue-full), {} deadline-missed; \
         formed-batch histogram {:?}",
        shard.submitted,
        shard.completed,
        shard.rejected_full,
        shard.deadline_missed,
        shard.batch_sizes
    );
    service.shutdown();
    Ok(())
}
