//! Quickstart: record MNIST inference once on the full GPU stack, then
//! replay it on new input with the 50-KB-class replayer.
//!
//! Run with: `cargo run --example quickstart --release`

use gpureplay::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Development machine: full stack + recorder (Figure 1, left) ----
    let dev = Machine::new(&sku::MALI_G71, 42);
    let mut harness = RecordHarness::new(dev)?;
    let recs = harness.record_inference(&models::mnist(), Granularity::WholeNn, 7)?;
    let rec = &recs.recordings[0];
    println!(
        "recorded '{}': {} GPU jobs, {} register interactions, {} actions, {:.1} KB zipped",
        rec.meta.label,
        rec.meta.job_count,
        rec.meta.regio_count,
        rec.actions.len(),
        rec.to_bytes().len() as f64 / 1024.0
    );
    let bytes = rec.to_bytes();
    let input_len = recs.net.input_len();
    harness.finish();

    // ---- Target machine: replayer only, no GPU stack (Figure 1, right) ----
    let target = Machine::new(&sku::MALI_G71, 43);
    let env = Environment::new(EnvKind::UserLevel, target)?;
    let mut replayer = Replayer::new(env);
    let id = replayer.load_bytes(&bytes)?;

    let input = vec![0.25f32; input_len];
    let mut io = ReplayIo::for_recording(replayer.recording(id));
    io.set_input_f32(0, &input).unwrap();
    let report = replayer.replay(id, &mut io)?;
    let logits = io.output_f32(0).unwrap();
    println!(
        "replayed {} actions / {} jobs in {} (startup {})",
        report.actions, report.jobs, report.wall, report.startup
    );
    println!("class probabilities: {logits:?}");
    let best = logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or_default();
    println!("predicted class: {best}");
    replayer.cleanup();
    Ok(())
}
