//! Deployment scenario D2 (TrustZone): private inference inside the
//! secure world, with hostile recordings rejected by the verifier.
//!
//! Run with: `cargo run --example tee_inference --release`

use gpureplay::prelude::*;
use gr_recording::{Action, RecordingMeta, TimedAction};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record a MobileNet embedding network at development time.
    let model = models::by_name("MobileNet-embedding").expect("catalog model");
    let dev = Machine::new(&sku::MALI_G71, 21);
    let mut harness = RecordHarness::new(dev)?;
    let recs = harness.record_inference(&model, Granularity::WholeNn, 6)?;
    let blob = recs.recordings[0].to_bytes();
    let input_len = recs.net.input_len();
    harness.finish();

    // Secure world: the replayer is the only GPU code inside the TEE.
    let device = Machine::new(&sku::MALI_G71, 22);
    let env = Environment::new(EnvKind::Tee, device)?;
    let mut replayer = Replayer::new(env);

    // An attacker in the normal world ships a fabricated recording that
    // pokes an undefined register — the verifier rejects it statically.
    let mut evil = Recording::new(RecordingMeta::new(
        "mali",
        "G71",
        sku::MALI_G71.gpu_id,
        "evil",
    ));
    evil.actions.push(TimedAction::immediate(Action::RegWrite {
        reg: 0x2EE0,
        mask: u32::MAX,
        val: 0xDEAD_BEEF,
    }));
    match replayer.load(evil) {
        Err(e) => println!("hostile recording rejected: {e}"),
        Ok(_) => unreachable!("verifier must reject"),
    }

    // The genuine recording runs on secret data that never leaves the TEE.
    let id = replayer.load_bytes(&blob)?;
    let secret_face = vec![0.37f32; input_len];
    let mut io = ReplayIo::for_recording(replayer.recording(id));
    io.set_input_f32(0, &secret_face).unwrap();
    let report = replayer.replay(id, &mut io)?;
    let embedding = io.output_f32(0).unwrap();
    println!(
        "secure inference: {} jobs in {}, embedding dim {} (norm {:.4})",
        report.jobs,
        report.wall,
        embedding.len(),
        embedding.iter().map(|v| v * v).sum::<f32>().sqrt()
    );
    replayer.cleanup();
    Ok(())
}
