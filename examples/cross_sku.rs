//! §6.4: record on a low-end Mali G31, patch the recording, replay on a
//! high-end G71 — first correct-but-slow, then at full 8-core speed.
//!
//! Run with: `cargo run --example cross_sku --release`

use gpureplay::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record a 16M-element vecadd on the G31 (1 shader core).
    let dev = Machine::new(&sku::MALI_G31, 31);
    let mut harness = RecordHarness::new(dev)?;
    let rec = harness.record_vecadd(1024, 16_000_000, 5)?;
    harness.finish();
    println!("recorded on {} (1 core)", rec.meta.sku_name);

    let a = vec![1.5f32; 1024];
    let b = vec![2.25f32; 1024];

    let run = |rec: &Recording, label: &str| {
        let target = Machine::new(&sku::MALI_G71, 32);
        let env = Environment::new(EnvKind::UserLevel, target).expect("env");
        let mut replayer = Replayer::new(env);
        match replayer.load(rec.clone()) {
            Err(e) => println!("{label}: rejected at load ({e})"),
            Ok(id) => {
                let mut io = ReplayIo::for_recording(replayer.recording(id));
                io.set_input_f32(0, &a).unwrap();
                io.set_input_f32(1, &b).unwrap();
                match replayer.replay(id, &mut io) {
                    Err(e) => println!("{label}: replay failed ({e})"),
                    Ok(report) => {
                        let out = io.output_f32(0).unwrap();
                        assert!(out.iter().all(|&v| (v - 3.75).abs() < 1e-6));
                        println!(
                            "{label}: correct result, exec {}",
                            report.wall - report.startup
                        );
                    }
                }
            }
        }
        replayer.cleanup();
    };

    run(&rec, "unpatched G31 recording on G71");
    let partial = patch_recording(
        &rec,
        &sku::MALI_G31,
        &sku::MALI_G71,
        PatchOptions::without_affinity(),
    )?;
    run(&partial, "patched (pgtable + MMU cfg)   ");
    let full = patch_recording(&rec, &sku::MALI_G31, &sku::MALI_G71, PatchOptions::full())?;
    run(&full, "patched (+ core affinity)     ");
    Ok(())
}
