//! Deployment scenario D3 (headless device): a smart camera runs a
//! YOLO-style detector trunk baremetal — the replayer *is* the system's
//! whole GPU stack, bringing up SoC power/clocks itself.
//!
//! Run with: `cargo run --example smart_camera --release`

use gpureplay::prelude::*;
use gr_sim::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Developer machine: record the vision pipeline on the v3d stack.
    let model = models::by_name("YOLOv4-tiny-trunk").expect("catalog model");
    let dev = Machine::new(&sku::V3D_RPI4, 7);
    let mut harness = RecordHarness::new(dev)?;
    let recs = harness.record_inference(&model, Granularity::WholeNn, 3)?;
    let blob = recs.recordings[0].to_bytes();
    let input_len = recs.net.input_len();
    harness.finish();
    println!(
        "shipped recording: {:.1} KB (fits beside the ~50 KB baremetal replayer binary)",
        blob.len() as f64 / 1024.0
    );

    // The camera: no OS, no stack. The baremetal environment performs the
    // firmware-mailbox power bring-up the kernel would normally do.
    let camera = Machine::new(&sku::V3D_RPI4, 8);
    let env = Environment::new(EnvKind::Baremetal, camera)?;
    let mut replayer = Replayer::new(env);
    let id = replayer.load_bytes(&blob)?;

    // Continuous detection loop over "camera frames".
    let mut rng = SimRng::seed_from(99);
    for frame in 0..5 {
        let pixels: Vec<f32> = (0..input_len).map(|_| rng.unit_f64() as f32).collect();
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.set_input_f32(0, &pixels).unwrap();
        let report = replayer.replay(id, &mut io)?;
        let feat = io.output_f32(0).unwrap();
        let activation: f32 = feat.iter().map(|v| v.abs()).sum::<f32>() / feat.len() as f32;
        println!(
            "frame {frame}: {} jobs in {}, mean feature activation {activation:.4}",
            report.jobs, report.wall
        );
    }
    replayer.cleanup();
    Ok(())
}
