//! Deployment scenario D1 (smartphone): background model fine-tuning via
//! replayed training iterations, preempted instantly when an interactive
//! app asks for the GPU (§5.3).
//!
//! Run with: `cargo run --example background_finetune --release`

use gpureplay::prelude::*;
use gr_replayer::preempt_gpu;
use gr_sim::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record one training iteration at development time.
    let dev = Machine::new(&sku::MALI_G71, 11);
    let mut harness = RecordHarness::new(dev)?;
    let trec = harness.record_training(5)?;
    let blob = trec.recording.to_bytes();
    harness.finish();

    // The phone: replayer shares the GPU with interactive apps.
    let phone = Machine::new(&sku::MALI_G71, 12);
    let env = Environment::new(EnvKind::UserLevel, phone.clone())?;
    let mut replayer = Replayer::new(env);
    let id = replayer.load_bytes(&blob)?;
    let lease = replayer.lease();

    let mut rng = SimRng::seed_from(41);
    let img: Vec<f32> = (0..28 * 28).map(|_| rng.unit_f64() as f32).collect();
    let mut weights: Vec<Vec<u8>> = trec
        .initial_weights
        .iter()
        .map(|(_, b)| b.clone())
        .collect();

    let mut loss = f32::NAN;
    for iter in 0..6 {
        // The interactive app grabs the GPU between iterations 2 and 3.
        if iter == 3 {
            lease.revoke();
            let delay = preempt_gpu(&phone);
            println!("interactive app preempted the GPU in {delay} (< 1 ms)");
            // ...the app renders for a while, then yields the GPU back...
            phone.advance(gr_sim::SimDuration::from_millis(500));
            lease.grant();
        }
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.set_input_f32(0, &img).unwrap();
        io.set_input_f32(1, &[3.0]).unwrap();
        io.inputs[2] = weights[0].clone();
        io.inputs[3] = weights[1].clone();
        io.inputs[4] = weights[2].clone();
        replayer.replay(id, &mut io)?;
        let probs = io.output_f32(0).unwrap();
        weights[0] = io.outputs[1].clone();
        weights[1] = io.outputs[2].clone();
        weights[2] = io.outputs[3].clone();
        loss = -probs[3].max(1e-12).ln();
        println!("iteration {iter}: loss {loss:.4}");
    }
    println!("fine-tuning proceeded to loss {loss:.4} despite mid-run preemption");
    replayer.cleanup();
    Ok(())
}
